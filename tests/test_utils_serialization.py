"""Unit tests for canonical serialization (encode, decode, round-trip)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils.serialization import canonical_bytes, canonical_json, decode_canonical


def test_identical_arrays_serialize_identically():
    a = np.arange(12, dtype=np.float32).reshape(3, 4)
    b = np.arange(12, dtype=np.float32).reshape(3, 4)
    assert canonical_bytes(a) == canonical_bytes(b)


def test_single_bit_change_changes_bytes():
    a = np.arange(12, dtype=np.float32).reshape(3, 4)
    b = a.copy()
    b[1, 2] = np.nextafter(b[1, 2], np.inf)
    assert canonical_bytes(a) != canonical_bytes(b)


def test_dtype_is_part_of_the_encoding():
    a = np.zeros(4, dtype=np.float32)
    b = np.zeros(4, dtype=np.float64)
    assert canonical_bytes(a) != canonical_bytes(b)


def test_shape_is_part_of_the_encoding():
    a = np.zeros((2, 3), dtype=np.float32)
    b = np.zeros((3, 2), dtype=np.float32)
    assert canonical_bytes(a) != canonical_bytes(b)


def test_non_contiguous_array_equals_contiguous_copy():
    base = np.arange(24, dtype=np.float32).reshape(4, 6)
    view = base[:, ::2]
    assert canonical_bytes(view) == canonical_bytes(np.ascontiguousarray(view))


def test_nested_structures_are_supported():
    payload = {"b": [1, 2.5, "x"], "a": np.ones(3, dtype=np.float32), "c": None}
    encoded = canonical_bytes(payload)
    assert isinstance(encoded, bytes)
    assert canonical_bytes(payload) == encoded


def test_dict_key_order_does_not_matter():
    a = {"x": 1, "y": 2}
    b = {"y": 2, "x": 1}
    assert canonical_bytes(a) == canonical_bytes(b)
    assert canonical_json(a) == canonical_json(b)


def test_unsupported_type_raises():
    with pytest.raises(TypeError):
        canonical_bytes(object())


def test_canonical_json_handles_numpy_scalars():
    text = canonical_json({"a": np.float32(1.5), "b": np.int64(3), "c": np.bool_(True)})
    assert "1.5" in text and "3" in text and "true" in text


@settings(deadline=None, max_examples=30)
@given(hnp.arrays(dtype=np.float32, shape=hnp.array_shapes(max_dims=3, max_side=5),
                  elements=st.floats(-1e6, 1e6, width=32)))
def test_canonical_bytes_deterministic_for_arrays(arr):
    assert canonical_bytes(arr) == canonical_bytes(arr.copy())


# ----------------------------------------------------------------------
# Round-trip: decode_canonical inverts canonical_bytes
# ----------------------------------------------------------------------

_ARRAY_DTYPES = (np.float32, np.float64, np.int8, np.int32, np.int64,
                 np.uint8, np.uint16, np.bool_)


def _array_strategy():
    def arrays_for(dtype):
        if np.dtype(dtype).kind == "f":
            elements = st.floats(-1e6, 1e6, width=np.dtype(dtype).itemsize * 8)
        else:
            elements = None
        return hnp.arrays(dtype=dtype, elements=elements,
                          shape=hnp.array_shapes(min_dims=0, max_dims=3, max_side=4))
    return st.sampled_from(_ARRAY_DTYPES).flatmap(arrays_for)


_SCALARS = (st.none() | st.booleans() | st.integers(-2**60, 2**60)
            | st.floats(allow_nan=False) | st.text(max_size=16)
            | st.binary(max_size=16))

_PAYLOADS = st.recursive(
    _SCALARS | _array_strategy(),
    lambda children: (st.lists(children, max_size=4)
                      | st.dictionaries(st.text(max_size=8), children, max_size=4)),
    max_leaves=10,
)


def _canonical_form(value):
    """The normal form the encoder maps a payload to (tuples->lists, ...)."""
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        if arr.dtype.byteorder == ">":
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        return arr
    if isinstance(value, (list, tuple)):
        return [_canonical_form(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical_form(v) for k, v in value.items()}
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    return value


def _assert_payloads_equal(got, expected):
    assert type(got) is type(expected), (type(got), type(expected))
    if isinstance(expected, np.ndarray):
        assert got.dtype == expected.dtype
        assert got.shape == expected.shape
        assert got.tobytes() == expected.tobytes()
    elif isinstance(expected, list):
        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            _assert_payloads_equal(g, e)
    elif isinstance(expected, dict):
        assert set(got) == set(expected)
        for key in expected:
            _assert_payloads_equal(got[key], expected[key])
    else:
        assert got == expected


@settings(deadline=None, max_examples=120)
@given(_PAYLOADS)
def test_round_trip_arbitrary_nested_payloads(payload):
    """decode(encode(x)) is bit-exact up to the encoder's normal forms."""
    encoded = canonical_bytes(payload)
    decoded = decode_canonical(encoded)
    _assert_payloads_equal(decoded, _canonical_form(payload))
    # Round-tripping is idempotent: the normal form re-encodes identically.
    assert canonical_bytes(decoded) == encoded


@settings(deadline=None, max_examples=60)
@given(hnp.arrays(dtype=np.float64,
                  shape=hnp.array_shapes(min_dims=1, max_dims=2, max_side=6),
                  elements=st.floats(allow_nan=True, allow_infinity=True)))
def test_round_trip_preserves_every_float_bit_pattern(arr):
    """NaN payloads, infinities and -0.0 survive the array round trip."""
    decoded = decode_canonical(canonical_bytes(arr))
    assert decoded.tobytes() == np.ascontiguousarray(arr).tobytes()


def test_round_trip_non_contiguous_and_empty_arrays():
    base = np.arange(24, dtype=np.float32).reshape(4, 6)
    for sample in (base[:, ::2], base.T, np.zeros((0, 3)), np.zeros(())):
        decoded = decode_canonical(canonical_bytes(sample))
        expected = np.ascontiguousarray(sample)
        assert decoded.dtype == expected.dtype
        assert decoded.shape == expected.shape
        assert decoded.tobytes() == expected.tobytes()


@settings(deadline=None, max_examples=60)
@given(st.binary(min_size=1, max_size=64))
def test_decode_rejects_garbage(data):
    """Random bytes either fail loudly or decode to a re-encodable value."""
    try:
        decoded = decode_canonical(data)
    except ValueError:
        return
    # The only bytes that decode are genuine canonical payloads.
    assert canonical_bytes(decoded) == data


@pytest.mark.parametrize("mutilate", [
    lambda b: b[:-1],                      # truncated data segment
    lambda b: b + b"\x00",                 # trailing bytes
    lambda b: b"XXXXXXX\x00" + b[8:],      # unknown tag
])
def test_decode_rejects_mutilated_payloads(mutilate):
    encoded = canonical_bytes({"x": np.arange(6, dtype=np.float32)})
    with pytest.raises(ValueError):
        decode_canonical(mutilate(encoded))


def _ndarray_payload(header: dict, data: bytes) -> bytes:
    import json as _json
    header_bytes = _json.dumps(header, sort_keys=True,
                               separators=(",", ":")).encode("utf-8")
    return (b"NDARRAY\x00" + len(header_bytes).to_bytes(8, "big")
            + header_bytes + data)


def test_decode_rejects_non_canonical_aliases():
    """Distinct byte strings must never decode to the same payload.

    Hashes bind payloads in this protocol, so the decoder only accepts
    byte strings the encoder itself could have produced: reformatted or
    reordered ndarray headers, wrong strides, big-endian dtypes and
    non-canonical scalar JSON all alias a canonical payload and must be
    rejected.
    """
    import json as _json
    arr = np.arange(6, dtype=np.float32).reshape(2, 3)
    canonical = canonical_bytes(arr)
    data = arr.tobytes()

    # Same logical header, different JSON formatting.
    loose_header = _json.dumps(
        {"kind": "ndarray", "dtype": "float32", "shape": [2, 3],
         "strides": [12, 4]}, sort_keys=True, separators=(", ", ": "),
    ).encode("utf-8")
    loose = (b"NDARRAY\x00" + len(loose_header).to_bytes(8, "big")
             + loose_header + data)
    assert loose != canonical
    with pytest.raises(ValueError):
        decode_canonical(loose)

    # Wrong strides for the committed shape.
    with pytest.raises(ValueError):
        decode_canonical(_ndarray_payload(
            {"kind": "ndarray", "dtype": "float32", "shape": [2, 3],
             "strides": [4, 8]}, data))

    # Big-endian dtype (the encoder always normalizes to little-endian).
    with pytest.raises(ValueError):
        decode_canonical(_ndarray_payload(
            {"kind": "ndarray", "dtype": ">f4", "shape": [2, 3],
             "strides": [12, 4]}, arr.astype(">f4").tobytes()))

    # Non-canonical scalar JSON (whitespace).
    with pytest.raises(ValueError):
        decode_canonical(b"SCALAR\x00 1")

    # Unsorted map keys.
    good = canonical_bytes({"a": 1, "b": 2})
    swapped = good.replace(b"a", b"\x00").replace(b"b", b"a").replace(b"\x00", b"b")
    assert swapped != good
    with pytest.raises(ValueError):
        decode_canonical(swapped)


# ----------------------------------------------------------------------
# Malformed payloads at the service boundary
# ----------------------------------------------------------------------

_SERVICE_CACHE = {}


def _shared_service(mlp_graph, mlp_thresholds):
    if "service" not in _SERVICE_CACHE:
        from repro.protocol import TAOService
        service = TAOService()
        service.register_model(mlp_graph, threshold_table=mlp_thresholds)
        _SERVICE_CACHE["service"] = service
    return _SERVICE_CACHE["service"]


_BAD_PAYLOADS = st.one_of(
    # wrong input name
    st.just({"not_x": np.zeros((4, 32), dtype=np.float32)}),
    # wrong feature dimension for the traced graph (batch dims may vary;
    # a trailing dim of 1 broadcasts through every kernel, so it is *not*
    # malformed and is excluded)
    hnp.array_shapes(min_dims=1, max_dims=3, max_side=8).filter(
        lambda shape: shape[-1] not in (1, 32)
    ).map(lambda shape: {"x": np.zeros(shape, dtype=np.float32)}),
    # unhashable / unserializable garbage values
    st.sampled_from([object(), {"nested": object()}, object]).map(
        lambda junk: {"x": junk}
    ),
)


@settings(deadline=None, max_examples=25)
@given(_BAD_PAYLOADS)
def test_service_rejects_malformed_payloads_in_isolation(
        mlp_graph, mlp_thresholds, mlp_input_factory, bad_payload):
    """Any malformed payload is rejected without poisoning the batch.

    The good payload uses a fixed seed the committed thresholds are known to
    accept, so the assertion isolates exactly the rejection path.
    """
    service = _shared_service(mlp_graph, mlp_thresholds)
    good = service.submit("tiny_mlp", mlp_input_factory(63))
    bad = service.submit("tiny_mlp", bad_payload)
    service.process()
    assert service.request(good).status == "finalized"
    rejected = service.request(bad)
    assert rejected.status == "rejected"
    assert rejected.report is None  # never reached the coordinator
    assert rejected.error
