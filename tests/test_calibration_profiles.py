"""Unit and property tests for percentile profiles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.calibration.profiles import (
    PERCENTILE_GRID,
    OperatorCalibration,
    PercentileProfile,
    elementwise_errors,
    percentile_profile,
)


def test_percentile_grid_matches_paper():
    assert PERCENTILE_GRID[0] == 0.0
    assert PERCENTILE_GRID[1] == 1.0
    assert PERCENTILE_GRID[-1] == 100.0
    assert 99.0 in PERCENTILE_GRID
    assert 50.0 in PERCENTILE_GRID
    assert list(PERCENTILE_GRID) == sorted(PERCENTILE_GRID)


def test_percentile_profile_is_monotone(rng):
    errors = np.abs(rng.standard_normal(1000))
    profile = percentile_profile(errors)
    assert (np.diff(profile) >= -1e-15).all()
    assert profile[0] == pytest.approx(errors.min())
    assert profile[-1] == pytest.approx(errors.max())


def test_percentile_profile_empty_input():
    assert (percentile_profile(np.array([])) == 0).all()


def test_elementwise_errors(rng):
    a = rng.standard_normal((4, 4))
    b = a + 1e-3
    abs_err, rel_err = elementwise_errors(a, b)
    assert np.allclose(abs_err, 1e-3, atol=1e-9)
    assert (rel_err >= 0).all()
    # Relative error uses |a| in the denominator (Eq. 2).
    assert np.allclose(rel_err, abs_err / (np.abs(a) + 1e-12))


def test_profile_from_errors_and_value_at(rng):
    abs_err = np.abs(rng.standard_normal(512))
    rel_err = np.abs(rng.standard_normal(512)) * 0.1
    profile = PercentileProfile.from_errors(abs_err, rel_err)
    assert profile.value_at(100.0, "abs") == pytest.approx(abs_err.max())
    assert profile.value_at(0.0, "rel") == pytest.approx(rel_err.min())
    with pytest.raises(KeyError):
        profile.value_at(37.0)


def test_profile_shape_validation():
    with pytest.raises(ValueError):
        PercentileProfile(PERCENTILE_GRID, np.zeros(3), np.zeros(len(PERCENTILE_GRID)))


def test_max_envelope_is_pointwise_max(rng):
    a = PercentileProfile.from_errors(np.abs(rng.standard_normal(256)),
                                      np.abs(rng.standard_normal(256)))
    b = PercentileProfile.from_errors(np.abs(rng.standard_normal(256)),
                                      np.abs(rng.standard_normal(256)))
    envelope = a.max_with(b)
    assert (envelope.abs_values >= a.abs_values).all()
    assert (envelope.abs_values >= b.abs_values).all()
    assert (envelope.abs_values == np.maximum(a.abs_values, b.abs_values)).all()


def test_max_envelope_rejects_mismatched_grids(rng):
    a = PercentileProfile.from_errors(np.abs(rng.standard_normal(16)),
                                      np.abs(rng.standard_normal(16)))
    b = PercentileProfile(grid=(0.0, 50.0, 100.0), abs_values=np.zeros(3), rel_values=np.zeros(3))
    with pytest.raises(ValueError):
        a.max_with(b)


def test_scaled_profile(rng):
    profile = PercentileProfile.from_errors(np.abs(rng.standard_normal(64)),
                                            np.abs(rng.standard_normal(64)))
    tripled = profile.scaled(3.0)
    assert np.allclose(tripled.abs_values, 3.0 * profile.abs_values)
    assert np.allclose(tripled.rel_values, 3.0 * profile.rel_values)


def test_profile_dict_roundtrip(rng):
    profile = PercentileProfile.from_errors(np.abs(rng.standard_normal(64)),
                                            np.abs(rng.standard_normal(64)))
    restored = PercentileProfile.from_dict(profile.to_dict())
    assert np.allclose(restored.abs_values, profile.abs_values)
    assert restored.grid == profile.grid


def test_operator_calibration_sample_series(rng):
    profiles = [
        PercentileProfile.from_errors(np.abs(rng.standard_normal(64)) * (i + 1),
                                      np.abs(rng.standard_normal(64)))
        for i in range(5)
    ]
    envelope = profiles[0]
    for p in profiles[1:]:
        envelope = envelope.max_with(p)
    calib = OperatorCalibration(
        node_name="linear", op_type="linear", position=3, envelope=envelope,
        per_sample_profiles=profiles, mean_abs_error=0.1, num_pairs=6, num_samples=5,
    )
    series = calib.sample_series(50.0, "abs")
    assert series.shape == (5,)
    assert calib.to_dict()["position"] == 3


@settings(deadline=None, max_examples=30)
@given(st.lists(st.floats(0, 1e3), min_size=1, max_size=400))
def test_percentile_profile_bounds_contain_all_grid_values(values):
    errors = np.asarray(values, dtype=np.float64)
    profile = percentile_profile(errors)
    assert profile[0] <= profile[-1] + 1e-12
    assert profile[-1] == pytest.approx(errors.max())
    assert (profile >= 0).all()
