"""Cross-device calibration procedure (paper Sec. 3.2).

For every calibration input the traced model is executed on each device of
the fleet with full trace recording; for every operator and every device
pair, element-wise absolute/relative errors are reduced to percentile
profiles; the per-operator envelope over pairs and inputs becomes the raw
material for threshold construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.calibration.profiles import (
    PERCENTILE_GRID,
    OperatorCalibration,
    PercentileProfile,
    elementwise_errors,
)
from repro.graph.graph import GraphModule
from repro.graph.interpreter import Interpreter
from repro.tensorlib.device import DeviceProfile, DEVICE_FLEET


@dataclass(frozen=True)
class CalibrationConfig:
    """Knobs of the offline calibration pass."""

    devices: Tuple[DeviceProfile, ...] = DEVICE_FLEET
    percentile_grid: Tuple[float, ...] = PERCENTILE_GRID
    relative_epsilon: float = 1e-12
    #: Skip operators that produce integer outputs (argmax, index tensors).
    skip_integer_outputs: bool = True

    def __post_init__(self) -> None:
        if len(self.devices) < 2:
            raise ValueError("calibration requires at least two devices")


@dataclass
class CalibrationResult:
    """Output of :meth:`Calibrator.calibrate`."""

    model_name: str
    config: CalibrationConfig
    operators: Dict[str, OperatorCalibration] = field(default_factory=dict)
    num_samples: int = 0

    def operator_names(self) -> List[str]:
        return sorted(self.operators, key=lambda name: self.operators[name].position)

    def mean_error_by_position(self) -> Tuple[np.ndarray, np.ndarray]:
        """(normalized position, mean abs error) series — the Fig. 4 curve."""
        ordered = self.operator_names()
        if not ordered:
            return np.array([]), np.array([])
        n = max(len(ordered) - 1, 1)
        positions = np.array(
            [self.operators[name].position / n for name in ordered], dtype=np.float64
        )
        errors = np.array(
            [self.operators[name].mean_abs_error for name in ordered], dtype=np.float64
        )
        return positions, errors

    def mean_error_by_operator_type(self, kind: str = "abs") -> Dict[str, float]:
        """Mean error per operator type (averaged over node instances)."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for calib in self.operators.values():
            value = calib.mean_abs_error if kind == "abs" else calib.mean_rel_error
            sums[calib.op_type] = sums.get(calib.op_type, 0.0) + value
            counts[calib.op_type] = counts.get(calib.op_type, 0) + 1
        return {name: sums[name] / counts[name] for name in sums}

    def error_magnitude_histogram(self, bins: Sequence[float]) -> Dict[str, float]:
        """Fraction of operators whose mean empirical error falls in each decade bin.

        ``bins`` is a descending sequence of magnitudes (e.g. 1e-1 ... 1e-8);
        operator ``i`` is assigned to the first bin ``b`` with error >= b,
        mirroring the Fig. 7 heatmap rows.
        """
        errors = np.array([c.mean_abs_error for c in self.operators.values()])
        if errors.size == 0:
            return {f"{b:.0e}": 0.0 for b in bins}
        counts = {f"{b:.0e}": 0 for b in bins}
        for err in errors:
            assigned = False
            for b in bins:
                if err >= b:
                    counts[f"{b:.0e}"] += 1
                    assigned = True
                    break
            if not assigned:
                counts[f"{bins[-1]:.0e}"] += 1
        total = float(errors.size)
        return {key: count / total for key, count in counts.items()}


class Calibrator:
    """Runs the cross-device calibration pass for one traced model."""

    def __init__(self, config: Optional[CalibrationConfig] = None) -> None:
        self.config = config or CalibrationConfig()

    def calibrate(
        self,
        graph_module: GraphModule,
        dataset: Iterable[Dict[str, np.ndarray]],
    ) -> CalibrationResult:
        """Calibrate per-operator error percentile profiles for ``graph_module``.

        ``dataset`` yields input dictionaries (placeholder name -> tensor);
        the paper uses 50 representative inputs per model.
        """
        config = self.config
        operators = graph_module.graph.operators
        positions = {node.name: idx for idx, node in enumerate(operators)}
        op_types = {node.name: node.target for node in operators}

        per_sample: Dict[str, List[PercentileProfile]] = {name: [] for name in positions}
        envelopes: Dict[str, Optional[PercentileProfile]] = {name: None for name in positions}
        err_sums: Dict[str, float] = {name: 0.0 for name in positions}
        rel_sums: Dict[str, float] = {name: 0.0 for name in positions}
        err_max: Dict[str, float] = {name: 0.0 for name in positions}
        err_counts: Dict[str, int] = {name: 0 for name in positions}

        interpreters = [Interpreter(device) for device in config.devices]
        num_samples = 0

        for sample in dataset:
            num_samples += 1
            traces = [
                interp.run(graph_module, sample, record=True) for interp in interpreters
            ]
            for name in positions:
                sample_profile: Optional[PercentileProfile] = None
                for j in range(len(traces)):
                    for k in range(j + 1, len(traces)):
                        y_j = traces[j].values[name]
                        y_k = traces[k].values[name]
                        if config.skip_integer_outputs and np.asarray(y_j).dtype.kind in ("i", "u", "b"):
                            continue
                        abs_err, rel_err = elementwise_errors(
                            y_j, y_k, config.relative_epsilon
                        )
                        # Relative error is asymmetric in its denominator
                        # (Eq. 2 normalizes by the first device's output);
                        # take both directions so the committed thresholds
                        # cover whichever side a future checker normalizes by.
                        _, rel_err_rev = elementwise_errors(
                            y_k, y_j, config.relative_epsilon
                        )
                        profile = PercentileProfile.from_errors(
                            abs_err, np.maximum(rel_err, rel_err_rev),
                            config.percentile_grid
                        )
                        sample_profile = (
                            profile if sample_profile is None else sample_profile.max_with(profile)
                        )
                        err_sums[name] += float(abs_err.mean())
                        rel_sums[name] += float(rel_err.mean())
                        err_max[name] = max(err_max[name], float(abs_err.max()))
                        err_counts[name] += 1
                if sample_profile is None:
                    continue
                per_sample[name].append(sample_profile)
                current = envelopes[name]
                envelopes[name] = (
                    sample_profile if current is None else current.max_with(sample_profile)
                )

        result = CalibrationResult(
            model_name=graph_module.name, config=config, num_samples=num_samples
        )
        n_pairs = len(config.devices) * (len(config.devices) - 1) // 2
        for name, envelope in envelopes.items():
            if envelope is None:
                continue
            count = max(err_counts[name], 1)
            result.operators[name] = OperatorCalibration(
                node_name=name,
                op_type=op_types[name],
                position=positions[name],
                envelope=envelope,
                per_sample_profiles=per_sample[name],
                mean_abs_error=err_sums[name] / count,
                mean_rel_error=rel_sums[name] / count,
                max_abs_error=err_max[name],
                num_pairs=n_pairs,
                num_samples=num_samples,
            )
        return result
