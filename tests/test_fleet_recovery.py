"""Crash-recovery from the write-ahead journal: byte-identical resumption.

A worker is SIGKILLed at each write-ahead boundary of a dispute-heavy drain
(post-journal/pre-chain, post-chain/pre-ack, mid-bisection-round), restarted
in place from its parent-held :class:`~repro.fleet.journal.ShardJournal`, and
the drain resumes.  The acceptance pin: the recovered run's verdict
fingerprint — request statuses, commitments, dispute statistics (rounds, gas,
winner, timeout bit), every account balance, the minted total, and the full
shared transaction log — is *byte-identical* (canonical codec) to an
uncrashed run, and ``sum(balances) == minted`` holds exactly.

The post-chain/pre-ack boundary doubles as the at-most-once regression: the
worker died after the parent applied a ledger mutation but before the ack
reached it, so the restarted worker re-issues that exact call — the
per-incarnation sequence ids must dedupe it against the journal instead of
applying it twice.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.fleet import ProcessFleet
from repro.fleet.wire import encode_perturbation
from repro.spec import validate_journal
from repro.utils.serialization import canonical_bytes

from test_cluster_equivalence import _victim

TERMINAL = {"finalized", "proposer_slashed", "challenger_slashed"}

#: (name, hook attribute, trigger) — where in the WAL protocol the SIGKILL
#: lands.  ``_chain_call_hook`` fires before the parent applies a nested
#: chain call (the journal frame for its transition has already landed, via
#: FIFO); ``_chain_reply_hook`` fires after apply+journal but before the ack.
BOUNDARIES = [
    ("post_journal_pre_chain", "_chain_call_hook",
     lambda m: m.get("method") == "transfer"),
    ("post_chain_pre_ack", "_chain_reply_hook",
     lambda m: m.get("method") == "submit"
     and m["args"].get("action") == "post_partition"),
    ("mid_bisection", "_chain_call_hook",
     lambda m: m.get("method") == "submit"
     and m["args"].get("action") == "post_selection"),
]


def _submit_mixed(fleet, graph, input_factory):
    """A dispute-heavy mix: honest, tampered (loses a bisection), griefed
    (honest proposer forced into a dispute), honest again."""
    victim = _victim(graph)
    ids = [fleet.submit(graph.name, input_factory(20))]
    ids.append(fleet.submit(
        graph.name, input_factory(21),
        proposer={"type": "adversarial", "name": "kill-cheat",
                  "perturbations": {victim: encode_perturbation(np.float32(0.05))}}))
    ids.append(fleet.submit(graph.name, input_factory(22),
                            force_challenge=True))
    ids.append(fleet.submit(graph.name, input_factory(23)))
    return ids


def _fingerprint(fleet, request_ids) -> bytes:
    rows = []
    for request_id in request_ids:
        request = fleet.request(request_id)
        report = request.report
        dispute = None
        if report.dispute is not None:
            outcome = report.dispute
            dispute = {
                "rounds": outcome.statistics.rounds,
                "gas": outcome.statistics.gas_used,
                "cheated": outcome.proposer_cheated,
                "winner": outcome.winner,
                "timeout": outcome.resolved_by_timeout,
            }
        rows.append({
            "status": request.status,
            "commitment": bytes(report.result.commitment.value),
            "dispute": dispute,
        })
    log = [(tx.sender, tx.action, tx.gas_used, tx.payload_bytes, tx.shard,
            tx.block, tx.timestamp) for tx in fleet.chain.transactions]
    return canonical_bytes({
        "rows": rows,
        "balances": dict(fleet.chain.balances),
        "minted": fleet.chain.minted,
        "log": log,
    })


def _drive(graph, thresholds, input_factory, boundary=None):
    """One journal-mode fleet run; ``boundary`` picks the SIGKILL point."""
    fleet = ProcessFleet(num_workers=1, n_way=2, recovery="journal")
    try:
        fleet.register_model(graph, threshold_table=thresholds)
        home = fleet.location(graph.name)
        request_ids = _submit_mixed(fleet, graph, input_factory)
        killed = []
        if boundary is not None:
            _name, attr, trigger = boundary

            def kill_once(shard_id, message):
                if not killed and trigger(message):
                    killed.append(shard_id)
                    handle = fleet.workers[shard_id]
                    os.kill(handle.process.pid, signal.SIGKILL)
                    handle.process.join(timeout=10.0)

            setattr(fleet, attr, kill_once)
        fleet.process()
        fleet._chain_call_hook = None
        fleet._chain_reply_hook = None
        for request_id in request_ids:
            assert fleet.request(request_id).status in TERMINAL
        summary = validate_journal(fleet.journal_for(home).spec_entries())
        return {
            "fingerprint": _fingerprint(fleet, request_ids),
            "balances": dict(fleet.chain.balances),
            "minted": fleet.chain.minted,
            "recoveries": fleet.recoveries,
            "killed": list(killed),
            "home": home,
            "journal": summary,
            "chain_tail": fleet.journal_for(home).chain_tail,
            "forfeits": list(fleet.forfeited_disputes),
        }
    finally:
        fleet.close()


@pytest.fixture(scope="module")
def uncrashed(mlp_graph, mlp_thresholds, mlp_input_factory):
    """The reference run every crashed run must reproduce byte-for-byte."""
    run = _drive(mlp_graph, mlp_thresholds, mlp_input_factory)
    assert run["recoveries"] == 0 and not run["killed"]
    return run


@pytest.mark.parametrize("boundary", BOUNDARIES, ids=[b[0] for b in BOUNDARIES])
def test_sigkill_at_every_wal_boundary_recovers_byte_identically(
        boundary, uncrashed, mlp_graph, mlp_thresholds, mlp_input_factory):
    run = _drive(mlp_graph, mlp_thresholds, mlp_input_factory, boundary)

    # The kill landed, the worker was restarted from its journal in place
    # (no failover, no forfeits), and the drain still terminated everything.
    assert run["killed"] == [run["home"]]
    assert run["recoveries"] == 1
    assert run["forfeits"] == []

    # The acceptance pin: verdicts, balances, minted, and the transaction
    # log are byte-identical to the uncrashed run.
    assert run["fingerprint"] == uncrashed["fingerprint"]
    assert run["balances"] == uncrashed["balances"]
    assert run["minted"] == uncrashed["minted"]
    assert sum(run["balances"].values()) == run["minted"]

    # The recovered journal is a valid spec run ending all-terminal.
    assert run["journal"].in_flight_tasks == {}
    assert run["journal"].entries_validated >= \
        uncrashed["journal"].entries_validated


def test_at_most_once_across_kill_between_mutation_and_ack(
        uncrashed, mlp_graph, mlp_thresholds, mlp_input_factory):
    """The mutation the ack never confirmed is not applied twice.

    The post-chain/pre-ack boundary is exactly the window where a naive
    retry double-spends: the parent applied ``post_partition`` (and its gas)
    but the worker died before seeing the reply.  Exact balance and
    transaction-log equality with the uncrashed run proves the restarted
    worker's re-issued call was answered from the journal, not re-applied.
    """
    run = _drive(mlp_graph, mlp_thresholds, mlp_input_factory, BOUNDARIES[1])
    assert run["killed"] and run["recoveries"] == 1
    assert run["chain_tail"] > 0
    assert run["fingerprint"] == uncrashed["fingerprint"]


def test_journal_recovery_on_a_multi_worker_fleet(mlp_graph, mlp_thresholds,
                                                  mlp_input_factory):
    """Recovery restarts the dead shard in place; other shards are untouched."""
    fleet = ProcessFleet(num_workers=3, n_way=2, recovery="journal")
    try:
        fleet.register_model(mlp_graph, threshold_table=mlp_thresholds)
        home = fleet.location(mlp_graph.name)
        request_ids = _submit_mixed(fleet, mlp_graph, mlp_input_factory)
        killed = []

        def kill_home_once(shard_id, message):
            if shard_id == home and not killed \
                    and message.get("method") == "transfer":
                killed.append(shard_id)
                handle = fleet.workers[shard_id]
                os.kill(handle.process.pid, signal.SIGKILL)
                handle.process.join(timeout=10.0)

        fleet._chain_call_hook = kill_home_once
        fleet.process()
        fleet._chain_call_hook = None

        assert killed == [home]
        assert fleet.recoveries == 1
        # The model is still homed where it was: no ring re-homing happened.
        assert fleet.location(mlp_graph.name) == home
        assert fleet.workers[home].alive
        for request_id in request_ids:
            assert fleet.request(request_id).status in TERMINAL
        assert sum(fleet.chain.balances.values()) == fleet.chain.minted
    finally:
        fleet.close()


def test_failover_mode_reports_forfeited_disputes(mlp_graph, mlp_thresholds,
                                                  mlp_input_factory):
    """Without journal recovery, in-flight disputes are forfeited by name."""
    fleet = ProcessFleet(num_workers=3, n_way=2)  # default: failover
    try:
        fleet.register_model(mlp_graph, threshold_table=mlp_thresholds)
        home = fleet.location(mlp_graph.name)
        request_ids = _submit_mixed(fleet, mlp_graph, mlp_input_factory)
        killed = []

        def kill_home_once(shard_id, message):
            if shard_id == home and not killed \
                    and message.get("method") == "submit" \
                    and message["args"].get("action") == "post_partition":
                killed.append(shard_id)
                handle = fleet.workers[shard_id]
                os.kill(handle.process.pid, signal.SIGKILL)
                handle.process.join(timeout=10.0)

        fleet._chain_call_hook = kill_home_once
        fleet.process()
        fleet._chain_call_hook = None

        assert killed == [home]
        assert fleet.recoveries == 0
        assert fleet.forfeited_disputes, \
            "the kill landed mid-dispute; the spec journal must name it"
        for forfeit in fleet.forfeited_disputes:
            assert forfeit["shard_id"] == home
            assert forfeit["state"].startswith("dispute_")
        # Failover still terminates everything and conserves value.
        for request_id in request_ids:
            assert fleet.request(request_id).status in TERMINAL
        assert sum(fleet.chain.balances.values()) == fleet.chain.minted
    finally:
        fleet.close()
