"""Protocol roles: user, proposer (honest and adversarial), challenger, committee.

The roles encapsulate *who computes what on which device*:

* the **proposer** executes the committed graph on its own device, records the
  intermediate trace, and posts the execution commitment; an adversarial
  proposer additionally injects perturbations into chosen intermediate
  tensors (the attack surface of Sec. 4);
* the **challenger** re-executes on its own device, raises disputes when the
  final outputs exceed the committed thresholds, and drives the selection
  rule during the dispute game, accumulating the FLOPs that define the
  paper's DCR metric;
* **committee members** re-execute a single operator at the leaf and vote
  against the empirical thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.calibration.thresholds import ExceedanceReport, ThresholdTable
from repro.graph.graph import GraphModule
from repro.graph.interpreter import ExecutionTrace, Interpreter
from repro.graph.subgraph import SubgraphSlice, extract_subgraph
from repro.merkle.cache import HashCache
from repro.merkle.commitments import (
    ExecutionCommitment,
    ModelCommitment,
    SubgraphRecord,
    hash_tensor,
    make_execution_commitment,
    make_subgraph_record,
    verify_subgraph_record,
)
from repro.tensorlib.device import DeviceProfile
from repro.utils.timing import Stopwatch

PerturbationSpec = Union[np.ndarray, Callable[[np.ndarray], np.ndarray]]


@dataclass
class User:
    """Submits inference requests and pays the service fee."""

    name: str
    fee_per_request: float = 10.0


@dataclass
class ProposedResult:
    """Everything the proposer produces for one request.

    The commitment goes on chain; the trace values are the off-chain data the
    challenger pulls during a dispute (bound to the chain by interface
    hashes inside subgraph records).
    """

    model_name: str
    inputs: Dict[str, np.ndarray]
    outputs: Tuple[np.ndarray, ...]
    output_names: Tuple[str, ...]
    trace_values: Dict[str, np.ndarray]
    commitment: ExecutionCommitment
    forward_flops: float
    wall_time_s: float
    device_name: str


class Proposer:
    """Base proposer: executes the model and commits to the result.

    ``hash_cache`` (optional) memoizes tensor digests across this proposer's
    commitments and dispute records; sharing one cache between the parties a
    service hosts halves the hashing work of a dispute (the challenger's
    record verification re-hashes the very tensors the proposer committed).
    """

    def __init__(self, name: str, device: DeviceProfile,
                 hash_cache: Optional[HashCache] = None) -> None:
        self.name = name
        self.device = device
        self.interpreter = Interpreter(device)
        self.stopwatch = Stopwatch()
        self.hash_cache = hash_cache

    # -- liveness hook ---------------------------------------------------

    def move_delay_s(self, round_index: int) -> float:
        """Seconds this proposer stalls before its next dispute move.

        The dispute game advances chain time by this amount before the
        partition of ``round_index`` is posted; a delay at or beyond the
        coordinator's round timeout forfeits the dispute.  Honest proposers
        respond immediately; the protocol simulator's faulty actors override
        this to model dropped or late moves.
        """
        return 0.0

    # -- execution -------------------------------------------------------

    def _overrides_for(self, graph_module: GraphModule,
                       inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Hook for adversarial subclasses; honest proposers never override."""
        return {}

    def execute(self, graph_module: GraphModule, model_commitment: ModelCommitment,
                inputs: Mapping[str, np.ndarray]) -> ProposedResult:
        overrides = self._overrides_for(graph_module, inputs)
        trace = self.interpreter.run(
            graph_module, dict(inputs), record=True, count_flops=True, overrides=overrides
        )
        commitment = make_execution_commitment(
            model_commitment, dict(inputs), list(trace.outputs),
            meta={
                "device": self.device.name,
                "dtype": "float32",
                "proposer": self.name,
                "kernel_stack": self.device.signature(),
            },
            cache=self.hash_cache,
        )
        return ProposedResult(
            model_name=graph_module.name,
            inputs=dict(inputs),
            outputs=trace.outputs,
            output_names=trace.output_names,
            trace_values=dict(trace.values),
            commitment=commitment,
            forward_flops=trace.flops.total,
            wall_time_s=trace.wall_time_s,
            device_name=self.device.name,
        )

    # -- dispute participation -------------------------------------------

    def partition(
        self,
        graph_module: GraphModule,
        model_commitment: ModelCommitment,
        result: ProposedResult,
        slice_: SubgraphSlice,
        n_way: int,
    ) -> List[SubgraphRecord]:
        """Deterministic N-way partition of the disputed slice (Sec. 5.3)."""
        with self.stopwatch.measure("proposer_partition"):
            children = slice_.split(n_way)
            records = [
                make_subgraph_record(graph_module, model_commitment, child,
                                     result.trace_values, cache=self.hash_cache)
                for child in children
            ]
        return records


class HonestProposer(Proposer):
    """Executes the committed model faithfully on its device."""


class AdversarialProposer(Proposer):
    """A proposer that injects perturbations into chosen intermediate tensors.

    ``perturbations`` maps operator node names to either an additive delta
    array (matching the node's output shape) or a callable mapping the honest
    output to the perturbed output.  Downstream operators consume the
    perturbed values, so the committed trace is self-consistent — the cheat
    is only detectable by comparing against an independent re-execution,
    exactly the paper's threat model.
    """

    def __init__(self, name: str, device: DeviceProfile,
                 perturbations: Optional[Dict[str, PerturbationSpec]] = None,
                 hash_cache: Optional[HashCache] = None) -> None:
        super().__init__(name, device, hash_cache=hash_cache)
        self.perturbations: Dict[str, PerturbationSpec] = dict(perturbations or {})

    def set_perturbation(self, node_name: str, spec: PerturbationSpec) -> None:
        self.perturbations[node_name] = spec

    def clear_perturbations(self) -> None:
        self.perturbations.clear()

    def _overrides_for(self, graph_module: GraphModule,
                       inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        if not self.perturbations:
            return {}
        # Run honestly first to know each node's honest value, then apply the
        # perturbation spec on top.  (A real adversary does the same thing:
        # compute, then tamper.)
        honest = self.interpreter.run(graph_module, dict(inputs), record=True)
        overrides: Dict[str, np.ndarray] = {}
        for node_name, spec in self.perturbations.items():
            if node_name not in honest.values:
                raise KeyError(f"cannot perturb unknown node {node_name!r}")
            base = np.asarray(honest.values[node_name], dtype=np.float32)
            if callable(spec):
                overrides[node_name] = np.asarray(spec(base), dtype=np.float32)
            else:
                overrides[node_name] = (base + np.asarray(spec, dtype=np.float32)).astype(np.float32)
        return overrides


@dataclass
class SelectionOutcome:
    """Result of the challenger's selection rule for one dispute round."""

    selected_index: Optional[int]
    reports: List[ExceedanceReport]
    merkle_checks: int
    flops: float
    all_valid: bool


class Challenger:
    """Re-executes results and drives dispute localization.

    ``committee_envelope`` (optional, a
    :class:`~repro.calibration.committee.CommitteeEnvelopeProfile`) is the
    committed single-operator acceptance envelope of the committee leaf.
    When present it *floors* the thresholds the selection rule applies to
    child slices: a slice re-executed from agreed live-ins accumulates at
    least one operator's worth of single-op cross-device spread, so a
    committed full-trace threshold below the leaf envelope (the
    zero-calibrated low percentiles of bit-deterministic kernels) can only
    select honest children — the false selections behind the ROADMAP's
    committee-leaf defect seeds.  Phase 1 output verification keeps the raw
    committed table: final outputs carry full-trace accumulated error, which
    is exactly what that table calibrates.
    """

    def __init__(self, name: str, device: DeviceProfile,
                 threshold_table: ThresholdTable,
                 hash_cache: Optional[HashCache] = None,
                 committee_envelope=None) -> None:
        self.name = name
        self.device = device
        self.thresholds = threshold_table
        self.committee_envelope = committee_envelope
        self._selection_thresholds = None
        self.interpreter = Interpreter(device)
        self.stopwatch = Stopwatch()
        self.hash_cache = hash_cache
        self.dispute_flops = 0.0
        self.merkle_checks = 0

    def reset_accounting(self) -> None:
        self.dispute_flops = 0.0
        self.merkle_checks = 0
        self.stopwatch = Stopwatch()

    @property
    def selection_thresholds(self) -> ThresholdTable:
        """The committed table floored by the envelope, name-matched.

        The operator-wise baseline of the selection rule's tolerance (each
        dispute round actually floors *slice-aware* via
        :meth:`_slice_checker`).  Built lazily: services construct one
        challenger clone per concurrent dispute, and most never need the
        full-table merge.
        """
        if self._selection_thresholds is None:
            self._selection_thresholds = (
                self.committee_envelope.floor(self.thresholds)
                if self.committee_envelope is not None else self.thresholds
            )
        return self._selection_thresholds

    def move_delay_s(self, round_index: int) -> float:
        """Seconds this challenger stalls before its next dispute move.

        Mirrors :meth:`Proposer.move_delay_s`: the dispute game advances
        chain time by this amount before the selection of ``round_index`` is
        posted, and a delay at or beyond the round timeout forfeits the
        dispute.  Honest challengers respond immediately.
        """
        return 0.0

    # -- input binding (Phase 2 entry) -------------------------------------

    def verify_input_binding(self, result: ProposedResult) -> Tuple[bool, int]:
        """Check that the committed trace extends the committed input ``H(x)``.

        The execution commitment binds the request payload on chain, and the
        selection rule treats the trace's placeholder values as implicitly
        agreed — so before playing any round the challenger must confirm the
        two coincide.  A mismatch (a stale or substituted trace replayed
        against a fresh request) is objectively provable fraud: the
        challenger posts the hash pair via
        :meth:`~repro.protocol.coordinator.Coordinator.post_input_binding_fraud`
        instead of playing the localization game.

        Returns ``(bound, hash_checks)``.
        """
        checks = 0
        for name in sorted(result.inputs):
            checks += 1
            claimed = result.trace_values.get(name)
            if claimed is None:
                return False, checks
            committed = hash_tensor(np.asarray(result.inputs[name]), self.hash_cache)
            if hash_tensor(np.asarray(claimed), self.hash_cache) != committed:
                return False, checks
        return True, checks

    # -- Phase 1 verification --------------------------------------------

    def verify_result(self, graph_module: GraphModule, result: ProposedResult,
                      ) -> Tuple[bool, List[ExceedanceReport]]:
        """Re-execute the request and check the final outputs against thresholds.

        Returns ``(honest_looking, reports)`` where ``honest_looking`` is True
        when no output operator exceeds its committed threshold.
        """
        trace = self.interpreter.run(graph_module, result.inputs, record=True,
                                     count_flops=True)
        return self.verify_with_trace(result, trace)

    def verify_with_trace(self, result: ProposedResult, trace: ExecutionTrace,
                          ) -> Tuple[bool, List[ExceedanceReport]]:
        """Threshold-check ``result`` against an already computed re-execution.

        Split out of :meth:`verify_result` so a service can batch the
        re-execution of many queued requests through the engine and feed the
        per-request traces here; the checking semantics are shared.
        """
        self.dispute_flops += trace.flops.total
        reports: List[ExceedanceReport] = []
        for name, proposed in zip(result.output_names, result.outputs):
            if not self.thresholds.has_operator(name):
                continue
            reports.append(self.thresholds.check(name, proposed, trace.values[name]))
        return (not any(r.exceeded for r in reports)), reports

    # -- Phase 2 selection rule --------------------------------------------

    def select_offending(
        self,
        graph_module: GraphModule,
        model_commitment: ModelCommitment,
        records: Sequence[SubgraphRecord],
    ) -> SelectionOutcome:
        """Identify the first offending child (Eq. 15) in topological order.

        For each child in order the challenger (1) verifies the Merkle record,
        (2) re-executes the child subgraph from the proposer's claimed live-in
        tensors on its own device, and (3) compares the proposer's claimed
        live-out tensors against its own via the committed percentile
        thresholds.  The first child with an exceedance is selected; earlier
        children (and hence the selected child's inputs) are implicitly agreed.
        """
        reports: List[ExceedanceReport] = []
        merkle_checks = 0
        flops = 0.0
        selected: Optional[int] = None
        all_valid = True
        with self.stopwatch.measure("challenger_selection"):
            for index, record in enumerate(records):
                valid, checks = verify_subgraph_record(record, model_commitment,
                                                       cache=self.hash_cache)
                merkle_checks += checks
                if not valid:
                    # A malformed record is itself fraud: select it immediately.
                    all_valid = False
                    selected = index
                    break
                subgraph = extract_subgraph(graph_module, record.slice)
                local = self.interpreter.run(
                    subgraph, dict(record.live_in_values), record=True, count_flops=True
                )
                flops += local.flops.total
                checker = self._slice_checker(graph_module, record)
                offending = False
                for name in record.live_out_names:
                    if not checker.has_operator(name):
                        continue
                    report = checker.check(
                        name, record.live_out_values[name], local.values[name]
                    )
                    reports.append(report)
                    if report.exceeded:
                        offending = True
                if offending and selected is None:
                    selected = index
                    break
        self.dispute_flops += flops
        self.merkle_checks += merkle_checks
        return SelectionOutcome(
            selected_index=selected,
            reports=reports,
            merkle_checks=merkle_checks,
            flops=flops,
            all_valid=all_valid,
        )

    def _slice_checker(self, graph_module: GraphModule, record: SubgraphRecord):
        """The thresholds one child slice's live-out check consults.

        Without a committee envelope: the committed table (reference
        behaviour).  With one: the committed table floored *slice-aware* —
        the honest spread at a slice boundary is generated by whichever
        operator inside the slice diverges most across devices, so every
        boundary entry is raised to at least that operator's single-op
        envelope.
        """
        if self.committee_envelope is None:
            return self.thresholds
        slice_ops = [
            node.name for node in
            graph_module.graph.operators[record.slice_start:record.slice_end]
        ]
        return self.committee_envelope.floor(self.thresholds, slice_ops)


def record_inputs(record: SubgraphRecord) -> Dict[str, np.ndarray]:
    """The challenger-side input dictionary for re-executing a child slice."""
    return dict(record.live_in_values)


@dataclass
class CommitteeVoteRecord:
    member: str
    within_threshold: bool
    report: Optional[ExceedanceReport]


class CommitteeMember:
    """A sampled adjudicator that re-executes one operator and votes."""

    def __init__(self, name: str, device: DeviceProfile) -> None:
        self.name = name
        self.device = device
        self.interpreter = Interpreter(device)

    def vote(
        self,
        graph_module: GraphModule,
        operator_name: str,
        operand_values: Sequence[np.ndarray],
        proposer_output: np.ndarray,
        thresholds: ThresholdTable,
        committee_envelope=None,
    ) -> CommitteeVoteRecord:
        """Re-execute the operator and vote on the proposer's claim.

        With a committed ``committee_envelope`` that calibrates this
        operator, the vote applies the single-op acceptance envelope (what
        the member's re-execution actually measures); otherwise it falls
        back to the full-trace threshold table — the reference tolerance.
        """
        reference = self.interpreter.run_single_operator(
            graph_module, operator_name, operand_values
        )
        checker = thresholds
        if committee_envelope is not None and \
                committee_envelope.has_operator(operator_name):
            checker = committee_envelope
        if not checker.has_operator(operator_name):
            # Without any calibrated envelope the member abstains in favour
            # of the proposer (cannot establish fraud).
            return CommitteeVoteRecord(self.name, True, None)
        report = checker.check(operator_name, proposer_output, reference)
        return CommitteeVoteRecord(self.name, not report.exceeded, report)
