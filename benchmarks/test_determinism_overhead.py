"""Sec. 6.3: latency overhead of the deterministic execution configuration.

The paper enables software-determinism settings during optimistic execution
and measures ~0.3% extra latency on Qwen3-8B over 100 WikiText inputs.  Here
the deterministic configuration pins a canonical reduction order (finer
splits, sequential combination) for the simulated device, and the overhead is
the latency ratio over the device's fast path, measured over a batch of
MiniQwen inputs.
"""

from __future__ import annotations

from repro.runtime.determinism import measure_determinism_overhead
from repro.tensorlib.device import DEVICE_FLEET

from benchmarks.reporting import emit_table

NUM_INPUTS = 20
REPEATS = 2


def test_determinism_overhead(benchmark, bench_qwen):
    dataset = bench_qwen.dataset(NUM_INPUTS, seed=31337)

    def run():
        return measure_determinism_overhead(bench_qwen.graph, dataset, DEVICE_FLEET[0],
                                            repeats=REPEATS)

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    emit_table(
        "determinism_overhead",
        "Deterministic-configuration latency overhead (MiniQwen)",
        ["device", "inputs", "fast path (s)", "deterministic (s)", "overhead (%)",
         "bitwise reproducible"],
        [[report.device, report.num_inputs, report.fast_latency_s,
          report.deterministic_latency_s, report.overhead_percent,
          report.bitwise_reproducible]],
        notes=("Paper: 0.3% latency overhead on Qwen3-8B (100 inputs) from CUDA/cuDNN "
               "determinism flags.  Here the deterministic path pins a canonical (non-autotuned) "
               "split-K configuration, whose extra partial-sum bookkeeping costs ~10-15% at "
               "Python/NumPy granularity — the qualitative property (a small, bounded slowdown "
               "in exchange for bitwise reproducibility on a fixed device) is what transfers; "
               "the absolute 0.3% depends on native kernel dispatch costs we cannot model."),
    )

    assert report.bitwise_reproducible
    # The overhead is small: well under 50% even on this Python-level simulation
    # (the paper's figure is 0.3% on real kernels), and not a speed-up artifact
    # larger than the measurement noise either.
    assert report.overhead_percent < 50.0
    assert report.overhead_percent > -10.0
