"""Simulator scenario matrix: detection rate x fault magnitude x workload.

For each of the paper's four workloads the adversarial simulator sweeps two
fault families across magnitudes:

* ``bit_flip`` — low-order mantissa corruption; magnitude = number of low
  bits flipped.  Small flips hide inside the cross-device noise floor the
  thresholds were calibrated to tolerate; large flips must be flagged and
  slashed.
* ``bound_edge`` — perturbations projected onto the committed empirical cap
  curve and scaled by an edge factor; factors below ~1 probe the tolerated
  sub-threshold region, factors above it must be caught.

Reported per (workload, fault, magnitude): the fraction of tampered
requests flagged by Phase-1 verification, the fraction slashed after the
dispute game, and the invariant-violation count (must be zero everywhere —
this sweep doubles as a regression net for the protocol invariants).

The emitted table (``benchmarks/results/sim_scenario_matrix.md``) is the
artifact CI uploads for every build.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.sim import Scenario, prepare_workload, run_scenario

from benchmarks.conftest import BENCH_MODELS, PAPER_NAMES
from benchmarks.reporting import emit_table

#: (fault kind, magnitudes swept).  Bits for bit_flip, edge factor otherwise.
FAULT_SWEEP = (
    ("bit_flip", (4, 10, 16, 20)),
    ("bound_edge", (0.25, 1.0, 4.0)),
)

SCENARIOS_PER_CELL = 2
REQUESTS_PER_SCENARIO = 3


def _sweep_cell(workload, model_name: str, kind: str, magnitude: float,
                ) -> Dict[str, float]:
    tampered = flagged = slashed = violations = 0
    for index in range(SCENARIOS_PER_CELL):
        scenario = Scenario(
            name=f"matrix-{model_name}-{kind}-{magnitude}-{index}",
            seed=9000 + index,
            model=model_name,
            num_requests=REQUESTS_PER_SCENARIO,
            fault_rate=1.0,
            fault_kinds=(kind,),
            force_challenge_rate=0.0,
        ).with_magnitude(kind, magnitude)
        result = run_scenario(scenario, workload)
        violations += len(result.violations)
        for outcome in result.outcomes:
            if outcome.event.kind != kind:
                continue
            tampered += 1
            flagged += int(outcome.flagged)
            slashed += int(outcome.proposer_slashed)
    return {
        "tampered": tampered,
        "flagged_rate": flagged / tampered if tampered else 0.0,
        "detection_rate": slashed / tampered if tampered else 0.0,
        "violations": violations,
    }


@pytest.fixture(scope="module")
def matrix_rows() -> List[List[object]]:
    rows: List[List[object]] = []
    for model_name in BENCH_MODELS:
        workload = prepare_workload(model_name)
        for kind, magnitudes in FAULT_SWEEP:
            for magnitude in magnitudes:
                cell = _sweep_cell(workload, model_name, kind, magnitude)
                rows.append([
                    PAPER_NAMES.get(model_name, model_name),
                    kind,
                    magnitude,
                    cell["tampered"],
                    f"{cell['flagged_rate']:.0%}",
                    f"{cell['detection_rate']:.0%}",
                    cell["violations"],
                ])
    return rows


def test_sim_scenario_matrix(matrix_rows):
    """The sweep upholds every invariant and detection grows with magnitude."""
    emit_table(
        "sim_scenario_matrix",
        "Simulator detection rate x fault magnitude (all four workloads)",
        ["workload", "fault", "magnitude", "tampered requests",
         "flagged", "slashed", "invariant violations"],
        matrix_rows,
        notes=(f"{SCENARIOS_PER_CELL} scenarios x {REQUESTS_PER_SCENARIO} "
               "requests per cell; magnitudes are low mantissa bits for "
               "bit_flip and cap-curve edge factors for bound_edge.  "
               "Sub-threshold magnitudes finalizing is the paper's tolerance "
               "semantics, not a miss."),
    )
    assert len(matrix_rows) == len(BENCH_MODELS) * sum(
        len(m) for _, m in FAULT_SWEEP)
    # The regression net: no invariant violation anywhere in the sweep.
    assert all(row[-1] == 0 for row in matrix_rows)
    # Magnitude discrimination, per workload: the weakest bit_flip hides in
    # the calibrated noise floor (0% flagged), the strongest is always
    # flagged by Phase-1 verification.  (Slashing can fall short of 100% on
    # attention-heavy graphs where the bisection dead-ends — the table
    # reports that honestly.)
    for model_name in BENCH_MODELS:
        label = PAPER_NAMES.get(model_name, model_name)
        flips = [row for row in matrix_rows
                 if row[0] == label and row[1] == "bit_flip"]
        assert flips[0][4] == "0%", (model_name, flips[0])
        assert flips[-1][4] == "100%", (model_name, flips[-1])
        assert flips[-1][5] != "0%", (model_name, flips[-1])
