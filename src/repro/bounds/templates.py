"""Per-operator theoretical error-bound templates (paper Sec. 3.1).

Each template receives the operator's concrete output and inputs and returns
a same-shape, element-wise error envelope ``tau_theo`` computed in float64.
The construction follows the paper's recipe: lower the operator to a short
sequence of primitives, track a first-order sensitivity envelope for
propagated intra-operator error, and add one fresh rounding term ``u*|.|``
per primitive; reductions of length ``k`` use the deterministic ``gamma_k``
or probabilistic ``gamma_tilde_k(lambda)`` factor according to the selected
:class:`~repro.bounds.fp_model.BoundMode`.

Structural / data-movement operators contribute exactly zero error; exact
selection operators (ReLU, max, masked fill) likewise contribute zero fresh
rounding because they return one of their inputs unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Sequence, Tuple

import numpy as np
from scipy import special

from repro.bounds.fp_model import BoundMode, FloatingPointModel, FP32_MODEL, INTRINSIC_ULP
from repro.ops.registry import get_op

BoundTemplate = Callable[..., np.ndarray]

_TEMPLATES: Dict[str, BoundTemplate] = {}


@dataclass(frozen=True)
class BoundContext:
    """Floating-point model + bound mode used for one bounded execution."""

    fp: FloatingPointModel = FP32_MODEL
    mode: BoundMode = BoundMode.PROBABILISTIC

    @property
    def u(self) -> float:
        return self.fp.unit_roundoff

    def red(self, k: int) -> float:
        """Reduction factor for a length-``k`` rounding chain under this mode."""
        return self.fp.reduction_factor(int(k), self.mode)


def register_bound_template(name: str) -> Callable[[BoundTemplate], BoundTemplate]:
    """Decorator registering a bound template for operator ``name``."""

    def decorator(fn: BoundTemplate) -> BoundTemplate:
        if name in _TEMPLATES:
            raise ValueError(f"bound template for {name!r} already registered")
        _TEMPLATES[name] = fn
        return fn

    return decorator


def has_bound_template(name: str) -> bool:
    return name in _TEMPLATES


def list_bound_templates() -> Tuple[str, ...]:
    return tuple(sorted(_TEMPLATES))


def bound_for_operator(ctx: BoundContext, op_name: str, out: np.ndarray,
                       inputs: Sequence[Any], attrs: Dict[str, Any]) -> np.ndarray:
    """Compute ``tau_theo`` for one operator invocation.

    Falls back to a generic single-rounding envelope ``u*|out|`` for
    registered operators without a dedicated template (and to exactly zero
    for operators flagged as introducing no rounding).
    """
    out64 = np.asarray(out, dtype=np.float64)
    template = _TEMPLATES.get(op_name)
    if template is not None:
        tau = template(ctx, out64, inputs, attrs)
        return np.broadcast_to(np.asarray(tau, dtype=np.float64), out64.shape).copy()
    spec = get_op(op_name)
    if not spec.introduces_rounding:
        return np.zeros_like(out64)
    return ctx.u * np.abs(out64)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _abs64(x) -> np.ndarray:
    return np.abs(np.asarray(x, dtype=np.float64))


def _axes_tuple(axis, ndim: int) -> Tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, (int, np.integer)):
        return (int(axis) % ndim,)
    return tuple(int(a) % ndim for a in axis)


def _reduced_count(shape: Tuple[int, ...], axes: Tuple[int, ...]) -> int:
    return int(np.prod([shape[a] for a in axes])) if axes else 1


def _ulp_bound(ctx: BoundContext, name: str, out: np.ndarray) -> np.ndarray:
    return INTRINSIC_ULP.get(name, 1.0) * ctx.u * np.abs(out)


# ---------------------------------------------------------------------------
# Elementwise arithmetic
# ---------------------------------------------------------------------------

@register_bound_template("add")
def _bound_add(ctx, out, inputs, attrs):
    a, b = inputs[0], inputs[1]
    return ctx.u * (_abs64(a) + _abs64(b))


@register_bound_template("sub")
def _bound_sub(ctx, out, inputs, attrs):
    a, b = inputs[0], inputs[1]
    return ctx.u * (_abs64(a) + _abs64(b))


@register_bound_template("mul")
def _bound_mul(ctx, out, inputs, attrs):
    return ctx.u * np.abs(out)


@register_bound_template("div")
def _bound_div(ctx, out, inputs, attrs):
    return _ulp_bound(ctx, "div", out) + ctx.u * np.abs(out)


@register_bound_template("pow")
def _bound_pow(ctx, out, inputs, attrs):
    return _ulp_bound(ctx, "pow", out)


@register_bound_template("sqrt")
def _bound_sqrt(ctx, out, inputs, attrs):
    return _ulp_bound(ctx, "sqrt", out) + ctx.u * np.abs(out)


@register_bound_template("rsqrt")
def _bound_rsqrt(ctx, out, inputs, attrs):
    return _ulp_bound(ctx, "rsqrt", out)


@register_bound_template("exp")
def _bound_exp(ctx, out, inputs, attrs):
    return _ulp_bound(ctx, "exp", out)


@register_bound_template("log")
def _bound_log(ctx, out, inputs, attrs):
    # log can cross zero; anchor the envelope on the input's relative scale too.
    return _ulp_bound(ctx, "log", out) + ctx.u


@register_bound_template("sin")
def _bound_sin(ctx, out, inputs, attrs):
    return _ulp_bound(ctx, "sin", out) + ctx.u


@register_bound_template("cos")
def _bound_cos(ctx, out, inputs, attrs):
    return _ulp_bound(ctx, "cos", out) + ctx.u


@register_bound_template("tanh")
def _bound_tanh(ctx, out, inputs, attrs):
    return _ulp_bound(ctx, "tanh", out)


@register_bound_template("sigmoid")
def _bound_sigmoid(ctx, out, inputs, attrs):
    return 3.0 * ctx.u * np.abs(out)


@register_bound_template("erf")
def _bound_erf(ctx, out, inputs, attrs):
    return _ulp_bound(ctx, "erf", out)


@register_bound_template("maximum")
def _bound_maximum(ctx, out, inputs, attrs):
    return np.zeros_like(out)


@register_bound_template("minimum")
def _bound_minimum(ctx, out, inputs, attrs):
    return np.zeros_like(out)


@register_bound_template("clip")
def _bound_clip(ctx, out, inputs, attrs):
    return np.zeros_like(out)


@register_bound_template("where")
def _bound_where(ctx, out, inputs, attrs):
    return np.zeros_like(out)


@register_bound_template("abs")
def _bound_abs(ctx, out, inputs, attrs):
    return np.zeros_like(out)


@register_bound_template("neg")
def _bound_neg(ctx, out, inputs, attrs):
    return np.zeros_like(out)


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------

@register_bound_template("relu")
def _bound_relu(ctx, out, inputs, attrs):
    return np.zeros_like(out)


@register_bound_template("leaky_relu")
def _bound_leaky_relu(ctx, out, inputs, attrs):
    return ctx.u * np.abs(out)


@register_bound_template("gelu")
def _bound_gelu(ctx, out, inputs, attrs):
    # y = x * Phi(x); Phi computed from erf with ~3 roundings (|Phi| <= 1),
    # so |dPhi| <= 3u, and the final product adds one fresh rounding.
    x = _abs64(inputs[0])
    return 3.0 * ctx.u * x + ctx.u * np.abs(out)


@register_bound_template("silu")
def _bound_silu(ctx, out, inputs, attrs):
    # y = x * sigmoid(x); |d sigmoid| <= 3u * sigma, so |x|*|d sigmoid| <= 3u*|y|,
    # plus one fresh rounding for the final product.
    return 4.0 * ctx.u * np.abs(out)


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------

@register_bound_template("sum")
def _bound_sum(ctx, out, inputs, attrs):
    x = _abs64(inputs[0])
    axes = _axes_tuple(attrs.get("axis"), x.ndim)
    k = _reduced_count(x.shape, axes)
    abs_sum = x.sum(axis=axes, keepdims=attrs.get("keepdims", False))
    return ctx.red(max(k - 1, 0)) * abs_sum


@register_bound_template("mean")
def _bound_mean(ctx, out, inputs, attrs):
    x = _abs64(inputs[0])
    axes = _axes_tuple(attrs.get("axis"), x.ndim)
    k = _reduced_count(x.shape, axes)
    abs_sum = x.sum(axis=axes, keepdims=attrs.get("keepdims", False))
    return ctx.red(max(k - 1, 0)) * abs_sum / max(k, 1) + ctx.u * np.abs(out)


@register_bound_template("var")
def _bound_var(ctx, out, inputs, attrs):
    x = np.asarray(inputs[0], dtype=np.float64)
    axes = _axes_tuple(attrs.get("axis"), x.ndim)
    keepdims = attrs.get("keepdims", False)
    k = _reduced_count(x.shape, axes)
    mean = x.mean(axis=axes, keepdims=True)
    centered = x - mean
    eps_mean = ctx.red(max(k - 1, 0)) * np.abs(x).mean(axis=axes, keepdims=True) \
        + ctx.u * np.abs(mean)
    eps_centered = eps_mean + ctx.u * (np.abs(x) + np.abs(mean))
    sq = centered ** 2
    eps_sq = 2.0 * np.abs(centered) * eps_centered + ctx.u * sq
    eps_var = ctx.red(max(k - 1, 0)) * sq.mean(axis=axes, keepdims=keepdims) \
        + eps_sq.mean(axis=axes, keepdims=keepdims) + ctx.u * np.abs(out)
    return eps_var


@register_bound_template("amax")
def _bound_amax(ctx, out, inputs, attrs):
    return np.zeros_like(out)


@register_bound_template("amin")
def _bound_amin(ctx, out, inputs, attrs):
    return np.zeros_like(out)


@register_bound_template("argmax")
def _bound_argmax(ctx, out, inputs, attrs):
    return np.zeros_like(np.asarray(out, dtype=np.float64))


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------

@register_bound_template("matmul")
def _bound_matmul(ctx, out, inputs, attrs):
    a = _abs64(inputs[0])
    b = _abs64(inputs[1])
    k = a.shape[-1]
    return ctx.red(k) * np.matmul(a, b)


@register_bound_template("bmm")
def _bound_bmm(ctx, out, inputs, attrs):
    a = _abs64(inputs[0])
    b = _abs64(inputs[1])
    k = a.shape[-1]
    return ctx.red(k) * np.matmul(a, b)


@register_bound_template("linear")
def _bound_linear(ctx, out, inputs, attrs):
    x = _abs64(inputs[0])
    w = _abs64(inputs[1])
    k = x.shape[-1]
    tau = ctx.red(k) * np.matmul(x, w.T)
    if len(inputs) > 2 and inputs[2] is not None:
        tau = tau + ctx.u * (np.abs(out) + _abs64(inputs[2]))
    return tau


@register_bound_template("conv2d")
def _bound_conv2d(ctx, out, inputs, attrs):
    from repro.tensorlib.kernels import device_conv2d
    from repro.tensorlib.device import REFERENCE_DEVICE

    x = np.abs(np.asarray(inputs[0], dtype=np.float32))
    w = np.abs(np.asarray(inputs[1], dtype=np.float32))
    stride = attrs.get("stride", (1, 1))
    padding = attrs.get("padding", (0, 0))
    abs_conv = device_conv2d(x, w, None, REFERENCE_DEVICE, stride=tuple(stride),
                             padding=tuple(padding)).astype(np.float64)
    c_in, kh, kw = w.shape[1], w.shape[2], w.shape[3]
    k = c_in * kh * kw
    tau = ctx.red(k) * abs_conv
    if len(inputs) > 2 and inputs[2] is not None:
        bias = _abs64(inputs[2]).reshape(1, -1, 1, 1)
        tau = tau + ctx.u * (np.abs(out) + bias)
    return tau


# ---------------------------------------------------------------------------
# Pooling / upsampling
# ---------------------------------------------------------------------------

@register_bound_template("avg_pool2d")
def _bound_avg_pool2d(ctx, out, inputs, attrs):
    from repro.ops.conv import _avg_pool2d_forward
    from repro.tensorlib.device import REFERENCE_DEVICE

    x_abs = np.abs(np.asarray(inputs[0], dtype=np.float32))
    pooled_abs = _avg_pool2d_forward(REFERENCE_DEVICE, x_abs,
                                     kernel_size=attrs.get("kernel_size", (2, 2)),
                                     stride=attrs.get("stride"),
                                     padding=attrs.get("padding", (0, 0))).astype(np.float64)
    kernel = attrs.get("kernel_size", (2, 2))
    if isinstance(kernel, (tuple, list)):
        k = int(kernel[0]) * int(kernel[1])
    else:
        k = int(kernel) ** 2
    return ctx.red(max(k - 1, 0)) * pooled_abs + ctx.u * np.abs(out)


@register_bound_template("max_pool2d")
def _bound_max_pool2d(ctx, out, inputs, attrs):
    return np.zeros_like(out)


@register_bound_template("adaptive_avg_pool2d")
def _bound_adaptive_avg_pool2d(ctx, out, inputs, attrs):
    x = _abs64(inputs[0])
    k = x.shape[2] * x.shape[3]
    abs_mean = x.mean(axis=(2, 3), keepdims=True)
    return ctx.red(max(k - 1, 0)) * abs_mean + ctx.u * np.abs(out)


@register_bound_template("upsample_nearest")
def _bound_upsample_nearest(ctx, out, inputs, attrs):
    return np.zeros_like(out)


# ---------------------------------------------------------------------------
# Normalization / softmax (the paper's worked examples)
# ---------------------------------------------------------------------------

@register_bound_template("softmax")
def _bound_softmax(ctx, out, inputs, attrs):
    x = np.asarray(inputs[0], dtype=np.float64)
    axis = int(attrs.get("axis", -1)) % x.ndim
    n = x.shape[axis]
    m = x.max(axis=axis, keepdims=True)
    z = x - m
    e = np.exp(z)
    s = e.sum(axis=axis, keepdims=True)
    y = np.abs(out)

    eps_z = ctx.u * (np.abs(x) + np.abs(m))
    eps_e = np.abs(e) * eps_z + 2.0 * ctx.u * np.abs(e)
    red = ctx.red(max(n - 1, 0))
    eps_s = red * np.abs(e).sum(axis=axis, keepdims=True) \
        + (red + 1.0) * eps_e.sum(axis=axis, keepdims=True)
    eps_y = eps_e / np.abs(s) + np.abs(e) * eps_s / (s ** 2) + ctx.u * y
    return eps_y


@register_bound_template("layer_norm")
def _bound_layer_norm(ctx, out, inputs, attrs):
    x = np.asarray(inputs[0], dtype=np.float64)
    weight = np.asarray(inputs[1], dtype=np.float64)
    eps_attr = float(attrs.get("eps", 1e-5))
    n = x.shape[-1]
    red = ctx.red(max(n - 1, 0))

    m = x.mean(axis=-1, keepdims=True)
    eps_m = red * np.abs(x).mean(axis=-1, keepdims=True) + ctx.u * np.abs(m)
    c = x - m
    eps_c = eps_m + ctx.u * (np.abs(x) + np.abs(m))
    sq = c ** 2
    eps_sq = 2.0 * np.abs(c) * eps_c + ctx.u * sq
    v = sq.mean(axis=-1, keepdims=True)
    eps_v = red * sq.mean(axis=-1, keepdims=True) + eps_sq.mean(axis=-1, keepdims=True) \
        + ctx.u * np.abs(v)
    denom = np.sqrt(v + eps_attr)
    eps_denom = eps_v / (2.0 * denom) + ctx.u * denom
    normed = c / denom
    eps_normed = eps_c / denom + np.abs(c) * eps_denom / (denom ** 2) + ctx.u * np.abs(normed)
    scaled = normed * weight
    eps_out = np.abs(weight) * eps_normed + ctx.u * np.abs(scaled) + ctx.u * np.abs(out)
    return eps_out


@register_bound_template("rms_norm")
def _bound_rms_norm(ctx, out, inputs, attrs):
    x = np.asarray(inputs[0], dtype=np.float64)
    weight = np.asarray(inputs[1], dtype=np.float64)
    eps_attr = float(attrs.get("eps", 1e-6))
    n = x.shape[-1]
    red = ctx.red(max(n - 1, 0))

    sq = x ** 2
    eps_sq = ctx.u * sq
    ms = sq.mean(axis=-1, keepdims=True)
    eps_ms = red * sq.mean(axis=-1, keepdims=True) + eps_sq.mean(axis=-1, keepdims=True) \
        + ctx.u * np.abs(ms)
    denom = np.sqrt(ms + eps_attr)
    eps_denom = eps_ms / (2.0 * denom) + ctx.u * denom
    normed = x / denom
    eps_normed = np.abs(x) * eps_denom / (denom ** 2) + ctx.u * np.abs(normed)
    scaled = normed * weight
    return np.abs(weight) * eps_normed + ctx.u * np.abs(scaled) + ctx.u * np.abs(out)


@register_bound_template("batch_norm")
def _bound_batch_norm(ctx, out, inputs, attrs):
    x = np.asarray(inputs[0], dtype=np.float64)
    weight = np.asarray(inputs[1], dtype=np.float64)
    running_mean = np.asarray(inputs[3], dtype=np.float64)
    running_var = np.asarray(inputs[4], dtype=np.float64)
    eps_attr = float(attrs.get("eps", 1e-5))

    shape = (1, -1) + (1,) * (x.ndim - 2)
    mean = running_mean.reshape(shape)
    var = running_var.reshape(shape)
    w = np.abs(weight.reshape(shape))
    inv_std = 1.0 / np.sqrt(var + eps_attr)

    centered = x - mean
    eps_centered = ctx.u * (np.abs(x) + np.abs(mean))
    eps_inv = 2.5 * ctx.u * inv_std
    scaled = centered * inv_std
    eps_scaled = inv_std * eps_centered + np.abs(centered) * eps_inv + ctx.u * np.abs(scaled)
    return w * eps_scaled + ctx.u * np.abs(scaled * w) + ctx.u * np.abs(out)


@register_bound_template("group_norm")
def _bound_group_norm(ctx, out, inputs, attrs):
    x = np.asarray(inputs[0], dtype=np.float64)
    weight = np.asarray(inputs[1], dtype=np.float64)
    eps_attr = float(attrs.get("eps", 1e-5))
    g = int(attrs["num_groups"])
    n, c = x.shape[:2]
    spatial = x.shape[2:]
    grouped = x.reshape((n, g, c // g) + spatial)
    reduce_axes = tuple(range(2, grouped.ndim))
    k = _reduced_count(grouped.shape, reduce_axes)
    red = ctx.red(max(k - 1, 0))

    m = grouped.mean(axis=reduce_axes, keepdims=True)
    eps_m = red * np.abs(grouped).mean(axis=reduce_axes, keepdims=True) + ctx.u * np.abs(m)
    cgrp = grouped - m
    eps_c = eps_m + ctx.u * (np.abs(grouped) + np.abs(m))
    sq = cgrp ** 2
    eps_sq = 2.0 * np.abs(cgrp) * eps_c + ctx.u * sq
    v = sq.mean(axis=reduce_axes, keepdims=True)
    eps_v = red * sq.mean(axis=reduce_axes, keepdims=True) \
        + eps_sq.mean(axis=reduce_axes, keepdims=True) + ctx.u * np.abs(v)
    denom = np.sqrt(v + eps_attr)
    eps_denom = eps_v / (2.0 * denom) + ctx.u * denom
    normed = cgrp / denom
    eps_normed = eps_c / denom + np.abs(cgrp) * eps_denom / (denom ** 2) + ctx.u * np.abs(normed)

    eps_flat = eps_normed.reshape(x.shape)
    shape = (1, c) + (1,) * len(spatial)
    w = np.abs(weight.reshape(shape))
    normed_flat = normed.reshape(x.shape)
    return w * eps_flat + ctx.u * np.abs(normed_flat * w) + ctx.u * np.abs(out)


# ---------------------------------------------------------------------------
# Structural / data movement: exactly zero error
# ---------------------------------------------------------------------------

def _zero_bound(ctx, out, inputs, attrs):
    return np.zeros_like(np.asarray(out, dtype=np.float64))


for _name in ("reshape", "flatten", "transpose", "permute", "expand", "concat", "slice",
              "index_select", "embedding", "masked_fill", "dropout", "pad", "identity"):
    _TEMPLATES[_name] = _zero_bound
