"""Differential pin: the pipelined drain is byte-identical to the reference.

One seeded, dispute-heavy, multi-tenant schedule — honest traffic, repeated
payloads (cache hits within and across cycles), adversarial proposers whose
disputes multiplex, forced challenges, malformed payloads — is played
through

* :meth:`~repro.protocol.service.TAOService.drain_reference` (stages run
  strictly in sequence, the seed semantics), and
* the stage-pipelined drain with small cycles, so hash/execute of later
  cycles genuinely overlap the chain lane of earlier ones,

and the two runs must produce **byte-identical per-request verdicts**
(statuses, execution-commitment bytes, dispute localization/rounds/gas) and
an **exactly equal ledger** — the same balance for every account and the
same minted total, float equality with no tolerance.  The chain-transaction
log lengths must match too: the pipeline reorders *work*, never protocol
events.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.graph import trace_module
from repro.protocol import TAOService

NUM_TENANTS = 3
ROUNDS = 10  # requests per tenant
CYCLE_CAPACITY = 3


@pytest.fixture(scope="module")
def tenant_graphs(mlp_module, mlp_input_factory):
    return [trace_module(mlp_module, mlp_input_factory(0), name=f"pipe_tenant_{i}")
            for i in range(NUM_TENANTS)]


def _schedule() -> List[Tuple[int, int, str]]:
    """Seeded (tenant, payload_seed, kind) rows; dispute-heavy by design."""
    rng = np.random.default_rng(42_2026)
    events: List[Tuple[int, int, str]] = []
    for round_index in range(ROUNDS):
        for tenant in range(NUM_TENANTS):
            roll = rng.random()
            if roll < 0.20:
                kind = "cheat"       # adversarial proposer -> dispute game
            elif roll < 0.32:
                kind = "force"       # forced challenge on an honest result
            elif roll < 0.38:
                kind = "malformed"   # rejected before touching the chain
            else:
                kind = "honest"
            payload_seed = 600 + tenant * 16 + round_index % 4  # repeats
            events.append((tenant, payload_seed, kind))
    return events


def _victim(graph) -> str:
    return next(node.name for node in graph.graph.operators
                if node.target == "relu")


def _drive(graphs, thresholds, input_factory, *,
           pipelined: bool) -> TAOService:
    service = TAOService(n_way=2, cycle_capacity=CYCLE_CAPACITY,
                         enable_pipeline=pipelined)
    sessions = {}
    for graph in graphs:
        sessions[graph.name] = service.register_model(
            graph, threshold_table=thresholds)
    for tenant, payload_seed, kind in _schedule():
        graph = graphs[tenant]
        proposer = None
        inputs = input_factory(payload_seed)
        if kind == "cheat":
            proposer = sessions[graph.name].make_adversarial_proposer(
                f"{graph.name}-cheat-{payload_seed}",
                {_victim(graph): np.float32(0.05)},
            )
        elif kind == "malformed":
            inputs = {"x": np.zeros((4, 7), dtype=np.float32)}  # wrong d_in
        service.submit(graph.name, inputs, proposer=proposer,
                       force_challenge=(kind == "force"))
    if pipelined:
        service.process()
    else:
        service.drain_reference()
    return service


def _fingerprint(request) -> Tuple:
    """Everything the protocol lets a client observe about one request."""
    report = request.report
    if report is None:
        return (request.status, request.error is not None)
    dispute = report.dispute
    return (
        request.status,
        report.final_status,
        report.finalized_optimistically,
        bytes(report.result.commitment.value),
        tuple(bool(r.exceeded) for r in report.verification_reports),
        None if dispute is None else (
            dispute.proposer_cheated,
            dispute.localized_operator,
            dispute.resolved_by_timeout,
            dispute.statistics.rounds,
            dispute.statistics.gas_used,
        ),
    )


def test_pipelined_drain_matches_reference(tenant_graphs, mlp_thresholds,
                                           mlp_input_factory):
    reference = _drive(tenant_graphs, mlp_thresholds, mlp_input_factory,
                       pipelined=False)
    pipelined = _drive(tenant_graphs, mlp_thresholds, mlp_input_factory,
                       pipelined=True)

    total = NUM_TENANTS * ROUNDS
    # Byte-identical per-request verdicts, in submission order.
    for request_id in range(total):
        assert _fingerprint(pipelined.request(request_id)) == \
            _fingerprint(reference.request(request_id)), f"request {request_id}"

    # Exact ledger equality: every account, every balance, the minted total.
    ref_chain = reference.coordinator.chain
    pipe_chain = pipelined.coordinator.chain
    assert dict(pipe_chain.balances) == dict(ref_chain.balances)
    assert pipe_chain.minted == ref_chain.minted
    assert sum(pipe_chain.balances.values()) == pipe_chain.minted

    # Protocol events were reordered never: same transaction log shape.
    assert len(pipe_chain.transactions) == len(ref_chain.transactions)
    assert [tx.action for tx in pipe_chain.transactions] == \
        [tx.action for tx in ref_chain.transactions]

    # The workload was genuinely dispute-heavy and genuinely overlapped.
    ref_stats, pipe_stats = reference.stats(), pipelined.stats()
    assert ref_stats.disputes_opened >= 6
    assert ref_stats.cache_hits >= 4
    assert ref_stats.status_counts.get("rejected", 0) >= 1
    assert ref_stats.pipelined_drains == 0
    assert pipe_stats.pipelined_drains == 1
    assert pipelined.last_pipeline_stats is not None
    assert pipelined.last_pipeline_stats.items == -(-total // CYCLE_CAPACITY)
    # The chain lane serializes settle+dispute; hash+execute are lane-free.
    lanes = {s.name: s.lane for s in pipelined.last_pipeline_stats.stages}
    assert lanes == {"hash": None, "execute": None,
                     "settle": "chain", "dispute": "chain"}


def test_reference_and_pipelined_stats_account_the_same_work(
        tenant_graphs, mlp_thresholds, mlp_input_factory):
    """Both drains complete every request and agree on protocol counters."""
    reference = _drive(tenant_graphs, mlp_thresholds, mlp_input_factory,
                       pipelined=False)
    pipelined = _drive(tenant_graphs, mlp_thresholds, mlp_input_factory,
                       pipelined=True)
    ref_stats, pipe_stats = reference.stats(), pipelined.stats()
    for field in ("requests_submitted", "requests_completed", "cache_hits",
                  "disputes_opened", "dispute_rounds", "status_counts"):
        assert getattr(pipe_stats, field) == getattr(ref_stats, field), field
    # Busy accounting exists on both paths; the modeled critical path of the
    # pipelined drain can only be at or below its own total demand.
    assert ref_stats.busy_cpu_s > 0
    assert pipe_stats.busy_cpu_s > 0
    assert pipe_stats.pipeline_critical_s <= pipe_stats.busy_cpu_s
    assert set(pipe_stats.stage_busy_s) == {"hash", "execute",
                                            "settle", "dispute"}
