"""Unit tests for the zk cost baseline and the end-to-end TAOSession lifecycle."""

import numpy as np
import pytest

from repro.protocol.lifecycle import TAOSession
from repro.protocol.zk_baseline import ZkProverModel, compare_with_tao, estimate_zk_cost
from repro.tensorlib.device import DEVICE_FLEET


# ---------------------------------------------------------------------------
# zk baseline
# ---------------------------------------------------------------------------

def test_zk_cost_scales_with_flops():
    small = estimate_zk_cost("small", forward_flops=1e9, nonlinear_elements=1e6)
    large = estimate_zk_cost("large", forward_flops=1e11, nonlinear_elements=1e8)
    assert large.proving_seconds > small.proving_seconds * 50
    assert large.prover_memory_gb > small.prover_memory_gb
    assert not small.preserves_float_semantics


def test_zk_proving_dwarfs_tao_costs():
    comparison = compare_with_tao(
        "bert-like", forward_flops=19.47e9, nonlinear_elements=5e7,
        tao_optimistic_overhead_fraction=0.003, tao_dispute_cost_ratio=1.06,
        tao_dispute_gas=1_984_400,
    )
    assert comparison.zk.proving_seconds > 60.0          # tens of seconds at minimum
    assert comparison.latency_advantage > 10.0           # orders of magnitude in TAO's favour
    assert comparison.tao_preserves_float_semantics
    assert not comparison.zk.preserves_float_semantics
    assert comparison.tao_extra_memory_gb == 0.0


def test_custom_prover_model():
    fast_prover = ZkProverModel(name="fast", prover_constraints_per_second=1e9)
    estimate = estimate_zk_cost("m", 1e9, 1e6, prover=fast_prover)
    assert estimate.prover == "fast"
    assert estimate.proving_seconds < estimate_zk_cost("m", 1e9, 1e6).proving_seconds


# ---------------------------------------------------------------------------
# TAOSession lifecycle
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def session(mlp_graph, mlp_calibration, mlp_thresholds):
    sess = TAOSession(mlp_graph, threshold_table=mlp_thresholds,
                      calibration_result=mlp_calibration, n_way=3, committee_size=3)
    sess.setup()
    return sess


def test_setup_requires_some_calibration_source(mlp_graph):
    with pytest.raises(ValueError):
        TAOSession(mlp_graph).setup()


def test_run_request_requires_setup(mlp_graph, mlp_inputs):
    sess = TAOSession(mlp_graph, threshold_table=None, calibration_inputs=[mlp_inputs])
    proposer_like = object()
    with pytest.raises(RuntimeError):
        sess.run_request(mlp_inputs, proposer_like)  # type: ignore[arg-type]


def test_honest_request_finalizes(session, mlp_input_factory):
    proposer = session.make_honest_proposer("honest-1", DEVICE_FLEET[1])
    report = session.run_request(mlp_input_factory(41), proposer)
    assert report.final_status == "finalized"
    assert report.finalized_optimistically
    assert not report.challenged
    assert not report.proposer_cheated


def test_cheating_request_is_slashed(session, mlp_graph, mlp_input_factory):
    cheater = session.make_adversarial_proposer("cheater-1", {"relu": np.float32(0.03)},
                                                DEVICE_FLEET[1])
    report = session.run_request(mlp_input_factory(42), cheater)
    assert report.challenged
    assert report.final_status == "proposer_slashed"
    assert report.proposer_cheated
    assert report.dispute.localized_operator == "relu"
    assert report.dispute.statistics.gas_used > 0


def test_forced_challenge_on_honest_result_slashes_challenger(session, mlp_input_factory):
    proposer = session.make_honest_proposer("honest-2", DEVICE_FLEET[0])
    challenger = session.make_challenger("eager-challenger", DEVICE_FLEET[2])
    report = session.run_request(mlp_input_factory(43), proposer, challenger=challenger,
                                 force_challenge=True)
    assert report.challenged
    assert report.final_status == "challenger_slashed"
    assert not report.proposer_cheated


def test_session_reuses_committed_model_for_many_requests(session, mlp_input_factory):
    proposer = session.make_honest_proposer("honest-3", DEVICE_FLEET[3])
    statuses = set()
    for i in range(3):
        report = session.run_request(mlp_input_factory(100 + i), proposer)
        statuses.add(report.final_status)
    assert statuses == {"finalized"}


def test_setup_with_calibration_inputs(mlp_graph, mlp_input_factory):
    sess = TAOSession(mlp_graph,
                      calibration_inputs=[mlp_input_factory(7000 + i) for i in range(3)],
                      n_way=2, committee_size=1)
    commitment = sess.setup()
    assert commitment.num_operators == mlp_graph.num_operators
    assert sess.thresholds is not None
    assert len(sess.committee) == 1
