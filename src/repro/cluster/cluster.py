"""Sharded TAO cluster: consistent-hash routing, concurrent shard workers,
failover re-dispatch.

:class:`TAOCluster` fronts N independent
:class:`~repro.protocol.service.TAOService` shards that settle on one shared
:class:`~repro.protocol.chain.SimulatedChain` (each shard behind its own
:class:`~repro.protocol.chain.ShardChainView` clock).  The cluster implements
the same :class:`~repro.protocol.service.ServiceCore` contract as a single
service, and is built so that sharding is **observationally transparent**:
the same request schedule produces byte-identical per-request verdicts and an
exactly equal ledger (per-account balances and minted total) whether it runs
through one ``TAOService``, a 1-shard cluster, or an N-shard cluster with
failover injected — the equivalence pinned by
``tests/test_cluster_equivalence.py``.

**Routing.**  Tenants (not individual requests) are the routing unit: a
model is homed on the shard owning its commitment digest on a
:class:`~repro.cluster.ring.ConsistentHashRing`.  Every request for a model
follows it, so per-model session reuse, engine plans, batch certification
and the content-addressed result cache all stay shard-local and stay hot.
(``routing="random"`` sprays requests across shard-local replicas instead —
the locality baseline the scaling benchmark reports against.)

**Concurrency.**  :meth:`TAOCluster.process` drains all shards with pending
work through a ``ThreadPoolExecutor``, one worker per shard, each worker
holding its shard's lock.  Shards share only lock-protected state (the
settlement ledger, the hash cache); protocol time is per-shard, so one
shard's finalization sweep can never lapse a sibling's challenge windows.

**Failover.**  When a shard is administratively drained, or a tenant's
standing proposer is slashed mid-window, the tenant fails over to the ring's
next-node: queued requests are withdrawn and re-dispatched to the fallback
shard, and the tenant entry migrates whole (session, roles, clone
accounting) so not a single ledger unit is minted or lost by the move.  On a
proposer slash the tenant's result cache is invalidated — a poisoned verdict
memoized from the slashed proposer cannot survive the migration — and the
standing proposer is re-provisioned on the same account and device.
Ring resize (:meth:`add_shard` / :meth:`remove_shard`) migrates exactly the
tenants whose ring arcs moved, deterministically.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.calibration.calibrator import CalibrationConfig, Calibrator
from repro.calibration.thresholds import ThresholdTable
from repro.cluster.ring import ConsistentHashRing
from repro.cluster.shard import Shard
from repro.graph.graph import GraphModule
from repro.merkle.cache import HashCache
from repro.merkle.commitments import commit_model
from repro.protocol.chain import ShardChainView, SimulatedChain
from repro.protocol.coordinator import Coordinator
from repro.protocol.lifecycle import TAOSession
from repro.protocol.roles import Challenger, HonestProposer, Proposer
from repro.protocol.service import (
    ModelEntry,
    ServiceCore,
    ServiceRequest,
    ServiceStats,
    TAOService,
)
from repro.tensorlib.device import DEVICE_FLEET, DeviceProfile
from repro.utils.rng import seeded_rng
from repro.utils.timing import now


@dataclass
class ClusterModel:
    """Cluster-level placement record for one tenant."""

    name: str
    #: Routing key: the model commitment digest (weights+graph+thresholds).
    key: bytes
    #: Shard currently serving the tenant (follows failover/rebalance).
    shard_id: str
    #: Shard the ring originally homed the tenant on.
    home_id: str
    failovers: int = 0


@dataclass
class ClusterRequest:
    """Cluster-level record tracking one request across (re-)dispatches."""

    cluster_id: int
    model_name: str
    service: TAOService
    local_id: int
    shard_id: str
    redispatched: int = 0

    def resolve(self) -> ServiceRequest:
        return self.service.request(self.local_id)


@dataclass
class ClusterStats(ServiceStats):
    """Fleet-wide statistics: aggregated shard stats + cluster accounting.

    ``processing_time_s`` (inherited) is the *sum* of shard busy time — the
    sequential-equivalent cost.  ``critical_path_s`` is the max over shards:
    the wall-clock a deployment with one worker core per shard observes, and
    the scaling metric the cluster benchmark gates on.  ``measured_wall_s``
    is the wall-clock actually measured on this host's thread pool.
    """

    num_shards: int = 0
    failovers: int = 0
    redispatched_requests: int = 0
    critical_path_s: float = 0.0
    measured_wall_s: float = 0.0
    shard_busy_s: Dict[str, float] = field(default_factory=dict)
    shard_processed: Dict[str, int] = field(default_factory=dict)

    @property
    def parallel_throughput_rps(self) -> float:
        if self.critical_path_s <= 0:
            return 0.0
        return self.requests_completed / self.critical_path_s

    @property
    def measured_throughput_rps(self) -> float:
        if self.measured_wall_s <= 0:
            return 0.0
        return self.requests_completed / self.measured_wall_s

    def as_dict(self) -> Dict[str, object]:
        out = super().as_dict()
        out.update({
            "num_shards": self.num_shards,
            "failovers": self.failovers,
            "redispatched_requests": self.redispatched_requests,
            "critical_path_s": self.critical_path_s,
            "measured_wall_s": self.measured_wall_s,
            "parallel_throughput_rps": self.parallel_throughput_rps,
            "measured_throughput_rps": self.measured_throughput_rps,
            "shard_busy_s": dict(self.shard_busy_s),
            "shard_processed": dict(self.shard_processed),
        })
        return out


class ClusterError(RuntimeError):
    """Raised on invalid cluster operations."""


class TAOCluster(ServiceCore):
    """N TAOService shards behind consistent-hash routing with failover."""

    def __init__(
        self,
        num_shards: int = 4,
        chain: Optional[SimulatedChain] = None,
        devices: Sequence[DeviceProfile] = DEVICE_FLEET,
        max_batch: int = 32,
        enable_batching: bool = True,
        enable_result_cache: bool = True,
        result_cache_size: int = 256,
        alpha: float = 3.0,
        n_way: int = 2,
        committee_size: int = 3,
        leaf_path: str = "routed",
        hash_cache: Optional[HashCache] = None,
        routing: str = "hash",
        routing_seed: int = 0,
        vnodes: int = 64,
        max_workers: Optional[int] = None,
        coordinator_factory: Optional[Callable[[ShardChainView], Coordinator]] = None,
        enable_pipeline: bool = True,
        cycle_capacity: Optional[int] = None,
        pipeline_queue_depth: int = 2,
    ) -> None:
        if num_shards < 1:
            raise ValueError("a cluster needs at least one shard")
        if routing not in ("hash", "random"):
            raise ValueError(f"unknown routing policy {routing!r}")
        self.chain = chain or SimulatedChain()
        self.devices = tuple(devices)
        self.max_batch = int(max_batch)
        self.enable_batching = bool(enable_batching)
        self.enable_result_cache = bool(enable_result_cache)
        self.result_cache_size = int(result_cache_size)
        self.alpha = float(alpha)
        self.n_way = int(n_way)
        self.committee_size = int(committee_size)
        self.leaf_path = leaf_path
        self.hash_cache = hash_cache or HashCache()
        self.routing = routing
        self.max_workers = max_workers
        self.coordinator_factory = coordinator_factory
        #: Per-shard drain pipelining: each shard overlaps its own cycles'
        #: hash/execute/settle/dispute stages (chain appends stay in
        #: protocol order through the shard's serial chain lane), on top of
        #: the fleet-level shard concurrency.
        self.enable_pipeline = bool(enable_pipeline)
        self.cycle_capacity = None if cycle_capacity is None else int(cycle_capacity)
        self.pipeline_queue_depth = int(pipeline_queue_depth)
        self._route_rng = seeded_rng(routing_seed)

        self.ring = ConsistentHashRing(vnodes=vnodes)
        self.shards: Dict[str, Shard] = {}
        #: Removed shards, kept for fleet-wide settlement and invariants.
        self.retired_shards: List[Shard] = []
        self._models: Dict[str, ClusterModel] = {}
        self._requests: Dict[int, ClusterRequest] = {}
        #: (id(service), local request id) -> cluster request id.
        self._by_local: Dict[Tuple[int, int], int] = {}
        self.failovers = 0
        self.redispatched_requests = 0
        self.measured_wall_s = 0.0
        #: Persistent drain pool, created lazily on the first multi-shard
        #: drain and shut down by :meth:`close` — repeated ``process()``
        #: calls reuse the same threads instead of spawning a pool per call.
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_workers = 0

        for index in range(num_shards):
            self.add_shard(f"shard-{index}")

    # ------------------------------------------------------------------
    # Shard membership and ring resize
    # ------------------------------------------------------------------

    def add_shard(self, shard_id: Optional[str] = None) -> Shard:
        """Add a shard and migrate exactly the tenants its ring arcs won."""
        if shard_id is None:
            shard_id = f"shard-{len(self.shards) + len(self.retired_shards)}"
        if shard_id in self.shards or \
                any(s.shard_id == shard_id for s in self.retired_shards):
            # Retired ids stay reserved: reusing one would alias the shard
            # tag on the shared log and double-count the retired
            # coordinator's per-dispute gas.
            raise ClusterError(f"shard {shard_id!r} already exists")
        view = ShardChainView(self.chain, shard_id)
        coordinator = (self.coordinator_factory(view) if self.coordinator_factory
                       else Coordinator(chain=view))
        service = TAOService(
            coordinator=coordinator,
            devices=self.devices,
            max_batch=self.max_batch,
            enable_batching=self.enable_batching,
            enable_result_cache=self.enable_result_cache,
            result_cache_size=self.result_cache_size,
            alpha=self.alpha,
            n_way=self.n_way,
            committee_size=self.committee_size,
            leaf_path=self.leaf_path,
            hash_cache=self.hash_cache,
            enable_pipeline=self.enable_pipeline,
            cycle_capacity=self.cycle_capacity,
            pipeline_queue_depth=self.pipeline_queue_depth,
        )
        shard = Shard(shard_id=shard_id, service=service, chain_view=view)
        self.shards[shard_id] = shard
        self.ring.add_node(shard_id)
        self._rebalance()
        return shard

    def remove_shard(self, shard_id: str) -> None:
        """Remove a shard: its tenants migrate to their new ring owners.

        The shard's coordinator (and every task/dispute it resolved) is
        retired, not discarded — fleet-wide settlement and invariant checks
        keep seeing its history on the shared chain.
        """
        shard = self._shard(shard_id)
        if len(self.shards) == 1:
            raise ClusterError("cannot remove the last shard")
        self.ring.remove_node(shard_id)
        for record in self._records_on(shard_id):
            self._migrate(record, self.ring.node_for(record.key),
                          invalidate_cache=False)
        del self.shards[shard_id]
        self.retired_shards.append(shard)

    def drain_shard(self, shard_id: str) -> None:
        """Administratively drain a shard: fail its tenants over, re-dispatch
        every queued request to each tenant's ring successor."""
        shard = self._shard(shard_id)
        if self.routing != "hash":
            raise ClusterError("failover requires hash routing")
        if not shard.drained and len(self.ring.live_nodes) <= 1:
            raise ClusterError(
                "cannot drain the last live shard: its tenants would have "
                "no failover target"
            )
        self.ring.drain(shard_id)
        shard.drained = True
        for record in self._records_on(shard_id):
            self.fail_over(record.name, reason="drain")

    def undrain_shard(self, shard_id: str) -> None:
        """Return a drained shard to service; ring placement is restored."""
        shard = self._shard(shard_id)
        self.ring.undrain(shard_id)
        shard.drained = False
        self._rebalance()

    def _shard(self, shard_id: str) -> Shard:
        try:
            return self.shards[shard_id]
        except KeyError:
            raise ClusterError(f"unknown shard {shard_id!r}") from None

    def _records_on(self, shard_id: str) -> List[ClusterModel]:
        return [record for record in self._models.values()
                if record.shard_id == shard_id]

    def _rebalance(self) -> None:
        """Align every tenant with its ring owner (deterministic migration)."""
        for record in self._models.values():
            target = self.ring.node_for(record.key)
            if target != record.shard_id:
                self._migrate(record, target, invalidate_cache=False)

    # ------------------------------------------------------------------
    # Tenant management
    # ------------------------------------------------------------------

    def register_model(
        self,
        graph_module: GraphModule,
        calibration_inputs: Optional[Iterable[Dict[str, np.ndarray]]] = None,
        threshold_table: Optional[ThresholdTable] = None,
        **session_kwargs,
    ) -> TAOSession:
        """Register one tenant; it is homed by its commitment digest.

        The commitment is built once here (and memoized through the shared
        hash cache, so the home shard's session setup reuses it) because the
        routing key *is* the commitment digest: placement is a pure function
        of what was committed, reproducible across processes and restarts.
        """
        name = graph_module.name
        if name in self._models:
            raise ClusterError(f"model {name!r} is already registered")
        if threshold_table is None:
            if calibration_inputs is None:
                raise ValueError(
                    "register_model requires calibration inputs or a threshold table"
                )
            calibrator = Calibrator(CalibrationConfig(devices=self.devices))
            calibration = calibrator.calibrate(graph_module, calibration_inputs)
            threshold_table = ThresholdTable.from_calibration(calibration,
                                                              alpha=self.alpha)
        commitment = commit_model(
            graph_module, threshold_table,
            metadata={"alpha": self.alpha,
                      "num_operators": graph_module.num_operators},
            cache=self.hash_cache,
            # The committee envelope (threaded to the session below) is part
            # of what was committed, so it participates in the routing key —
            # placement stays a pure function of the commitment digest.
            committee_envelope=session_kwargs.get("committee_envelope"),
        )
        key = commitment.digest()
        home = self.ring.node_for(key)
        session = self.shards[home].service.register_model(
            graph_module, threshold_table=threshold_table, **session_kwargs,
        )
        if self.routing == "random":
            # Locality baseline: replicate the tenant on every other shard so
            # random per-request routing has somewhere to land.  Each replica
            # funds its own roles — random routing is a measurement rig, not
            # a ledger-equivalent deployment.
            for shard_id, shard in self.shards.items():
                if shard_id != home:
                    shard.service.register_model(
                        graph_module, threshold_table=threshold_table,
                        **session_kwargs,
                    )
        self._models[name] = ClusterModel(name=name, key=key, shard_id=home,
                                          home_id=home)
        return session

    def model(self, name: str) -> ModelEntry:
        record = self._record(name)
        return self.shards[record.shard_id].service.model(name)

    def _record(self, name: str) -> ClusterModel:
        try:
            return self._models[name]
        except KeyError:
            raise KeyError(f"model {name!r} is not registered with this cluster") \
                from None

    @property
    def model_names(self) -> List[str]:
        return sorted(self._models)

    def location(self, name: str) -> str:
        """Shard currently serving ``name``."""
        return self._record(name).shard_id

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------

    def submit(
        self,
        model_name: str,
        inputs: Mapping[str, np.ndarray],
        proposer: Optional[Proposer] = None,
        force_challenge: bool = False,
        challenger: Optional[Challenger] = None,
    ) -> int:
        record = self._record(model_name)
        if self.routing == "random":
            live = [s for s in sorted(self.shards) if not self.shards[s].drained]
            shard_id = live[int(self._route_rng.integers(0, len(live)))]
        else:
            shard_id = record.shard_id
        shard = self.shards[shard_id]
        local_id = shard.service.submit(
            model_name, inputs, proposer=proposer,
            force_challenge=force_challenge, challenger=challenger,
        )
        cluster_id = len(self._requests)
        request = ClusterRequest(
            cluster_id=cluster_id, model_name=model_name,
            service=shard.service, local_id=local_id, shard_id=shard_id,
        )
        self._requests[cluster_id] = request
        self._by_local[(id(shard.service), local_id)] = cluster_id
        return cluster_id

    def request(self, request_id: int) -> ServiceRequest:
        return self._requests[request_id].resolve()

    def cluster_request(self, request_id: int) -> ClusterRequest:
        return self._requests[request_id]

    @property
    def pending_count(self) -> int:
        return sum(shard.service.pending_count for shard in self.shards.values())

    @property
    def active_shard_count(self) -> int:
        """Shards currently accepting traffic (not drained)."""
        return sum(1 for shard in self.shards.values() if not shard.drained)

    def queue_depths(self) -> Dict[str, int]:
        """Pending requests per shard."""
        return {shard_id: shard.service.pending_count
                for shard_id, shard in self.shards.items()}

    def queue_ages(self, at_s: Optional[float] = None) -> List[float]:
        """Ages (seconds) of every queued request fleet-wide, oldest first."""
        reference = now() if at_s is None else float(at_s)
        ages: List[float] = []
        for shard in self.shards.values():
            ages.extend(shard.service.queue_ages(at_s=reference))
        return sorted(ages, reverse=True)

    def queued_model_names(self) -> List[str]:
        """Distinct tenants with queued work anywhere on the fleet."""
        names: set = set()
        for shard in self.shards.values():
            names.update(shard.service.queued_model_names())
        return sorted(names)

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------

    def process(self, max_requests: Optional[int] = None) -> List[ServiceRequest]:
        """Drain every shard's queue; shards with work run concurrently.

        With ``max_requests`` the drain degrades to a deterministic
        sequential sweep (shard-id order) so the cap is exact fleet-wide.
        Returns the processed requests in cluster submission order.
        """
        started = now()
        drained: List[Tuple[Shard, List[ServiceRequest]]] = []
        if max_requests is not None:
            remaining = int(max_requests)
            for shard_id in sorted(self.shards):
                if remaining <= 0:
                    break
                shard = self.shards[shard_id]
                if shard.service.pending_count == 0:
                    continue
                processed = self._drain(shard, remaining)
                remaining -= len(processed)
                drained.append((shard, processed))
        else:
            busy = [shard for _, shard in sorted(self.shards.items())
                    if shard.service.pending_count > 0]
            if len(busy) <= 1:
                drained = [(shard, self._drain(shard, None)) for shard in busy]
            else:
                pool = self._drain_pool(self.max_workers or len(busy))
                futures = [(shard, pool.submit(self._drain, shard, None))
                           for shard in busy]
                drained = [(shard, future.result())
                           for shard, future in futures]
        self.measured_wall_s += now() - started

        self._detect_slashed_proposers(drained)

        ordered: List[Tuple[int, ServiceRequest]] = []
        for shard, batch in drained:
            for request in batch:
                cluster_id = self._by_local.get(
                    (id(shard.service), request.request_id), -1)
                ordered.append((cluster_id, request))
        ordered.sort(key=lambda item: item[0])
        return [request for _, request in ordered]

    def _drain_pool(self, workers: int) -> ThreadPoolExecutor:
        """The cluster's persistent drain executor (lazily created).

        Idle drain threads are cheap, but a pool spawned per ``process()``
        call is not free either — under the measured-wall benchmarks the
        per-call spawn showed up at every drain.  The pool is created on the
        first multi-shard drain, grown (recreated) if a ring resize raises
        the shard count past its capacity, and shut down by :meth:`close`.
        """
        if self._executor is not None and self._executor_workers < workers:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="cluster-drain")
            self._executor_workers = workers
        return self._executor

    def close(self) -> None:
        """Shut down the persistent drain executor (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._executor_workers = 0

    def _drain(self, shard: Shard, max_requests: Optional[int]) -> List[ServiceRequest]:
        with shard.lock:
            # Worker busy time is thread CPU time, not wall: on a host with
            # fewer cores than workers, wall time inside a worker mostly
            # measures the other workers; CPU time is the shard's own demand,
            # and max over shards is the fleet's critical path on a
            # one-core-per-worker deployment.  The service measures it stage
            # by stage (``ServiceStats.busy_cpu_s``) because a pipelined
            # drain spreads its CPU over stage worker threads — the calling
            # worker's own clock would miss all of it.
            stats = shard.service.stats_record
            busy_before = stats.busy_cpu_s
            processed = shard.service.process(max_requests)
            shard.busy_s += stats.busy_cpu_s - busy_before
            shard.processed += len(processed)
            return processed

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------

    def fail_over(self, model_name: str, reason: str = "drain") -> str:
        """Move a tenant to its ring successor; re-dispatch queued requests.

        ``reason="proposer_slashed"`` additionally invalidates the tenant's
        content-addressed result cache (its entries memoize verdicts vouched
        by the slashed proposer) and re-provisions the standing proposer on
        the same ledger account and device, so execution — and therefore
        every commitment — is unchanged.
        """
        if self.routing != "hash":
            raise ClusterError("failover requires hash routing")
        record = self._record(model_name)
        target = self.ring.successor(record.key, exclude={record.shard_id})
        self._migrate(record, target,
                      invalidate_cache=(reason == "proposer_slashed"))
        record.failovers += 1
        self.failovers += 1
        return target

    def _migrate(self, record: ClusterModel, target_id: str,
                 invalidate_cache: bool) -> None:
        source = self.shards[record.shard_id]
        target = self.shards[target_id]
        with source.lock:
            withdrawn = source.service.withdraw_queued(record.name)
            entry = source.service.detach_model(record.name)
        if invalidate_cache:
            # Scoped invalidation: only this tenant's memo dies; sibling
            # tenants on either shard keep their hot caches.
            entry.result_cache.clear()
            entry.proposer = HonestProposer(
                entry.proposer.name, entry.proposer.device,
                hash_cache=self.hash_cache,
            )
        with target.lock:
            target.service.adopt_model(entry)
        record.shard_id = target_id
        for request in withdrawn:
            old_key = (id(source.service), request.request_id)
            cluster_id = self._by_local.pop(old_key, None)
            local_id = target.service.submit(
                record.name, request.inputs, proposer=request.proposer,
                force_challenge=request.force_challenge,
                challenger=request.challenger,
            )
            if cluster_id is not None:
                tracked = self._requests[cluster_id]
                tracked.service = target.service
                tracked.local_id = local_id
                tracked.shard_id = target_id
                tracked.redispatched += 1
                self._by_local[(id(target.service), local_id)] = cluster_id
            self.redispatched_requests += 1

    def _detect_slashed_proposers(
            self, drained: List[Tuple[Shard, List[ServiceRequest]]]) -> None:
        """Standing-proposer slash => automatic failover for that tenant."""
        if self.routing != "hash":
            return
        hit: Dict[str, str] = {}
        for shard, batch in drained:
            for request in batch:
                report = request.report
                if report is None or report.dispute is None:
                    continue
                if not report.dispute.proposer_cheated:
                    continue
                record = self._models.get(request.model_name)
                if record is None or record.shard_id != shard.shard_id:
                    continue
                entry = shard.service.model(request.model_name)
                if report.task.proposer == entry.proposer.name:
                    hit[request.model_name] = shard.shard_id
        for model_name in sorted(hit):
            if len(self.ring.live_nodes) > 1:
                self.fail_over(model_name, reason="proposer_slashed")
            else:
                # Nowhere to go: still quarantine the poisoned cache and
                # re-provision the proposer in place.
                entry = self.model(model_name)
                entry.result_cache.clear()
                entry.proposer = HonestProposer(
                    entry.proposer.name, entry.proposer.device,
                    hash_cache=self.hash_cache,
                )

    # ------------------------------------------------------------------
    # Fleet-wide settlement and introspection
    # ------------------------------------------------------------------

    def coordinators(self) -> List[Coordinator]:
        """Every shard coordinator, active and retired."""
        return [shard.service.coordinator
                for shard in list(self.shards.values()) + self.retired_shards]

    def stats(self) -> ClusterStats:
        all_shards = list(self.shards.values()) + self.retired_shards
        base = ServiceStats.aggregate(s.service.stats() for s in all_shards)
        stats = ClusterStats(
            # Cluster-level submission count: a re-dispatched request is one
            # request, however many shards saw it.
            requests_submitted=len(self._requests),
            requests_completed=base.requests_completed,
            cache_hits=base.cache_hits,
            batched_requests=base.batched_requests,
            disputes_opened=base.disputes_opened,
            dispute_rounds=base.dispute_rounds,
            processing_time_s=base.processing_time_s,
            busy_cpu_s=base.busy_cpu_s,
            # Shards drain concurrently, so the fleet's modeled pipeline
            # bottleneck is the slowest shard's, not the sum the sequential
            # aggregate() computes (summing would destroy the per-shard
            # overlap signal: busy/critical would cancel to ~1x).
            pipeline_critical_s=max(
                (s.service.stats_record.pipeline_critical_s
                 for s in all_shards), default=0.0),
            pipelined_drains=base.pipelined_drains,
            stage_busy_s=base.stage_busy_s,
            latencies_s=base.latencies_s,
            status_counts=base.status_counts,
            num_shards=len(self.shards),
            failovers=self.failovers,
            redispatched_requests=self.redispatched_requests,
            critical_path_s=max((s.busy_s for s in all_shards), default=0.0),
            measured_wall_s=self.measured_wall_s,
            shard_busy_s={s.shard_id: s.busy_s for s in all_shards},
            shard_processed={s.shard_id: s.processed for s in all_shards},
        )
        return stats
