"""Multi-process shard fleet: measured wall-clock parallelism for the service.

The thread cluster (:mod:`repro.cluster`) models parallel speedup under one
GIL; this package measures it.  :class:`~repro.fleet.fleet.ProcessFleet`
fronts N worker processes — each a full
:class:`~repro.protocol.service.TAOService` shard
(:mod:`repro.fleet.worker`) — over a length-prefixed RPC transport that
speaks only the repo's canonical codec (:mod:`repro.fleet.transport`; no
pickle on the data path).  Tenants are homed by commitment digest on the
same consistent-hash ring the cluster uses, and all settlement flows back to
one shared parent-side chain as nested ``chain_call`` messages
(:mod:`repro.fleet.chainproxy`), keeping balances, minted totals and
shard-tagged dispute gas exactly equal to the in-process paths.  The worker
pool doubles as a chunk-parallel Merkle commitment backend with a
byte-identical root.
"""

from repro.fleet.fleet import (
    CoordinatorSnapshot,
    FleetError,
    FleetModel,
    FleetStats,
    ProcessFleet,
    WorkerError,
    WorkerHandle,
)
from repro.fleet.journal import JournalDivergence, ShardJournal
from repro.fleet.transport import (
    MessageChannel,
    TransportClosed,
    TransportTimeout,
    channel_pair,
)
from repro.fleet.worker import worker_main

__all__ = [
    "CoordinatorSnapshot",
    "FleetError",
    "FleetModel",
    "FleetStats",
    "JournalDivergence",
    "MessageChannel",
    "ProcessFleet",
    "ShardJournal",
    "TransportClosed",
    "TransportTimeout",
    "WorkerError",
    "WorkerHandle",
    "channel_pair",
    "worker_main",
]
