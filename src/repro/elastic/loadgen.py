"""Open-loop load generation: seeded arrival schedules over a tenant zoo.

Closed-loop drivers (submit, drain, repeat) can never overload the service —
each iteration waits for completion, so queues stay shallow and an autoscaler
has nothing to react to.  The open-loop generator decouples *arrival* from
*completion*: it materializes the entire arrival schedule up front from a
piecewise rate function (:class:`RateSchedule` — constant, step spike, ramp),
assigns each arrival a tenant drawn from a heavy-tail Zipf popularity (the
few-hot-many-cold shape of multi-tenant serving), and a payload seed from a
small per-tenant pool so the content-addressed result cache sees realistic
repeat traffic.

Everything is a pure function of the seed: arrival times come from a Poisson
process simulated by *thinning* against the schedule's peak rate, tenants and
payloads from generators derived with :func:`~repro.utils.rng.derive_seed`.
Same seed, same schedule — in any process, on any host (pinned by the
cross-process determinism test).  Forced-challenge arrivals draw payload
seeds from a disjoint range so a forced request can never alias a cached
honest verdict (a cache hit would skip its dispute and break differential
exactness between runs that disagree only on scaling decisions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.rng import derive_seed, seeded_rng

#: Forced-challenge arrivals draw payload seeds at this offset so they can
#: never collide with the per-tenant honest payload pool.
_FORCED_SEED_OFFSET = 10_000


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: when, which tenant, which payload."""

    index: int
    time_s: float
    tenant: str
    payload_seed: int
    force_challenge: bool = False


@dataclass(frozen=True)
class RatePhase:
    """One piece of a piecewise arrival-rate function."""

    duration_s: float
    start_rate: float
    end_rate: float

    def rate_at(self, offset_s: float) -> float:
        if self.duration_s <= 0:
            return self.start_rate
        frac = min(max(offset_s / self.duration_s, 0.0), 1.0)
        return self.start_rate + (self.end_rate - self.start_rate) * frac


class RateSchedule:
    """Piecewise arrival rate (requests/second) over a finite horizon."""

    def __init__(self, phases: Sequence[RatePhase]) -> None:
        if not phases:
            raise ValueError("a schedule needs at least one phase")
        for phase in phases:
            if phase.duration_s <= 0:
                raise ValueError("phase durations must be positive")
            if min(phase.start_rate, phase.end_rate) < 0:
                raise ValueError("rates must be non-negative")
        self.phases = tuple(phases)

    @classmethod
    def constant(cls, rate: float, duration_s: float) -> "RateSchedule":
        return cls([RatePhase(duration_s, rate, rate)])

    @classmethod
    def step(cls, base_rate: float, peak_rate: float, spike_at_s: float,
             spike_duration_s: float, duration_s: float) -> "RateSchedule":
        """Base load, a square spike, then base load again."""
        if not 0 < spike_at_s < spike_at_s + spike_duration_s < duration_s:
            raise ValueError("spike must fall strictly inside the horizon")
        return cls([
            RatePhase(spike_at_s, base_rate, base_rate),
            RatePhase(spike_duration_s, peak_rate, peak_rate),
            RatePhase(duration_s - spike_at_s - spike_duration_s,
                      base_rate, base_rate),
        ])

    @classmethod
    def ramp(cls, start_rate: float, end_rate: float,
             duration_s: float) -> "RateSchedule":
        return cls([RatePhase(duration_s, start_rate, end_rate)])

    @property
    def duration_s(self) -> float:
        return sum(phase.duration_s for phase in self.phases)

    @property
    def peak_rate(self) -> float:
        return max(max(phase.start_rate, phase.end_rate)
                   for phase in self.phases)

    def rate_at(self, time_s: float) -> float:
        """Instantaneous rate; zero outside the horizon."""
        if time_s < 0:
            return 0.0
        offset = time_s
        for phase in self.phases:
            if offset <= phase.duration_s:
                return phase.rate_at(offset)
            offset -= phase.duration_s
        return 0.0


class OpenLoopGenerator:
    """Materializes a seeded arrival schedule for a tenant zoo.

    ``process="poisson"`` simulates a non-homogeneous Poisson process by
    thinning against the schedule's peak rate; ``process="uniform"`` spaces
    arrivals deterministically at the instantaneous rate (useful when a test
    wants exact per-phase arrival counts).  ``force_challenge_every=k``
    flips every k-th arrival (1-based) into a forced challenge with a
    payload seed from the disjoint forced range.
    """

    def __init__(
        self,
        schedule: RateSchedule,
        tenants: Sequence[str],
        seed: int,
        zipf_exponent: float = 1.1,
        payload_pool: int = 4,
        payload_seed_base: int = 500,
        force_challenge_every: int = 0,
        process: str = "poisson",
    ) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        if payload_pool < 1:
            raise ValueError("payload_pool must be >= 1")
        if process not in ("poisson", "uniform"):
            raise ValueError(f"unknown arrival process {process!r}")
        self.schedule = schedule
        self.tenants = tuple(tenants)
        self.seed = int(seed)
        self.zipf_exponent = float(zipf_exponent)
        self.payload_pool = int(payload_pool)
        self.payload_seed_base = int(payload_seed_base)
        self.force_challenge_every = int(force_challenge_every)
        self.process = process
        # Zipf popularity over tenant *rank*: weight(rank) = 1 / rank^s.
        ranks = np.arange(1, len(self.tenants) + 1, dtype=np.float64)
        weights = 1.0 / np.power(ranks, self.zipf_exponent)
        self._cdf = np.cumsum(weights / weights.sum())

    # ------------------------------------------------------------------

    def _arrival_times(self) -> List[float]:
        rng = seeded_rng(derive_seed(self.seed, "elastic", "arrivals"))
        times: List[float] = []
        horizon = self.schedule.duration_s
        if self.process == "uniform":
            t = 0.0
            while t < horizon:
                rate = self.schedule.rate_at(t)
                if rate <= 0:
                    # Skip forward to the next phase boundary.
                    t = self._next_boundary(t)
                    continue
                times.append(t)
                t += 1.0 / rate
            return times
        peak = self.schedule.peak_rate
        if peak <= 0:
            return times
        t = 0.0
        while True:
            # Thinning: candidate arrivals at the peak rate, accepted with
            # probability rate(t)/peak — a textbook non-homogeneous Poisson.
            t += float(rng.exponential(1.0 / peak))
            if t >= horizon:
                return times
            if float(rng.random()) * peak <= self.schedule.rate_at(t):
                times.append(t)

    def _next_boundary(self, time_s: float) -> float:
        edge = 0.0
        for phase in self.schedule.phases:
            edge += phase.duration_s
            if edge > time_s:
                return edge
        return self.schedule.duration_s

    def generate(self) -> List[Arrival]:
        """The full seeded arrival schedule, sorted by time."""
        times = self._arrival_times()
        tenant_rng = seeded_rng(derive_seed(self.seed, "elastic", "tenants"))
        payload_rng = seeded_rng(derive_seed(self.seed, "elastic", "payloads"))
        arrivals: List[Arrival] = []
        for index, time_s in enumerate(times):
            rank = int(np.searchsorted(self._cdf, float(tenant_rng.random()),
                                       side="right"))
            tenant = self.tenants[min(rank, len(self.tenants) - 1)]
            forced = (self.force_challenge_every > 0
                      and (index + 1) % self.force_challenge_every == 0)
            if forced:
                payload_seed = (self.payload_seed_base + _FORCED_SEED_OFFSET
                                + index)
            else:
                payload_seed = (self.payload_seed_base
                                + int(payload_rng.integers(0, self.payload_pool)))
            arrivals.append(Arrival(index=index, time_s=float(time_s),
                                    tenant=tenant, payload_seed=payload_seed,
                                    force_challenge=forced))
        return arrivals

    def tenant_shares(self, arrivals: Sequence[Arrival]) -> List[Tuple[str, float]]:
        """Observed per-tenant traffic share, most popular first."""
        counts = {tenant: 0 for tenant in self.tenants}
        for arrival in arrivals:
            counts[arrival.tenant] += 1
        total = max(1, len(arrivals))
        return sorted(((tenant, count / total)
                       for tenant, count in counts.items()),
                      key=lambda item: (-item[1], item[0]))


def schedule_fingerprint(arrivals: Sequence[Arrival]) -> List[Tuple]:
    """A codec-friendly, order-preserving projection of a schedule.

    Used by the determinism pins: two generators agree iff their
    fingerprints are equal element-wise.
    """
    return [(a.index, round(a.time_s, 12), a.tenant, a.payload_seed,
             a.force_challenge) for a in arrivals]
