"""Policy units for the autoscaler and the SLO tracker.

The policy (:meth:`Autoscaler.evaluate`) is a pure function of
:class:`LoadSignals`, so every trigger, guard and pacing rule is pinned
against a fake target — no service, no processes.  The stateful ``step``
layer (cooldown, scale-down patience) is exercised the same way.
"""

from __future__ import annotations

import pytest

from repro.elastic import (
    Autoscaler,
    AutoscalerConfig,
    LoadSignals,
    SLOConfig,
    SLOTracker,
)
from repro.protocol.service import ServiceStats


class FakeTarget:
    """Scriptable scaling target that records every verb call."""

    def __init__(self, workers: int = 1, max_workers: int = 8) -> None:
        self.workers = workers
        self.max_workers = max_workers
        self.calls = []

    def worker_count(self) -> int:
        return self.workers

    def scale_up(self):
        if self.workers >= self.max_workers:
            return None
        self.workers += 1
        self.calls.append("up")
        return f"w{self.workers}"

    def scale_down(self):
        if self.workers <= 1:
            return None
        self.workers -= 1
        self.calls.append("down")
        return f"w{self.workers + 1}"


def _config(**overrides) -> AutoscalerConfig:
    defaults = dict(min_workers=1, max_workers=4, queue_high_per_worker=8.0,
                    queue_low_per_worker=1.0, cooldown_ticks=1,
                    scale_down_patience=3)
    defaults.update(overrides)
    return AutoscalerConfig(**defaults)


class TestEvaluate:
    def test_scales_up_on_queue_depth(self):
        scaler = Autoscaler(FakeTarget(), _config())
        verdict = scaler.evaluate(LoadSignals(queue_depth=20, live_workers=2))
        assert verdict.action == "up"
        assert "queue depth" in verdict.reason

    def test_holds_within_thresholds(self):
        scaler = Autoscaler(FakeTarget(), _config())
        verdict = scaler.evaluate(LoadSignals(queue_depth=6, live_workers=2))
        assert verdict.action == "hold"

    def test_scales_up_on_queue_age_burn(self):
        config = _config(slo=SLOConfig(p99_latency_s=1.0, queue_age_slo_s=2.0))
        scaler = Autoscaler(FakeTarget(), config)
        verdict = scaler.evaluate(LoadSignals(
            queue_depth=2, live_workers=2, oldest_queue_age_s=5.0))
        assert verdict.action == "up"
        assert "queue-age burn" in verdict.reason

    def test_holds_at_max_workers(self):
        scaler = Autoscaler(FakeTarget(), _config(max_workers=2))
        verdict = scaler.evaluate(LoadSignals(queue_depth=100, live_workers=2))
        assert verdict.action == "hold"
        assert verdict.reason == "at max_workers"

    def test_tenant_limited_backlog_holds(self):
        # Two hot tenants, two workers, one of them starving: another
        # worker could not receive traffic, so the policy holds.
        scaler = Autoscaler(FakeTarget(), _config())
        verdict = scaler.evaluate(LoadSignals(
            queue_depth=40, live_workers=2, queued_tenants=2,
            starved_workers=1))
        assert verdict.action == "hold"
        assert verdict.reason == "tenant-limited backlog"

    def test_tenant_spread_backlog_scales(self):
        scaler = Autoscaler(FakeTarget(), _config())
        verdict = scaler.evaluate(LoadSignals(
            queue_depth=40, live_workers=2, queued_tenants=5,
            starved_workers=1))
        assert verdict.action == "up"

    def test_scales_down_when_calm(self):
        scaler = Autoscaler(FakeTarget(), _config())
        verdict = scaler.evaluate(LoadSignals(queue_depth=0, live_workers=3))
        assert verdict.action == "down"

    def test_never_scales_below_min(self):
        scaler = Autoscaler(FakeTarget(), _config(min_workers=2, max_workers=4))
        verdict = scaler.evaluate(LoadSignals(queue_depth=0, live_workers=2))
        assert verdict.action == "hold"


class TestStep:
    def test_scale_down_needs_patience(self):
        target = FakeTarget(workers=3)
        scaler = Autoscaler(target, _config(scale_down_patience=3))
        calm = LoadSignals(queue_depth=0, live_workers=3)
        assert scaler.step(calm, tick=0).action == "hold"
        assert scaler.step(calm, tick=1).action == "hold"
        decision = scaler.step(calm, tick=2)
        assert decision.action == "down"
        assert target.workers == 2

    def test_load_blip_resets_patience(self):
        target = FakeTarget(workers=3)
        scaler = Autoscaler(target, _config(scale_down_patience=2))
        calm = LoadSignals(queue_depth=0, live_workers=3)
        busy = LoadSignals(queue_depth=12, live_workers=3)
        scaler.step(calm, tick=0)
        scaler.step(busy, tick=1)  # a blip (still under high-water) resets the streak
        scaler.step(calm, tick=2)
        decision = scaler.step(calm, tick=3)
        assert decision.action == "down"
        assert target.workers == 2

    def test_cooldown_skips_next_evaluation(self):
        target = FakeTarget(workers=1)
        scaler = Autoscaler(target, _config(cooldown_ticks=1))
        heavy = LoadSignals(queue_depth=100, live_workers=1)
        first = scaler.step(heavy, tick=0)
        assert first.action == "up" and target.workers == 2
        second = scaler.step(LoadSignals(queue_depth=100, live_workers=2),
                             tick=1)
        assert second.action == "hold"
        assert second.reason.startswith("cooldown")
        third = scaler.step(LoadSignals(queue_depth=100, live_workers=2),
                            tick=2)
        assert third.action == "up" and target.workers == 3

    def test_decisions_are_recorded_with_ticks(self):
        target = FakeTarget(workers=1)
        scaler = Autoscaler(target, _config())
        scaler.step(LoadSignals(queue_depth=100, live_workers=1), tick=7)
        assert [d.tick for d in scaler.decisions] == [7]
        assert scaler.decisions[0].workers_after == 2


class TestConfigValidation:
    def test_worker_bounds(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_workers=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_workers=5, max_workers=4)

    def test_queue_thresholds_ordered(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(queue_low_per_worker=9.0,
                             queue_high_per_worker=8.0)

    def test_slo_config_validation(self):
        with pytest.raises(ValueError):
            SLOConfig(p99_latency_s=0.0)
        with pytest.raises(ValueError):
            SLOConfig(p99_latency_s=1.0, queue_age_slo_s=-1.0)


class TestSLOTracker:
    def test_phase_observation_and_rows(self):
        tracker = SLOTracker(SLOConfig(p99_latency_s=0.5))
        for latency in (0.1, 0.2, 0.3):
            tracker.observe(latency, queue_s=latency / 2,
                            service_s=latency / 2)
        rows = tracker.quantile_rows()
        assert [row[0] for row in rows] == ["total", "queue", "service"]
        assert all(row[1] == 3 for row in rows)

    def test_p99_burn(self):
        tracker = SLOTracker(SLOConfig(p99_latency_s=0.1))
        tracker.observe(1.0)
        assert tracker.p99_burn() > 1.0
        calm = SLOTracker(SLOConfig(p99_latency_s=10.0))
        calm.observe(0.01)
        assert calm.p99_burn() < 1.0
        assert SLOTracker().p99_burn() == 0.0

    def test_queue_age_burn(self):
        tracker = SLOTracker(SLOConfig(p99_latency_s=1.0, queue_age_slo_s=2.0))
        assert tracker.queue_age_burn(4.0) == pytest.approx(2.0)
        assert SLOTracker().queue_age_burn(4.0) == 0.0

    def test_backpressure_counters(self):
        tracker = SLOTracker()
        tracker.observe_queue_ages([])
        assert tracker.backpressure_ticks == 0
        tracker.observe_queue_ages([0.5, 0.2])
        assert tracker.backpressure_ticks == 1
        tracker.admission_rejected(3)
        assert tracker.admission_rejections == 3

    def test_merge_sums_counters_and_digests(self):
        a = SLOTracker()
        a.observe(0.1)
        a.admission_rejected(2)
        a.observe_queue_ages([1.0])
        b = SLOTracker()
        b.observe(0.3)
        b.admission_rejected(1)
        a.merge(b)
        assert a.phases["total"].count == 2
        assert a.admission_rejections == 3
        assert a.backpressure_ticks == 1

    def test_from_stats_bridges_existing_accounting(self):
        stats = ServiceStats()
        stats.latencies_s.extend([0.05, 0.10, 0.15])
        tracker = SLOTracker.from_stats(stats,
                                        SLOConfig(p99_latency_s=1.0))
        assert tracker.phases["total"].count == 3
        assert tracker.p99_burn() < 1.0
        assert "phases" in tracker.as_dict()
