"""The shard worker process: one full TAOService behind the RPC transport.

:func:`worker_main` is the process entry point.  It is deliberately a plain
module-level function with zero import-time side effects, so the module is
importable under the ``spawn`` start method (where the child re-imports it
fresh) exactly as under ``fork``.

Boot protocol: the first message on the channel is the parent's hello/config
(shard id, block interval, service constructor knobs, the dotted path of the
actor-spec module).  The worker builds its stack —
:class:`~repro.fleet.chainproxy.ChainClient` →
:class:`~repro.protocol.coordinator.Coordinator` →
:class:`~repro.protocol.service.TAOService` — acknowledges, and enters the
request loop.  Each request is one ``{"op": ...}`` message answered by one
``{"kind": "response"}``; in between, chain settlement flows *backwards*
over the same channel as ``chain_call`` messages (the parent serves them
inline while waiting for the response, so one channel carries the whole
nested conversation deterministically).

Every reply carries plain codec values; the structured report/coordinator
payloads built here are re-materialized parent-side by
:mod:`repro.fleet.fleet` into snapshot objects the invariant checker and the
simulation runner can walk exactly as they walk in-process coordinators.
"""

from __future__ import annotations

import importlib
import socket
from typing import Any, Dict, Optional

from repro.calibration.committee import CommitteeEnvelopeProfile
from repro.calibration.thresholds import ThresholdTable
from repro.fleet.chainproxy import ChainClient
from repro.fleet.transport import MessageChannel, TransportClosed
from repro.fleet.wire import graph_from_payload, stats_to_payload
from repro.merkle.tree import hash_leaf
from repro.protocol.coordinator import Coordinator
from repro.protocol.service import ServiceRequest, TAOService

#: TAOService constructor knobs the hello message may carry.
_SERVICE_KNOBS = (
    "max_batch", "enable_batching", "enable_result_cache", "result_cache_size",
    "alpha", "n_way", "committee_size", "leaf_path", "enable_pipeline",
    "cycle_capacity", "pipeline_queue_depth",
)


def _report_payload(request: ServiceRequest) -> Optional[Dict[str, Any]]:
    report = request.report
    if report is None:
        return None
    dispute = None
    if report.dispute is not None:
        outcome = report.dispute
        statistics = outcome.statistics
        dispute = {
            "dispute_id": int(outcome.dispute_id),
            "task_id": int(outcome.task_id),
            "proposer_cheated": bool(outcome.proposer_cheated),
            "winner": outcome.winner,
            "localized_operator": outcome.localized_operator,
            "resolved_by_timeout": bool(outcome.resolved_by_timeout),
            "statistics": {
                "rounds": int(statistics.rounds),
                "dispute_time_s": float(statistics.dispute_time_s),
                "merkle_checks": int(statistics.merkle_checks),
                "challenger_flops": float(statistics.challenger_flops),
                "adjudication_flops": float(statistics.adjudication_flops),
                "gas_used": int(statistics.gas_used),
            },
        }
    commitment = report.result.commitment
    return {
        "task_id": int(report.task.task_id),
        "challenged": bool(report.challenged),
        "finalized_optimistically": bool(report.finalized_optimistically),
        "commitment": {
            "value": bytes(commitment.value),
            "input_hash": bytes(commitment.input_hash),
            "output_hash": bytes(commitment.output_hash),
            "meta": dict(commitment.meta),
        },
        "verification": [bool(r.exceeded) for r in report.verification_reports],
        "dispute": dispute,
    }


def _request_payload(request: ServiceRequest) -> Dict[str, Any]:
    return {
        "local_id": int(request.request_id),
        "status": request.status,
        "error": request.error,
        "cache_hit": bool(request.cache_hit),
        "batched": bool(request.batched),
        "report": _report_payload(request),
    }


def _coordinator_payload(coordinator: Coordinator) -> Dict[str, Any]:
    tasks = []
    for task in coordinator.tasks.values():
        tasks.append({
            "task_id": int(task.task_id),
            "model_name": task.model_name,
            "status": task.status.value,
            "dispute_id": None if task.dispute_id is None else int(task.dispute_id),
        })
    disputes = []
    for dispute in coordinator.disputes.values():
        disputes.append({
            "dispute_id": int(dispute.dispute_id),
            "task_id": int(dispute.task_id),
            "phase": dispute.phase.value,
            "adjudication_path": dispute.adjudication_path,
            "gas_used": int(coordinator.dispute_gas(dispute.dispute_id)),
        })
    return {"tasks": tasks, "disputes": disputes}


class _WorkerState:
    """The per-process stack plus the op handlers over it."""

    def __init__(self, channel: MessageChannel, hello: Dict[str, Any]) -> None:
        self.channel = channel
        self.chain = ChainClient(channel, hello["shard_id"],
                                 block_interval_s=hello.get("block_interval_s", 12.0))
        self.coordinator = Coordinator(chain=self.chain)
        # Write-ahead journal: ship every (state, event) transition record
        # to the parent as a one-way frame.  The coordinator emits it before
        # the transition's first chain call, and the channel is FIFO, so the
        # parent always journals the transition before applying any of its
        # chain mutations.
        self.coordinator.journal = self._emit_journal
        knobs = {key: hello["service"][key]
                 for key in _SERVICE_KNOBS if key in hello["service"]}
        if knobs.get("cycle_capacity") is not None:
            knobs["cycle_capacity"] = int(knobs["cycle_capacity"])
        self.service = TAOService(coordinator=self.coordinator, **knobs)
        self.actors = importlib.import_module(hello["actor_module"])

    def _emit_journal(self, entry: Dict[str, Any]) -> None:
        # Stamp the transition with the sequence id of its first upcoming
        # chain call.  A recovered worker re-traverses the interrupted
        # command deterministically and re-emits the same records with the
        # same stamps, so the parent journal can drop the duplicates while
        # still catching any divergence.
        entry = dict(entry)
        entry["chain_seq"] = self.chain.next_seq
        self.channel.send({"kind": "journal", "entry": entry})

    # -- op handlers -----------------------------------------------------

    def op_register(self, message: Dict[str, Any]) -> Dict[str, Any]:
        graph_module = graph_from_payload(message["graph"])
        thresholds = ThresholdTable.from_dict(message["thresholds"])
        session_kwargs: Dict[str, Any] = {}
        if message.get("committee_envelope") is not None:
            session_kwargs["committee_envelope"] = \
                CommitteeEnvelopeProfile.from_dict(message["committee_envelope"])
        if message.get("colluding_majority") is not None:
            session_kwargs["committee_factory"] = \
                self.actors.build_committee_factory(int(message["colluding_majority"]))
        session = self.service.register_model(
            graph_module,
            threshold_table=thresholds,
            fund_accounts=bool(message.get("fund_accounts", True)),
            **session_kwargs,
        )
        entry = self.service.model(graph_module.name)
        entry.challenger_clones = int(message.get("challenger_clones", 0))
        return {"digest": session.model_commitment.digest()}

    def op_submit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        model_name = message["model"]
        proposer = challenger = None
        if message.get("proposer") is not None:
            proposer = self.actors.build_proposer(self.service, model_name,
                                                  message["proposer"])
        if message.get("challenger") is not None:
            challenger = self.actors.build_challenger(self.service, model_name,
                                                      message["challenger"])
        local_id = self.service.submit(
            model_name, message["inputs"], proposer=proposer,
            force_challenge=bool(message.get("force_challenge", False)),
            challenger=challenger,
        )
        return {"local_id": int(local_id)}

    def op_process(self, message: Dict[str, Any]) -> Dict[str, Any]:
        max_requests = message.get("max_requests")
        processed = self.service.process(
            max_requests=None if max_requests is None else int(max_requests))
        return {
            "results": [_request_payload(request) for request in processed],
            "stats": stats_to_payload(self.service.stats()),
            "coordinator": _coordinator_payload(self.coordinator),
            "clones": [[name, int(self.service.model(name).challenger_clones)]
                       for name in self.service.model_names],
        }

    def op_withdraw(self, message: Dict[str, Any]) -> Dict[str, Any]:
        withdrawn = self.service.withdraw_queued(message["model"])
        return {"local_ids": [int(request.request_id) for request in withdrawn]}

    def op_detach(self, message: Dict[str, Any]) -> Dict[str, Any]:
        entry = self.service.detach_model(message["model"])
        return {"challenger_clones": int(entry.challenger_clones)}

    def op_stats(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return {"stats": stats_to_payload(self.service.stats()),
                "coordinator": _coordinator_payload(self.coordinator)}

    def op_hash_leaves(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return {"hashes": [hash_leaf(payload)
                           for payload in message["payloads"]]}

    def op_ping(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return {"shard_id": self.chain.shard_id}

    def op_shutdown(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self.service.close()
        return {}


def worker_main(child_socket: socket.socket) -> None:
    """Run one shard worker over ``child_socket`` until shutdown or EOF."""
    channel = MessageChannel(child_socket)
    try:
        hello = channel.recv()
    except TransportClosed:
        channel.close()
        return
    try:
        state = _WorkerState(channel, hello)
    except Exception as exc:  # noqa: BLE001 - boot errors go to the parent
        try:
            channel.send({"kind": "response", "ok": False,
                          "error": f"{type(exc).__name__}: {exc}"})
        except TransportClosed:
            pass
        channel.close()
        return
    channel.send({"kind": "response", "ok": True,
                  "value": {"shard_id": state.chain.shard_id}})

    try:
        while True:
            try:
                message = channel.recv()
            except TransportClosed:
                break
            op = message.get("op")
            handler = getattr(state, f"op_{op}", None)
            if handler is None:
                channel.send({"kind": "response", "ok": False,
                              "error": f"unknown op {op!r}"})
                continue
            try:
                value = handler(message)
            except TransportClosed:
                break
            except Exception as exc:  # noqa: BLE001 - report, keep serving
                channel.send({"kind": "response", "ok": False,
                              "error": f"{type(exc).__name__}: {exc}"})
                continue
            channel.send({"kind": "response", "ok": True, "value": value})
            if op == "shutdown":
                break
    finally:
        channel.close()
