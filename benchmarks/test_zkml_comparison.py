"""Sec. 6.3: comparison between TAO and zkML-style proof systems.

The paper's comparison is qualitative because zk pipelines arithmetize the
model over finite fields: proving takes tens of seconds to tens of minutes
per inference with up to ~1 TB of prover RAM, while TAO runs at native speed
(+0.3% determinism overhead) and pays roughly one extra forward pass per
dispute.  This benchmark reproduces the comparison with an explicit zk cost
model driven by each mini-model's measured forward FLOPs scaled up to the
paper's full-size workloads.
"""

from __future__ import annotations

from repro.graph.interpreter import Interpreter
from repro.protocol.zk_baseline import compare_with_tao
from repro.tensorlib.device import DEVICE_FLEET

from benchmarks.reporting import emit_table

#: Full-scale forward FLOPs from the paper's Table 3 (1e9 units) and rough
#: nonlinear-element counts, used to put the zk estimate at paper scale.
PAPER_SCALE = {
    "bert_mini": ("BERT-large", 19.47e9, 5.0e7),
    "diffusion_mini": ("Stable Diffusion v1-5", 802.49e9, 8.0e8),
    "qwen_mini": ("Qwen3-8B", 485.09e9, 4.0e8),
    "resnet_mini": ("ResNet-152", 23.09e9, 9.0e7),
}


def test_zkml_comparison(benchmark, bench_all):
    def run():
        rows = {}
        for name, (paper_name, paper_flops, nonlinear) in PAPER_SCALE.items():
            bench_model = bench_all[name]
            trace = Interpreter(DEVICE_FLEET[0]).run(
                bench_model.graph, bench_model.inputs(seed=11), count_flops=True)
            rows[name] = {
                "paper_name": paper_name,
                "mini_forward_flops": trace.flops.total,
                "comparison": compare_with_tao(
                    paper_name, paper_flops, nonlinear,
                    tao_optimistic_overhead_fraction=0.003,
                    tao_dispute_cost_ratio=1.24,
                    tao_dispute_gas=2_000_000,
                ),
            }
        return rows

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, entry in results.items():
        comparison = entry["comparison"]
        zk = comparison.zk
        rows.append([
            entry["paper_name"],
            zk.proving_seconds / 60.0,
            zk.prover_memory_gb,
            zk.verify_seconds,
            comparison.tao_optimistic_overhead_fraction * 100.0,
            comparison.tao_dispute_cost_ratio,
            comparison.tao_dispute_gas / 1e3,
            "no" if not zk.preserves_float_semantics else "yes",
            "yes" if comparison.tao_preserves_float_semantics else "no",
        ])
    emit_table(
        "zkml_comparison",
        "TAO vs zkML-style proving (analytic zk cost model at paper scale)",
        ["model", "zk proving (min)", "zk prover RAM (GB)", "zk verify (s)",
         "TAO optimistic overhead (%)", "TAO dispute cost (x fwd)", "TAO dispute gas (k)",
         "zk preserves FP32", "TAO preserves FP32"],
        rows,
        notes=("Paper (Sec. 6.3): zk proving ranges from tens of seconds (CNNs) to tens of "
               "minutes (LLM-scale) with up to ~1 TB prover RAM and quantized semantics; TAO "
               "adds 0.3% latency optimistically and ~1 forward pass per dispute while "
               "preserving native FP32 kernels."),
    )

    for name, entry in results.items():
        comparison = entry["comparison"]
        assert comparison.zk.proving_seconds > 30.0
        assert comparison.latency_advantage > 10.0
        assert comparison.zk.prover_memory_gb > 1.0
    # LLM-scale proving is in the tens of minutes; prover memory approaches the
    # ~TB regime the paper quotes.
    qwen = results["qwen_mini"]["comparison"].zk
    assert qwen.proving_seconds > 600.0
    assert qwen.prover_memory_gb > 100.0
