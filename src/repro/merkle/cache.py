"""Content-addressed hash and commitment caching (service hot path).

Phase 0/1 of the protocol hash the same bytes over and over when a model
serves a stream of requests: every weight tensor is re-canonicalized per
``commit_model`` call, dispute records hash the same boundary tensors on the
proposer side (building ``h_In``/``h_Out``) and again on the challenger side
(verifying them), and identical request payloads are re-hashed per
submission.  :class:`HashCache` memoizes those digests:

* **tensor hashes** — keyed by array identity with a strong reference held,
  so a digest can never outlive (or be confused with) the array it was
  computed from.  Commitment inputs are treated as immutable once hashed,
  which every call site in this repository honours (weights are frozen at
  registration, trace values are never written in place).
* **model commitments** — ``commit_model`` results keyed by the identity of
  (graph module, threshold table, metadata), so re-registering the same
  committed model (e.g. one service session per tenant) reuses the Merkle
  trees instead of re-merkleizing every weight.

Uncached tensor hashing additionally streams the canonical serialization
(:func:`~repro.utils.serialization.canonical_array_chunks`) straight into
SHA-256 instead of materializing the full canonical byte string — execution
commitments over large activations hash with zero extra copies.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.utils.serialization import canonical_array_chunks, canonical_json


def streaming_tensor_hash(value: np.ndarray) -> bytes:
    """``H(canon(z))`` computed incrementally (no canonical-bytes copy)."""
    hasher = hashlib.sha256()
    for chunk in canonical_array_chunks(np.asarray(value)):
        hasher.update(chunk)
    return hasher.digest()


class HashCache:
    """Bounded memo of tensor digests and model commitments.

    The tensor memo is identity-keyed: an entry pins the array object it was
    computed from, and a lookup only hits when the candidate *is* that
    object, so recycled ``id()`` values can never alias.  The memo is an LRU
    bounded by ``max_tensors`` entries to keep long-lived services from
    pinning every activation they ever hashed.

    The cache is **thread-safe**: one instance is shared by every shard
    worker of a :class:`~repro.cluster.cluster.TAOCluster` (the committed
    weights are the same arrays fleet-wide, so their digests are computed
    once).  A lock serializes the LRU bookkeeping — ``move_to_end`` /
    ``popitem`` on a shared ``OrderedDict`` corrupt its linked list under
    concurrent mutation — while digests themselves are computed outside the
    lock (two threads racing on the same uncached array both compute the
    same digest; the second store is a harmless overwrite).
    """

    def __init__(self, max_tensors: int = 8192) -> None:
        self.max_tensors = int(max_tensors)
        self._tensors: "OrderedDict[int, Tuple[np.ndarray, bytes]]" = OrderedDict()
        self._model_commitments: Dict[Tuple[int, int, int, str],
                                      Tuple[Any, Any, Any, Any]] = {}
        self.tensor_hits = 0
        self.tensor_misses = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Tensor digests
    # ------------------------------------------------------------------

    def hash_tensor(self, value: np.ndarray) -> bytes:
        arr = np.asarray(value)
        key = id(arr)
        with self._lock:
            entry = self._tensors.get(key)
            if entry is not None and entry[0] is arr:
                self.tensor_hits += 1
                self._tensors.move_to_end(key)
                return entry[1]
            self.tensor_misses += 1
        digest = streaming_tensor_hash(arr)
        with self._lock:
            self._tensors[key] = (arr, digest)
            self._tensors.move_to_end(key)
            while len(self._tensors) > self.max_tensors:
                self._tensors.popitem(last=False)
        return digest

    # ------------------------------------------------------------------
    # Model commitments
    # ------------------------------------------------------------------

    def model_commitment(self, graph_module, threshold_table,
                         metadata: Optional[Dict[str, object]],
                         committee_envelope=None):
        """Return the memoized ``commit_model`` result for this identity tuple.

        Returns ``None`` on a miss; callers build the commitment and store it
        via :meth:`store_model_commitment`.
        """
        key = self._model_key(graph_module, threshold_table, metadata,
                              committee_envelope)
        with self._lock:
            entry = self._model_commitments.get(key)
        if entry is None:
            return None
        held_graph, held_table, held_envelope, commitment = entry
        if (held_graph is graph_module and held_table is threshold_table
                and held_envelope is committee_envelope):
            return commitment
        return None

    def store_model_commitment(self, graph_module, threshold_table,
                               metadata: Optional[Dict[str, object]], commitment,
                               committee_envelope=None) -> None:
        key = self._model_key(graph_module, threshold_table, metadata,
                              committee_envelope)
        with self._lock:
            self._model_commitments[key] = (graph_module, threshold_table,
                                            committee_envelope, commitment)

    @staticmethod
    def _model_key(graph_module, threshold_table,
                   metadata: Optional[Dict[str, object]],
                   committee_envelope=None) -> Tuple[int, int, int, str]:
        # The committee envelope participates in commitment identity the same
        # way the threshold table does: same model committed with and without
        # a leaf envelope must never alias one memo entry.
        return (id(graph_module), id(threshold_table),
                -1 if committee_envelope is None else id(committee_envelope),
                canonical_json(metadata or {}))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "tensor_entries": len(self._tensors),
            "tensor_hits": self.tensor_hits,
            "tensor_misses": self.tensor_misses,
            "model_commitments": len(self._model_commitments),
        }
