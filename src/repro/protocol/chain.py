"""Simulated coordination ledger with gas metering.

The paper instantiates the coordinator as Ethereum smart contracts on the
Holesky testnet and reports coordination cost in kgas (~2M gas per dispute,
Table 3).  TAO itself does not rely on blockchain assumptions, so this
reproduction models the ledger as an in-process object that provides exactly
what the protocol needs from it: an authenticated append-only transaction
log, block timestamps for challenge windows and per-round timeouts, account
balances for bonds/escrow, and a gas schedule so coordination cost can be
accounted the same way the paper reports it.

The gas schedule follows Ethereum's fee rules where they matter for the
accounting (21k base per transaction, 16 gas per non-zero calldata byte) plus
per-action execution surcharges tuned so that a typical 11-13 round dispute
lands near the paper's ~2M gas figure.

**Sharding.**  A :class:`~repro.cluster.cluster.TAOCluster` settles every
shard on one chain: balances, the minted total and the transaction log are
shared fleet-wide (appends and transfers are serialized by an internal lock,
so concurrent shard workers never corrupt the ledger), while each shard holds
a :class:`ShardChainView` with its **own block clock**.  Protocol time is a
per-shard notion — one shard advancing past its challenge windows must never
lapse another shard's still-open windows — so views advance independently and
stamp every transaction they append with their shard id, which is what makes
per-shard gas attribution (:meth:`SimulatedChain.gas_by_shard`) and exact
per-dispute gas accounting across shards possible.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class GasSchedule:
    """Per-action gas model used to meter coordinator interactions."""

    base_tx: int = 21_000
    calldata_per_byte: int = 16
    storage_write: int = 20_000
    #: Execution surcharges per protocol action (rough EVM-footprint analogues).
    action_surcharge: Dict[str, int] = field(default_factory=lambda: {
        "register_model": 60_000,
        "submit_result": 45_000,
        "finalize": 15_000,
        "open_dispute": 70_000,
        "post_partition": 40_000,
        "post_selection": 25_000,
        "request_adjudication": 30_000,
        "post_adjudication": 55_000,
        "prove_input_binding": 35_000,
        "slash": 40_000,
        "committee_vote": 20_000,
        "merkle_check": 6_000,
    })

    def cost(self, action: str, calldata_bytes: int = 0, storage_writes: int = 1,
             merkle_checks: int = 0) -> int:
        surcharge = self.action_surcharge.get(action, 20_000)
        return (
            self.base_tx
            + self.calldata_per_byte * int(calldata_bytes)
            + self.storage_write * int(storage_writes)
            + surcharge
            + self.action_surcharge["merkle_check"] * int(merkle_checks)
        )


@dataclass
class Transaction:
    """One logged coordinator interaction."""

    index: int
    block: int
    timestamp: float
    sender: str
    action: str
    gas_used: int
    payload_bytes: int
    details: Dict[str, object] = field(default_factory=dict)
    #: Shard whose chain view appended this transaction (None outside clusters).
    shard: Optional[str] = None


class SimulatedChain:
    """Append-only transaction log with block time, balances and gas totals."""

    def __init__(self, gas_schedule: Optional[GasSchedule] = None,
                 block_interval_s: float = 12.0) -> None:
        self.gas_schedule = gas_schedule or GasSchedule()
        self.block_interval_s = float(block_interval_s)
        self.block_number = 0
        self.timestamp = 0.0
        self.transactions: List[Transaction] = []
        self.balances: Dict[str, float] = {}
        #: Total value ever minted via :meth:`fund`.  Every other balance
        #: movement is a :meth:`transfer`, so at any point the ledger must
        #: satisfy ``sum(balances.values()) == minted`` — the conservation
        #: invariant the protocol simulator checks after every scenario.
        self.minted = 0.0
        #: Shard tag stamped on this chain's own transactions; None for a
        #: standalone chain, set on :class:`ShardChainView` instances.
        self.shard_id: Optional[str] = None
        #: Serializes ledger mutation (balances/minted/log append) so that
        #: concurrent shard workers settling on one chain stay exact.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def advance_blocks(self, n_blocks: int = 1) -> None:
        if n_blocks < 0:
            raise ValueError("cannot advance a negative number of blocks")
        self.block_number += int(n_blocks)
        self.timestamp += self.block_interval_s * int(n_blocks)

    def advance_time(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        blocks = max(int(seconds // self.block_interval_s), 1)
        self.advance_blocks(blocks)

    # ------------------------------------------------------------------
    # Accounts
    # ------------------------------------------------------------------

    def fund(self, account: str, amount: float) -> None:
        if amount < 0:
            raise ValueError("cannot fund a negative amount")
        with self._lock:
            self.balances[account] = self.balances.get(account, 0.0) + float(amount)
            self.minted += float(amount)

    def fund_once(self, account: str, amount: float) -> bool:
        """Mint ``amount`` into ``account`` only if the account is new.

        Standing-role funding goes through this entry point so that a chain
        *carried across* protocol episodes (the long-horizon campaign driver
        in :mod:`repro.sim.campaign`) keeps its depleted stakes: a proposer
        slashed down over earlier cycles re-enters the next cycle with what
        is left, not a fresh mint.  On a fresh chain every account is new, so
        the behaviour is exactly :meth:`fund` — the seed path is unchanged.
        Returns whether a mint happened.
        """
        if amount < 0:
            raise ValueError("cannot fund a negative amount")
        with self._lock:
            if account in self.balances:
                return False
            self.balances[account] = float(amount)
            self.minted += float(amount)
            return True

    def carry_over(self, balances: Dict[str, float]) -> None:
        """Seed this (fresh) chain with a ledger carried from earlier cycles.

        Accounts are minted in sorted order so the float accumulation of
        ``minted`` is deterministic regardless of the dict's insertion
        history — the campaign determinism pin compares minted totals
        bit-exactly across worker interleavings.
        """
        for account in sorted(balances):
            self.fund(account, balances[account])

    def balance(self, account: str) -> float:
        return self.balances.get(account, 0.0)

    def transfer(self, source: str, destination: str, amount: float) -> None:
        if amount < 0:
            raise ValueError("cannot transfer a negative amount")
        with self._lock:
            # Exact check, no epsilon slack: every equivalence pin in the
            # repo claims bit-exact balance/minted equality, and protocol
            # amounts (fees, bonds, reward splits) are all exactly
            # representable, so a shortfall of any size is a real overdraw.
            if self.balances.get(source, 0.0) < amount:
                raise ValueError(
                    f"insufficient balance: {source} has {self.balances.get(source, 0.0)}, "
                    f"needs {amount}"
                )
            self.balances[source] = self.balances.get(source, 0.0) - amount
            self.balances[destination] = self.balances.get(destination, 0.0) + amount

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def _append(self, clock, sender: str, action: str,
                payload_bytes: int, storage_writes: int, merkle_checks: int,
                details: Optional[Dict[str, object]]) -> Transaction:
        """Build and append one transaction, stamped with ``clock``'s time.

        Shared by the chain itself and every :class:`ShardChainView` over it
        (``clock`` is whichever of the two is submitting), so the gas
        costing, transaction shape and one-block-per-transaction rule exist
        exactly once.
        """
        gas = self.gas_schedule.cost(action, payload_bytes, storage_writes,
                                     merkle_checks)
        with self._lock:
            tx = Transaction(
                index=len(self.transactions),
                block=clock.block_number,
                timestamp=clock.timestamp,
                sender=sender,
                action=action,
                gas_used=gas,
                payload_bytes=int(payload_bytes),
                details=dict(details or {}),
                shard=clock.shard_id,
            )
            self.transactions.append(tx)
        # Every transaction lands in a (new) block to keep timeouts simple.
        clock.advance_blocks(1)
        return tx

    def submit(self, sender: str, action: str, payload_bytes: int = 0,
               storage_writes: int = 1, merkle_checks: int = 0,
               details: Optional[Dict[str, object]] = None) -> Transaction:
        """Record a transaction; returns the logged entry with its gas cost."""
        return self._append(self, sender, action, payload_bytes,
                            storage_writes, merkle_checks, details)

    def append_stamped(self, sender: str, action: str, payload_bytes: int,
                       storage_writes: int, merkle_checks: int,
                       details: Optional[Dict[str, object]],
                       block: int, timestamp: float,
                       shard: Optional[str]) -> Transaction:
        """Append a transaction stamped with an *externally supplied* clock.

        This is the settlement entry point for out-of-process shard workers
        (:mod:`repro.fleet`): the worker owns its shard clock — exactly as a
        :class:`ShardChainView` does in-process — and ships the block height,
        timestamp and shard tag alongside the call, while gas is costed here
        with the chain's own schedule and the append is serialized under the
        chain lock.  No clock is advanced: the remote clock already advanced
        itself by the one-block-per-transaction rule.
        """
        gas = self.gas_schedule.cost(action, payload_bytes, storage_writes,
                                     merkle_checks)
        with self._lock:
            tx = Transaction(
                index=len(self.transactions),
                block=int(block),
                timestamp=float(timestamp),
                sender=sender,
                action=action,
                gas_used=gas,
                payload_bytes=int(payload_bytes),
                details=dict(details or {}),
                shard=shard,
            )
            self.transactions.append(tx)
        return tx

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def total_gas(self, actions: Optional[List[str]] = None,
                  since_index: int = 0) -> int:
        txs = self.transactions[since_index:]
        if actions is not None:
            wanted = set(actions)
            txs = [tx for tx in txs if tx.action in wanted]
        return int(sum(tx.gas_used for tx in txs))

    def gas_by_action(self, since_index: int = 0) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for tx in self.transactions[since_index:]:
            out[tx.action] = out.get(tx.action, 0) + tx.gas_used
        return out

    def gas_by_shard(self, since_index: int = 0) -> Dict[Optional[str], int]:
        """Total gas attributed per shard tag (None = non-cluster traffic)."""
        out: Dict[Optional[str], int] = {}
        for tx in self.transactions[since_index:]:
            out[tx.shard] = out.get(tx.shard, 0) + tx.gas_used
        return out


class ShardChainView:
    """One shard's clock over a shared settlement :class:`SimulatedChain`.

    The view **shares** the parent's ledger — balances, minted total, gas
    schedule and the global transaction log — and **owns** its block number
    and timestamp.  Challenge windows and round timeouts are judged against
    the owning shard's clock, so a shard advancing time past its own windows
    (the finalization sweep at the end of a processing cycle) can never lapse
    a sibling shard's still-open windows.  Every transaction appended through
    the view is stamped with the shard id at the view's local block height.

    The view quacks like a :class:`SimulatedChain` (same method surface), so
    a :class:`~repro.protocol.coordinator.Coordinator` runs over it
    unmodified.
    """

    def __init__(self, parent: SimulatedChain, shard_id: str) -> None:
        self.parent = parent
        self.shard_id = str(shard_id)
        self.block_interval_s = parent.block_interval_s
        self.block_number = 0
        self.timestamp = 0.0

    # -- shared ledger state (delegated) --------------------------------

    @property
    def gas_schedule(self) -> GasSchedule:
        return self.parent.gas_schedule

    @property
    def balances(self) -> Dict[str, float]:
        return self.parent.balances

    @property
    def minted(self) -> float:
        return self.parent.minted

    @property
    def transactions(self) -> List[Transaction]:
        return self.parent.transactions

    def fund(self, account: str, amount: float) -> None:
        self.parent.fund(account, amount)

    def fund_once(self, account: str, amount: float) -> bool:
        return self.parent.fund_once(account, amount)

    def balance(self, account: str) -> float:
        return self.parent.balance(account)

    def transfer(self, source: str, destination: str, amount: float) -> None:
        self.parent.transfer(source, destination, amount)

    # -- per-shard protocol time (the chain's own rules, on this clock) ----

    advance_blocks = SimulatedChain.advance_blocks
    advance_time = SimulatedChain.advance_time

    # -- transactions ------------------------------------------------------

    def submit(self, sender: str, action: str, payload_bytes: int = 0,
               storage_writes: int = 1, merkle_checks: int = 0,
               details: Optional[Dict[str, object]] = None) -> Transaction:
        """Append a shard-stamped transaction to the shared log."""
        return self.parent._append(self, sender, action, payload_bytes,
                                   storage_writes, merkle_checks, details)

    # -- accounting (fleet-wide, delegated) --------------------------------

    def total_gas(self, actions: Optional[List[str]] = None,
                  since_index: int = 0) -> int:
        return self.parent.total_gas(actions, since_index)

    def gas_by_action(self, since_index: int = 0) -> Dict[str, int]:
        return self.parent.gas_by_action(since_index)

    def gas_by_shard(self, since_index: int = 0) -> Dict[Optional[str], int]:
        return self.parent.gas_by_shard(since_index)

    def shard_gas(self) -> int:
        """Gas of this shard's own transactions."""
        return self.gas_by_shard().get(self.shard_id, 0)
