"""Normalization and softmax operators.

LayerNorm / GroupNorm / RMSNorm compute their statistics with device-ordered
reductions, so the per-operator error distributions the paper calibrates for
transformers come out of these kernels.  BatchNorm is implemented in
inference mode (running statistics are parameters), which is how the paper's
ResNet-152 workload runs it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ops.registry import OpSpec, register_op
from repro.tensorlib.device import DeviceProfile
from repro.tensorlib.flops import normalization_flops, softmax_flops
from repro.tensorlib.kernels import device_mean, device_sum


# ---------------------------------------------------------------------------
# softmax
# ---------------------------------------------------------------------------

def _softmax_forward(device: DeviceProfile, x, *, axis: int = -1) -> np.ndarray:
    x32 = np.asarray(x, dtype=np.float32)
    ax = axis % x32.ndim
    m = x32.max(axis=ax, keepdims=True)
    z = (x32 - m).astype(np.float32)
    e = np.exp(z).astype(np.float32)
    s = device_sum(e, device, axis=ax, keepdims=True)
    return (e / s).astype(np.float32)


def _softmax_vjp(device, grad_out, out, x, *, axis: int = -1):
    out64 = np.asarray(out, dtype=np.float64)
    grad = np.asarray(grad_out, dtype=np.float64)
    ax = axis % out64.ndim
    dot = (grad * out64).sum(axis=ax, keepdims=True)
    return (out64 * (grad - dot),)


# ---------------------------------------------------------------------------
# layer_norm
# ---------------------------------------------------------------------------

def _layer_norm_forward(device: DeviceProfile, x, weight, bias, *, eps: float = 1e-5) -> np.ndarray:
    """LayerNorm over the last dimension with affine parameters."""
    x32 = np.asarray(x, dtype=np.float32)
    mean = device_mean(x32, device, axis=-1, keepdims=True)
    centered = (x32 - mean).astype(np.float32)
    var = device_mean((centered * centered).astype(np.float32), device, axis=-1, keepdims=True)
    inv_std = (np.float32(1.0) / np.sqrt(var + np.float32(eps))).astype(np.float32)
    normed = (centered * inv_std).astype(np.float32)
    w32 = np.asarray(weight, dtype=np.float32)
    b32 = np.asarray(bias, dtype=np.float32)
    return (normed * w32 + b32).astype(np.float32)


def _layer_norm_vjp(device, grad_out, out, x, weight, bias, *, eps: float = 1e-5):
    x64 = np.asarray(x, dtype=np.float64)
    w64 = np.asarray(weight, dtype=np.float64)
    grad = np.asarray(grad_out, dtype=np.float64)
    d = x64.shape[-1]
    mean = x64.mean(axis=-1, keepdims=True)
    centered = x64 - mean
    var = (centered ** 2).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normed = centered * inv_std

    grad_normed = grad * w64
    grad_var = (grad_normed * centered * -0.5 * inv_std ** 3).sum(axis=-1, keepdims=True)
    grad_mean = (-grad_normed * inv_std).sum(axis=-1, keepdims=True) + \
        grad_var * (-2.0 / d) * centered.sum(axis=-1, keepdims=True)
    grad_x = grad_normed * inv_std + grad_var * 2.0 / d * centered + grad_mean / d

    reduce_axes = tuple(range(grad.ndim - 1))
    grad_w = (grad * normed).sum(axis=reduce_axes)
    grad_b = grad.sum(axis=reduce_axes)
    return grad_x, grad_w, grad_b


# ---------------------------------------------------------------------------
# rms_norm (Qwen/LLaMA-style)
# ---------------------------------------------------------------------------

def _rms_norm_forward(device: DeviceProfile, x, weight, *, eps: float = 1e-6) -> np.ndarray:
    x32 = np.asarray(x, dtype=np.float32)
    mean_sq = device_mean((x32 * x32).astype(np.float32), device, axis=-1, keepdims=True)
    inv_rms = (np.float32(1.0) / np.sqrt(mean_sq + np.float32(eps))).astype(np.float32)
    return (x32 * inv_rms * np.asarray(weight, dtype=np.float32)).astype(np.float32)


def _rms_norm_vjp(device, grad_out, out, x, weight, *, eps: float = 1e-6):
    x64 = np.asarray(x, dtype=np.float64)
    w64 = np.asarray(weight, dtype=np.float64)
    grad = np.asarray(grad_out, dtype=np.float64)
    d = x64.shape[-1]
    mean_sq = (x64 ** 2).mean(axis=-1, keepdims=True)
    inv_rms = 1.0 / np.sqrt(mean_sq + eps)
    grad_scaled = grad * w64
    dot = (grad_scaled * x64).sum(axis=-1, keepdims=True)
    grad_x = grad_scaled * inv_rms - x64 * (inv_rms ** 3) * dot / d
    reduce_axes = tuple(range(grad.ndim - 1))
    grad_w = (grad * x64 * inv_rms).sum(axis=reduce_axes)
    return grad_x, grad_w


# ---------------------------------------------------------------------------
# batch_norm (inference mode)
# ---------------------------------------------------------------------------

def _batch_norm_forward(device: DeviceProfile, x, weight, bias, running_mean, running_var, *,
                        eps: float = 1e-5) -> np.ndarray:
    x32 = np.asarray(x, dtype=np.float32)
    shape = (1, -1) + (1,) * (x32.ndim - 2)
    mean = np.asarray(running_mean, dtype=np.float32).reshape(shape)
    var = np.asarray(running_var, dtype=np.float32).reshape(shape)
    w32 = np.asarray(weight, dtype=np.float32).reshape(shape)
    b32 = np.asarray(bias, dtype=np.float32).reshape(shape)
    inv_std = (np.float32(1.0) / np.sqrt(var + np.float32(eps))).astype(np.float32)
    return ((x32 - mean) * inv_std * w32 + b32).astype(np.float32)


def _batch_norm_vjp(device, grad_out, out, x, weight, bias, running_mean, running_var, *,
                    eps: float = 1e-5):
    grad = np.asarray(grad_out, dtype=np.float64)
    x64 = np.asarray(x, dtype=np.float64)
    shape = (1, -1) + (1,) * (x64.ndim - 2)
    var = np.asarray(running_var, dtype=np.float64).reshape(shape)
    mean = np.asarray(running_mean, dtype=np.float64).reshape(shape)
    w64 = np.asarray(weight, dtype=np.float64).reshape(shape)
    inv_std = 1.0 / np.sqrt(var + eps)
    grad_x = grad * w64 * inv_std
    reduce_axes = (0,) + tuple(range(2, x64.ndim))
    normed = (x64 - mean) * inv_std
    grad_w = (grad * normed).sum(axis=reduce_axes)
    grad_b = grad.sum(axis=reduce_axes)
    # No gradient into the running statistics (inference-mode constants).
    return grad_x, grad_w, grad_b, None, None


# ---------------------------------------------------------------------------
# group_norm
# ---------------------------------------------------------------------------

def _group_norm_forward(device: DeviceProfile, x, weight, bias, *, num_groups: int,
                        eps: float = 1e-5) -> np.ndarray:
    x32 = np.asarray(x, dtype=np.float32)
    n, c = x32.shape[:2]
    spatial = x32.shape[2:]
    g = int(num_groups)
    if c % g != 0:
        raise ValueError(f"group_norm: channels {c} not divisible by num_groups {g}")
    grouped = x32.reshape((n, g, c // g) + spatial)
    reduce_axes = tuple(range(2, grouped.ndim))
    mean = device_mean(grouped, device, axis=reduce_axes, keepdims=True)
    centered = (grouped - mean).astype(np.float32)
    var = device_mean((centered * centered).astype(np.float32), device,
                      axis=reduce_axes, keepdims=True)
    inv_std = (np.float32(1.0) / np.sqrt(var + np.float32(eps))).astype(np.float32)
    normed = (centered * inv_std).astype(np.float32).reshape(x32.shape)
    shape = (1, c) + (1,) * len(spatial)
    w32 = np.asarray(weight, dtype=np.float32).reshape(shape)
    b32 = np.asarray(bias, dtype=np.float32).reshape(shape)
    return (normed * w32 + b32).astype(np.float32)


def _group_norm_vjp(device, grad_out, out, x, weight, bias, *, num_groups: int, eps: float = 1e-5):
    x64 = np.asarray(x, dtype=np.float64)
    grad = np.asarray(grad_out, dtype=np.float64)
    n, c = x64.shape[:2]
    spatial = x64.shape[2:]
    g = int(num_groups)
    shape = (1, c) + (1,) * len(spatial)
    w64 = np.asarray(weight, dtype=np.float64).reshape(shape)

    grouped = x64.reshape((n, g, c // g) + spatial)
    reduce_axes = tuple(range(2, grouped.ndim))
    m = float(np.prod([grouped.shape[a] for a in reduce_axes]))
    mean = grouped.mean(axis=reduce_axes, keepdims=True)
    centered = grouped - mean
    var = (centered ** 2).mean(axis=reduce_axes, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normed_g = centered * inv_std

    grad_normed = (grad * w64).reshape(grouped.shape)
    grad_var = (grad_normed * centered * -0.5 * inv_std ** 3).sum(axis=reduce_axes, keepdims=True)
    grad_mean = (-grad_normed * inv_std).sum(axis=reduce_axes, keepdims=True)
    grad_grouped = grad_normed * inv_std + grad_var * 2.0 / m * centered + grad_mean / m
    grad_x = grad_grouped.reshape(x64.shape)

    normed = normed_g.reshape(x64.shape)
    reduce_full = (0,) + tuple(range(2, x64.ndim))
    grad_w = (grad * normed).sum(axis=reduce_full)
    grad_b = grad.sum(axis=reduce_full)
    return grad_x, grad_w, grad_b


register_op(OpSpec("softmax", _softmax_forward, _softmax_vjp,
                   lambda out, x, **k: softmax_flops(np.shape(x)), "norm"))
register_op(OpSpec("layer_norm", _layer_norm_forward, _layer_norm_vjp,
                   lambda out, x, *t, **k: normalization_flops(np.shape(x)), "norm"))
register_op(OpSpec("rms_norm", _rms_norm_forward, _rms_norm_vjp,
                   lambda out, x, *t, **k: normalization_flops(np.shape(x)), "norm"))
register_op(OpSpec("batch_norm", _batch_norm_forward, _batch_norm_vjp,
                   lambda out, x, *t, **k: normalization_flops(np.shape(x)), "norm"))
register_op(OpSpec("group_norm", _group_norm_forward, _group_norm_vjp,
                   lambda out, x, *t, **k: normalization_flops(np.shape(x)), "norm"))
