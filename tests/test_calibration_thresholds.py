"""Unit tests for threshold construction and the Eq. 15 check."""

import numpy as np
import pytest

from repro.calibration.thresholds import DEFAULT_SAFETY_FACTOR, ThresholdTable
from repro.graph.interpreter import Interpreter
from repro.tensorlib.device import DEVICE_FLEET


def test_default_safety_factor_matches_paper():
    assert DEFAULT_SAFETY_FACTOR == 3.0


def test_thresholds_are_alpha_times_envelope(mlp_calibration, mlp_thresholds):
    for name, calib in mlp_calibration.operators.items():
        assert np.allclose(mlp_thresholds.abs_threshold(name), 3.0 * calib.envelope.abs_values)
        assert np.allclose(mlp_thresholds.rel_threshold(name), 3.0 * calib.envelope.rel_values)


def test_honest_cross_device_execution_never_exceeds(mlp_graph, mlp_thresholds, mlp_input_factory):
    inputs = mlp_input_factory(777)
    trace_a = Interpreter(DEVICE_FLEET[0]).run(mlp_graph, inputs, record=True)
    trace_b = Interpreter(DEVICE_FLEET[3]).run(mlp_graph, inputs, record=True)
    for name in mlp_thresholds.operator_names():
        report = mlp_thresholds.check(name, trace_a.values[name], trace_b.values[name])
        assert not report.exceeded, f"honest execution flagged at {name}: ratio {report.max_ratio}"


def test_tampered_output_is_flagged(mlp_graph, mlp_thresholds, mlp_input_factory):
    inputs = mlp_input_factory(888)
    trace = Interpreter(DEVICE_FLEET[0]).run(mlp_graph, inputs, record=True)
    name = "linear_1"
    tampered = trace.values[name] + 1e-2
    report = mlp_thresholds.check(name, tampered, trace.values[name])
    assert report.exceeded
    assert report.max_ratio > 10.0
    assert bool(report) is True


def test_identical_tensors_have_zero_ratio(mlp_thresholds, rng):
    name = mlp_thresholds.operator_names()[0]
    # identical proposer/reference values -> zero error everywhere
    value = rng.standard_normal((4, 6)).astype(np.float32)
    report = mlp_thresholds.check(name, value, value)
    assert report.max_ratio == 0.0
    assert not report.exceeded


def test_unknown_operator_raises(mlp_thresholds, rng):
    with pytest.raises(KeyError):
        mlp_thresholds.check("no_such_operator", rng.standard_normal(4), rng.standard_normal(4))


def test_scaled_table(mlp_thresholds):
    doubled = mlp_thresholds.scaled(2.0)
    for name in mlp_thresholds.operator_names():
        assert np.allclose(doubled.abs_threshold(name), 2.0 * mlp_thresholds.abs_threshold(name))
    assert doubled.alpha == pytest.approx(2.0 * mlp_thresholds.alpha)


def test_cap_curve_is_monotone(mlp_thresholds):
    for name in mlp_thresholds.operator_names():
        ranks, caps = mlp_thresholds.cap_curve(name)
        assert ranks[0] == 0.0 and ranks[-1] == 1.0
        assert (np.diff(caps) >= -1e-18).all()


def test_leaf_payloads_unique_per_operator(mlp_thresholds):
    payloads = mlp_thresholds.leaf_payloads()
    assert set(payloads) == set(mlp_thresholds.operator_names())
    assert len(set(payloads.values())) == len(payloads)


def test_dict_roundtrip(mlp_thresholds):
    restored = ThresholdTable.from_dict(mlp_thresholds.to_dict())
    assert restored.alpha == mlp_thresholds.alpha
    assert restored.operator_names() == mlp_thresholds.operator_names()
    for name in mlp_thresholds.operator_names():
        assert np.allclose(restored.abs_threshold(name), mlp_thresholds.abs_threshold(name))
        assert restored.op_types[name] == mlp_thresholds.op_types[name]


def test_check_profile_equivalent_to_check(mlp_graph, mlp_thresholds, mlp_input_factory):
    from repro.calibration.profiles import PercentileProfile, elementwise_errors

    inputs = mlp_input_factory(999)
    trace_a = Interpreter(DEVICE_FLEET[1]).run(mlp_graph, inputs, record=True)
    trace_b = Interpreter(DEVICE_FLEET[2]).run(mlp_graph, inputs, record=True)
    name = mlp_thresholds.operator_names()[0]
    abs_err, rel_err = elementwise_errors(trace_a.values[name], trace_b.values[name])
    profile = PercentileProfile.from_errors(abs_err, rel_err, mlp_thresholds.grid)
    direct = mlp_thresholds.check(name, trace_a.values[name], trace_b.values[name])
    via_profile = mlp_thresholds.check_profile(name, profile)
    assert direct.max_ratio == pytest.approx(via_profile.max_ratio)
