"""Batched multi-request verification service (the serving front end).

:class:`TAOSession` serves exactly one request per call; this module adds the
layer the ROADMAP's production goal needs on top of it: a **multi-tenant
service** that keeps many requests in flight against one coordinator.

Request life cycle inside :meth:`TAOService.process`:

1. **Queue** — :meth:`TAOService.submit` enqueues (model, inputs) pairs;
   tenants are models registered once via :meth:`TAOService.register_model`
   (per-model session reuse: calibration, commitments and role objects are
   built once, not per request).
2. **Execute** — queued requests for the same model and the default honest
   proposer are executed through
   :meth:`~repro.engine.engine.ExecutionEngine.run_batch`, which stacks them
   along the leading batch axis when the graph is certified batchable;
   adversarial / custom proposers run their own (override-bearing) path.
   A **content-addressed result cache** keyed by the execution commitment's
   input hash short-circuits repeated requests: the proposer's committed
   trace and the challenger's verdict for identical payloads are reused.
3. **Submit + verify** — every request becomes its own coordinator task
   (fees, bonds and challenge windows per request); the default challenger's
   re-execution is batched the same way and threshold-checked per request.
4. **Dispute** — flagged (or force-challenged) tasks open disputes while
   every challenge window is still live, then the active dispute games are
   **multiplexed**: advanced round-robin one partition/selection round at a
   time over the shared chain, each with its own challenger clone so
   per-dispute accounting stays exact.
5. **Finalize** — time advances past the challenge window once and all
   unchallenged tasks finalize; every processed request ends in a terminal
   coordinator status.

Throughput/latency statistics are collected per request and aggregated in
:meth:`TAOService.stats`.

:class:`ServiceCore` is the front-end contract this module's request/verdict
types travel through: both :class:`TAOService` (one queue, one coordinator)
and :class:`~repro.cluster.cluster.TAOCluster` (N shards, each a full
``TAOService``) implement it, so examples, benchmarks and the protocol
simulator can drive either interchangeably.  :meth:`TAOService.withdraw_queued`,
:meth:`TAOService.detach_model` and :meth:`TAOService.adopt_model` are the
migration primitives the cluster's failover uses to move a tenant — session,
standing roles, result cache and clone accounting intact — between shards
without minting or forfeiting a single ledger unit.
"""

from __future__ import annotations

import abc
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.calibration.thresholds import ExceedanceReport
from repro.graph.graph import GraphModule
from repro.merkle.cache import HashCache
from repro.merkle.commitments import execution_input_hash, make_execution_commitment
from repro.protocol.coordinator import Coordinator
from repro.protocol.dispute import ActiveDispute, DisputeGame
from repro.protocol.lifecycle import SessionReport, TAOSession
from repro.protocol.roles import Challenger, ProposedResult, Proposer
from repro.tensorlib.device import DEVICE_FLEET, DeviceProfile


@dataclass
class CachedVerdict:
    """Proposer trace + challenger verdict memoized for one input hash."""

    result: ProposedResult
    looks_honest: bool
    reports: List[ExceedanceReport]


@dataclass
class ServiceRequest:
    """One submitted request and everything that happened to it."""

    request_id: int
    model_name: str
    inputs: Dict[str, np.ndarray]
    proposer: Optional[Proposer] = None  # None -> the model's default honest proposer
    #: Per-request challenger override: verifies (custom-proposer path) and
    #: fights any dispute for this request instead of the model's standing
    #: challenger / a fresh clone.  The protocol simulator injects faulty
    #: challengers here; None keeps the default machinery.
    challenger: Optional[Challenger] = None
    force_challenge: bool = False
    status: str = "queued"
    report: Optional[SessionReport] = None
    #: Execution error for rejected requests (malformed payloads never reach
    #: the coordinator; the rest of the batch is unaffected).
    error: Optional[str] = None
    cache_hit: bool = False
    batched: bool = False
    submitted_s: float = 0.0
    completed_s: float = 0.0

    @property
    def latency_s(self) -> float:
        return max(self.completed_s - self.submitted_s, 0.0)


@dataclass
class ModelEntry:
    """Per-tenant state: the reused session and its standing role objects."""

    name: str
    session: TAOSession
    proposer: Proposer
    challenger: Challenger
    user: object
    #: Content-addressed verdict memo, LRU-bounded by TAOService.result_cache_size
    #: (each entry pins a full recorded trace, so it must not grow unbounded).
    result_cache: "OrderedDict[bytes, CachedVerdict]" = field(default_factory=OrderedDict)
    challenger_clones: int = 0


@dataclass
class ServiceStats:
    """Aggregate service accounting."""

    requests_submitted: int = 0
    requests_completed: int = 0
    cache_hits: int = 0
    batched_requests: int = 0
    disputes_opened: int = 0
    dispute_rounds: int = 0
    processing_time_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)
    status_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        if self.processing_time_s <= 0:
            return 0.0
        return self.requests_completed / self.processing_time_s

    @property
    def mean_latency_s(self) -> float:
        if not self.latencies_s:
            return 0.0
        return float(sum(self.latencies_s) / len(self.latencies_s))

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests_submitted": self.requests_submitted,
            "requests_completed": self.requests_completed,
            "cache_hits": self.cache_hits,
            "batched_requests": self.batched_requests,
            "disputes_opened": self.disputes_opened,
            "dispute_rounds": self.dispute_rounds,
            "processing_time_s": self.processing_time_s,
            "throughput_rps": self.throughput_rps,
            "mean_latency_s": self.mean_latency_s,
            "status_counts": dict(self.status_counts),
        }

    @classmethod
    def aggregate(cls, parts: Iterable["ServiceStats"]) -> "ServiceStats":
        """Fleet-wide roll-up of per-shard statistics (sums and concatenation)."""
        total = cls()
        for part in parts:
            total.requests_submitted += part.requests_submitted
            total.requests_completed += part.requests_completed
            total.cache_hits += part.cache_hits
            total.batched_requests += part.batched_requests
            total.disputes_opened += part.disputes_opened
            total.dispute_rounds += part.dispute_rounds
            total.processing_time_s += part.processing_time_s
            total.latencies_s.extend(part.latencies_s)
            for status, count in part.status_counts.items():
                total.status_counts[status] = \
                    total.status_counts.get(status, 0) + count
        return total


class ServiceCore(abc.ABC):
    """The serving front-end contract shared by one service and a cluster.

    Implementations accept the same request shapes, hand back the same
    :class:`ServiceRequest`/:class:`~repro.protocol.lifecycle.SessionReport`
    objects and account through :class:`ServiceStats`, so a caller written
    against this interface (examples, benchmarks, the protocol simulator's
    runner) is oblivious to whether one queue or a sharded fleet serves it.
    """

    @abc.abstractmethod
    def register_model(self, graph_module: GraphModule,
                       calibration_inputs: Optional[Iterable[Dict[str, np.ndarray]]] = None,
                       threshold_table=None, **session_kwargs) -> TAOSession:
        """Register one tenant model; returns its (home) session."""

    @abc.abstractmethod
    def model(self, name: str) -> "ModelEntry":
        """The tenant entry currently serving ``name``."""

    @abc.abstractmethod
    def submit(self, model_name: str, inputs: Mapping[str, np.ndarray],
               proposer: Optional[Proposer] = None, force_challenge: bool = False,
               challenger: Optional[Challenger] = None) -> int:
        """Enqueue one request; returns its request id."""

    @abc.abstractmethod
    def request(self, request_id: int) -> ServiceRequest:
        """The (terminal or in-flight) record for one submitted request."""

    @abc.abstractmethod
    def process(self, max_requests: Optional[int] = None) -> List[ServiceRequest]:
        """Drain (up to ``max_requests`` of) the queue to terminal statuses."""

    @abc.abstractmethod
    def stats(self) -> ServiceStats:
        """Aggregate accounting for everything processed so far."""

    def submit_many(self, model_name: str,
                    inputs_list: Iterable[Mapping[str, np.ndarray]]) -> List[int]:
        return [self.submit(model_name, inputs) for inputs in inputs_list]


class TAOService(ServiceCore):
    """Multi-tenant, batching front end over the TAO protocol stack."""

    def __init__(
        self,
        coordinator: Optional[Coordinator] = None,
        devices: Sequence[DeviceProfile] = DEVICE_FLEET,
        max_batch: int = 32,
        enable_batching: bool = True,
        enable_result_cache: bool = True,
        result_cache_size: int = 256,
        alpha: float = 3.0,
        n_way: int = 2,
        committee_size: int = 3,
        leaf_path: str = "routed",
        hash_cache: Optional[HashCache] = None,
    ) -> None:
        self.coordinator = coordinator or Coordinator()
        self.devices = tuple(devices)
        self.max_batch = int(max_batch)
        self.enable_batching = bool(enable_batching)
        self.enable_result_cache = bool(enable_result_cache)
        self.result_cache_size = int(result_cache_size)
        self.alpha = float(alpha)
        self.n_way = int(n_way)
        self.committee_size = int(committee_size)
        self.leaf_path = leaf_path
        # An externally shared cache lets many short-lived services over the
        # same committed weights (e.g. simulator scenarios) reuse digests.
        self.hash_cache = hash_cache or HashCache()

        self._models: Dict[str, ModelEntry] = {}
        self._queue: Deque[int] = deque()
        self._requests: Dict[int, ServiceRequest] = {}
        self.stats_record = ServiceStats()

    # ------------------------------------------------------------------
    # Tenant management
    # ------------------------------------------------------------------

    def register_model(
        self,
        graph_module: GraphModule,
        calibration_inputs: Optional[Iterable[Dict[str, np.ndarray]]] = None,
        threshold_table=None,
        proposer_device: Optional[DeviceProfile] = None,
        challenger_device: Optional[DeviceProfile] = None,
        **session_kwargs,
    ) -> TAOSession:
        """Register one model: calibrate/commit once, build standing roles."""
        name = graph_module.name
        if name in self._models:
            raise ValueError(f"model {name!r} is already registered with this service")
        session = TAOSession(
            graph_module,
            calibration_inputs=calibration_inputs,
            threshold_table=threshold_table,
            devices=self.devices,
            coordinator=self.coordinator,
            alpha=self.alpha,
            n_way=self.n_way,
            committee_size=self.committee_size,
            leaf_path=self.leaf_path,
            hash_cache=self.hash_cache,
            **session_kwargs,
        )
        session.setup(owner=f"{name}-owner")
        entry = ModelEntry(
            name=name,
            session=session,
            proposer=session.make_honest_proposer(f"{name}-proposer", proposer_device),
            challenger=session.make_challenger(f"{name}-challenger", challenger_device),
            user=session.make_user(f"{name}-user"),
        )
        self._models[name] = entry
        return session

    def model(self, name: str) -> ModelEntry:
        try:
            return self._models[name]
        except KeyError:
            raise KeyError(f"model {name!r} is not registered with this service") from None

    @property
    def model_names(self) -> List[str]:
        return sorted(self._models)

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------

    def submit(
        self,
        model_name: str,
        inputs: Mapping[str, np.ndarray],
        proposer: Optional[Proposer] = None,
        force_challenge: bool = False,
        challenger: Optional[Challenger] = None,
    ) -> int:
        """Enqueue one request; returns its request id."""
        self.model(model_name)  # fail fast on unknown tenants
        request = ServiceRequest(
            request_id=len(self._requests),
            model_name=model_name,
            inputs=dict(inputs),
            proposer=proposer,
            challenger=challenger,
            force_challenge=force_challenge,
            submitted_s=time.perf_counter(),
        )
        self._requests[request.request_id] = request
        self._queue.append(request.request_id)
        self.stats_record.requests_submitted += 1
        return request.request_id

    def request(self, request_id: int) -> ServiceRequest:
        return self._requests[request_id]

    @property
    def pending_count(self) -> int:
        return len(self._queue)

    def withdraw_queued(self, model_name: str) -> List[ServiceRequest]:
        """Pull this model's not-yet-processed requests out of the queue.

        The failover path re-dispatches in-flight requests to a fallback
        shard: withdrawn requests are marked terminal here (``withdrawn``)
        and their payloads/actors are resubmitted elsewhere by the caller.
        Requests already processed (terminal) are untouched.
        """
        withdrawn: List[ServiceRequest] = []
        keep: Deque[int] = deque()
        while self._queue:
            request_id = self._queue.popleft()
            request = self._requests[request_id]
            if request.model_name == model_name:
                request.status = "withdrawn"
                withdrawn.append(request)
            else:
                keep.append(request_id)
        self._queue = keep
        return withdrawn

    # ------------------------------------------------------------------
    # Tenant migration (cluster failover / ring resize)
    # ------------------------------------------------------------------

    def detach_model(self, name: str) -> ModelEntry:
        """Remove and return a tenant entry so another service can adopt it.

        Queued requests must be withdrawn first (:meth:`withdraw_queued`);
        detaching with work still queued would strand those requests.
        """
        entry = self.model(name)
        if any(self._requests[rid].model_name == name for rid in self._queue):
            raise RuntimeError(
                f"model {name!r} still has queued requests; withdraw them first"
            )
        del self._models[name]
        return entry

    def adopt_model(self, entry: ModelEntry) -> None:
        """Adopt a tenant entry migrated from another service.

        The entry arrives whole — session, standing roles, result cache and
        challenger-clone accounting — so no ledger account is re-funded: the
        tenant's accounts simply continue on the shared settlement chain.
        The committed model is registered with this service's coordinator if
        it has never seen it (a gas-metered transaction, no balance
        movement), and the session is re-pointed so future dispute games run
        against this coordinator.
        """
        if entry.name in self._models:
            raise ValueError(f"model {entry.name!r} is already registered here")
        if entry.name not in self.coordinator.models:
            self.coordinator.register_model(entry.session.model_commitment,
                                            owner=f"{entry.name}-owner")
        entry.session.coordinator = self.coordinator
        self._models[entry.name] = entry

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------

    def process(self, max_requests: Optional[int] = None) -> List[ServiceRequest]:
        """Drain (up to ``max_requests`` of) the queue to terminal statuses.

        The drain proceeds in bounded cycles: every coordinator transaction
        advances chain time one block, and a cycle's disputes must open while
        every task's challenge window is still live, so each cycle takes at
        most :meth:`_cycle_capacity` requests through submit -> verify ->
        dispute -> finalize before the next cycle starts.
        """
        remaining = max_requests
        processed: List[ServiceRequest] = []
        capacity = self._cycle_capacity()
        while self._queue and (remaining is None or remaining > 0):
            take = capacity if remaining is None else min(capacity, remaining)
            batch: List[ServiceRequest] = []
            while self._queue and len(batch) < take:
                batch.append(self._requests[self._queue.popleft()])
            if not batch:
                break
            processed.extend(self._process_cycle(batch))
            if remaining is not None:
                remaining -= len(batch)
        return processed

    def _cycle_capacity(self) -> int:
        """Requests per cycle such that no challenge window lapses mid-cycle.

        The first task of a cycle is submitted ~2 transactions (blocks) per
        request before the last dispute of the cycle opens; keeping a cycle
        to a quarter of the window in blocks leaves ample margin.
        """
        window_blocks = self.coordinator.challenge_window_s / \
            self.coordinator.chain.block_interval_s
        return max(1, int(window_blocks / 4))

    def _process_cycle(self, batch: List[ServiceRequest]) -> List[ServiceRequest]:
        started = time.perf_counter()

        # Phase 1+: execute, commit, and submit every request as its own task.
        self._execute_and_submit(batch)

        # Phase 2 entry: open every dispute while all challenge windows are
        # still live (chain time moves with every transaction, so disputes
        # must be opened before the windows are allowed to lapse).
        actives: List[Tuple[ServiceRequest, DisputeGame, ActiveDispute]] = []
        for request in batch:
            report = request.report
            if report is None:  # rejected before reaching the coordinator
                continue
            if request.force_challenge or not report.finalized_optimistically:
                entry = self.model(request.model_name)
                game = entry.session.make_dispute_game()
                challenger = request.challenger or self._challenger_clone(entry)
                proposer = request.proposer or entry.proposer
                active = game.open(report.task, proposer, challenger, report.result)
                actives.append((request, game, active))
                report.challenged = True
                report.finalized_optimistically = False
                self.stats_record.disputes_opened += 1

        # Phases 2-3: multiplex the dispute games round-robin.
        running = list(actives)
        while running:
            still_running = []
            for item in running:
                request, game, active = item
                rounds_before = len(active.per_round)
                if game.step_round(active):
                    still_running.append(item)
                # Count rounds actually played (a terminal no-op iteration,
                # or a dispute settled at open by an input-binding fraud
                # proof, plays none).
                self.stats_record.dispute_rounds += \
                    len(active.per_round) - rounds_before
            running = still_running
        for request, game, active in actives:
            request.report.dispute = game.conclude(active)

        # Finalize every unchallenged task after one window advance.
        window = self.coordinator.challenge_window_s
        if any(r.report is not None and not r.report.challenged for r in batch):
            self.coordinator.chain.advance_time(window + 1.0)
        for request in batch:
            report = request.report
            if report is not None and not report.challenged:
                proposer = request.proposer or self.model(request.model_name).proposer
                self.coordinator.try_finalize(report.task.task_id, caller=proposer.name)
                report.finalized_optimistically = True

        now = time.perf_counter()
        for request in batch:
            if request.report is not None:
                request.status = request.report.final_status
            request.completed_s = now
            self.stats_record.requests_completed += 1
            self.stats_record.latencies_s.append(request.latency_s)
            counts = self.stats_record.status_counts
            counts[request.status] = counts.get(request.status, 0) + 1
        self.stats_record.processing_time_s += now - started
        return batch

    # -- execution internals ---------------------------------------------

    def _execute_and_submit(self, batch: List[ServiceRequest]) -> None:
        """Produce a ProposedResult + coordinator task + verdict per request."""
        # Partition into the batchable default path vs. custom proposers.
        default_path: Dict[str, List[ServiceRequest]] = {}
        custom_path: List[ServiceRequest] = []
        for request in batch:
            if request.proposer is None:
                default_path.setdefault(request.model_name, []).append(request)
            else:
                custom_path.append(request)

        for model_name, requests in default_path.items():
            entry = self.model(model_name)
            misses: List[ServiceRequest] = []
            verdicts: Dict[int, CachedVerdict] = {}
            input_hashes: Dict[int, bytes] = {}
            pending: Dict[bytes, List[ServiceRequest]] = {}
            for request in requests:
                try:
                    # The commitment's H(x) doubles as the cache key, so the
                    # two can never diverge.
                    key = execution_input_hash(request.inputs, self.hash_cache)
                except Exception as exc:
                    self._reject(request, f"unhashable payload: {exc}")
                    continue
                input_hashes[request.request_id] = key
                if self.enable_result_cache:
                    cached = entry.result_cache.get(key)
                    if cached is not None:
                        entry.result_cache.move_to_end(key)
                        # Content-addressed hit from an earlier processing cycle.
                        verdicts[request.request_id] = cached
                        request.cache_hit = True
                        self.stats_record.cache_hits += 1
                        continue
                    if key in pending:
                        # Duplicate payload within this cycle: executed once.
                        pending[key].append(request)
                        request.cache_hit = True
                        self.stats_record.cache_hits += 1
                        continue
                    pending[key] = []
                misses.append(request)

            for chunk_start in range(0, len(misses), self.max_batch):
                chunk = misses[chunk_start:chunk_start + self.max_batch]
                fresh = self._execute_default(entry, chunk)
                for request, verdict in zip(chunk, fresh):
                    key = input_hashes[request.request_id]
                    if verdict is None:
                        # Rejected; duplicates of the same payload fail alike.
                        for waiter in pending.get(key, ()):
                            self._reject(waiter, request.error)
                        continue
                    verdicts[request.request_id] = verdict
                    if self.enable_result_cache:
                        entry.result_cache[key] = verdict
                        entry.result_cache.move_to_end(key)
                        while len(entry.result_cache) > self.result_cache_size:
                            entry.result_cache.popitem(last=False)
                        for waiter in pending.get(key, ()):
                            verdicts[waiter.request_id] = verdict

            for request in requests:
                if request.status == "rejected":
                    continue
                verdict = verdicts[request.request_id]
                task = self.coordinator.submit_result(
                    model_name, entry.user.name, entry.proposer.name,
                    verdict.result.commitment, fee=entry.user.fee_per_request,
                )
                request.report = SessionReport(
                    task=task,
                    result=verdict.result,
                    challenged=False,
                    finalized_optimistically=verdict.looks_honest and not request.force_challenge,
                    verification_reports=list(verdict.reports),
                )

        for request in custom_path:
            entry = self.model(request.model_name)
            proposer = request.proposer
            try:
                result = proposer.execute(entry.session.graph_module,
                                          entry.session.model_commitment, request.inputs)
            except Exception as exc:
                self._reject(request, str(exc))
                continue
            task = self.coordinator.submit_result(
                request.model_name, entry.user.name, proposer.name,
                result.commitment, fee=entry.user.fee_per_request,
            )
            looks_honest, reports = (request.challenger or entry.challenger).verify_result(
                entry.session.graph_module, result
            )
            request.report = SessionReport(
                task=task,
                result=result,
                challenged=False,
                finalized_optimistically=looks_honest and not request.force_challenge,
                verification_reports=reports,
            )

    @staticmethod
    def _reject(request: ServiceRequest, error: Optional[str]) -> None:
        """Mark a request as rejected (terminal) without touching the chain."""
        request.status = "rejected"
        request.error = error or "execution failed"

    def _execute_default(self, entry: ModelEntry,
                         requests: List[ServiceRequest]) -> List[Optional[CachedVerdict]]:
        """Honest-proposer execution + challenger verification, batched.

        Returns one verdict per request; a request whose execution raises
        (malformed payload) is rejected in place and yields ``None`` — the
        rest of the chunk is unaffected.
        """
        graph_module = entry.session.graph_module
        inputs_list = [request.inputs for request in requests]

        pairs: Optional[List] = None
        batched = False
        if self.enable_batching and len(requests) > 1:
            try:
                proposer_traces = entry.proposer.interpreter.engine.run_batch(
                    graph_module, inputs_list, record=True, count_flops=True,
                )
                batched = entry.proposer.interpreter.engine.last_batch_stacked
                challenger_traces = entry.challenger.interpreter.engine.run_batch(
                    graph_module, inputs_list, record=True, count_flops=True,
                )
                pairs = list(zip(proposer_traces, challenger_traces))
            except Exception:
                pairs = None  # isolate the failure per request below
                batched = False
        if pairs is None:
            pairs = []
            for request, inputs in zip(requests, inputs_list):
                try:
                    pairs.append((
                        entry.proposer.interpreter.run(graph_module, inputs,
                                                       record=True, count_flops=True),
                        entry.challenger.interpreter.run(graph_module, inputs,
                                                         record=True, count_flops=True),
                    ))
                except Exception as exc:
                    self._reject(request, str(exc))
                    pairs.append(None)

        verdicts: List[Optional[CachedVerdict]] = []
        for request, pair in zip(requests, pairs):
            if pair is None:
                verdicts.append(None)
                continue
            trace, check = pair
            request.batched = batched
            if batched:
                self.stats_record.batched_requests += 1
            commitment = make_execution_commitment(
                entry.session.model_commitment, dict(request.inputs),
                list(trace.outputs),
                meta={
                    "device": entry.proposer.device.name,
                    "dtype": "float32",
                    "proposer": entry.proposer.name,
                    "kernel_stack": entry.proposer.device.signature(),
                },
                cache=self.hash_cache,
            )
            result = ProposedResult(
                model_name=graph_module.name,
                inputs=dict(request.inputs),
                outputs=trace.outputs,
                output_names=trace.output_names,
                trace_values=dict(trace.values),
                commitment=commitment,
                forward_flops=trace.flops.total,
                wall_time_s=trace.wall_time_s,
                device_name=entry.proposer.device.name,
            )
            looks_honest, reports = entry.challenger.verify_with_trace(result, check)
            verdicts.append(CachedVerdict(result=result, looks_honest=looks_honest,
                                          reports=reports))
        return verdicts

    def _challenger_clone(self, entry: ModelEntry) -> Challenger:
        """A fresh challenger for one dispute (isolated per-dispute accounting).

        Multiplexed disputes step concurrently; a shared challenger object
        would mix the FLOP/Merkle accounting of one game into another's
        statistics.  Clones share the device, thresholds and hash cache of
        the model's standing challenger, so selection behaviour is identical.
        """
        entry.challenger_clones += 1
        name = f"{entry.challenger.name}-{entry.challenger_clones}"
        self.coordinator.chain.fund(name, entry.session.initial_balance)
        return Challenger(name, entry.challenger.device, entry.challenger.thresholds,
                          hash_cache=self.hash_cache)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> ServiceStats:
        return self.stats_record
