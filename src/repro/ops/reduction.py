"""Reduction operators: sum, mean, var, max, min, argmax.

Sum/mean/var route through the device-ordered reductions in
:mod:`repro.tensorlib.kernels`, so their outputs differ across simulated
devices — these are the operators whose rounding the paper's reduction bounds
(``gamma_k`` / ``gamma_tilde_k``) cover.  Max/min/argmax involve no rounding
and are device independent.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.ops.registry import OpSpec, register_op
from repro.tensorlib.device import DeviceProfile
from repro.tensorlib.flops import reduction_flops
from repro.tensorlib.kernels import device_mean, device_sum, device_var

AxisSpec = Union[None, int, Sequence[int]]


def _normalize_axes(axis: AxisSpec, ndim: int) -> Tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, (int, np.integer)):
        return (int(axis) % ndim,)
    return tuple(sorted(int(a) % ndim for a in axis))


def _expand_reduced(grad: np.ndarray, original_shape, axis: AxisSpec, keepdims: bool) -> np.ndarray:
    """Broadcast a reduced-shape gradient back to the input shape."""
    grad = np.asarray(grad, dtype=np.float64)
    axes = _normalize_axes(axis, len(original_shape))
    if not keepdims:
        for a in axes:
            grad = np.expand_dims(grad, axis=a)
    return np.broadcast_to(grad, original_shape)


def _sum_forward(device: DeviceProfile, a, *, axis: AxisSpec = None,
                 keepdims: bool = False) -> np.ndarray:
    return device_sum(a, device, axis=axis, keepdims=keepdims)


def _sum_vjp(device, grad_out, out, a, *, axis: AxisSpec = None, keepdims: bool = False):
    return (_expand_reduced(grad_out, np.shape(a), axis, keepdims),)


def _mean_forward(device: DeviceProfile, a, *, axis: AxisSpec = None,
                  keepdims: bool = False) -> np.ndarray:
    return device_mean(a, device, axis=axis, keepdims=keepdims)


def _mean_vjp(device, grad_out, out, a, *, axis: AxisSpec = None, keepdims: bool = False):
    shape = np.shape(a)
    axes = _normalize_axes(axis, len(shape))
    count = int(np.prod([shape[i] for i in axes])) if axes else 1
    grad = _expand_reduced(grad_out, shape, axis, keepdims) / float(count)
    return (grad,)


def _var_forward(device: DeviceProfile, a, *, axis: AxisSpec = None,
                 keepdims: bool = False, ddof: int = 0) -> np.ndarray:
    return device_var(a, device, axis=axis, keepdims=keepdims, ddof=ddof)


def _var_vjp(device, grad_out, out, a, *, axis: AxisSpec = None,
             keepdims: bool = False, ddof: int = 0):
    a64 = np.asarray(a, dtype=np.float64)
    shape = a64.shape
    axes = _normalize_axes(axis, len(shape))
    count = int(np.prod([shape[i] for i in axes])) if axes else 1
    mean = a64.mean(axis=axes, keepdims=True)
    grad = _expand_reduced(grad_out, shape, axis, keepdims)
    denom = max(count - ddof, 1)
    return (grad * 2.0 * (a64 - mean) / denom,)


def _amax_forward(device: DeviceProfile, a, *, axis: AxisSpec = None,
                  keepdims: bool = False) -> np.ndarray:
    arr = np.asarray(a, dtype=np.float32)
    axes = _normalize_axes(axis, arr.ndim)
    return arr.max(axis=axes, keepdims=keepdims).astype(np.float32)


def _amax_vjp(device, grad_out, out, a, *, axis: AxisSpec = None, keepdims: bool = False):
    a64 = np.asarray(a, dtype=np.float64)
    axes = _normalize_axes(axis, a64.ndim)
    # Recompute the argmax mask in float64: the forward output is float32, so
    # comparing against it directly would miss maxima for float64 inputs.
    out_expanded = a64.max(axis=axes, keepdims=True)
    mask = (a64 == out_expanded).astype(np.float64)
    # Split gradient evenly between ties (matches PyTorch semantics closely enough).
    counts = mask.sum(axis=axes, keepdims=True)
    grad = _expand_reduced(grad_out, a64.shape, axis, keepdims)
    return (grad * mask / np.maximum(counts, 1.0),)


def _amin_forward(device: DeviceProfile, a, *, axis: AxisSpec = None,
                  keepdims: bool = False) -> np.ndarray:
    arr = np.asarray(a, dtype=np.float32)
    axes = _normalize_axes(axis, arr.ndim)
    return arr.min(axis=axes, keepdims=keepdims).astype(np.float32)


def _amin_vjp(device, grad_out, out, a, *, axis: AxisSpec = None, keepdims: bool = False):
    a64 = np.asarray(a, dtype=np.float64)
    axes = _normalize_axes(axis, a64.ndim)
    out_expanded = a64.min(axis=axes, keepdims=True)
    mask = (a64 == out_expanded).astype(np.float64)
    counts = mask.sum(axis=axes, keepdims=True)
    grad = _expand_reduced(grad_out, a64.shape, axis, keepdims)
    return (grad * mask / np.maximum(counts, 1.0),)


def _argmax_forward(device: DeviceProfile, a, *, axis: Optional[int] = None) -> np.ndarray:
    arr = np.asarray(a)
    return np.argmax(arr, axis=axis)


def _argmax_vjp(device, grad_out, out, a, *, axis: Optional[int] = None):
    return (None,)


register_op(OpSpec("sum", _sum_forward, _sum_vjp,
                   lambda out, a, **k: reduction_flops(np.shape(a)), "reduction"))
register_op(OpSpec("mean", _mean_forward, _mean_vjp,
                   lambda out, a, **k: reduction_flops(np.shape(a)) + float(np.size(out)),
                   "reduction"))
register_op(OpSpec("var", _var_forward, _var_vjp,
                   lambda out, a, **k: 3.0 * reduction_flops(np.shape(a)), "reduction"))
register_op(OpSpec("amax", _amax_forward, _amax_vjp,
                   lambda out, a, **k: reduction_flops(np.shape(a)), "reduction",
                   introduces_rounding=False))
register_op(OpSpec("amin", _amin_forward, _amin_vjp,
                   lambda out, a, **k: reduction_flops(np.shape(a)), "reduction",
                   introduces_rounding=False))
register_op(OpSpec("argmax", _argmax_forward, _argmax_vjp,
                   lambda out, a, **k: 0.0, "reduction", introduces_rounding=False))
