"""Tests for onboarding new device configurations (Sec. 7 discussion)."""

import numpy as np
import pytest

from repro.calibration.onboarding import detect_configuration_drift, onboard_device
from repro.tensorlib.accumulate import AccumulationStrategy
from repro.tensorlib.device import DEVICE_FLEET, DeviceProfile

#: A device with a reduced-precision (TF32-style) accumulate fast path: its
#: rounding behaviour sits far outside what the FP32 fleet was calibrated on,
#: so it cannot serve under the existing commitment until it is onboarded as
#: its own configuration class.
EXOTIC_DEVICE = DeviceProfile(
    name="sim-exotic-accelerator",
    reduction_chunk=32,
    strategy=AccumulationStrategy.REDUCED_PRECISION,
    matmul_split_k=8,
    conv_split=8,
    description="Reduced-precision accumulate path used for onboarding tests.",
)


def _probes(mlp_input_factory, n=2):
    return [mlp_input_factory(40_000 + i) for i in range(n)]


def test_fleet_member_shows_no_drift(mlp_graph, mlp_thresholds, mlp_input_factory):
    report = detect_configuration_drift(
        mlp_graph, mlp_thresholds, candidate_device=DEVICE_FLEET[1],
        incumbent_device=DEVICE_FLEET[0], probe_inputs=_probes(mlp_input_factory),
    )
    assert report.within_committed_thresholds
    assert report.exceedance_fraction == 0.0
    assert not report.requires_onboarding()   # nothing to onboard


def test_exotic_device_requires_onboarding(mlp_graph, mlp_thresholds, mlp_input_factory):
    report = detect_configuration_drift(
        mlp_graph, mlp_thresholds, candidate_device=EXOTIC_DEVICE,
        incumbent_device=DEVICE_FLEET[0], probe_inputs=_probes(mlp_input_factory),
    )
    # The reduced-precision accumulate path lands outside the committed
    # thresholds for reduction-bearing operators: faithful executions on this
    # device would be disputed until the configuration is onboarded.
    assert not report.within_committed_thresholds
    assert report.requires_onboarding()
    assert report.worst_ratio > 1.0
    assert report.exceedance_fraction > 0.2
    assert report.candidate == EXOTIC_DEVICE.name


def test_cheat_exceeds_thresholds_by_orders_of_magnitude(mlp_graph, mlp_thresholds,
                                                         mlp_input_factory):
    """A grossly tampered execution exceeds thresholds by orders of magnitude."""
    from repro.graph.interpreter import Interpreter

    inputs = mlp_input_factory(41_000)
    honest = Interpreter(DEVICE_FLEET[0]).run(mlp_graph, inputs, record=True)
    tampered = honest.values["linear_1"] + 0.1
    report = mlp_thresholds.check("linear_1", tampered, honest.values["linear_1"])
    assert report.exceeded
    assert report.max_ratio > 1000.0  # far beyond any benign configuration drift


def test_onboarding_widens_thresholds_and_accepts_new_device(mlp_graph, mlp_thresholds,
                                                             mlp_input_factory):
    calibration_inputs = [mlp_input_factory(42_000 + i) for i in range(4)]
    result = onboard_device(
        mlp_graph, mlp_thresholds, fleet=DEVICE_FLEET, new_device=EXOTIC_DEVICE,
        calibration_inputs=calibration_inputs,
    )
    updated = result.updated_thresholds
    assert updated.alpha == mlp_thresholds.alpha
    assert set(updated.operator_names()) == set(mlp_thresholds.operator_names())
    # Thresholds only widen (max-envelope over a strictly larger fleet).
    assert result.max_widening >= 1.0
    assert all(factor >= 1.0 for factor in result.widened_operators.values())

    # After onboarding, the previously drifting device passes verification.
    post = detect_configuration_drift(
        mlp_graph, updated, candidate_device=EXOTIC_DEVICE,
        incumbent_device=DEVICE_FLEET[0],
        probe_inputs=calibration_inputs[:2],
    )
    assert post.within_committed_thresholds


def test_onboarding_with_custom_alpha(mlp_graph, mlp_thresholds, mlp_input_factory):
    result = onboard_device(
        mlp_graph, mlp_thresholds, fleet=DEVICE_FLEET[:2], new_device=EXOTIC_DEVICE,
        calibration_inputs=[mlp_input_factory(43_000)], alpha=5.0,
    )
    assert result.updated_thresholds.alpha == 5.0
