"""SHA-256 helpers used for Merkle trees and protocol commitments.

The paper (Sec. 2.2, Sec. 5.2) uses SHA-256 for every commitment: weight
leaves, graph-signature leaves, interface hashes and the top-level result
commitment ``C0 = H(r_w || r_g || H(x) || H(y) || meta)``.  All hashing in
this repository goes through the two functions below so the byte discipline
is identical everywhere.
"""

from __future__ import annotations

import hashlib
from typing import Iterable


def sha256_bytes(data: bytes) -> bytes:
    """Return the raw 32-byte SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Return the hex-encoded SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def hash_concat(parts: Iterable[bytes]) -> bytes:
    """Hash the concatenation of ``parts`` with length framing.

    Each part is prefixed with its 8-byte big-endian length so that
    ``hash_concat([a, b]) != hash_concat([a + b])`` — the framing prevents
    ambiguity attacks on commitment preimages.
    """
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    return hasher.digest()
