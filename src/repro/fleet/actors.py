"""Default actor factory: rebuild role objects from wire specs in a worker.

Role objects (proposers, challengers, committee members) hold devices,
caches and sometimes closures — none of which cross the fleet's serialized
transport.  A request instead ships a small *spec* map (``{"type": ...}``)
and the worker rebuilds the actor against its own session via this module.
The fleet's hello message names the actor module as a dotted path, so a
caller with richer actor families (the protocol simulator) points workers at
its own module (:mod:`repro.sim.fleet_actors`) without the fleet knowing
those families exist.

Funding happens here, through the worker's chain proxy, with the same
accounts and amounts the in-process path mints — re-running a schedule
through a fleet must land on the exact same ledger.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.fleet.wire import decode_perturbation
from repro.protocol.roles import HonestProposer
from repro.tensorlib.device import DEVICE_FLEET


def build_proposer(service: Any, model_name: str, spec: Dict[str, Any]):
    """Rebuild one proposer from its wire spec against ``service``'s session."""
    session = service.model(model_name).session
    kind = spec["type"]
    if kind == "adversarial":
        perturbations = {node: decode_perturbation(value)
                         for node, value in spec["perturbations"].items()}
        return session.make_adversarial_proposer(spec["name"], perturbations)
    if kind == "honest":
        device = DEVICE_FLEET[int(spec.get("device_index", 0)) % len(DEVICE_FLEET)]
        if spec.get("fund", True):
            session.coordinator.chain.fund_once(spec["name"], session.initial_balance)
        return HonestProposer(spec["name"], device, hash_cache=service.hash_cache)
    raise ValueError(f"unknown proposer spec type {kind!r}")


def build_challenger(service: Any, model_name: str, spec: Dict[str, Any]):
    """Rebuild one per-request challenger override from its wire spec."""
    session = service.model(model_name).session
    kind = spec["type"]
    if kind == "standing":
        device_index = spec.get("device_index")
        device = None if device_index is None else \
            DEVICE_FLEET[int(device_index) % len(DEVICE_FLEET)]
        return session.make_challenger(spec["name"], device,
                                       fund=spec.get("fund", True))
    raise ValueError(f"unknown challenger spec type {kind!r}")


def build_committee_factory(majority: int) -> Callable:
    raise ValueError(
        "the default fleet actor module has no committee factory; scenarios "
        "with colluding committees must point the fleet at an actor module "
        "that provides one (e.g. repro.sim.fleet_actors)")
