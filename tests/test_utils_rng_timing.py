"""Unit tests for seeded RNG derivation and the Stopwatch."""

import time

from repro.utils.rng import derive_seed, seeded_rng
from repro.utils.timing import Stopwatch


def test_seeded_rng_reproducible():
    a = seeded_rng(7).standard_normal(5)
    b = seeded_rng(7).standard_normal(5)
    assert (a == b).all()


def test_derive_seed_depends_on_labels():
    base = 99
    assert derive_seed(base, "calibration", 0) != derive_seed(base, "calibration", 1)
    assert derive_seed(base, "calibration", 0) != derive_seed(base, "attack", 0)
    assert derive_seed(base, "calibration", 0) == derive_seed(base, "calibration", 0)


def test_derive_seed_depends_on_base():
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_stopwatch_accumulates_and_merges():
    sw = Stopwatch()
    with sw.measure("step"):
        time.sleep(0.01)
    with sw.measure("step"):
        time.sleep(0.01)
    assert sw.count("step") == 2
    assert sw.total("step") >= 0.02
    assert sw.mean("step") > 0.0

    other = Stopwatch()
    other.add("step", 1.0)
    other.add("other", 2.0)
    sw.merge(other)
    assert sw.count("step") == 3
    assert sw.total("other") == 2.0


def test_stopwatch_unknown_label_is_zero():
    sw = Stopwatch()
    assert sw.total("missing") == 0.0
    assert sw.mean("missing") == 0.0
    assert sw.count("missing") == 0
