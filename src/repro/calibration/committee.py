"""Committee-leaf acceptance-envelope calibration.

The committed :class:`~repro.calibration.thresholds.ThresholdTable` is
calibrated on *full-trace* cross-device divergence: the error observed at an
operator includes everything accumulated through the whole prefix of the
graph.  The dispute leaf compares something different — a **single operator
re-executed from agreed operand values** — whose honest spread is orders of
magnitude tighter deep in a graph (the accumulated envelope lets tampers
survive the vote) and whose low-percentile entries legitimately sit at exact
zero for bit-deterministic kernels (the ``1e-12`` floor clamp then flags
honest cross-device noise).  Both failure modes were observed in the wild at
rare simulator seeds (ROADMAP: seed 3001 honest slash, seeds 3000/3201
escapes).

:func:`calibrate_committee_envelope` calibrates the leaf's own acceptance
envelope: for every operator, every calibration input, and every ordered
device pair *(proposer device j, committee device k)*, the proposer's traced
output is compared against a single-operator re-execution on the member's
device from the proposer's own operand values — exactly the comparison a
:class:`~repro.protocol.roles.CommitteeMember` performs at the leaf.  The
element-wise errors reduce to percentile profiles (reusing the
:mod:`~repro.calibration.profiles` machinery), the per-sample max over pairs
forms the stability series analysed with the Appendix-B diagnostics
(:mod:`~repro.calibration.stability`), and the across-sample aggregation at
``envelope_percentile`` scaled by ``safety_factor`` becomes the
:class:`CommitteeEnvelopeProfile` — committed on chain next to the threshold
root (``r_c`` alongside ``r_e``) so the committee's decision rule cannot
change mid-dispute.

The profile *is* a :class:`~repro.calibration.thresholds.ThresholdTable`
(same grid, same Eq. 15 check, same commitment payload shape), so committee
members consume it through the identical code path; :meth:`floor` addition-
ally merges it under a committed table to give the challenger's selection
rule a credible noise floor (a slice re-executed from agreed inputs
accumulates at least one operator's worth of single-op spread, so a slice
threshold below the leaf envelope can only produce false selections).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.calibration.profiles import (
    PERCENTILE_GRID,
    PercentileProfile,
    percentile_profile,
)
from repro.calibration.stability import DEFAULT_WINDOW, sup_norm_drift
from repro.calibration.thresholds import ThresholdTable
from repro.graph.graph import GraphModule
from repro.graph.interpreter import Interpreter
from repro.graph.node import Node
from repro.tensorlib.device import DEVICE_FLEET, DeviceProfile
from repro.utils.serialization import canonical_bytes

#: Default safety factor applied to the calibrated leaf envelope; matches the
#: threshold table's Eq. 7 convention.
DEFAULT_COMMITTEE_SAFETY_FACTOR = 3.0

#: Default relative-error denominator floor, as a fraction of the claimed
#: tensor's max magnitude.  The Eq. 2 statistic divides by ``|a| + eps`` with
#: a vanishing eps, so elements crossing zero blow the relative tail up by
#: orders of magnitude between inputs — the max-over-samples envelope then
#: cannot bound fresh-input tails, which is precisely the rare-seed committee
#: false-verdict mechanism.  Flooring the denominator at a fraction of the
#: tensor scale makes the leaf's relative tail as stable as its absolute one
#: while keeping full sensitivity on every element of consequential size.
DEFAULT_REL_SCALE_FLOOR = 1e-3


def leaf_elementwise_errors(
    proposed: np.ndarray,
    reference: np.ndarray,
    rel_scale_floor: float = DEFAULT_REL_SCALE_FLOOR,
    epsilon: float = 1e-12,
) -> Tuple[np.ndarray, np.ndarray]:
    """Element-wise absolute and scale-floored relative leaf errors.

    The denominator of the relative error is ``max(|proposed|,
    rel_scale_floor * max|proposed|)`` — near-zero elements are measured
    against the tensor's own magnitude scale instead of their vanishing
    selves.  Calibration and the committee check share this one statistic.
    """
    a64 = np.asarray(proposed, dtype=np.float64)
    b64 = np.asarray(reference, dtype=np.float64)
    abs_err = np.abs(a64 - b64)
    scale = rel_scale_floor * float(np.max(np.abs(a64))) if a64.size else 0.0
    rel_err = abs_err / np.maximum(np.abs(a64), max(scale, epsilon))
    return abs_err, rel_err


@dataclass(frozen=True)
class CommitteeEnvelopeConfig:
    """Knobs of the committee-leaf calibration pass."""

    devices: Tuple[DeviceProfile, ...] = DEVICE_FLEET
    percentile_grid: Tuple[float, ...] = PERCENTILE_GRID
    #: Across-sample aggregation per grid point: 100 takes the max envelope
    #: (the default, mirroring Eqs. 5-6); lower values trade false-slash
    #: head-room for escape detection — the axis the committee-envelope
    #: benchmark sweeps.
    envelope_percentile: float = 100.0
    safety_factor: float = DEFAULT_COMMITTEE_SAFETY_FACTOR
    #: Relative-error denominator floor (fraction of the claimed tensor's max
    #: magnitude); shared between calibration and the committed check.
    rel_scale_floor: float = DEFAULT_REL_SCALE_FLOOR
    relative_epsilon: float = 1e-12
    #: Skip operators that produce integer outputs (argmax, index tensors):
    #: any cross-device difference there is fraud, not tolerance.
    skip_integer_outputs: bool = True
    #: Window of the Appendix-B stability diagnostics recorded per operator.
    stability_window: int = DEFAULT_WINDOW

    def __post_init__(self) -> None:
        if len(self.devices) < 2:
            raise ValueError("committee calibration requires at least two devices")
        if not 0.0 < self.envelope_percentile <= 100.0:
            raise ValueError("envelope_percentile must lie in (0, 100]")
        if self.safety_factor <= 0:
            raise ValueError("safety_factor must be positive")
        if not 0.0 <= self.rel_scale_floor < 1.0:
            raise ValueError("rel_scale_floor must lie in [0, 1)")


@dataclass
class CommitteeEnvelopeProfile(ThresholdTable):
    """Per-operator single-op acceptance envelope for the committee leaf.

    Structurally a :class:`~repro.calibration.thresholds.ThresholdTable`
    (``alpha`` holds the safety factor), extended with the calibration
    provenance the commitment payload records and the stability diagnostics
    of the per-sample envelope series.
    """

    envelope_percentile: float = 100.0
    rel_scale_floor: float = DEFAULT_REL_SCALE_FLOOR
    num_samples: int = 0
    num_pairs: int = 0
    #: Per-operator SupNorm drift (D1) of the top-percentile sample series —
    #: the short-horizon stability evidence for the committed envelope.
    stability: Dict[str, float] = field(default_factory=dict)

    def check(self, node_name: str, proposed: np.ndarray, reference: np.ndarray,
              epsilon: float = 1e-12):
        """The committee's Eq. 15 check under the committed leaf statistic.

        Identical ratio semantics to the base table, but the observed errors
        use :func:`leaf_elementwise_errors` — the same scale-floored
        relative statistic the envelope was calibrated with.
        """
        if not self.has_operator(node_name):
            raise KeyError(f"no committee envelope calibrated for operator {node_name!r}")
        abs_err, rel_err = leaf_elementwise_errors(
            proposed, reference, self.rel_scale_floor, epsilon
        )
        observed_abs = percentile_profile(abs_err, self.grid)
        observed_rel = percentile_profile(rel_err, self.grid)
        return self._ratio_report(node_name, observed_abs, observed_rel)

    def scaled(self, factor: float) -> "CommitteeEnvelopeProfile":
        """A copy with every envelope value multiplied by ``factor``.

        Mirrors :meth:`ThresholdTable.scaled` but preserves the leaf
        statistic and provenance — the simulator's broken-commitment canary
        scales table and envelope together, so a deliberately zeroed
        protocol stays detectably broken under the calibrated leaf too.
        """
        scaled = CommitteeEnvelopeProfile(
            model_name=self.model_name,
            alpha=self.alpha * factor,
            grid=self.grid,
            op_types=dict(self.op_types),
            envelope_percentile=self.envelope_percentile,
            rel_scale_floor=self.rel_scale_floor,
            num_samples=self.num_samples,
            num_pairs=self.num_pairs,
            stability=dict(self.stability),
        )
        scaled.abs_thresholds = {k: factor * v for k, v in self.abs_thresholds.items()}
        scaled.rel_thresholds = {k: factor * v for k, v in self.rel_thresholds.items()}
        return scaled

    def floor(self, table: ThresholdTable,
              slice_ops: Optional[Sequence[str]] = None) -> "CommitteeEnvelopeProfile":
        """Merge this envelope *under* a committed threshold table.

        Returns a checker whose per-operator thresholds are the element-wise
        maximum of the committed values and the leaf envelope, evaluated
        under the leaf statistic.  The challenger's selection rule consults
        it: a slice re-executed from agreed live-ins accumulates at least one
        operator's worth of single-op cross-device spread, so committed
        entries below the envelope (zero-calibrated low percentiles of
        full-trace error) cannot be credible evidence of fraud at a cut
        point — and the scale-floored relative statistic keeps the unstable
        near-zero tail from selecting honest children.

        With ``slice_ops`` (the operator names of the disputed slice) every
        merged entry is additionally floored by the *noisiest* envelope
        inside the slice: the honest spread observed at a slice boundary is
        generated by whichever operator in the slice diverges most across
        devices, not necessarily by the (possibly bit-deterministic)
        boundary operator itself.
        """
        if tuple(table.grid) != tuple(self.grid):
            raise ValueError("cannot floor a table over a different percentile grid")
        n = len(self.grid)
        slice_abs = np.zeros(n, dtype=np.float64)
        slice_rel = np.zeros(n, dtype=np.float64)
        if slice_ops is not None:
            for name in slice_ops:
                if self.has_operator(name):
                    slice_abs = np.maximum(slice_abs, self.abs_thresholds[name])
                    slice_rel = np.maximum(slice_rel, self.rel_thresholds[name])
        floored = CommitteeEnvelopeProfile(
            model_name=table.model_name,
            alpha=table.alpha,
            grid=table.grid,
            op_types=dict(table.op_types),
            envelope_percentile=self.envelope_percentile,
            rel_scale_floor=self.rel_scale_floor,
            num_samples=self.num_samples,
            num_pairs=self.num_pairs,
        )
        for name in table.abs_thresholds:
            abs_tau = np.asarray(table.abs_thresholds[name], dtype=np.float64)
            rel_tau = np.asarray(table.rel_thresholds[name], dtype=np.float64)
            if self.has_operator(name):
                abs_tau = np.maximum(abs_tau, self.abs_thresholds[name])
                rel_tau = np.maximum(rel_tau, self.rel_thresholds[name])
            floored.abs_thresholds[name] = np.maximum(abs_tau, slice_abs)
            floored.rel_thresholds[name] = np.maximum(rel_tau, slice_rel)
        return floored

    # ------------------------------------------------------------------
    # Commitment payload / serialization (extends the table's with provenance)
    # ------------------------------------------------------------------

    def leaf_payloads(self) -> Dict[str, bytes]:
        """Canonical per-operator payloads merkleized into the root ``r_c``."""
        payloads: Dict[str, bytes] = {}
        for name in self.operator_names():
            payloads[name] = canonical_bytes({
                "node": name,
                "op_type": self.op_types.get(name, ""),
                "safety_factor": self.alpha,
                "envelope_percentile": self.envelope_percentile,
                "rel_scale_floor": self.rel_scale_floor,
                "grid": list(self.grid),
                "abs": self.abs_thresholds[name],
                "rel": self.rel_thresholds[name],
            })
        return payloads

    def to_dict(self) -> Dict[str, object]:
        payload = super().to_dict()
        payload.update({
            "envelope_percentile": self.envelope_percentile,
            "rel_scale_floor": self.rel_scale_floor,
            "num_samples": self.num_samples,
            "num_pairs": self.num_pairs,
            "stability": dict(self.stability),
        })
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CommitteeEnvelopeProfile":
        profile = cls(
            model_name=str(payload["model_name"]),
            alpha=float(payload["alpha"]),
            grid=tuple(payload["grid"]),
            envelope_percentile=float(payload.get("envelope_percentile", 100.0)),
            rel_scale_floor=float(payload.get("rel_scale_floor",
                                              DEFAULT_REL_SCALE_FLOOR)),
            num_samples=int(payload.get("num_samples", 0)),
            num_pairs=int(payload.get("num_pairs", 0)),
            stability={k: float(v)
                       for k, v in dict(payload.get("stability", {})).items()},
        )
        for name, entry in dict(payload["operators"]).items():
            profile.abs_thresholds[name] = np.asarray(entry["abs"], dtype=np.float64)
            profile.rel_thresholds[name] = np.asarray(entry["rel"], dtype=np.float64)
            profile.op_types[name] = str(entry.get("op_type", ""))
        return profile


def leaf_operands(graph_module: GraphModule, node: Node,
                  trace_values: Dict[str, np.ndarray]) -> List[np.ndarray]:
    """Resolve one operator's operand tensors the way the dispute leaf does.

    Parameters and constants come from the *committed* model (a proposer
    cannot substitute them at the leaf — they are Merkle-bound), everything
    else from the supplied trace (upstream values are implicitly agreed by
    the selection rule).
    """
    operands: List[np.ndarray] = []
    for arg in node.args:
        if isinstance(arg, Node):
            if arg.op == "get_param":
                operands.append(np.asarray(graph_module.parameters[arg.target]))
            elif arg.op == "constant":
                operands.append(np.asarray(graph_module.graph.constants[arg.target]))
            else:
                operands.append(np.asarray(trace_values[arg.name]))
        else:
            operands.append(arg)
    return operands


def calibrate_committee_envelope(
    graph_module: GraphModule,
    dataset: Iterable[Dict[str, np.ndarray]],
    config: Optional[CommitteeEnvelopeConfig] = None,
) -> CommitteeEnvelopeProfile:
    """Calibrate the committee leaf's per-operator acceptance envelope.

    For every calibration input the traced model runs on each fleet device
    (the proposer candidates); for every operator and ordered pair
    *(proposer device, member device)* the proposer's traced output is
    compared against a single-operator re-execution from the proposer's own
    operands on the member's device.  Per-sample profiles (max over pairs)
    aggregate across samples at ``config.envelope_percentile`` per grid
    point and scale by ``config.safety_factor``.
    """
    config = config or CommitteeEnvelopeConfig()
    operators = list(graph_module.graph.operators)
    interpreters = [Interpreter(device) for device in config.devices]

    per_sample: Dict[str, List[PercentileProfile]] = {
        node.name: [] for node in operators
    }
    op_types = {node.name: node.target for node in operators}
    num_samples = 0

    for sample in dataset:
        num_samples += 1
        traces = [
            interp.run(graph_module, dict(sample), record=True)
            for interp in interpreters
        ]
        for node in operators:
            sample_profile: Optional[PercentileProfile] = None
            for j, trace in enumerate(traces):
                proposed = np.asarray(trace.values[node.name])
                if config.skip_integer_outputs and proposed.dtype.kind in "iub":
                    continue
                operands = leaf_operands(graph_module, node, trace.values)
                for k, member in enumerate(interpreters):
                    if k == j:
                        continue
                    reference = member.run_single_operator(
                        graph_module, node.name, operands
                    )
                    abs_err, rel_err = leaf_elementwise_errors(
                        proposed, reference, config.rel_scale_floor,
                        config.relative_epsilon,
                    )
                    # Cover both normalization directions, as the threshold
                    # calibrator does: the leaf check normalizes by the
                    # proposer's claim, but the committed envelope must hold
                    # whichever side a checker divides by.
                    _, rel_err_rev = leaf_elementwise_errors(
                        reference, proposed, config.rel_scale_floor,
                        config.relative_epsilon,
                    )
                    profile = PercentileProfile.from_errors(
                        abs_err, np.maximum(rel_err, rel_err_rev),
                        config.percentile_grid,
                    )
                    sample_profile = (
                        profile if sample_profile is None
                        else sample_profile.max_with(profile)
                    )
            if sample_profile is not None:
                per_sample[node.name].append(sample_profile)

    n_devices = len(config.devices)
    profile = CommitteeEnvelopeProfile(
        model_name=graph_module.name,
        alpha=float(config.safety_factor),
        grid=tuple(config.percentile_grid),
        envelope_percentile=float(config.envelope_percentile),
        rel_scale_floor=float(config.rel_scale_floor),
        num_samples=num_samples,
        num_pairs=n_devices * (n_devices - 1),
    )
    for node in operators:
        profiles = per_sample[node.name]
        if not profiles:
            continue
        abs_stack = np.stack([p.abs_values for p in profiles])
        rel_stack = np.stack([p.rel_values for p in profiles])
        q = config.envelope_percentile
        profile.abs_thresholds[node.name] = (
            config.safety_factor * np.percentile(abs_stack, q, axis=0)
        )
        profile.rel_thresholds[node.name] = (
            config.safety_factor * np.percentile(rel_stack, q, axis=0)
        )
        profile.op_types[node.name] = op_types[node.name]
        # Top-percentile per-sample series: the Appendix-B D1 diagnostic on
        # the quantity the committed envelope actually pins.
        profile.stability[node.name] = sup_norm_drift(
            abs_stack[:, -1], window=config.stability_window
        )
    return profile
