"""Cut sets and verifiable subgraph extraction (paper Sec. 5.2).

A dispute round partitions the currently disputed operator range into N
contiguous slices of the canonical topological order.  Each slice ``S`` is
materialized as a standalone :class:`~repro.graph.graph.GraphModule` whose
placeholders are the slice's live-in activations ``In(S)``, whose outputs are
its live-out activations ``Out(S)``, and which reuses parameters by reference
(each referenced parameter carries a Merkle inclusion proof into the weight
tree).  The challenger re-executes these modules from the committed live-in
tensors when running the selection rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.graph.graph import Graph, GraphModule
from repro.graph.node import Node


@dataclass(frozen=True)
class SubgraphSlice:
    """A contiguous range [start, end) of operator indices in canonical order."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid slice [{self.start}, {self.end})")

    @property
    def size(self) -> int:
        return self.end - self.start

    def split(self, n_way: int) -> List["SubgraphSlice"]:
        """Partition into at most ``n_way`` non-empty contiguous children.

        This is the proposer's *deterministic* canonical partition policy:
        children are as equal as possible, earlier children take the extra
        operator when the size does not divide evenly, so both parties derive
        the same partition independently.
        """
        if n_way < 2:
            raise ValueError("n_way partitions require n_way >= 2")
        size = self.size
        if size <= 1:
            return [self]
        n_children = min(n_way, size)
        base = size // n_children
        remainder = size % n_children
        children: List[SubgraphSlice] = []
        cursor = self.start
        for i in range(n_children):
            length = base + (1 if i < remainder else 0)
            children.append(SubgraphSlice(cursor, cursor + length))
            cursor += length
        return children

    def contains(self, operator_index: int) -> bool:
        return self.start <= operator_index < self.end


def _operator_nodes(graph: Graph, slice_: SubgraphSlice) -> List[Node]:
    operators = graph.operators
    if slice_.end > len(operators):
        raise ValueError(
            f"slice [{slice_.start}, {slice_.end}) exceeds operator count {len(operators)}"
        )
    return operators[slice_.start:slice_.end]


def live_in(graph: Graph, slice_: SubgraphSlice) -> List[str]:
    """Names of activation values produced outside the slice but consumed inside.

    Parameters and constants are *not* included: they are reused by reference
    with Merkle inclusion proofs rather than passed as boundary tensors.
    """
    inside: Set[str] = {node.name for node in _operator_nodes(graph, slice_)}
    needed: List[str] = []
    seen: Set[str] = set()
    for node in _operator_nodes(graph, slice_):
        for dep in node.input_nodes:
            if dep.name in inside or dep.name in seen:
                continue
            if dep.op in ("get_param", "constant"):
                continue
            seen.add(dep.name)
            needed.append(dep.name)
    return needed


def live_out(graph: Graph, slice_: SubgraphSlice) -> List[str]:
    """Names of slice operators whose value is consumed outside the slice.

    A value escapes the slice if a later operator uses it or if it feeds the
    graph output.  The last operator of the slice is always included so that
    every slice exposes at least one comparable output (this matches the
    dispute game's need to compare the slice frontier even when the final
    operator's value is only consumed further downstream).
    """
    operators = _operator_nodes(graph, slice_)
    inside: Set[str] = {node.name for node in operators}
    escaping: List[str] = []
    for node in graph.nodes:
        if node.name in inside:
            continue
        for dep in node.input_nodes:
            if dep.name in inside and dep.name not in escaping:
                escaping.append(dep.name)
    if operators and operators[-1].name not in escaping:
        escaping.append(operators[-1].name)
    # Preserve canonical (topological) order of the escaping values.
    order = {node.name: idx for idx, node in enumerate(graph.nodes)}
    return sorted(escaping, key=lambda name: order[name])


def extract_subgraph(graph_module: GraphModule, slice_: SubgraphSlice) -> GraphModule:
    """Materialize ``slice_`` of ``graph_module`` as a standalone GraphModule.

    The extracted module's placeholders are the live-in activation names (so
    a recorded trace of the parent graph can feed it directly), its outputs
    are the live-out activations, and its parameter dictionary is restricted
    to parameters actually referenced inside the slice.
    """
    parent_graph = graph_module.graph
    operators = _operator_nodes(parent_graph, slice_)
    in_names = live_in(parent_graph, slice_)
    out_names = live_out(parent_graph, slice_)

    new_graph = Graph()
    mapping: Dict[str, Node] = {}

    for name in in_names:
        parent_node = parent_graph.node(name)
        node = Node(
            name=name,
            op="placeholder",
            target=name,
            shape=parent_node.shape,
            dtype=parent_node.dtype,
        )
        new_graph.add_node(node)
        mapping[name] = node

    used_params: Dict[str, np.ndarray] = {}

    def _map_arg(arg):
        if isinstance(arg, Node):
            if arg.name in mapping:
                return mapping[arg.name]
            if arg.op == "get_param":
                clone = Node(name=arg.name, op="get_param", target=arg.target,
                             shape=arg.shape, dtype=arg.dtype)
                new_graph.add_node(clone)
                mapping[arg.name] = clone
                used_params[arg.target] = graph_module.parameters[arg.target]
                return clone
            if arg.op == "constant":
                clone = Node(name=arg.name, op="constant", target=arg.target,
                             shape=arg.shape, dtype=arg.dtype)
                new_graph.add_node(clone)
                new_graph.add_constant(arg.target, parent_graph.constants[arg.target])
                mapping[arg.name] = clone
                return clone
            raise ValueError(
                f"operator {arg.name!r} escapes the slice boundary unexpectedly"
            )
        if isinstance(arg, (list, tuple)):
            return type(arg)(_map_arg(a) for a in arg)
        return arg

    for node in operators:
        clone = Node(
            name=node.name,
            op="call_op",
            target=node.target,
            args=tuple(_map_arg(a) for a in node.args),
            kwargs=dict(node.kwargs),
            shape=node.shape,
            dtype=node.dtype,
        )
        new_graph.add_node(clone)
        mapping[node.name] = clone

    output_node = Node(
        name="output",
        op="output",
        target="output",
        args=tuple(mapping[name] for name in out_names),
    )
    new_graph.add_node(output_node)

    return GraphModule(
        graph=new_graph,
        parameters=used_params,
        input_names=in_names,
        name=f"{graph_module.name}[{slice_.start}:{slice_.end}]",
        metadata={
            "parent": graph_module.name,
            "slice_start": slice_.start,
            "slice_end": slice_.end,
        },
    )


def slice_interface_names(graph_module: GraphModule,
                          slice_: SubgraphSlice) -> Tuple[List[str], List[str]]:
    """Return (live-in, live-out) activation names for ``slice_``."""
    return live_in(graph_module.graph, slice_), live_out(graph_module.graph, slice_)
