"""Adaptive adversary policies for long-horizon campaigns.

Static scenarios probe the protocol at fixed tamper magnitudes; a rational
cheater instead *learns*.  This module supplies the three learning behaviours
the campaign driver (:mod:`repro.sim.campaign`) composes:

* :class:`BoundaryAnnealer` — seeded stochastic bisection of a fault kind's
  tamper magnitude toward the detection boundary, driven by past
  caught/escaped verdicts.  Detection is monotone in magnitude for the
  annealed kinds (a bigger bit flip, cap-curve factor or weight perturbation
  produces a strictly larger committed-threshold exceedance), so the
  caught/escaped outcomes bracket the boundary from both sides.
* :class:`StakeAwareCheatPolicy` — the economics tables' expected-value rule
  (:mod:`repro.protocol.economics`, paper Sec. 5.5) deciding *whether* to
  cheat at all, conditioned on the live chain stakes: a challenger whose
  carried stake cannot cover the challenger deposit contributes nothing to
  the detection probability, and a proposer whose own stake is nearly
  depleted stops cheating (it cannot afford the slashes) and regenerates by
  serving honestly.
* :class:`CollusionStakeStrategy` — a committee collusion/Sybil strategy
  whose per-member stakes evolve cycle over cycle: colluders split bribes
  when they hold the adjudicating majority, bleed seat costs when they do
  not, and the controlling adversary re-splits its pool across fresh Sybil
  identities when individual seats run dry.  Real protocol cycles feed the
  observed dispute/collusion rates; :meth:`CollusionStakeStrategy.extrapolate`
  then evolves the stake trajectories over thousands of cycles with the
  economics recurrence alone.

Everything is seeded through :func:`repro.utils.rng.derive_seed`, so an
adaptive campaign — despite conditioning on outcomes — is bit-for-bit
repeatable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.protocol.economics import (
    EconomicParameters,
    analyze_incentives,
    detection_probability,
    proposer_payoff_honest,
)
from repro.sim.scenario import Scenario
from repro.utils.rng import derive_seed, seeded_rng

#: Fault kinds whose magnitude the annealer bisects, with the initial
#: bracket (lo, hi) and whether the magnitude is integer-valued.  The
#: brackets span well past both sides of every calibrated workload's
#: detection band: 0 bits / factor 0 / zero perturbation always escapes,
#: while the upper ends are comfortably past the static campaign defaults
#: (``DEFAULT_MAGNITUDES``) that every workload detects.
ANNEALED_KINDS: Dict[str, Tuple[float, float, bool]] = {
    "bit_flip": (0.0, 24.0, True),
    "bound_edge": (0.0, 2.0, False),
    "wrong_weight": (0.0, 1.0, False),
}


@dataclass
class BoundaryEstimate:
    """Where one fault kind's detection boundary landed after annealing."""

    kind: str
    lo: float
    hi: float
    rounds: int
    caught: int
    escaped: int
    #: Observations that contradicted monotone detection (an escape above a
    #: prior catch, or vice versa).  Zero on cleanly monotone kinds; the
    #: annealer clamps rather than inverting its bracket when noise bites.
    inversions: int

    @property
    def estimate(self) -> float:
        return (self.lo + self.hi) / 2.0

    @property
    def width(self) -> float:
        return self.hi - self.lo


class BoundaryAnnealer:
    """Seeded stochastic bisection of one fault kind's tamper magnitude.

    ``lo`` tracks the largest magnitude known to escape, ``hi`` the smallest
    known to be caught.  Each proposal lands at a seeded random point inside
    the middle of the open bracket — stochastic rather than exact bisection,
    so one unlucky probe near the boundary cannot trap the schedule on a
    knife-edge magnitude forever — and observations shrink the bracket from
    whichever side the verdict supports.
    """

    def __init__(self, kind: str, seed: int,
                 bracket: Optional[Tuple[float, float]] = None,
                 integral: Optional[bool] = None) -> None:
        default = ANNEALED_KINDS.get(kind)
        if bracket is None or integral is None:
            if default is None:
                raise ValueError(
                    f"no default bracket for fault kind {kind!r}; pass one")
        self.kind = kind
        self.lo, self.hi = bracket if bracket is not None else default[:2]
        if not self.lo < self.hi:
            raise ValueError("bracket must satisfy lo < hi")
        self.integral = default[2] if integral is None else bool(integral)
        self.rng = seeded_rng(derive_seed(seed, "annealer", kind))
        self.rounds = 0
        self.caught = 0
        self.escaped = 0
        self.inversions = 0

    def propose(self) -> float:
        """Next magnitude to probe: a jittered midpoint of the open bracket."""
        span = self.hi - self.lo
        fraction = 0.35 + 0.3 * float(self.rng.random())
        magnitude = self.lo + span * fraction
        if self.integral:
            magnitude = float(round(magnitude))
            # Integer rounding can pin the proposal on an already-resolved
            # endpoint; nudge inward so every probe carries information.
            magnitude = min(max(magnitude, math.floor(self.lo) + 1.0),
                            math.ceil(self.hi) - 1.0 if self.hi - self.lo > 1
                            else magnitude)
        return float(magnitude)

    def observe(self, magnitude: float, caught: bool) -> None:
        """Fold one verdict into the bracket (clamped, never inverted)."""
        magnitude = float(magnitude)
        self.rounds += 1
        if caught:
            self.caught += 1
            if magnitude <= self.lo:
                self.inversions += 1
            else:
                self.hi = min(self.hi, magnitude)
        else:
            self.escaped += 1
            if magnitude >= self.hi:
                self.inversions += 1
            else:
                self.lo = max(self.lo, magnitude)

    def converged(self, tolerance: float) -> bool:
        return (self.hi - self.lo) <= float(tolerance)

    def estimate(self) -> BoundaryEstimate:
        return BoundaryEstimate(
            kind=self.kind, lo=self.lo, hi=self.hi, rounds=self.rounds,
            caught=self.caught, escaped=self.escaped,
            inversions=self.inversions,
        )


# ---------------------------------------------------------------------------
# Stake-aware expected-value cheating
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CheatDecision:
    """One cycle's cheat/honest decision, with the EV terms that drove it."""

    fault_rate: float
    detection: float
    ev_cheat: float
    ev_honest: float
    challenger_weak: bool
    proposer_broke: bool


class StakeAwareCheatPolicy:
    """The economics tables' EV rule, conditioned on live chain stakes.

    The slash amount defaults to the feasible-region midpoint
    (:func:`~repro.protocol.economics.analyze_incentives`), exactly the
    operating point the economics benchmark reports.  The detection channel
    contributed by voluntary challengers (``phi_ch``) is zeroed whenever the
    standing challenger's carried stake cannot cover the challenger deposit
    — the stake-aware term: a rational proposer cheats *more* against a
    broke challenger.  A proposer whose own minimum stake falls below
    ``proposer_stake_floor`` stops scheduling cheats entirely (every slash
    costs a bond it can no longer replace) and regenerates through honest
    serving fees.
    """

    def __init__(self, params: Optional[EconomicParameters] = None,
                 slash: Optional[float] = None,
                 proposer_stake_floor: float = 2_000.0,
                 challenger_stake_floor: float = 1_000.0,
                 explore_rate: float = 0.45,
                 cheat_ceiling: float = 0.85) -> None:
        self.params = params or EconomicParameters()
        self.slash = float(analyze_incentives(self.params, slash=slash).slash)
        self.proposer_stake_floor = float(proposer_stake_floor)
        self.challenger_stake_floor = float(challenger_stake_floor)
        #: Probe rate when cheating is EV-negative: the adversary still pays
        #: for boundary information at a reduced rate, the way a rational
        #: attacker funds reconnaissance.
        self.explore_rate = float(explore_rate)
        self.cheat_ceiling = float(cheat_ceiling)

    def decide(self, proposer_stake: float,
               challenger_stake: float) -> CheatDecision:
        proposer_broke = proposer_stake < self.proposer_stake_floor
        challenger_weak = challenger_stake < self.challenger_stake_floor
        phi_ch = 0.0 if challenger_weak else self.params.challenge_probability
        detection = detection_probability(
            self.params.audit_probability, phi_ch,
            self.params.false_negative_rate)
        ev_cheat = (self.params.task_reward - self.params.cheap_cheat_cost
                    - detection * self.slash)
        ev_honest = proposer_payoff_honest(self.params, self.slash)
        if proposer_broke:
            rate = 0.0
        elif ev_cheat > ev_honest:
            rate = self.cheat_ceiling
        else:
            rate = self.explore_rate
        return CheatDecision(
            fault_rate=rate, detection=detection, ev_cheat=ev_cheat,
            ev_honest=ev_honest, challenger_weak=challenger_weak,
            proposer_broke=proposer_broke,
        )


# ---------------------------------------------------------------------------
# Committee collusion with Sybil stake dynamics
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CollusionConfig:
    """Knobs of the collusion/Sybil stake game."""

    committee_size: int = 3
    colluders: int = 2
    #: Initial stake per committee seat (chain units).
    member_stake: float = 400.0
    #: Relative stagger of opening stakes across seats (seat ``i`` opens at
    #: ``member_stake * (1 - stake_stagger * i / committee_size)``).  Real
    #: seats never hold identical stakes; without the stagger the colluders
    #: would drain in perfect lockstep and the Sybil re-split leg (one
    #: identity running dry before its siblings) could never fire.
    stake_stagger: float = 0.2
    #: Per-adjudication participation cost every active seat pays (C_a).
    seat_cost: float = 5.0
    #: Fraction of the proposer's escape gain (R_p - C'_p) bribed to the
    #: colluding majority per successful escape.
    bribe_share: float = 0.5
    #: A seat whose stake falls below this can no longer post its
    #: participation bond and drops out of the committee.
    stake_floor: float = 25.0


class CollusionStakeStrategy:
    """Per-member committee stakes evolving under collusion and Sybil churn.

    Honest seats earn the committee fee (clean rulings) or their share of
    the slash (guilty rulings) per :func:`~repro.protocol.economics.committee_member_payoff`.
    Colluding seats vote for the proposer unconditionally: when they hold
    the active majority the ruling is clean and they additionally split the
    bribe pool; when they do not, the ruling goes against them and they eat
    the seat cost with no reward.  The controlling adversary treats its
    colluders as Sybil identities over one stake pool — whenever an
    identity drops below the floor, the pool is re-split equally across all
    ``colluders`` seats (fresh identities are free), unless the whole pool
    itself can no longer float them.
    """

    def __init__(self, config: Optional[CollusionConfig] = None,
                 params: Optional[EconomicParameters] = None,
                 seed: int = 0) -> None:
        self.config = config or CollusionConfig()
        if self.config.colluders > self.config.committee_size:
            raise ValueError("cannot buy more seats than the committee has")
        self.params = params or EconomicParameters()
        self.slash = float(analyze_incentives(self.params).slash)
        self.seed = int(seed)
        n = self.config.committee_size
        steps = np.arange(n, dtype=np.float64)
        self.stakes = self.config.member_stake * (
            1.0 - self.config.stake_stagger * steps / n)
        self.active = np.ones(n, dtype=bool)
        #: Stake trajectory: one row per observed cycle (row 0 = initial).
        self.trajectory: List[np.ndarray] = [self.stakes.copy()]
        self.cycles = 0
        self.collusions = 0
        self.escapes = 0
        self.sybil_resplits = 0

    # -- state ------------------------------------------------------------

    @property
    def colluder_indices(self) -> np.ndarray:
        return np.arange(self.config.colluders)

    @property
    def honest_indices(self) -> np.ndarray:
        return np.arange(self.config.colluders, self.config.committee_size)

    def colluding_majority(self) -> bool:
        """Do the *active* colluders hold the adjudicating majority?"""
        needed = (self.config.committee_size // 2) + 1
        return int(self.active[:self.config.colluders].sum()) >= needed

    def should_collude(self) -> bool:
        """Collude only when the bought seats can actually swing the vote."""
        return self.colluding_majority()

    # -- one cycle of the stake game --------------------------------------

    def observe_cycle(self, adjudications: int, colluded: bool,
                      escaped: int = 0) -> None:
        """Fold one real (or extrapolated) protocol cycle into the stakes.

        ``adjudications`` is how many disputes reached the committee this
        cycle; ``colluded`` whether the colluders executed their strategy;
        ``escaped`` how many of those adjudications the collusion won.
        """
        cfg, params = self.config, self.params
        adjudications = int(adjudications)
        escaped = min(int(escaped), adjudications)
        self.cycles += 1
        if colluded:
            self.collusions += 1
        self.escapes += escaped
        for i in range(adjudications):
            collusion_won = colluded and i < escaped
            active = self.active
            self.stakes[active] -= cfg.seat_cost
            if collusion_won:
                # Clean ruling: every active seat collects the committee
                # fee, and the colluders split the proposer's bribe.
                self.stakes[active] += params.committee_fee
                bribe = cfg.bribe_share * (params.task_reward
                                           - params.cheap_cheat_cost)
                colluders = active.copy()
                colluders[cfg.colluders:] = False
                count = int(colluders.sum())
                if count:
                    self.stakes[colluders] += bribe / count
            else:
                # Guilty ruling: honest seats split the committee's reward
                # share of the slash; colluders (who voted clean, if they
                # colluded) get nothing beyond their sunk seat cost.
                reward = (params.committee_reward_share * self.slash
                          / cfg.committee_size)
                honest = active.copy()
                if colluded:
                    honest[:cfg.colluders] = False
                self.stakes[honest] += reward
            self._churn()
        self.trajectory.append(self.stakes.copy())

    def _churn(self) -> None:
        """Drop dry seats; re-split the Sybil pool across fresh identities."""
        cfg = self.config
        dry = self.active & (self.stakes < cfg.stake_floor)
        if not dry.any():
            return
        self.active[dry] = False
        # Sybil leg: the adversary pools its colluding stake and respawns
        # all of its identities whenever the pool still floats them.
        colluder_dry = dry[:cfg.colluders].any()
        if colluder_dry:
            pool = float(self.stakes[:cfg.colluders].sum())
            if pool / cfg.colluders >= cfg.stake_floor:
                self.stakes[:cfg.colluders] = pool / cfg.colluders
                self.active[:cfg.colluders] = True
                self.sybil_resplits += 1

    # -- long-horizon extrapolation ----------------------------------------

    def extrapolate(self, num_cycles: int, dispute_rate: float,
                    escape_rate: float = 1.0,
                    seed_label: str = "extrapolate") -> np.ndarray:
        """Evolve a *copy* of the stake game over thousands of cycles.

        The real campaign observes a few dozen protocol cycles; this runs
        the same per-cycle recurrence forward using the observed dispute
        rate (adjudications per cycle, Poisson-sampled) and the observed
        collusion escape rate, seeded so the trajectory is reproducible.
        Returns an array of shape ``(num_cycles + 1, committee_size)``.
        """
        clone = CollusionStakeStrategy(self.config, self.params, self.seed)
        clone.stakes = self.stakes.copy()
        clone.active = self.active.copy()
        rng = seeded_rng(derive_seed(self.seed, "collusion", seed_label))
        rows = [clone.stakes.copy()]
        for _ in range(int(num_cycles)):
            adjudications = int(rng.poisson(max(dispute_rate, 0.0)))
            colluded = clone.should_collude() and adjudications > 0
            escaped = sum(
                1 for _ in range(adjudications)
                if colluded and rng.random() < escape_rate
            )
            clone.observe_cycle(adjudications, colluded, escaped)
            rows.append(clone.stakes.copy())
        #: How many Sybil re-splits the extrapolated horizon needed (the
        #: real strategy's own counter is left untouched).
        self.last_extrapolation_resplits = clone.sybil_resplits
        return np.stack(rows)


# ---------------------------------------------------------------------------
# The composed adaptive adversary
# ---------------------------------------------------------------------------

class AdaptiveAdversary:
    """Plan each campaign cycle's scenario from everything observed so far.

    Per cycle the adversary:

    * reads the live stakes off the campaign ledger and runs the EV rule
      (:class:`StakeAwareCheatPolicy`) to set the cycle's fault rate;
    * rotates through the annealed fault kinds, probing each at the
      magnitude its :class:`BoundaryAnnealer` proposes — the tamper walks
      toward the detection boundary as verdicts accumulate;
    * every ``collusion_every`` cycles (while its bought seats still hold
      the committee majority) runs a collusion probe instead: a
      committee-leaf scenario with a bought majority, feeding the
      :class:`CollusionStakeStrategy` stake game;
    * draws the cycle's heterogeneous device pool from a seeded drift
      schedule — devices with distinct calibration profiles enter and leave
      mid-campaign, and ``device_drift`` events sample proposers from
      whichever subset is present.

    Scenario seeds derive as ``derive_seed(seed, "campaign-cycle", cycle)``
    and names embed only the cycle index and mode — *not* any observed
    quantity — so identical observation streams yield identical plans and
    the whole campaign replays bit-for-bit (the determinism pin depends on
    this).
    """

    def __init__(self, model: str, seed: int,
                 params: Optional[EconomicParameters] = None,
                 policy: Optional[StakeAwareCheatPolicy] = None,
                 collusion: Optional[CollusionStakeStrategy] = None,
                 requests_per_cycle: int = 5,
                 collusion_every: int = 6,
                 collusion_fault_rate: float = 0.6,
                 device_pool: Tuple[int, ...] = (0, 1, 2, 3),
                 initial_balance: float = 10_000.0,
                 name_prefix: str = "campaign") -> None:
        #: Low audit pressure by default: the regime in which a depleted
        #: challenger flips cheap cheating EV-positive (paper Sec. 5.5) — the
        #: stake-aware policy has something real to react to.
        self.params = params or EconomicParameters(audit_probability=0.05)
        self.policy = policy or StakeAwareCheatPolicy(self.params)
        self.collusion = collusion or CollusionStakeStrategy(
            params=self.params, seed=seed)
        self.annealers: Dict[str, BoundaryAnnealer] = {
            kind: BoundaryAnnealer(kind, seed) for kind in ANNEALED_KINDS
        }
        self.model = model
        self.seed = int(seed)
        self.requests_per_cycle = int(requests_per_cycle)
        self.collusion_every = int(collusion_every)
        self.collusion_fault_rate = float(collusion_fault_rate)
        self.device_pool = tuple(int(d) for d in device_pool)
        self.initial_balance = float(initial_balance)
        self.name_prefix = name_prefix
        self.decisions: List[CheatDecision] = []

    # -- stake reads -------------------------------------------------------

    def proposer_stake(self, ledger: Dict[str, float]) -> float:
        """Worst-off adversarial proposer stake (the EV rule's budget)."""
        stakes = [balance for account, balance in ledger.items()
                  if account.startswith("sim-proposer-")]
        return min(stakes) if stakes else self.initial_balance

    def challenger_stake(self, ledger: Dict[str, float]) -> float:
        return float(ledger.get(f"{self.model}-challenger",
                                self.initial_balance))

    # -- drift schedule ----------------------------------------------------

    def drift_pool(self, cycle: int) -> Tuple[int, ...]:
        """The device subset present during ``cycle`` (seeded, stateless).

        Between 2 and all of ``device_pool`` are present each cycle, so
        drifted proposers keep executing on a fleet whose calibration mix
        shifts mid-campaign.
        """
        rng = seeded_rng(derive_seed(self.seed, "drift", cycle))
        count = len(self.device_pool)
        size = 2 + int(rng.integers(0, count - 1)) if count > 2 else count
        picks = rng.choice(count, size=size, replace=False)
        return tuple(sorted(self.device_pool[int(p)] for p in picks))

    # -- planning ----------------------------------------------------------

    def next_scenario(self, cycle: int,
                      ledger: Dict[str, float]) -> Tuple[Scenario, Dict[str, object]]:
        """Plan cycle ``cycle`` against the current campaign ledger."""
        cycle = int(cycle)
        decision = self.policy.decide(self.proposer_stake(ledger),
                                      self.challenger_stake(ledger))
        self.decisions.append(decision)
        seed = derive_seed(self.seed, "campaign-cycle", cycle)
        pool = self.drift_pool(cycle)
        collusion_probe = (
            self.collusion_every > 0
            and cycle % self.collusion_every == self.collusion_every - 1
            and not decision.proposer_broke
            and self.collusion.should_collude()
        )
        if collusion_probe:
            scenario = Scenario(
                name=f"{self.name_prefix}-collusion-c{cycle}",
                seed=seed,
                model=self.model,
                num_requests=self.requests_per_cycle,
                fault_rate=self.collusion_fault_rate,
                fault_kinds=("colluding_committee",),
                leaf_path="committee",
                colluding_committee=True,
                drift_devices=pool,
            )
            meta: Dict[str, object] = {
                "cycle": cycle, "mode": "collusion", "kind": "colluding_committee",
                "magnitude": scenario.magnitude_for("colluding_committee"),
                "decision": decision, "drift_pool": pool,
            }
            return scenario, meta
        kinds = tuple(self.annealers)
        kind = kinds[cycle % len(kinds)]
        magnitude = self.annealers[kind].propose()
        scenario = Scenario(
            name=f"{self.name_prefix}-{kind}-c{cycle}",
            seed=seed,
            model=self.model,
            num_requests=self.requests_per_cycle,
            fault_rate=decision.fault_rate,
            fault_kinds=(kind, "device_drift"),
            # Annealed magnitudes deliberately straddle the boundary; on the
            # small end a localization-dependent tamper can legitimately
            # dead-end the bisection, so S3's strict form stays off.
            strict_localization=False,
            drift_devices=pool,
        ).with_magnitude(kind, magnitude)
        meta = {
            "cycle": cycle, "mode": "anneal", "kind": kind,
            "magnitude": magnitude, "decision": decision, "drift_pool": pool,
        }
        return scenario, meta

    # -- feedback ----------------------------------------------------------

    def observe(self, meta: Dict[str, object],
                rows: List[Dict[str, object]]) -> Tuple[int, int]:
        """Fold one finished scenario's event rows back into the policies.

        ``rows`` are the campaign result frame's per-event verdict rows.
        Returns ``(caught, escaped)`` for the cycle's planned fault kind.
        """
        kind = str(meta["kind"])
        caught = escaped = 0
        if meta["mode"] == "collusion":
            adjudications = sum(1 for row in rows if row["adjudicated"])
            for row in rows:
                # A collusion win ends with the *challenger* slashed: the
                # bought majority acquits the flagged cheat.
                if row["kind"] == kind and row["status"] == "challenger_slashed":
                    escaped += 1
                elif row["kind"] == kind and row["slashed"]:
                    caught += 1
            self.collusion.observe_cycle(adjudications, colluded=True,
                                         escaped=escaped)
            return caught, escaped
        annealer = self.annealers.get(kind)
        for row in rows:
            if row["kind"] != kind:
                continue
            row_caught = bool(row["flagged"] or row["slashed"])
            if row_caught:
                caught += 1
            elif row["finalized"]:
                escaped += 1
            if annealer is not None:
                annealer.observe(float(meta["magnitude"]), row_caught)
        return caught, escaped

    def boundary_estimates(self) -> Dict[str, BoundaryEstimate]:
        return {kind: annealer.estimate()
                for kind, annealer in self.annealers.items()}
