"""Figure 3: deterministic vs probabilistic theoretical error bounds per operator type.

The paper compares the mean absolute theoretical error under the worst-case
``gamma_k`` model against the probabilistic ``gamma_tilde_k(lambda=4)`` model
for representative operator types of Qwen-8B (mean, linear, matmul) and
BERT-large (linear, matmul, layer_norm), finding the probabilistic bounds
markedly tighter — one order of magnitude or more for long reductions.
"""

from __future__ import annotations

from typing import Dict

from repro.bounds.coexec import BoundInterpreter
from repro.bounds.fp_model import BoundMode
from repro.tensorlib.device import DEVICE_FLEET

from benchmarks.reporting import emit_table

QWEN_OPERATORS = ("mean", "linear", "matmul", "bmm", "rms_norm")
BERT_OPERATORS = ("linear", "matmul", "bmm", "layer_norm")


def _mean_bounds_by_type(bench_model, mode: BoundMode) -> Dict[str, float]:
    execution = BoundInterpreter(DEVICE_FLEET[0], mode=mode).run(
        bench_model.graph, bench_model.inputs(seed=4242)
    )
    return execution.mean_bound_by_operator_type(bench_model.graph)


def test_fig3_theoretical_bounds(benchmark, bench_qwen, bench_bert):
    def run():
        return {
            "qwen_mini": {
                "deterministic": _mean_bounds_by_type(bench_qwen, BoundMode.DETERMINISTIC),
                "probabilistic": _mean_bounds_by_type(bench_qwen, BoundMode.PROBABILISTIC),
            },
            "bert_mini": {
                "deterministic": _mean_bounds_by_type(bench_bert, BoundMode.DETERMINISTIC),
                "probabilistic": _mean_bounds_by_type(bench_bert, BoundMode.PROBABILISTIC),
            },
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for model, operators in (("qwen_mini", QWEN_OPERATORS), ("bert_mini", BERT_OPERATORS)):
        det = results[model]["deterministic"]
        prob = results[model]["probabilistic"]
        for op_type in operators:
            if op_type not in det:
                continue
            ratio = det[op_type] / prob[op_type] if prob[op_type] > 0 else float("inf")
            rows.append([model, op_type, prob[op_type], det[op_type], ratio])
    emit_table(
        "fig3_theoretical_bounds",
        "Deterministic vs probabilistic theoretical error bounds by operator type",
        ["model", "operator type", "probabilistic mean |tau|", "deterministic mean |tau|",
         "det / prob"],
        rows,
        notes=("Paper: probabilistic bounds are markedly tighter than deterministic ones, "
               "especially for large reduction lengths (Fig. 3)."),
    )

    # Reproduction checks: the probabilistic bound is tighter for every
    # reduction-bearing operator family in both models.
    for model in ("qwen_mini", "bert_mini"):
        det = results[model]["deterministic"]
        prob = results[model]["probabilistic"]
        for op_type in ("linear", "bmm"):
            assert det[op_type] > prob[op_type]
        assert all(value >= 0 for value in det.values())
