"""Tests for reverse-mode differentiation through traced graphs."""

import numpy as np
import pytest

from repro.attacks.autodiff import GraphBackward, margin_gradients
from repro.graph.interpreter import Interpreter
from repro.tensorlib.device import REFERENCE_DEVICE


def _finite_diff_margin(mlp_graph, inputs, node_name, direction, original, target,
                        epsilon=1e-4, batch_index=0):
    """Directional derivative of the margin w.r.t. an intermediate node via overrides."""
    interp = Interpreter(REFERENCE_DEVICE)

    def margin_with_delta(scale):
        base = interp.run(mlp_graph, inputs, record=True)
        delta = (scale * direction).astype(np.float32)
        trace = interp.run(mlp_graph, inputs, record=True,
                           delta_overrides={node_name: delta})
        logits = trace.values[mlp_graph.graph.output_node.args[0].name]
        return float(logits[batch_index, target] - logits[batch_index, original])

    return (margin_with_delta(epsilon) - margin_with_delta(-epsilon)) / (2 * epsilon)


def test_margin_gradients_match_finite_differences(mlp_graph, mlp_inputs):
    interp = Interpreter(REFERENCE_DEVICE)
    trace = interp.run(mlp_graph, mlp_inputs, record=True)
    logits_node = mlp_graph.graph.output_node.args[0].name
    logits = trace.values[logits_node]
    original = int(np.argmax(logits[0]))
    target = int(np.argsort(logits[0])[-2])

    for node_name in ("gelu", "linear_1", "relu"):
        grads = margin_gradients(mlp_graph, trace.values, logits_node, original, target,
                                 [node_name], batch_index=0)
        grad = grads[node_name]
        rng = np.random.default_rng(5)
        direction = rng.standard_normal(grad.shape)
        analytic = float(np.sum(grad * direction))
        numeric = _finite_diff_margin(mlp_graph, mlp_inputs, node_name, direction,
                                      original, target)
        assert analytic == pytest.approx(numeric, rel=0.05, abs=1e-4), node_name


def test_backward_returns_only_requested_nodes(mlp_graph, mlp_inputs):
    interp = Interpreter(REFERENCE_DEVICE)
    trace = interp.run(mlp_graph, mlp_inputs, record=True)
    logits_node = mlp_graph.graph.output_node.args[0].name
    seed = np.zeros_like(trace.values[logits_node], dtype=np.float64)
    seed[0, 0] = 1.0
    backward = GraphBackward(mlp_graph)
    restricted = backward.run(trace.values, {logits_node: seed}, wanted=["gelu"])
    assert set(restricted) == {"gelu"}
    full = backward.run(trace.values, {logits_node: seed})
    assert "gelu" in full and "relu" in full and "layer_norm" in full


def test_gradients_do_not_flow_into_parameters_or_constants(mlp_graph, mlp_inputs):
    interp = Interpreter(REFERENCE_DEVICE)
    trace = interp.run(mlp_graph, mlp_inputs, record=True)
    logits_node = mlp_graph.graph.output_node.args[0].name
    seed = np.ones_like(trace.values[logits_node], dtype=np.float64)
    grads = GraphBackward(mlp_graph).run(trace.values, {logits_node: seed})
    param_nodes = {n.name for n in mlp_graph.graph.parameters_used}
    assert not param_nodes.intersection(grads)


def test_zero_seed_gives_zero_gradients(mlp_graph, mlp_inputs):
    interp = Interpreter(REFERENCE_DEVICE)
    trace = interp.run(mlp_graph, mlp_inputs, record=True)
    logits_node = mlp_graph.graph.output_node.args[0].name
    seed = np.zeros_like(trace.values[logits_node], dtype=np.float64)
    grads = GraphBackward(mlp_graph).run(trace.values, {logits_node: seed}, wanted=["gelu"])
    assert np.allclose(grads["gelu"], 0.0)


def test_margin_gradients_require_distinct_classes(mlp_graph, mlp_inputs):
    interp = Interpreter(REFERENCE_DEVICE)
    trace = interp.run(mlp_graph, mlp_inputs, record=True)
    logits_node = mlp_graph.graph.output_node.args[0].name
    grads = margin_gradients(mlp_graph, trace.values, logits_node, 0, 0, ["gelu"])
    # Same class for original and target: the seed cancels to zero.
    assert np.allclose(grads["gelu"], 0.0)
