"""Structural / data-movement operators.

Reshape, transpose, concatenation, slicing, embedding lookup, masked fill and
eval-mode dropout move or select data without performing floating-point
arithmetic, so they introduce no rounding error (``introduces_rounding=False``
— the paper's bound templates assign them zero fresh error).  They still
appear as graph nodes because the dispute game partitions the full traced
operator sequence.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.ops.registry import OpSpec, register_op
from repro.tensorlib.device import DeviceProfile


def _identity_flops(out, *tensors, **attrs) -> float:
    return 0.0


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------

def _reshape_forward(device: DeviceProfile, x, *, shape: Sequence[int]) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(x)).reshape(tuple(int(s) for s in shape))


def _reshape_vjp(device, grad_out, out, x, *, shape):
    return (np.asarray(grad_out, dtype=np.float64).reshape(np.shape(x)),)


def _flatten_forward(device: DeviceProfile, x, *, start_dim: int = 0) -> np.ndarray:
    arr = np.asarray(x)
    start = int(start_dim) % arr.ndim
    new_shape = arr.shape[:start] + (-1,)
    return np.ascontiguousarray(arr).reshape(new_shape)


def _flatten_vjp(device, grad_out, out, x, *, start_dim: int = 0):
    return (np.asarray(grad_out, dtype=np.float64).reshape(np.shape(x)),)


def _transpose_forward(device: DeviceProfile, x, *, axis0: int, axis1: int) -> np.ndarray:
    return np.ascontiguousarray(np.swapaxes(np.asarray(x), int(axis0), int(axis1)))


def _transpose_vjp(device, grad_out, out, x, *, axis0: int, axis1: int):
    return (np.swapaxes(np.asarray(grad_out, dtype=np.float64), int(axis0), int(axis1)),)


def _permute_forward(device: DeviceProfile, x, *, dims: Sequence[int]) -> np.ndarray:
    return np.ascontiguousarray(np.transpose(np.asarray(x), tuple(int(d) for d in dims)))


def _permute_vjp(device, grad_out, out, x, *, dims):
    dims = tuple(int(d) for d in dims)
    inverse = np.argsort(dims)
    return (np.transpose(np.asarray(grad_out, dtype=np.float64), inverse),)


def _expand_forward(device: DeviceProfile, x, *, shape: Sequence[int]) -> np.ndarray:
    return np.ascontiguousarray(np.broadcast_to(np.asarray(x), tuple(int(s) for s in shape)))


def _expand_vjp(device, grad_out, out, x, *, shape):
    grad = np.asarray(grad_out, dtype=np.float64)
    x_shape = np.shape(x)
    while grad.ndim > len(x_shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(x_shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return (grad,)


# ---------------------------------------------------------------------------
# Concatenation / slicing / gathering
# ---------------------------------------------------------------------------

def _concat_forward(device: DeviceProfile, *tensors, axis: int = 0) -> np.ndarray:
    arrays = [np.asarray(t, dtype=np.float32) for t in tensors]
    return np.concatenate(arrays, axis=int(axis)).astype(np.float32)


def _concat_vjp(device, grad_out, out, *tensors, axis: int = 0):
    grad = np.asarray(grad_out, dtype=np.float64)
    sizes = [np.shape(t)[int(axis) % grad.ndim] for t in tensors]
    splits = np.cumsum(sizes)[:-1]
    return tuple(np.split(grad, splits, axis=int(axis)))


def _slice_forward(device: DeviceProfile, x, *, axis: int, start: int,
                   stop: Optional[int] = None, step: int = 1) -> np.ndarray:
    arr = np.asarray(x)
    index = [slice(None)] * arr.ndim
    index[int(axis) % arr.ndim] = slice(int(start), None if stop is None else int(stop), int(step))
    return np.ascontiguousarray(arr[tuple(index)])


def _slice_vjp(device, grad_out, out, x, *, axis: int, start: int, stop=None, step: int = 1):
    grad_x = np.zeros(np.shape(x), dtype=np.float64)
    index = [slice(None)] * grad_x.ndim
    index[int(axis) % grad_x.ndim] = slice(int(start), None if stop is None else int(stop), int(step))
    grad_x[tuple(index)] = np.asarray(grad_out, dtype=np.float64)
    return (grad_x,)


def _index_select_forward(device: DeviceProfile, x, indices, *, axis: int = 0) -> np.ndarray:
    arr = np.asarray(x)
    idx = np.asarray(indices, dtype=np.int64)
    return np.ascontiguousarray(np.take(arr, idx, axis=int(axis)))


def _index_select_vjp(device, grad_out, out, x, indices, *, axis: int = 0):
    grad_x = np.zeros(np.shape(x), dtype=np.float64)
    idx = np.asarray(indices, dtype=np.int64)
    grad = np.asarray(grad_out, dtype=np.float64)
    np.add.at(grad_x, tuple([slice(None)] * (int(axis) % grad_x.ndim) + [idx]), grad)
    return grad_x, None


def _embedding_forward(device: DeviceProfile, indices, weight) -> np.ndarray:
    idx = np.asarray(indices, dtype=np.int64)
    table = np.asarray(weight, dtype=np.float32)
    return np.ascontiguousarray(table[idx])


def _embedding_vjp(device, grad_out, out, indices, weight):
    idx = np.asarray(indices, dtype=np.int64)
    grad = np.asarray(grad_out, dtype=np.float64)
    grad_w = np.zeros(np.shape(weight), dtype=np.float64)
    np.add.at(grad_w, idx.reshape(-1), grad.reshape(-1, grad.shape[-1]))
    return None, grad_w


def _masked_fill_forward(device: DeviceProfile, x, mask, *, value: float) -> np.ndarray:
    x32 = np.asarray(x, dtype=np.float32)
    m = np.asarray(mask, dtype=bool)
    return np.where(m, np.float32(value), x32).astype(np.float32)


def _masked_fill_vjp(device, grad_out, out, x, mask, *, value: float):
    m = np.asarray(mask, dtype=bool)
    grad = np.asarray(grad_out, dtype=np.float64)
    grad_x = np.where(m, 0.0, grad)
    # Reduce broadcast mask dims back to x's shape if necessary.
    x_shape = np.shape(x)
    while grad_x.ndim > len(x_shape):
        grad_x = grad_x.sum(axis=0)
    for axis, size in enumerate(x_shape):
        if size == 1 and grad_x.shape[axis] != 1:
            grad_x = grad_x.sum(axis=axis, keepdims=True)
    return grad_x, None


def _dropout_forward(device: DeviceProfile, x, *, p: float = 0.1) -> np.ndarray:
    """Eval-mode dropout: the identity (the paper instruments inference graphs)."""
    return np.asarray(x, dtype=np.float32).copy()


def _dropout_vjp(device, grad_out, out, x, *, p: float = 0.1):
    return (np.asarray(grad_out, dtype=np.float64),)


def _pad_forward(device: DeviceProfile, x, *, pad_width: Sequence[Sequence[int]],
                 value: float = 0.0) -> np.ndarray:
    widths = tuple(tuple(int(v) for v in pair) for pair in pad_width)
    return np.pad(np.asarray(x, dtype=np.float32), widths, mode="constant",
                  constant_values=np.float32(value))


def _pad_vjp(device, grad_out, out, x, *, pad_width, value: float = 0.0):
    grad = np.asarray(grad_out, dtype=np.float64)
    index = tuple(
        slice(int(before), grad.shape[axis] - int(after))
        for axis, (before, after) in enumerate(pad_width)
    )
    return (grad[index],)


def _identity_forward(device: DeviceProfile, x) -> np.ndarray:
    return np.asarray(x).copy()


def _identity_vjp(device, grad_out, out, x):
    return (np.asarray(grad_out, dtype=np.float64),)


def _register_structural() -> None:
    no_round = dict(category="structural", introduces_rounding=False)
    register_op(OpSpec("reshape", _reshape_forward, _reshape_vjp, _identity_flops, **no_round))
    register_op(OpSpec("flatten", _flatten_forward, _flatten_vjp, _identity_flops, **no_round))
    register_op(OpSpec("transpose", _transpose_forward, _transpose_vjp, _identity_flops, **no_round))
    register_op(OpSpec("permute", _permute_forward, _permute_vjp, _identity_flops, **no_round))
    register_op(OpSpec("expand", _expand_forward, _expand_vjp, _identity_flops, **no_round))
    register_op(OpSpec("concat", _concat_forward, _concat_vjp, _identity_flops, **no_round))
    register_op(OpSpec("slice", _slice_forward, _slice_vjp, _identity_flops, **no_round))
    register_op(OpSpec("index_select", _index_select_forward, _index_select_vjp,
                       _identity_flops, **no_round))
    register_op(OpSpec("embedding", _embedding_forward, _embedding_vjp, _identity_flops, **no_round))
    register_op(OpSpec("masked_fill", _masked_fill_forward, _masked_fill_vjp,
                       _identity_flops, **no_round))
    register_op(OpSpec("dropout", _dropout_forward, _dropout_vjp, _identity_flops, **no_round))
    register_op(OpSpec("pad", _pad_forward, _pad_vjp, _identity_flops, **no_round))
    register_op(OpSpec("identity", _identity_forward, _identity_vjp, _identity_flops, **no_round))


_register_structural()
