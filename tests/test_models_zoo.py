"""Tests for the model zoo: every workload traces, runs and diverges across devices."""

import numpy as np
import pytest

from repro.graph.interpreter import Interpreter
from repro.models import available_models, build_model, get_model_spec
from repro.models.bert import BertConfig, MiniBERT
from repro.models.diffusion import MiniUNet, UNetConfig
from repro.models.qwen import MiniQwen, QwenConfig
from repro.models.resnet import MiniResNet, ResNetConfig
from repro.tensorlib.device import DEVICE_FLEET

SMALL_MODELS = ["resnet_mini", "bert_mini", "qwen_mini", "diffusion_mini"]


def test_zoo_lists_expected_models():
    names = available_models()
    for expected in SMALL_MODELS + ["bert_deep", "resnet_deep"]:
        assert expected in names
    with pytest.raises(KeyError):
        get_model_spec("gpt_xxl")


def test_build_model_returns_module():
    module = build_model("bert_mini")
    assert isinstance(module, MiniBERT)


@pytest.fixture(scope="module")
def traced_models():
    traced = {}
    for name in SMALL_MODELS:
        spec = get_model_spec(name)
        module = spec.build_module()
        traced[name] = (spec, module, spec.trace(module, batch_size=1))
    return traced


@pytest.mark.parametrize("name", SMALL_MODELS)
def test_models_trace_to_reasonable_graphs(traced_models, name):
    spec, module, gm = traced_models[name]
    assert gm.num_operators > 40, f"{name} should expose an operator-granular graph"
    assert len(gm.parameters) > 10
    gm.graph.validate()
    description = gm.describe()
    assert description["num_operators"] == gm.num_operators


@pytest.mark.parametrize("name", SMALL_MODELS)
def test_models_run_and_diverge_across_devices(traced_models, name):
    spec, module, gm = traced_models[name]
    inputs = spec.sample_inputs(module, 1, seed=321)
    traces = [Interpreter(device).run(gm, inputs, record=True) for device in DEVICE_FLEET[:3]]
    reference = traces[0]
    max_diff = 0.0
    for trace in traces[1:]:
        for out_a, out_b in zip(reference.outputs, trace.outputs):
            assert np.allclose(out_a, out_b, atol=1e-2), f"{name} outputs not close across devices"
            max_diff = max(max_diff, float(np.abs(out_a.astype(np.float64)
                                                  - out_b.astype(np.float64)).max()))
    assert max_diff > 0.0, f"{name}: simulated devices should not agree bitwise"


@pytest.mark.parametrize("name", SMALL_MODELS)
def test_dataset_sampling_is_deterministic_and_fresh(traced_models, name):
    spec, module, _ = traced_models[name]
    first = spec.dataset(module, 3, seed=9)
    second = spec.dataset(module, 3, seed=9)
    other = spec.dataset(module, 3, seed=10)
    for a, b in zip(first, second):
        for key in a:
            assert np.array_equal(a[key], b[key])
    assert any(not np.array_equal(first[0][key], other[0][key]) for key in first[0])


def test_resnet_operator_mix(traced_models):
    _, _, gm = traced_models["resnet_mini"]
    targets = {n.target for n in gm.graph.operators}
    assert {"conv2d", "batch_norm", "relu", "max_pool2d", "adaptive_avg_pool2d",
            "linear", "add"}.issubset(targets)


def test_bert_operator_mix(traced_models):
    _, _, gm = traced_models["bert_mini"]
    targets = {n.target for n in gm.graph.operators}
    assert {"embedding", "linear", "bmm", "softmax", "layer_norm", "gelu", "tanh"}.issubset(targets)


def test_qwen_operator_mix(traced_models):
    _, _, gm = traced_models["qwen_mini"]
    targets = {n.target for n in gm.graph.operators}
    assert {"embedding", "rms_norm", "silu", "masked_fill", "softmax", "bmm",
            "linear"}.issubset(targets)
    # Causal masking: attending to the future is forbidden, so the last-token
    # logits must not change when future positions change... (structural check:
    # the mask constant exists in the graph).
    assert len(gm.graph.constants) >= 1


def test_diffusion_operator_mix(traced_models):
    _, _, gm = traced_models["diffusion_mini"]
    targets = {n.target for n in gm.graph.operators}
    assert {"conv2d", "group_norm", "silu", "upsample_nearest", "concat"}.issubset(targets)


def test_resnet_output_shape():
    config = ResNetConfig(num_classes=7)
    model = MiniResNet(config)
    spec_inputs = model.example_inputs(batch_size=3)
    from repro.graph.tracer import trace_module

    gm = trace_module(model, spec_inputs)
    out = Interpreter(DEVICE_FLEET[0]).run(gm, spec_inputs).output
    assert out.shape == (3, 7)


def test_bert_output_shape():
    config = BertConfig(num_classes=5, max_seq_len=16)
    model = MiniBERT(config)
    inputs = model.example_inputs(batch_size=2)
    from repro.graph.tracer import trace_module

    gm = trace_module(model, inputs)
    out = Interpreter(DEVICE_FLEET[1]).run(gm, inputs).output
    assert out.shape == (2, 5)


def test_qwen_output_is_next_token_logits():
    config = QwenConfig(vocab_size=128, max_seq_len=12)
    model = MiniQwen(config)
    inputs = model.example_inputs(batch_size=2)
    from repro.graph.tracer import trace_module

    gm = trace_module(model, inputs)
    out = Interpreter(DEVICE_FLEET[2]).run(gm, inputs).output
    assert out.shape == (2, 128)


def test_qwen_causality():
    """Changing a future token must not change the logits for an earlier prefix."""
    config = QwenConfig(vocab_size=64, max_seq_len=8, num_layers=2)
    model = MiniQwen(config)
    from repro.graph.tracer import trace_module

    rng = np.random.default_rng(0)
    tokens = rng.integers(0, 64, size=(1, 8), dtype=np.int64)
    # Trace on a prefix of length 5 and compare against the same prefix taken
    # from a longer context: the prefix logits depend only on the prefix.
    prefix = tokens[:, :5]
    gm = trace_module(model, {"token_ids": prefix})
    out_a = Interpreter(DEVICE_FLEET[0]).run(gm, {"token_ids": prefix}).output
    altered = prefix.copy()
    out_b = Interpreter(DEVICE_FLEET[0]).run(gm, {"token_ids": altered}).output
    assert np.array_equal(out_a, out_b)


def test_unet_output_matches_input_shape():
    config = UNetConfig(image_size=16)
    model = MiniUNet(config)
    inputs = model.example_inputs(batch_size=2)
    from repro.graph.tracer import trace_module

    gm = trace_module(model, inputs)
    out = Interpreter(DEVICE_FLEET[3]).run(gm, inputs).output
    assert out.shape == inputs["noisy_latent"].shape


def test_resnet_deep_is_deeper_than_small():
    small = MiniResNet(ResNetConfig.small())
    deep = MiniResNet(ResNetConfig.deep())
    assert deep.num_parameters() > small.num_parameters()


def test_invalid_configs_raise():
    with pytest.raises(ValueError):
        MiniResNet(ResNetConfig(stage_blocks=(2, 2), stage_channels=(16,)))
    with pytest.raises(ValueError):
        BertConfig(d_model=30, num_heads=4).head_dim
    with pytest.raises(ValueError):
        QwenConfig(d_model=30, num_heads=4).head_dim
