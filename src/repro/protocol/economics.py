"""Economic soundness and incentives (paper Sec. 5.5).

Implements the fee-and-deposit payoff model: proposer strategies (honest,
cheap cheating, targeted cheating), voluntary challengers, and the audit
committee, together with the detection probability
``d(phi, phi_ch, eps1) = (phi + phi_ch) (1 - eps1)`` and the feasibility
region for the slashing amount ``S_slash`` (Eqs. 16-25 and the L1/L2/L3
lower bounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


def detection_probability(phi_audit: float, phi_challenge: float, epsilon_fn: float) -> float:
    """``d(phi, phi_ch, eps1) = (phi + phi_ch) * (1 - eps1)`` (Eq. 16)."""
    if not 0.0 <= phi_audit <= 1.0 or not 0.0 <= phi_challenge <= 1.0:
        raise ValueError("detection channel probabilities must lie in [0, 1]")
    if phi_audit + phi_challenge > 1.0 + 1e-12:
        raise ValueError("phi + phi_ch must not exceed 1 (mutually exclusive channels)")
    if not 0.0 <= epsilon_fn < 1.0:
        raise ValueError("false negative rate must lie in [0, 1)")
    return (phi_audit + phi_challenge) * (1.0 - epsilon_fn)


@dataclass(frozen=True)
class EconomicParameters:
    """All knobs of the incentive mechanism."""

    task_reward: float = 100.0          # R_p
    honest_cost: float = 60.0           # C_p
    cheap_cheat_cost: float = 20.0      # C'_p (e.g. running a smaller model)
    targeted_cheat_cost: float = 5000.0  # C''_p (adversarial perturbation search)
    challenge_cost: float = 70.0        # C_ch (re-execution + leaf verification)
    committee_member_cost: float = 5.0  # C_a
    committee_size: int = 5             # n
    committee_fee: float = 8.0          # F_i paid when the claim is ruled clean
    challenger_reward_share: float = 0.5   # alpha_ch
    committee_reward_share: float = 0.3    # alpha_cm
    audit_probability: float = 0.2      # phi
    challenge_probability: float = 0.3  # phi_ch
    false_negative_rate: float = 0.05   # eps1
    false_positive_rate: float = 0.0    # eps2
    proposer_deposit: float = 1000.0    # D_p
    challenger_deposit: float = 50.0    # D_ch

    def __post_init__(self) -> None:
        if self.challenger_reward_share <= 0 or self.challenger_reward_share > 1:
            raise ValueError("alpha_ch must lie in (0, 1]")
        if self.committee_reward_share <= 0 or self.committee_reward_share > 1:
            raise ValueError("alpha_cm must lie in (0, 1]")
        if self.challenger_reward_share + self.committee_reward_share > 1.0 + 1e-12:
            raise ValueError("alpha_ch + alpha_cm must not exceed 1")
        if self.committee_size < 1:
            raise ValueError("committee size must be at least 1")

    @property
    def detection(self) -> float:
        return detection_probability(self.audit_probability, self.challenge_probability,
                                     self.false_negative_rate)


# ---------------------------------------------------------------------------
# Payoffs (Eqs. 17-25)
# ---------------------------------------------------------------------------

def proposer_payoff_honest(params: EconomicParameters, slash: float) -> float:
    """``u_p(h) = R_p - C_p - eps2 * S_slash`` (Eq. 17)."""
    return params.task_reward - params.honest_cost - params.false_positive_rate * slash


def proposer_payoff_cheap_cheat(params: EconomicParameters, slash: float) -> float:
    """``u_p(c1) = R_p - C'_p - d * S_slash`` (Eq. 18)."""
    return params.task_reward - params.cheap_cheat_cost - params.detection * slash


def proposer_payoff_targeted_cheat(params: EconomicParameters) -> float:
    """``u_p(c2) = R_p - C''_p`` (Eq. 19) — empirically C''_p >> R_p."""
    return params.task_reward - params.targeted_cheat_cost


def challenger_payoff(params: EconomicParameters, slash: float, proposer_guilty: bool) -> float:
    """Eqs. 21-22."""
    if proposer_guilty:
        return (1.0 - params.false_negative_rate) * params.challenger_reward_share * slash \
            - params.challenge_cost
    return -params.challenge_cost - (1.0 - params.false_positive_rate) * params.challenger_deposit


def committee_member_payoff(params: EconomicParameters, slash: float, ruled_guilty: bool) -> float:
    """Eqs. 24-25."""
    if ruled_guilty:
        return params.committee_reward_share * slash / params.committee_size \
            - params.committee_member_cost
    return params.committee_fee - params.committee_member_cost


# ---------------------------------------------------------------------------
# Feasibility of the slashing amount
# ---------------------------------------------------------------------------

@dataclass
class SlashFeasibility:
    """The feasible interval (L, D_p] for S_slash, with its three lower bounds."""

    l1_deter_cheap_cheat: float
    l2_profitable_challenge: float
    l3_committee_participation: float
    lower_bound: float
    upper_bound: float

    @property
    def feasible(self) -> bool:
        return self.lower_bound < self.upper_bound

    def contains(self, slash: float) -> bool:
        return self.lower_bound < slash <= self.upper_bound


def feasible_slash_region(params: EconomicParameters) -> SlashFeasibility:
    """Compute L = max(L1, L2, L3) and the feasible region (L, D_p]."""
    detection = params.detection
    denom = detection - params.false_positive_rate
    if denom <= 0:
        l1 = float("inf")
    else:
        l1 = (params.honest_cost - params.cheap_cheat_cost) / denom
    l2 = params.challenge_cost / (params.challenger_reward_share
                                  * (1.0 - params.false_negative_rate))
    l3 = params.committee_size * params.committee_member_cost / params.committee_reward_share
    lower = max(l1, l2, l3)
    return SlashFeasibility(
        l1_deter_cheap_cheat=l1,
        l2_profitable_challenge=l2,
        l3_committee_participation=l3,
        lower_bound=lower,
        upper_bound=params.proposer_deposit,
    )


@dataclass
class IncentiveAnalysis:
    """Summary of incentive-compatibility checks for a chosen S_slash."""

    slash: float
    honest_payoff: float
    cheap_cheat_payoff: float
    targeted_cheat_payoff: float
    challenger_payoff_guilty: float
    challenger_payoff_clean: float
    committee_payoff_guilty: float
    committee_payoff_clean: float
    honest_is_rational: bool
    honesty_beats_cheap_cheating: bool
    targeted_cheating_unprofitable: bool
    challenging_fraud_profitable: bool
    spamming_unprofitable: bool
    committee_sustainable: bool
    feasibility: SlashFeasibility

    @property
    def incentive_compatible(self) -> bool:
        return (self.honest_is_rational
                and self.honesty_beats_cheap_cheating
                and self.targeted_cheating_unprofitable
                and self.challenging_fraud_profitable
                and self.spamming_unprofitable
                and self.committee_sustainable)


def analyze_incentives(params: EconomicParameters,
                       slash: Optional[float] = None) -> IncentiveAnalysis:
    """Evaluate every incentive constraint for ``slash`` (default: midpoint of
    the feasible region, or the proposer deposit when the region is empty)."""
    region = feasible_slash_region(params)
    if slash is None:
        if region.feasible:
            slash = min((region.lower_bound + region.upper_bound) / 2.0 + 1e-9,
                        region.upper_bound)
        else:
            slash = region.upper_bound

    u_h = proposer_payoff_honest(params, slash)
    u_c1 = proposer_payoff_cheap_cheat(params, slash)
    u_c2 = proposer_payoff_targeted_cheat(params)
    u_ch_guilty = challenger_payoff(params, slash, proposer_guilty=True)
    u_ch_clean = challenger_payoff(params, slash, proposer_guilty=False)
    u_cm_guilty = committee_member_payoff(params, slash, ruled_guilty=True)
    u_cm_clean = committee_member_payoff(params, slash, ruled_guilty=False)

    return IncentiveAnalysis(
        slash=float(slash),
        honest_payoff=u_h,
        cheap_cheat_payoff=u_c1,
        targeted_cheat_payoff=u_c2,
        challenger_payoff_guilty=u_ch_guilty,
        challenger_payoff_clean=u_ch_clean,
        committee_payoff_guilty=u_cm_guilty,
        committee_payoff_clean=u_cm_clean,
        honest_is_rational=u_h >= 0.0,
        honesty_beats_cheap_cheating=u_h > u_c1,
        targeted_cheating_unprofitable=u_c2 <= 0.0,
        challenging_fraud_profitable=u_ch_guilty > 0.0,
        spamming_unprofitable=u_ch_clean <= 0.0,
        committee_sustainable=(u_cm_guilty > 0.0 and u_cm_clean > 0.0),
        feasibility=region,
    )


def slash_region_sweep(params: EconomicParameters, slashes: List[float]
                       ) -> List[Tuple[float, bool]]:
    """Evaluate incentive compatibility across candidate slash values."""
    out: List[Tuple[float, bool]] = []
    for slash in slashes:
        analysis = analyze_incentives(params, slash=slash)
        out.append((float(slash), analysis.incentive_compatible
                    and analysis.feasibility.contains(slash)))
    return out
