"""Execute scenario schedules against the real protocol stack.

The runner owns *zero* protocol logic: every event is turned into actors
built from :mod:`repro.protocol.roles` (via the fault wrappers in
:mod:`repro.sim.faults`) and submitted to an ordinary
:class:`~repro.protocol.service.TAOService` over a fresh coordinator and
chain — or, when the scenario sets ``num_shards`` > 1, to an ordinary
:class:`~repro.cluster.cluster.TAOCluster` over a fresh shared settlement
chain (both implement :class:`~repro.protocol.service.ServiceCore`, so the
drive loop is identical).  ``drain_home_at_cycle`` injects a shard failover
between a cycle's submissions and its drain, re-dispatching the in-flight
events across shards; ``undrain_home_at_cycle`` returns the drained shard to
service before a later cycle's submissions (the elastic scale-up leg).  ``Scenario(pipelined=..., cycle_capacity=...)``
selects the drain path: the stage-pipelined drain (with small cycles so
faulty dispute rounds genuinely overlap later cycles' execution) or the
synchronous reference — the invariant families apply identically to both.  What comes back — coordinator statuses, dispute
outcomes, the transaction log, the ledger — is handed to the invariant
checker untouched.

Workload preparation (tracing + cross-device calibration) is the expensive
part, so :func:`prepare_workload` memoizes it per model name and shares one
:class:`~repro.merkle.cache.HashCache` across every scenario of a workload
(the committed weights are the same arrays, so their digests are computed
once for hundreds of scenarios).
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.calibration.calibrator import CalibrationConfig, Calibrator
from repro.calibration.committee import (
    CommitteeEnvelopeConfig,
    CommitteeEnvelopeProfile,
    calibrate_committee_envelope,
)
from repro.calibration.thresholds import ThresholdTable
from repro.cluster.cluster import TAOCluster
from repro.fleet.fleet import ProcessFleet
from repro.graph.graph import GraphModule
from repro.merkle.cache import HashCache
from repro.protocol.coordinator import Coordinator
from repro.protocol.roles import HonestProposer, Proposer
from repro.protocol.service import ServiceCore, TAOService
from repro.sim.faults import (
    ColludingCommitteeMember,
    SimChallenger,
    SimProposer,
    StaleTraceProposer,
    make_fault_overrides,
)
from repro.sim.invariants import (
    EventOutcome,
    InvariantViolation,
    check_invariants,
    service_coordinators,
)
from repro.sim.scenario import RequestEvent, Scenario, ScenarioSchedule, expand
from repro.tensorlib.device import DEVICE_FLEET
from repro.utils.rng import derive_seed

#: Lateness of a ``late_move`` challenger per round: well inside the default
#: 600 s round timeout even with a busy multiplexed cycle interleaved.
LATE_MOVE_DELAY_S = 120.0

#: A dropped move stalls past any round timeout.
DROPPED_MOVE_DELAY_S = 1e9


@dataclass
class SimWorkload:
    """One prepared workload: traced graph, thresholds, input sampler.

    ``committee_envelope`` (optional) is the workload's calibrated
    committee-leaf acceptance envelope; scenarios adopt it unless they set
    ``calibrated_committee=False`` (the reference-tolerance replay used by
    the defect regression tests).
    """

    name: str
    graph: GraphModule
    thresholds: ThresholdTable
    sample_inputs: Callable[[int], Dict[str, np.ndarray]]
    hash_cache: HashCache = field(default_factory=HashCache)
    committee_envelope: Optional[CommitteeEnvelopeProfile] = None


@dataclass
class SimulationResult:
    """Everything one scenario run produced, ready for invariant checking."""

    schedule: ScenarioSchedule
    #: The serving front end the scenario drove: a plain TAOService or, for
    #: ``num_shards`` > 1, a TAOCluster (invariants are checked fleet-wide).
    service: ServiceCore
    outcomes: List[EventOutcome]
    violations: List[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


_WORKLOADS: Dict[str, SimWorkload] = {}


def prepare_workload(model_name: str, calibration_samples: int = 12,
                     seed: int = 17,
                     committee_samples: Optional[int] = 6) -> SimWorkload:
    """Trace + calibrate one zoo model once per process (memoized).

    ``committee_samples`` additionally calibrates the committee-leaf
    acceptance envelope (single-op re-execution spreads across the fleet);
    ``None`` skips it, leaving scenarios on the reference tolerance.  The
    leaf envelope stabilizes in fewer samples than the full-trace thresholds
    (single-op spreads carry no accumulated-error tail), so the default is
    half the calibration budget.
    """
    key = f"{model_name}/{calibration_samples}/{seed}/{committee_samples}"
    if key in _WORKLOADS:
        return _WORKLOADS[key]
    from repro.models import get_model_spec

    spec = get_model_spec(model_name)
    module = spec.build_module()
    graph = spec.trace(module, batch_size=1, seed=seed)
    calibrator = Calibrator(CalibrationConfig(devices=DEVICE_FLEET))
    calibration = calibrator.calibrate(
        graph, spec.dataset(module, calibration_samples, seed=seed, batch_size=1)
    )
    thresholds = ThresholdTable.from_calibration(calibration, alpha=3.0)
    committee_envelope = None
    if committee_samples is not None:
        committee_envelope = calibrate_committee_envelope(
            graph,
            spec.dataset(module, committee_samples, seed=seed, batch_size=1),
            CommitteeEnvelopeConfig(devices=DEVICE_FLEET),
        )
    workload = SimWorkload(
        name=model_name,
        graph=graph,
        thresholds=thresholds,
        sample_inputs=lambda s, _m=module, _sp=spec: _sp.sample_inputs(_m, 1, s),
        committee_envelope=committee_envelope,
    )
    _WORKLOADS[key] = workload
    return workload


def run_scenario(scenario: Scenario, workload: SimWorkload,
                 chain=None) -> SimulationResult:
    """Expand and run one scenario; invariants are checked on the way out."""
    return run_schedule(expand(scenario, workload.graph, workload.thresholds),
                        workload, chain=chain)


def run_schedule(schedule: ScenarioSchedule, workload: SimWorkload,
                 chain=None) -> SimulationResult:
    """Execute an (already expanded) schedule against a fresh service.

    ``chain`` injects the settlement ledger the service is built over
    (default: a fresh :class:`~repro.protocol.chain.SimulatedChain`).  The
    campaign driver passes a chain pre-seeded with the stake ledger carried
    from earlier cycles — standing roles fund through ``fund_once``, so
    existing balances survive instead of being re-minted.
    """
    scenario = schedule.scenario
    # Crash events ride on the schedule (not just the scenario knob) so a
    # shrunk schedule keeps crashing at the same event; their presence selects
    # journal recovery for the fleet.
    crash_events = any(event.crash_after for event in schedule.events)
    service = _build_service(scenario, workload, journal_recovery=crash_events,
                             chain=chain)
    fleet = isinstance(service, ProcessFleet)
    # A fleet's sessions live inside worker processes; actors travel as
    # wire specs instead of objects, so no parent-side session is needed.
    session = None if fleet else service.model(workload.graph.name).session

    request_ids: Dict[int, int] = {}
    honest_results: Dict[int, object] = {}
    drained_home: Optional[str] = None
    for cycle_index, cycle in enumerate(schedule.cycles):
        if (scenario.undrain_home_at_cycle == cycle_index
                and drained_home is not None):
            # Elastic scale-up leg: the shard drained earlier returns to
            # service before this cycle's submissions, so tenants whose ring
            # home flips back re-migrate and the new events land on the
            # restored topology.
            if isinstance(service, TAOCluster):
                service.undrain_shard(drained_home)
            elif fleet:
                service.undrain_worker(drained_home)
            drained_home = None
        for event in cycle:
            if fleet:
                proposer = _proposer_spec(event, workload)
                challenger = _challenger_spec(event)
            else:
                proposer = _build_proposer(event, scenario, workload, session,
                                           honest_results)
                challenger = _build_challenger(event, scenario, workload,
                                               service)
            request_ids[event.index] = service.submit(
                workload.graph.name,
                workload.sample_inputs(event.input_seed),
                proposer=proposer,
                force_challenge=event.force_challenge,
                challenger=challenger,
            )
        if scenario.drain_home_at_cycle == cycle_index:
            # Failover under fire: the cycle's events are already queued on
            # the home shard; draining it withdraws and re-dispatches them
            # to the ring successor before they are processed.
            if isinstance(service, TAOCluster):
                drained_home = service.location(workload.graph.name)
                service.drain_shard(drained_home)
            elif fleet and len(service.ring.live_nodes) > 1:
                drained_home = service.location(workload.graph.name)
                service.drain_worker(drained_home)
        if fleet and any(event.crash_after for event in cycle):
            _arm_crash(service, workload.graph.name)
        service.process()

    outcomes = [
        _outcome_for(event, service.request(request_ids[event.index]), service)
        for event in schedule.events
    ]
    if fleet:
        # Everything invariants walk (coordinator snapshots, the parent
        # chain, parent request records) outlives the workers.
        service.close()
    result = SimulationResult(schedule=schedule, service=service, outcomes=outcomes)
    result.violations = check_invariants(result)
    return result


# ----------------------------------------------------------------------
# Actor construction
# ----------------------------------------------------------------------

def _arm_crash(fleet: ProcessFleet, model_name: str) -> None:
    """One-shot SIGKILL of the model's home worker at its next fresh chain call.

    "Fresh" means a sequence id above the journal tail, so the hook never
    re-fires on the deterministic replay a recovering worker performs — the
    crash lands mid-transition (after the write-ahead record, inside the
    chain-call stream) exactly once per armed cycle.
    """
    home = fleet.location(model_name)
    tail = fleet.journal_for(home).chain_tail

    def hook(shard_id: str, message: Dict[str, object],
             _home: str = home, _tail: int = tail) -> None:
        if shard_id != _home or int(message.get("seq", 0)) <= _tail:
            return
        fleet._chain_call_hook = None
        handle = fleet.workers[shard_id]
        os.kill(handle.process.pid, signal.SIGKILL)
        handle.process.join(timeout=10.0)

    fleet._chain_call_hook = hook


def _build_service(scenario: Scenario, workload: SimWorkload,
                   journal_recovery: bool = False, chain=None) -> ServiceCore:
    if scenario.process_fleet:
        if scenario.threshold_scale != 1.0:
            raise ValueError(
                "process_fleet scenarios require threshold_scale == 1.0: "
                "fault overrides are rebuilt worker-side from the registered "
                "threshold table, which must equal the workload table")
        fleet = ProcessFleet(
            num_workers=max(scenario.num_shards, 1),
            chain=chain,
            n_way=scenario.n_way,
            leaf_path=scenario.leaf_path,
            committee_size=scenario.committee_size,
            hash_cache=workload.hash_cache,
            enable_pipeline=scenario.pipelined,
            cycle_capacity=scenario.cycle_capacity,
            actor_module="repro.sim.fleet_actors",
            recovery="journal" if journal_recovery else "failover",
        )
        envelope = workload.committee_envelope \
            if scenario.calibrated_committee else None
        fleet.register_model(
            workload.graph,
            threshold_table=workload.thresholds,
            committee_envelope=envelope,
            colluding_majority=(scenario.committee_size // 2) + 1
            if scenario.colluding_committee else None,
        )
        return fleet
    if scenario.num_shards > 1:
        service: ServiceCore = TAOCluster(
            num_shards=scenario.num_shards,
            chain=chain,
            n_way=scenario.n_way,
            leaf_path=scenario.leaf_path,
            committee_size=scenario.committee_size,
            hash_cache=workload.hash_cache,
            enable_pipeline=scenario.pipelined,
            cycle_capacity=scenario.cycle_capacity,
        )
    else:
        service = TAOService(
            coordinator=Coordinator(chain=chain),
            n_way=scenario.n_way,
            leaf_path=scenario.leaf_path,
            committee_size=scenario.committee_size,
            hash_cache=workload.hash_cache,
            enable_pipeline=scenario.pipelined,
            cycle_capacity=scenario.cycle_capacity,
        )
    session_kwargs = {}
    if scenario.colluding_committee:
        # A majority of the committee is bought; the last seat stays honest.
        majority = (scenario.committee_size // 2) + 1

        def factory(i, device, _majority=majority):
            if i < _majority:
                return ColludingCommitteeMember(f"colluder-{i}", device)
            from repro.protocol.roles import CommitteeMember
            return CommitteeMember(f"committee-{i}", device)

        session_kwargs["committee_factory"] = factory
    if scenario.calibrated_committee and workload.committee_envelope is not None:
        envelope = workload.committee_envelope
        if scenario.threshold_scale != 1.0:
            # A broken/mis-scaled commitment breaks the whole committed
            # bundle: the canary's zeroed protocol must stay detectably
            # broken under the calibrated leaf as well.
            envelope = envelope.scaled(scenario.threshold_scale)
        session_kwargs["committee_envelope"] = envelope
    thresholds = workload.thresholds
    if scenario.threshold_scale != 1.0:
        thresholds = thresholds.scaled(scenario.threshold_scale)
    service.register_model(workload.graph, threshold_table=thresholds,
                           **session_kwargs)
    return service


def _build_proposer(event: RequestEvent, scenario: Scenario,
                    workload: SimWorkload, session,
                    honest_results: Dict[int, object]) -> Optional[Proposer]:
    """The proposer actor for one event (None = service default honest path)."""
    chain = session.coordinator.chain
    name = f"sim-proposer-{event.index}"
    if event.kind == "honest":
        return None
    if event.kind == "device_drift":
        chain.fund_once(name, session.initial_balance)
        return HonestProposer(name, DEVICE_FLEET[event.drift_device % len(DEVICE_FLEET)],
                              hash_cache=workload.hash_cache)
    if event.kind == "stale_trace":
        # index-0 events never expand to stale_trace, so a decoy exists.
        source = honest_results.get(event.decoy_seed)
        if source is None:
            scout = HonestProposer(f"{name}-scout", DEVICE_FLEET[0],
                                   hash_cache=workload.hash_cache)
            source = scout.execute(workload.graph, session.model_commitment,
                                   workload.sample_inputs(event.decoy_seed))
            honest_results[event.decoy_seed] = source
        chain.fund_once(name, session.initial_balance)
        return StaleTraceProposer(name, DEVICE_FLEET[0], source,
                                  hash_cache=workload.hash_cache)
    overrides = make_fault_overrides(
        event.kind, workload.graph, workload.thresholds,
        event.victim, event.magnitude,
        derive_seed(event.fault_seed, "fault", event.index),
    )
    delay = DROPPED_MOVE_DELAY_S if event.kind == "drop_partition" else 0.0
    chain.fund_once(name, session.initial_balance)
    return SimProposer(name, DEVICE_FLEET[0], overrides,
                       hash_cache=workload.hash_cache, partition_delay_s=delay)


def _build_challenger(event: RequestEvent, scenario: Scenario,
                      workload: SimWorkload, service: ServiceCore):
    """The per-request challenger override (None = service default)."""
    if event.kind not in ("drop_selection", "late_move"):
        return None
    delay = DROPPED_MOVE_DELAY_S if event.kind == "drop_selection" \
        else LATE_MOVE_DELAY_S
    session = service.model(workload.graph.name).session
    name = f"sim-challenger-{event.index}"
    session.coordinator.chain.fund_once(name, session.initial_balance)
    return SimChallenger(name, session.devices[-1], session.thresholds,
                         hash_cache=workload.hash_cache, selection_delay_s=delay,
                         committee_envelope=session.committee_envelope)


def _proposer_spec(event: RequestEvent,
                   workload: SimWorkload) -> Optional[Dict[str, object]]:
    """The wire-spec twin of :func:`_build_proposer` for fleet scenarios.

    Ships exactly the inputs the in-process path feeds its actor
    constructors — names, derived seeds, devices, funding — so
    :mod:`repro.sim.fleet_actors` rebuilds the identical actor inside the
    worker process.
    """
    name = f"sim-proposer-{event.index}"
    if event.kind == "honest":
        return None
    if event.kind == "device_drift":
        return {"type": "honest", "name": name,
                "device_index": event.drift_device % len(DEVICE_FLEET),
                "fund": True}
    if event.kind == "stale_trace":
        # The decoy trace is memoized worker-side per (model, seed), the
        # twin of the runner's honest_results map.
        return {"type": "stale_trace", "name": name,
                "decoy_key": int(event.decoy_seed),
                "decoy_inputs": workload.sample_inputs(event.decoy_seed)}
    return {
        "type": "sim_fault", "name": name, "kind": event.kind,
        "victim": event.victim, "magnitude": float(event.magnitude),
        "seed": derive_seed(event.fault_seed, "fault", event.index),
        "partition_delay_s": DROPPED_MOVE_DELAY_S
        if event.kind == "drop_partition" else 0.0,
    }


def _challenger_spec(event: RequestEvent) -> Optional[Dict[str, object]]:
    """The wire-spec twin of :func:`_build_challenger` for fleet scenarios."""
    if event.kind not in ("drop_selection", "late_move"):
        return None
    delay = DROPPED_MOVE_DELAY_S if event.kind == "drop_selection" \
        else LATE_MOVE_DELAY_S
    return {"type": "sim_challenger", "name": f"sim-challenger-{event.index}",
            "selection_delay_s": float(delay)}


def _dispute_record(service: ServiceCore, task):
    """The DisputeRecord for a task, wherever its coordinator lives.

    Dispute ids are per-coordinator, so the task's owning coordinator is
    found first (the coordinator whose task table holds this exact record).
    """
    for coordinator in service_coordinators(service):
        if coordinator.tasks.get(task.task_id) is task:
            if task.dispute_id is None:
                return None
            return coordinator.disputes.get(task.dispute_id)
    return None


def _outcome_for(event: RequestEvent, request, service: ServiceCore) -> EventOutcome:
    report = request.report
    flagged = bool(report is not None
                   and any(r.exceeded for r in report.verification_reports))
    dispute_path = None
    if report is not None and report.dispute is not None:
        record = _dispute_record(service, report.task)
        dispute_path = record.adjudication_path if record is not None else None
    return EventOutcome(
        event=event,
        status=request.status,
        flagged=flagged,
        challenged=bool(report is not None and report.challenged),
        proposer_slashed=(request.status == "proposer_slashed"),
        finalized=(request.status == "finalized"),
        rejected=(request.status == "rejected"),
        dispute_path=dispute_path,
    )
