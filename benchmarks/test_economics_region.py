"""Sec. 5.5: economic soundness — the feasible slashing region is non-empty.

Sweeps the slashing amount and the detection-channel probabilities to verify
the paper's incentive conditions: a non-empty feasible region (L, D_p] exists
for reasonable parameters, honesty strictly dominates cheap cheating inside
it, fraud-finding challenges are profitable, spamming is not, and committee
participation is sustainable.
"""

from __future__ import annotations

import numpy as np

from repro.protocol.economics import (
    EconomicParameters,
    analyze_incentives,
    feasible_slash_region,
    slash_region_sweep,
)

from benchmarks.reporting import emit_table


def test_economics_region(benchmark):
    def run():
        params = EconomicParameters()
        region = feasible_slash_region(params)
        candidates = list(np.linspace(10.0, params.proposer_deposit, 12))
        sweep = slash_region_sweep(params, candidates)
        analysis = analyze_incentives(params)

        detection_rows = []
        for phi in (0.05, 0.1, 0.2, 0.4):
            for phi_ch in (0.0, 0.2, 0.4):
                p = EconomicParameters(audit_probability=phi, challenge_probability=phi_ch)
                r = feasible_slash_region(p)
                detection_rows.append([phi, phi_ch, p.detection, r.lower_bound, r.feasible])
        return params, region, sweep, analysis, detection_rows

    params, region, sweep, analysis, detection_rows = benchmark.pedantic(
        run, rounds=1, iterations=1)

    emit_table(
        "economics_slash_sweep",
        "Incentive compatibility across candidate slash values",
        ["S_slash", "incentive compatible"],
        [[round(s, 1), ok] for s, ok in sweep],
        notes=(f"Feasible region ({region.lower_bound:.1f}, {region.upper_bound:.1f}]; "
               f"L1={region.l1_deter_cheap_cheat:.1f}, L2={region.l2_profitable_challenge:.1f}, "
               f"L3={region.l3_committee_participation:.1f}.  Chosen S_slash={analysis.slash:.1f} "
               f"gives honest payoff {analysis.honest_payoff:.1f} vs cheap-cheat "
               f"{analysis.cheap_cheat_payoff:.1f}."),
    )
    emit_table(
        "economics_detection_channels",
        "Feasible-region lower bound vs detection channel probabilities",
        ["phi (audit)", "phi_ch (challenge)", "d(phi, phi_ch, eps1)", "lower bound L",
         "feasible"],
        detection_rows,
        notes="Stronger detection (larger phi + phi_ch) shrinks the required slash L1.",
    )

    assert region.feasible
    assert analysis.incentive_compatible
    # Some candidate slashes are too small; large-enough ones are compatible.
    assert any(not ok for _, ok in sweep)
    assert any(ok for _, ok in sweep)
    # More detection never raises the deterrence lower bound.
    by_detection = sorted((row[2], row[3]) for row in detection_rows if np.isfinite(row[3]))
    lows = [low for _, low in by_detection]
    assert lows[0] >= lows[-1]
