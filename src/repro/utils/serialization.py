"""Canonical byte serialization for tensors and metadata.

The paper commits to tensors via ``canon(.)`` which "serializes raw tensor
bytes, dtype, shape, and stride" (Sec. 5.2).  We reproduce that exactly:
``canonical_bytes`` produces a deterministic byte string containing the
dtype name, the shape, the C-order strides and the raw little-endian data
buffer, so two numerically identical tensors always hash to the same leaf
and any bit flip changes the hash.

``canonical_json`` provides a deterministic JSON encoding (sorted keys, no
whitespace) used for operator signatures and protocol metadata.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np


def canonical_array_chunks(value: np.ndarray):
    """Yield the canonical serialization of an array as buffer chunks.

    The concatenation of the yielded chunks is exactly the byte string
    :func:`canonical_bytes` produces for the same array, but the raw data
    buffer is yielded as a zero-copy memoryview when the array is already
    C-contiguous — so streaming consumers (incremental hashing of large
    weight/activation tensors) avoid materializing a second copy of the
    tensor.
    """
    arr = np.ascontiguousarray(value)
    # Normalize byte order so the commitment is platform independent.
    if arr.dtype.byteorder == ">":
        arr = arr.astype(arr.dtype.newbyteorder("<"))
    header = json.dumps(
        {
            "kind": "ndarray",
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "strides": list(arr.strides),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    yield b"NDARRAY\x00"
    yield len(header).to_bytes(8, "big")
    yield header
    if arr.size == 0:
        # memoryview.cast rejects zero-size views; the canonical data
        # segment of an empty tensor is simply empty.
        yield b""
    else:
        yield memoryview(arr).cast("B")


def canonical_bytes(value: Any) -> bytes:
    """Serialize ``value`` to a canonical byte string.

    Supports NumPy arrays, Python scalars, strings, bytes, ``None`` and
    (nested) lists/tuples/dicts of those.  Arrays are converted to
    C-contiguous little-endian buffers, prefixed with dtype/shape metadata.
    """
    if isinstance(value, np.ndarray):
        return b"".join(bytes(chunk) for chunk in canonical_array_chunks(value))
    if isinstance(value, (bool, int, float, str)) or value is None:
        return b"SCALAR\x00" + canonical_json(value).encode("utf-8")
    if isinstance(value, bytes):
        return b"BYTES\x00" + value
    if isinstance(value, (list, tuple)):
        parts = [canonical_bytes(v) for v in value]
        out = b"SEQ\x00" + len(parts).to_bytes(8, "big")
        for part in parts:
            out += len(part).to_bytes(8, "big") + part
        return out
    if isinstance(value, dict):
        out = b"MAP\x00" + len(value).to_bytes(8, "big")
        for key in sorted(value):
            key_b = str(key).encode("utf-8")
            val_b = canonical_bytes(value[key])
            out += len(key_b).to_bytes(8, "big") + key_b
            out += len(val_b).to_bytes(8, "big") + val_b
        return out
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return canonical_bytes(value.item())
    raise TypeError(f"cannot canonically serialize value of type {type(value)!r}")


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding: sorted keys, compact separators."""
    return json.dumps(_jsonable(value), sort_keys=True, separators=(",", ":"))


def _jsonable(value: Any) -> Any:
    """Convert ``value`` into something ``json.dumps`` accepts deterministically."""
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": True,
            "dtype": str(value.dtype),
            "shape": list(value.shape),
            "data": value.ravel().tolist(),
        }
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    return value
