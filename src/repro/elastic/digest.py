"""Fixed-memory latency quantile digest with exactly associative merge.

SLO accounting needs p50/p99/p999 over millions of observations without
keeping raw latency lists (``ServiceStats.latencies_s`` grows without bound —
fine for a test run, wrong for an open-loop soak).  :class:`LatencyDigest` is
a log-bucketed histogram: bucket ``i`` covers the half-open interval
``(min_value * growth**(i-1), min_value * growth**i]``, so the bucket count is
fixed by the configured dynamic range and the relative value error of any
quantile is bounded by the bucket width — at the default ``growth=1.02``,
under about one percent.

Bucket counts are integers and observed min/max are exact, so ``merge`` is
*exactly* associative and commutative: per-worker digests folded in any order
produce byte-identical state, which is what lets fleet-wide aggregation keep
the repo's determinism discipline.  (Deliberately no floating ``sum`` field:
a float accumulator would make merge order observable.)

``quantile`` follows NumPy's ``inverted_cdf`` method at bucket granularity:
the value reported for rank ``ceil(q * count)`` is the geometric midpoint of
the bucket holding that rank, clamped into the exact observed range.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple


class LatencyDigest:
    """Log-bucketed quantile sketch for non-negative latencies (seconds)."""

    def __init__(self, growth: float = 1.02, min_value: float = 1e-7,
                 max_value: float = 1e5) -> None:
        if growth <= 1.0:
            raise ValueError("growth factor must be > 1")
        if not 0 < min_value < max_value:
            raise ValueError("need 0 < min_value < max_value")
        self.growth = float(growth)
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self._log_growth = math.log(self.growth)
        #: Highest regular bucket index; everything above max_value clamps here.
        self._top = 1 + int(math.ceil(
            math.log(self.max_value / self.min_value) / self._log_growth))
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.observed_min = math.inf
        self.observed_max = -math.inf

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        index = 1 + int(math.floor(
            math.log(value / self.min_value) / self._log_growth))
        return min(index, self._top)

    def add(self, value: float) -> None:
        value = float(value)
        if value < 0 or math.isnan(value):
            raise ValueError(f"latencies must be finite and >= 0, got {value}")
        index = self._index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        if value < self.observed_min:
            self.observed_min = value
        if value > self.observed_max:
            self.observed_max = value

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    # ------------------------------------------------------------------
    # Quantiles
    # ------------------------------------------------------------------

    def _representative(self, index: int) -> float:
        if index <= 0:
            value = self.min_value
        else:
            value = self.min_value * self.growth ** (index - 0.5)
        return min(max(value, self.observed_min), self.observed_max)

    def quantile(self, q: float) -> float:
        """Bucket-granular ``inverted_cdf`` quantile of everything added."""
        if not 0 < q <= 1:
            raise ValueError("quantile must be in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, int(math.ceil(q * self.count)))
        cumulative = 0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= rank:
                return self._representative(index)
        return self._representative(max(self._buckets))  # pragma: no cover

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "min": 0.0 if self.count == 0 else self.observed_min,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "max": 0.0 if self.count == 0 else self.observed_max,
        }

    # ------------------------------------------------------------------
    # Merge / serialization
    # ------------------------------------------------------------------

    def _config(self) -> Tuple[float, float, float]:
        return (self.growth, self.min_value, self.max_value)

    def merge(self, other: "LatencyDigest") -> "LatencyDigest":
        """Fold ``other`` into this digest in place (and return self)."""
        if self._config() != other._config():
            raise ValueError(
                "cannot merge digests with different bucket configurations: "
                f"{self._config()} vs {other._config()}")
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += other.count
        self.observed_min = min(self.observed_min, other.observed_min)
        self.observed_max = max(self.observed_max, other.observed_max)
        return self

    def to_dict(self) -> Dict[str, object]:
        """Canonical-codec-safe state dump (string bucket keys, sorted)."""
        return {
            "growth": self.growth,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "count": self.count,
            "observed_min": None if self.count == 0 else self.observed_min,
            "observed_max": None if self.count == 0 else self.observed_max,
            "buckets": {str(index): self._buckets[index]
                        for index in sorted(self._buckets)},
        }

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "LatencyDigest":
        digest = cls(growth=float(state["growth"]),
                     min_value=float(state["min_value"]),
                     max_value=float(state["max_value"]))
        digest.count = int(state["count"])
        if state["observed_min"] is not None:
            digest.observed_min = float(state["observed_min"])
        if state["observed_max"] is not None:
            digest.observed_max = float(state["observed_max"])
        digest._buckets = {int(index): int(count)
                           for index, count in dict(state["buckets"]).items()}
        return digest

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"LatencyDigest(count={self.count}, p50={self.p50:.6f}, "
                f"p99={self.p99:.6f}, p999={self.p999:.6f})")


def merged(parts: List["LatencyDigest"], growth: float = 1.02,
           min_value: float = 1e-7, max_value: float = 1e5) -> LatencyDigest:
    """Fold a list of digests into a fresh one (empty-list safe)."""
    total = LatencyDigest(growth=growth, min_value=min_value,
                          max_value=max_value)
    for part in parts:
        total.merge(part)
    return total
