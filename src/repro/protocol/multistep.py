"""Multi-step workloads: temporal commitments and prefix finality (paper Sec. 7).

TAO extends to multi-step settings (autoregressive decoding, diffusion
sampling, training) by layering time over the dispute game: the proposer
commits to a *temporal Merkle chain* of per-step states, disagreement is
first bisected **across time** to the earliest offending step, and the
ordinary operator-level dispute game then localizes the fault **within** that
step.  Steps before the earliest offending one attain *prefix finality*: they
can finalize even while later steps remain challengeable.

This module provides:

* :class:`TemporalCommitment` — the per-step state hashes plus a Merkle root
  over them (the on-chain commitment for a multi-step request);
* :func:`find_earliest_offending_step` — the challenger's time-bisection:
  re-execute the committed chain step by step from the committed inputs and
  flag the first step whose claimed state exceeds a step-level tolerance;
* :class:`MultiStepDispute` — orchestration glue that resolves a multi-step
  claim into (finalized prefix, offending step, operator-level dispute
  outcome) using an ordinary :class:`~repro.protocol.dispute.DisputeGame`
  within the offending step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.calibration.thresholds import ThresholdTable
from repro.graph.graph import GraphModule
from repro.graph.interpreter import Interpreter
from repro.merkle.commitments import hash_tensor
from repro.merkle.tree import MerkleTree
from repro.tensorlib.device import DeviceProfile

#: A function mapping (step index, previous state) -> the graph inputs of that step.
StepInputBuilder = Callable[[int, np.ndarray], Dict[str, np.ndarray]]
#: A function mapping (step index, previous state, step output) -> the next state.
StateUpdateFn = Callable[[int, np.ndarray, np.ndarray], np.ndarray]


@dataclass
class StepRecord:
    """One committed step: the claimed post-step state and its hash."""

    index: int
    state: np.ndarray
    state_hash: bytes


@dataclass
class TemporalCommitment:
    """The proposer's commitment to a multi-step execution.

    ``root`` is the Merkle root over per-step state hashes; each step can be
    opened individually with an inclusion proof, so prefix finality does not
    require revealing the whole chain on-chain.
    """

    initial_state_hash: bytes
    steps: List[StepRecord]
    root: bytes
    tree: Optional[MerkleTree] = None

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def step_proof(self, index: int):
        if self.tree is None:
            raise ValueError("temporal commitment was built without its tree")
        return self.tree.prove(index)


def commit_step_chain(initial_state: np.ndarray,
                      states: Sequence[np.ndarray]) -> TemporalCommitment:
    """Build the temporal commitment for a chain of per-step states."""
    if not states:
        raise ValueError("a multi-step commitment needs at least one step")
    steps = [
        StepRecord(index=i, state=np.asarray(state), state_hash=hash_tensor(state))
        for i, state in enumerate(states)
    ]
    tree = MerkleTree([record.state_hash for record in steps])
    return TemporalCommitment(
        initial_state_hash=hash_tensor(initial_state),
        steps=steps,
        root=tree.root,
        tree=tree,
    )


@dataclass
class StepCheck:
    """Challenger-side verdict for one step of the chain."""

    index: int
    max_abs_deviation: float
    within_tolerance: bool


def find_earliest_offending_step(
    commitment: TemporalCommitment,
    initial_state: np.ndarray,
    graph_module: GraphModule,
    step_inputs: StepInputBuilder,
    state_update: StateUpdateFn,
    device: DeviceProfile,
    step_tolerance: float,
) -> Tuple[Optional[int], List[StepCheck]]:
    """Time-bisection: locate the earliest step whose claimed state is off.

    The challenger re-executes the chain *from the proposer's claimed previous
    states* (so a single tampered step cannot hide behind honest downstream
    recomputation) and compares each claimed post-step state against its own
    within ``step_tolerance`` (a state-level tolerance derived from the
    calibrated per-operator thresholds).  Returns the earliest offending step
    index (or ``None``) plus the per-step checks.
    """
    interpreter = Interpreter(device)
    checks: List[StepCheck] = []
    offending: Optional[int] = None
    previous_state = np.asarray(initial_state)
    for record in commitment.steps:
        inputs = step_inputs(record.index, previous_state)
        trace = interpreter.run(graph_module, inputs)
        local_state = state_update(record.index, previous_state, trace.output)
        deviation = float(np.max(np.abs(np.asarray(record.state, dtype=np.float64)
                                        - np.asarray(local_state, dtype=np.float64))))
        ok = deviation <= step_tolerance
        checks.append(StepCheck(index=record.index, max_abs_deviation=deviation,
                                within_tolerance=ok))
        if not ok and offending is None:
            offending = record.index
            break
        # Continue the chain from the *claimed* state (implicitly accepted).
        previous_state = np.asarray(record.state)
    return offending, checks


@dataclass
class MultiStepOutcome:
    """Resolution of a multi-step claim."""

    finalized_prefix: int
    offending_step: Optional[int]
    step_checks: List[StepCheck]
    operator_dispute: Optional[object] = None  # DisputeOutcome when a step was disputed

    @property
    def fully_finalized(self) -> bool:
        return self.offending_step is None


class MultiStepDispute:
    """Resolve a temporal commitment: prefix finality + in-step dispute.

    The in-step dispute reuses the ordinary operator-level machinery via a
    caller-supplied ``dispute_step`` callback (typically wrapping
    :class:`~repro.protocol.lifecycle.TAOSession.run_request` for the
    offending step's inputs), keeping this class agnostic of coordinator
    wiring.
    """

    def __init__(
        self,
        graph_module: GraphModule,
        thresholds: ThresholdTable,
        step_inputs: StepInputBuilder,
        state_update: StateUpdateFn,
        device: DeviceProfile,
        step_tolerance: float,
    ) -> None:
        self.graph_module = graph_module
        self.thresholds = thresholds
        self.step_inputs = step_inputs
        self.state_update = state_update
        self.device = device
        self.step_tolerance = float(step_tolerance)

    def resolve(
        self,
        commitment: TemporalCommitment,
        initial_state: np.ndarray,
        dispute_step: Optional[Callable[[int, Dict[str, np.ndarray]], object]] = None,
    ) -> MultiStepOutcome:
        offending, checks = find_earliest_offending_step(
            commitment, initial_state, self.graph_module, self.step_inputs,
            self.state_update, self.device, self.step_tolerance,
        )
        if offending is None:
            return MultiStepOutcome(
                finalized_prefix=commitment.num_steps,
                offending_step=None,
                step_checks=checks,
            )
        previous_state = (np.asarray(initial_state) if offending == 0
                          else np.asarray(commitment.steps[offending - 1].state))
        operator_dispute = None
        if dispute_step is not None:
            operator_dispute = dispute_step(offending,
                                            self.step_inputs(offending, previous_state))
        return MultiStepOutcome(
            finalized_prefix=offending,
            offending_step=offending,
            step_checks=checks,
            operator_dispute=operator_dispute,
        )


# ---------------------------------------------------------------------------
# Deterministic tie-break rules for discrete decisions (paper Sec. 7)
# ---------------------------------------------------------------------------

def lexicographic_tie_break(logits: np.ndarray, margin: float) -> int:
    """Pick the smallest class index among candidates within ``margin`` of the max.

    In multi-step generation a small numerical drift can flip an argmax; the
    paper proposes committing to a deterministic tie-break rule so honest
    executions converge on the same discrete decision whenever competing
    logits lie within the accepted tolerance.
    """
    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    best = float(logits.max())
    candidates = np.flatnonzero(logits >= best - float(margin))
    return int(candidates.min())


def hash_seeded_tie_break(logits: np.ndarray, margin: float, seed_material: bytes) -> int:
    """Deterministically select among near-tie candidates using committed public data.

    The seed is derived from committed bytes (e.g. the execution commitment),
    so the choice is unpredictable in advance yet identical for every honest
    party.
    """
    import hashlib

    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    best = float(logits.max())
    candidates = np.flatnonzero(logits >= best - float(margin))
    if candidates.size == 1:
        return int(candidates[0])
    digest = hashlib.sha256(seed_material).digest()
    pick = int.from_bytes(digest[:8], "big") % candidates.size
    return int(candidates[pick])
