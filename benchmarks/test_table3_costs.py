"""Table 3: forward and dispute costs across models (N = 2).

For each of the four workloads a dispute is played (N=2) against proposers
that perturbed operators at different depths; the table reports forward
FLOPs, dispute steps (rounds), on-chain gas, the challenger's dispute compute
(DCR) range and the cost ratio DCR / forward FLOPs.

The paper reports cost ratios of 0.39-1.24x and ~2M gas per dispute for
graphs of 1k-5k operators; this reproduction's graphs are ~50-150 operators
so round counts and gas are proportionally smaller, but the headline property
— a dispute costs on the order of one forward pass, not rounds-many forward
passes — is preserved.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.merkle.commitments import commit_model
from repro.protocol.coordinator import Coordinator
from repro.protocol.dispute import DisputeGame
from repro.protocol.roles import AdversarialProposer, Challenger, CommitteeMember
from repro.tensorlib.device import DEVICE_FLEET
from repro.utils.rng import derive_seed

from benchmarks.reporting import emit_table
from benchmarks.conftest import PAPER_NAMES

MODELS = ("bert_mini", "diffusion_mini", "qwen_mini", "resnet_mini")
NUM_FAULT_POSITIONS = 4
PERTURBATION_SCALE = 0.02


def _noise_perturbation(victim: str, scale: float = PERTURBATION_SCALE):
    """Per-element noise fault (uniform shifts could be absorbed by downstream
    normalization layers and would rightly not be disputed)."""

    def apply(value: np.ndarray) -> np.ndarray:
        rng = np.random.default_rng(derive_seed(99, "fault", victim))
        return (value + scale * rng.standard_normal(value.shape)).astype(np.float32)

    return apply


def _fault_positions(graph, count: int) -> List[str]:
    operators = [n.name for n in graph.graph.operators
                 if n.target in ("linear", "conv2d", "bmm", "layer_norm", "group_norm",
                                 "rms_norm", "gelu", "silu", "relu")]
    indices = np.linspace(0, len(operators) - 1, count).astype(int)
    return [operators[i] for i in indices]


def _dispute_costs(bench_model) -> Dict[str, object]:
    commitment = commit_model(bench_model.graph, bench_model.thresholds)
    inputs = bench_model.inputs(seed=5150)
    committee = [CommitteeMember(f"cm{i}", DEVICE_FLEET[i % 4]) for i in range(3)]

    forward_flops = None
    ratios = []
    dcrs = []
    rounds = []
    gas = []
    for victim in _fault_positions(bench_model.graph, NUM_FAULT_POSITIONS):
        coordinator = Coordinator()
        for account in ("owner", "user", "cheater", "challenger"):
            coordinator.chain.fund(account, 10_000.0)
        coordinator.register_model(commitment, owner="owner")
        game = DisputeGame(coordinator, bench_model.graph, commitment, bench_model.thresholds,
                           committee=committee, n_way=2)
        proposer = AdversarialProposer("cheater", DEVICE_FLEET[0],
                                       {victim: _noise_perturbation(victim)})
        challenger = Challenger("challenger", DEVICE_FLEET[3], bench_model.thresholds)
        result = proposer.execute(bench_model.graph, commitment, inputs)
        forward_flops = result.forward_flops
        task = coordinator.submit_result(bench_model.graph.name, "user", "cheater",
                                         result.commitment, fee=10.0)
        outcome = game.run(task, proposer, challenger, result)
        assert outcome.proposer_cheated
        stats = outcome.statistics
        ratios.append(stats.cost_ratio(forward_flops))
        dcrs.append(stats.dcr_flops)
        rounds.append(stats.rounds)
        gas.append(stats.gas_used)
    return {
        "forward_flops": forward_flops,
        "rounds": rounds,
        "gas": gas,
        "dcr": dcrs,
        "ratios": ratios,
        "num_operators": bench_model.graph.num_operators,
    }


def test_table3_costs(benchmark, bench_all):
    def run():
        return {name: _dispute_costs(bench_all[name]) for name in MODELS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in MODELS:
        r = results[name]
        rows.append([
            PAPER_NAMES.get(name, name),
            r["num_operators"],
            r["forward_flops"] / 1e9,
            f"{min(r['rounds'])}-{max(r['rounds'])}",
            f"{min(r['gas']) / 1e3:.0f}-{max(r['gas']) / 1e3:.0f}",
            f"[{min(r['dcr']) / 1e9:.4f}, {max(r['dcr']) / 1e9:.4f}]",
            f"[{min(r['ratios']):.2f}, {max(r['ratios']):.2f}]",
        ])
    emit_table(
        "table3_costs",
        "Forward and dispute costs across models (N = 2)",
        ["model", "operators", "forward (GFLOPs)", "dispute steps", "gas (k)",
         "DCR (GFLOPs) range", "cost ratio range"],
        rows,
        notes=("Paper (Table 3): dispute steps 11-13, ~2M gas, DCR 0.39-1.24x a forward pass "
               "for 1k-5k-operator graphs.  The mini graphs here are ~50-150 operators, so "
               "rounds/gas are proportionally lower; the cost-ratio property (dispute ~ one "
               "forward pass, not rounds x forward) is what transfers."),
    )

    for name in MODELS:
        r = results[name]
        # Dispute compute is on the order of a forward pass, never rounds x forward.
        assert max(r["ratios"]) < 0.6 * max(r["rounds"]), name
        assert min(r["ratios"]) > 0.05, name
        # Gas stays within the same order of magnitude as the paper's ~2M figure.
        assert max(r["gas"]) < 5_000_000, name
        # Rounds follow the binary-partition depth of the graph.
        assert max(r["rounds"]) <= int(np.ceil(np.log2(r["num_operators"]))) + 1, name
