"""Forward and VJP tests for elementwise operators."""

import numpy as np
import pytest
from scipy import special

from repro.ops.registry import get_op
from repro.tensorlib.device import REFERENCE_DEVICE

from tests.helpers import finite_difference_vjp_check


def _run(name, *tensors, **attrs):
    return get_op(name).forward(REFERENCE_DEVICE, *tensors, **attrs)


def test_binary_arithmetic_forward(rng):
    a = rng.standard_normal((3, 4)).astype(np.float32)
    b = rng.standard_normal((3, 4)).astype(np.float32)
    assert np.allclose(_run("add", a, b), a + b)
    assert np.allclose(_run("sub", a, b), a - b)
    assert np.allclose(_run("mul", a, b), a * b)
    assert np.allclose(_run("div", a, b + 3.0), a / (b + 3.0), rtol=1e-6)
    assert np.allclose(_run("maximum", a, b), np.maximum(a, b))
    assert np.allclose(_run("minimum", a, b), np.minimum(a, b))


def test_binary_broadcasting(rng):
    a = rng.standard_normal((4, 1, 5)).astype(np.float32)
    b = rng.standard_normal((3, 5)).astype(np.float32)
    out = _run("add", a, b)
    assert out.shape == (4, 3, 5)
    assert np.allclose(out, a + b)


def test_unary_forward(rng):
    x = (rng.standard_normal((2, 6)) * 0.5).astype(np.float32)
    positive = np.abs(x) + 0.5
    assert np.allclose(_run("neg", x), -x)
    assert np.allclose(_run("abs", x), np.abs(x))
    assert np.allclose(_run("sqrt", positive), np.sqrt(positive), rtol=1e-6)
    assert np.allclose(_run("rsqrt", positive), 1.0 / np.sqrt(positive), rtol=1e-5)
    assert np.allclose(_run("exp", x), np.exp(x), rtol=1e-6)
    assert np.allclose(_run("log", positive), np.log(positive), rtol=1e-6)
    assert np.allclose(_run("sin", x), np.sin(x), rtol=1e-6)
    assert np.allclose(_run("cos", x), np.cos(x), rtol=1e-6)
    assert np.allclose(_run("tanh", x), np.tanh(x), rtol=1e-6)
    assert np.allclose(_run("sigmoid", x), 1.0 / (1.0 + np.exp(-x)), rtol=1e-5)
    assert np.allclose(_run("erf", x), special.erf(x), rtol=1e-5)


def test_pow_clip_where(rng):
    x = (np.abs(rng.standard_normal((3, 3))) + 0.1).astype(np.float32)
    assert np.allclose(_run("pow", x, exponent=2.0), x ** 2, rtol=1e-6)
    assert np.allclose(_run("clip", x, minimum=0.2, maximum=0.8), np.clip(x, 0.2, 0.8))
    cond = x > 0.5
    y = rng.standard_normal((3, 3)).astype(np.float32)
    assert np.allclose(_run("where", cond, x, y), np.where(cond, x, y))


def test_outputs_are_float32(rng):
    x = rng.standard_normal((2, 2)).astype(np.float64)
    for name in ("add", "mul", "exp", "tanh"):
        args = (x, x) if name in ("add", "mul") else (x,)
        assert _run(name, *args).dtype == np.float32


@pytest.mark.parametrize("name,args,attrs", [
    ("add", 2, {}),
    ("sub", 2, {}),
    ("mul", 2, {}),
    ("div", 2, {}),
    ("maximum", 2, {}),
    ("minimum", 2, {}),
    ("neg", 1, {}),
    ("abs", 1, {}),
    ("exp", 1, {}),
    ("log", 1, {}),
    ("sin", 1, {}),
    ("cos", 1, {}),
    ("tanh", 1, {}),
    ("sigmoid", 1, {}),
    ("erf", 1, {}),
    ("sqrt", 1, {}),
    ("rsqrt", 1, {}),
    ("pow", 1, {"exponent": 3.0}),
    ("clip", 1, {"minimum": -0.5, "maximum": 0.5}),
])
def test_vjp_against_finite_differences(name, args, attrs, rng):
    # Inputs kept away from non-differentiable points (0 for abs/sqrt, clip edges).
    base = rng.standard_normal((3, 4)) * 0.4 + 1.2
    tensors = [base + 0.3 * i for i in range(args)]
    finite_difference_vjp_check(name, tensors, attrs, seed=7)


def test_where_vjp_flows_only_to_selected_branch(rng):
    cond = rng.standard_normal((4, 4)) > 0
    a = rng.standard_normal((4, 4))
    b = rng.standard_normal((4, 4))
    spec = get_op("where")
    out = spec.forward(REFERENCE_DEVICE, cond, a, b)
    grad = np.ones_like(out, dtype=np.float64)
    grads = spec.vjp(REFERENCE_DEVICE, grad, out, cond, a, b)
    assert grads[0] is None
    assert np.allclose(grads[1], cond.astype(np.float64))
    assert np.allclose(grads[2], (~cond).astype(np.float64))


def test_broadcast_vjp_reduces_to_operand_shape(rng):
    a = rng.standard_normal((1, 5))
    b = rng.standard_normal((4, 5))
    spec = get_op("add")
    out = spec.forward(REFERENCE_DEVICE, a, b)
    grads = spec.vjp(REFERENCE_DEVICE, np.ones_like(out, dtype=np.float64), out, a, b)
    assert grads[0].shape == (1, 5)
    assert grads[1].shape == (4, 5)
    assert np.allclose(grads[0], 4.0)
