"""Unit tests for the Module / Parameter system."""

import numpy as np
import pytest

from repro.graph.module import Module, Parameter


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 2)))
        self.bias = Parameter(np.zeros(2))

    def forward(self, x):
        return x


class Tree(Module):
    def __init__(self):
        super().__init__()
        self.first = Leaf()
        self.second = Leaf()
        self.gain = Parameter(np.array([2.0]))

    def forward(self, x):
        return x


def test_parameter_is_ndarray_subclass():
    p = Parameter([1.0, 2.0])
    assert isinstance(p, np.ndarray)
    assert p.dtype == np.float32


def test_attribute_assignment_registers_parameters_and_modules():
    tree = Tree()
    names = [name for name, _ in tree.named_parameters()]
    assert names == ["gain", "first.bias", "first.weight", "second.bias", "second.weight"]
    module_names = [name for name, _ in tree.named_modules()]
    assert module_names == ["", "first", "second"]


def test_state_dict_and_num_parameters():
    tree = Tree()
    state = tree.state_dict()
    assert set(state) == {"gain", "first.bias", "first.weight", "second.bias", "second.weight"}
    assert tree.num_parameters() == 1 + 2 * (4 + 2)


def test_register_parameter_and_add_module():
    leaf = Leaf()
    leaf.register_parameter("extra", np.ones(3))
    assert "extra" in dict(leaf.named_parameters())
    parent = Leaf()
    parent.add_module("child", leaf)
    assert "child.extra" in dict(parent.named_parameters())


def test_forward_is_abstract():
    class NoForward(Module):
        pass

    with pytest.raises(NotImplementedError):
        NoForward()(1)


def test_call_dispatches_to_forward():
    leaf = Leaf()
    assert leaf(5) == 5
