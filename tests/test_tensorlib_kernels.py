"""Unit and property tests for device-parameterized kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensorlib.device import DEVICE_FLEET, REFERENCE_DEVICE
from repro.tensorlib.kernels import (
    device_bmm,
    device_conv2d,
    device_matmul,
    device_mean,
    device_sum,
    device_var,
    im2col,
)


@pytest.mark.parametrize("device", list(DEVICE_FLEET) + [REFERENCE_DEVICE],
                         ids=lambda d: d.name)
def test_matmul_matches_fp64_reference(device, rng):
    a = rng.standard_normal((17, 33)).astype(np.float32)
    b = rng.standard_normal((33, 9)).astype(np.float32)
    exact = a.astype(np.float64) @ b.astype(np.float64)
    out = device_matmul(a, b, device)
    assert out.shape == (17, 9)
    assert out.dtype == np.float32
    assert np.allclose(out, exact, rtol=1e-4, atol=1e-4)


def test_matmul_batched_broadcasting(rng):
    a = rng.standard_normal((2, 3, 5, 7)).astype(np.float32)
    b = rng.standard_normal((2, 3, 7, 4)).astype(np.float32)
    out = device_matmul(a, b, DEVICE_FLEET[2])
    assert out.shape == (2, 3, 5, 4)
    assert np.allclose(out, np.matmul(a, b), atol=1e-4)


def test_matmul_shape_mismatch_raises(rng):
    a = rng.standard_normal((4, 5)).astype(np.float32)
    b = rng.standard_normal((6, 3)).astype(np.float32)
    with pytest.raises(ValueError):
        device_matmul(a, b, DEVICE_FLEET[0])


def test_matmul_diverges_across_devices(rng):
    a = rng.standard_normal((64, 512)).astype(np.float32)
    b = rng.standard_normal((512, 64)).astype(np.float32)
    outputs = [device_matmul(a, b, d).tobytes() for d in DEVICE_FLEET]
    assert len(set(outputs)) >= 2, "devices with different split-K must disagree in low bits"


def test_bmm_requires_batched_inputs(rng):
    a = rng.standard_normal((4, 5)).astype(np.float32)
    b = rng.standard_normal((5, 3)).astype(np.float32)
    with pytest.raises(ValueError):
        device_bmm(a, b, DEVICE_FLEET[0])


def test_bmm_matches_matmul(rng):
    a = rng.standard_normal((3, 8, 16)).astype(np.float32)
    b = rng.standard_normal((3, 16, 4)).astype(np.float32)
    assert np.allclose(device_bmm(a, b, DEVICE_FLEET[1]), np.matmul(a, b), atol=1e-4)


@pytest.mark.parametrize("axis", [0, 1, -1, (0, 1), None])
def test_device_sum_matches_numpy(axis, rng):
    values = rng.standard_normal((13, 21)).astype(np.float32)
    for device in DEVICE_FLEET[:2]:
        out = device_sum(values, device, axis=axis)
        assert np.allclose(out, values.astype(np.float64).sum(axis=axis), atol=1e-4)


def test_device_sum_keepdims(rng):
    values = rng.standard_normal((4, 6, 8)).astype(np.float32)
    out = device_sum(values, DEVICE_FLEET[0], axis=(1, 2), keepdims=True)
    assert out.shape == (4, 1, 1)


def test_device_mean_and_var_match_numpy(rng):
    values = rng.standard_normal((10, 32)).astype(np.float32)
    device = DEVICE_FLEET[3]
    assert np.allclose(device_mean(values, device, axis=-1), values.mean(axis=-1), atol=1e-5)
    assert np.allclose(device_var(values, device, axis=-1), values.var(axis=-1),
                       rtol=1e-4, atol=1e-5)


def test_device_var_ddof(rng):
    values = rng.standard_normal((5, 64)).astype(np.float32)
    out = device_var(values, DEVICE_FLEET[0], axis=-1, ddof=1)
    assert np.allclose(out, values.var(axis=-1, ddof=1), rtol=1e-4, atol=1e-5)


def _naive_conv2d(x, w, stride, padding):
    n, c_in, h, wdt = x.shape
    c_out, _, kh, kw = w.shape
    sh, sw = stride
    ph, pw = padding
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (wdt + 2 * pw - kw) // sw + 1
    out = np.zeros((n, c_out, oh, ow), dtype=np.float64)
    for b in range(n):
        for co in range(c_out):
            for i in range(oh):
                for j in range(ow):
                    patch = padded[b, :, i * sh:i * sh + kh, j * sw:j * sw + kw]
                    out[b, co, i, j] = np.sum(patch.astype(np.float64) * w[co].astype(np.float64))
    return out


@pytest.mark.parametrize("stride,padding", [((1, 1), (0, 0)), ((1, 1), (1, 1)), ((2, 2), (1, 1))])
def test_conv2d_matches_naive(stride, padding, rng):
    x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
    w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
    bias = rng.standard_normal(4).astype(np.float32)
    expected = _naive_conv2d(x, w, stride, padding) + bias.reshape(1, 4, 1, 1)
    out = device_conv2d(x, w, bias, DEVICE_FLEET[0], stride=stride, padding=padding)
    assert out.shape == expected.shape
    assert np.allclose(out, expected, rtol=1e-4, atol=1e-4)


def test_conv2d_channel_mismatch_raises(rng):
    x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
    w = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
    with pytest.raises(ValueError):
        device_conv2d(x, w, None, DEVICE_FLEET[0])


def test_conv2d_empty_output_raises(rng):
    x = rng.standard_normal((1, 1, 2, 2)).astype(np.float32)
    w = rng.standard_normal((1, 1, 5, 5)).astype(np.float32)
    with pytest.raises(ValueError):
        device_conv2d(x, w, None, DEVICE_FLEET[0])


def test_im2col_shapes(rng):
    x = rng.standard_normal((2, 3, 10, 12)).astype(np.float32)
    cols, (oh, ow) = im2col(x, (3, 3), (1, 1), (1, 1))
    assert (oh, ow) == (10, 12)
    assert cols.shape == (2, 10 * 12, 3 * 3 * 3)


@settings(deadline=None, max_examples=20)
@given(
    m=st.integers(1, 12), k=st.integers(1, 48), n=st.integers(1, 12),
    device_index=st.integers(0, 3), seed=st.integers(0, 1000),
)
def test_matmul_property_close_to_fp64(m, k, n, device_index, seed):
    local_rng = np.random.default_rng(seed)
    a = local_rng.standard_normal((m, k)).astype(np.float32)
    b = local_rng.standard_normal((k, n)).astype(np.float32)
    out = device_matmul(a, b, DEVICE_FLEET[device_index])
    exact = a.astype(np.float64) @ b.astype(np.float64)
    assert np.allclose(out, exact, rtol=1e-4, atol=1e-4)
