"""Unit tests for repro.utils.hashing."""

import hashlib

from hypothesis import given, strategies as st

from repro.utils.hashing import hash_concat, sha256_bytes, sha256_hex


def test_sha256_bytes_matches_hashlib():
    payload = b"tao verification"
    assert sha256_bytes(payload) == hashlib.sha256(payload).digest()


def test_sha256_hex_matches_hashlib():
    payload = b"tolerance aware"
    assert sha256_hex(payload) == hashlib.sha256(payload).hexdigest()


def test_hash_concat_is_order_sensitive():
    assert hash_concat([b"a", b"b"]) != hash_concat([b"b", b"a"])


def test_hash_concat_framing_prevents_ambiguity():
    # Without length framing these two would collide.
    assert hash_concat([b"ab", b"c"]) != hash_concat([b"a", b"bc"])
    assert hash_concat([b"abc"]) != hash_concat([b"ab", b"c"])


def test_hash_concat_empty_parts_are_distinct():
    assert hash_concat([]) != hash_concat([b""])
    assert hash_concat([b""]) != hash_concat([b"", b""])


@given(st.lists(st.binary(max_size=64), max_size=8))
def test_hash_concat_deterministic(parts):
    assert hash_concat(parts) == hash_concat(parts)
    assert len(hash_concat(parts)) == 32
