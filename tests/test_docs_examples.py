"""Execute every fenced python block in docs/*.md and README.md.

Documentation examples rot silently; this harness keeps them honest.  Every
fenced code block tagged ``python`` is extracted and executed, top to bottom,
with all blocks of one page sharing a namespace (pages are written as
progressive walkthroughs).  A page with no python block fails — each docs
page is required to carry at least one executable example.

Run standalone (the CI docs job does):

    PYTHONPATH=src python -m pytest -q tests/test_docs_examples.py
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
DOC_PAGES = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]

FENCE = re.compile(r"^```python\n(.*?)^```", re.DOTALL | re.MULTILINE)


def extract_python_blocks(path: Path) -> list:
    return [match.group(1) for match in FENCE.finditer(path.read_text())]


def test_docs_tree_exists():
    names = {page.name for page in DOC_PAGES}
    assert {"architecture.md", "protocol.md", "serving.md", "simulator.md",
            "examples.md", "README.md"} <= names


@pytest.mark.parametrize("page", DOC_PAGES, ids=lambda p: p.name)
def test_docs_examples_execute(page):
    blocks = extract_python_blocks(page)
    assert blocks, f"{page.name} carries no executable python example"
    namespace = {"__name__": f"docs_example_{page.stem}"}
    for index, block in enumerate(blocks):
        code = compile(block, f"{page.name}[block {index}]", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own documentation
