"""Stage-pipelined execution for the serving front end.

The package decomposes a multi-stage request lifecycle into explicit
:class:`~repro.pipeline.stages.StageDef` steps connected by bounded
:class:`~repro.pipeline.queues.HandoffQueue` hand-offs, and runs one worker
per stage so independent stages of *different* items overlap in time while
each stage processes items strictly in order.  Stages that touch a shared,
order-sensitive resource (the settlement chain) declare a common *lane* and
are serialized in exact protocol order by a
:class:`~repro.pipeline.stages.SerialLane` ticket lock — the property that
makes the pipelined drain byte-identical to the synchronous reference drain.
"""

from repro.pipeline.core import Pipeline, PipelineStats, StageStats
from repro.pipeline.queues import HandoffQueue, PipelineAborted
from repro.pipeline.stages import SerialLane, StageDef

__all__ = [
    "HandoffQueue",
    "Pipeline",
    "PipelineAborted",
    "PipelineStats",
    "SerialLane",
    "StageDef",
    "StageStats",
]
