"""The N-way, Merkle-anchored, threshold-guided dispute game (paper Sec. 5.3).

Each round the proposer deterministically partitions the disputed operator
range into N contiguous children and posts their interface commitments; the
challenger re-executes the children from the committed live-in tensors and
selects the first child whose live-out errors exceed the calibrated
thresholds (Eq. 15); the coordinator advances the state and enforces
timeouts.  After ``O(log_N |V|)`` rounds the dispute reaches a single
operator and Phase 3 adjudication resolves it.

:class:`DisputeGame` orchestrates the exchange between role objects and the
coordinator, and collects the statistics reported in Fig. 8 and Table 3:
round counts, per-round substep latency, Merkle-proof checks, challenger
FLOPs (DCR) and on-chain gas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bounds.fp_model import BoundMode
from repro.calibration.thresholds import ThresholdTable
from repro.graph.graph import GraphModule
from repro.graph.node import Node
from repro.graph.subgraph import SubgraphSlice
from repro.merkle.commitments import ModelCommitment
from repro.protocol.adjudication import (
    AdjudicationResult,
    committee_vote,
    route_and_adjudicate,
    theoretical_bound_check,
)
from repro.protocol.coordinator import Coordinator, PartitionEntry, TaskRecord
from repro.protocol.roles import Challenger, CommitteeMember, ProposedResult, Proposer


@dataclass
class RoundStatistics:
    """Per-round substep accounting (Fig. 8 right panel)."""

    round_index: int
    slice_start: int
    slice_end: int
    num_children: int
    selected_child: Optional[int]
    partition_time_s: float
    selection_time_s: float
    merkle_checks: int
    challenger_flops: float


@dataclass
class DisputeStatistics:
    """Aggregate dispute-game statistics (Fig. 8, Table 3)."""

    rounds: int
    dispute_time_s: float
    merkle_checks: int
    challenger_flops: float
    adjudication_flops: float
    gas_used: int
    per_round: List[RoundStatistics] = field(default_factory=list)

    @property
    def dcr_flops(self) -> float:
        """Challenger FLOPs to reach and adjudicate the leaf (the paper's DCR)."""
        return self.challenger_flops + self.adjudication_flops

    def cost_ratio(self, forward_flops: float) -> float:
        if forward_flops <= 0:
            return float("nan")
        return self.dcr_flops / forward_flops


@dataclass
class DisputeOutcome:
    """Final result of one dispute game."""

    dispute_id: int
    task_id: int
    proposer_cheated: bool
    winner: str
    localized_operator: Optional[str]
    adjudication: Optional[AdjudicationResult]
    statistics: DisputeStatistics
    resolved_by_timeout: bool = False


@dataclass
class ActiveDispute:
    """In-flight state of one dispute game (one per multiplexed dispute).

    A service keeps several of these open against the same coordinator and
    advances them round-robin via :meth:`DisputeGame.step_round`; each holds
    exactly the loop state the seed's monolithic ``run`` loop carried.
    """

    task: TaskRecord
    proposer: Proposer
    challenger: Challenger
    result: ProposedResult
    dispute: object  # coordinator DisputeRecord
    per_round: List[RoundStatistics] = field(default_factory=list)
    resolved_by_timeout: bool = False
    #: True when the dispute was settled by an input-binding fraud proof
    #: (the committed trace did not extend the committed input hash).
    input_fraud: bool = False
    #: Hash checks spent on the input-binding verification at open time
    #: (performed for every dispute, fraud or not).
    binding_checks: int = 0

    @property
    def finished(self) -> bool:
        return self.dispute.at_leaf or self.dispute.phase.value == "resolved"


class DisputeGame:
    """Drives one dispute between a proposer and a challenger via the coordinator."""

    def __init__(
        self,
        coordinator: Coordinator,
        graph_module: GraphModule,
        model_commitment: ModelCommitment,
        thresholds: ThresholdTable,
        committee: Sequence[CommitteeMember] = (),
        n_way: int = 2,
        bound_mode: BoundMode = BoundMode.PROBABILISTIC,
        leaf_path: str = "routed",
        committee_envelope=None,
    ) -> None:
        if n_way < 2:
            raise ValueError("the dispute game requires an N-way partition with N >= 2")
        if leaf_path not in ("routed", "theoretical", "committee"):
            raise ValueError(f"unknown leaf adjudication path {leaf_path!r}")
        self.coordinator = coordinator
        self.graph_module = graph_module
        self.model_commitment = model_commitment
        self.thresholds = thresholds
        self.committee = list(committee)
        self.n_way = int(n_way)
        self.bound_mode = bound_mode
        self.leaf_path = leaf_path
        #: Committed single-op acceptance envelope consulted by the
        #: committee-vote leaf paths; ``None`` keeps the reference tolerance.
        self.committee_envelope = committee_envelope

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------

    def run(
        self,
        task: TaskRecord,
        proposer: Proposer,
        challenger: Challenger,
        result: ProposedResult,
    ) -> DisputeOutcome:
        """Play the dispute game for ``task`` until resolution."""
        active = self.open(task, proposer, challenger, result)
        while self.step_round(active):
            pass
        return self.conclude(active)

    def open(
        self,
        task: TaskRecord,
        proposer: Proposer,
        challenger: Challenger,
        result: ProposedResult,
    ) -> ActiveDispute:
        """Open the dispute on chain; rounds are then driven by :meth:`step_round`.

        Before any localization round the challenger checks that the
        proposer's committed trace extends the committed input hash; a
        mismatch (stale/substituted trace) is settled immediately by an
        input-binding fraud proof rather than by playing the game.
        """
        challenger.reset_accounting()
        dispute = self.coordinator.open_dispute(task.task_id, challenger.name)
        active = ActiveDispute(task=task, proposer=proposer, challenger=challenger,
                               result=result, dispute=dispute)
        bound, checks = challenger.verify_input_binding(result)
        challenger.merkle_checks += checks
        active.binding_checks = checks
        if not bound:
            self.coordinator.post_input_binding_fraud(dispute.dispute_id,
                                                      challenger.name)
            active.input_fraud = True
        return active

    def step_round(self, active: ActiveDispute) -> bool:
        """Play one partition/selection round; returns True while rounds remain.

        Disputes over a shared coordinator are independent between rounds, so
        a service can interleave ``step_round`` calls across many active
        disputes (multiplexed dispute games) and reach the same outcome as
        running each game to completion back to back.
        """
        dispute = active.dispute
        if active.finished:
            return False
        proposer, challenger, result = active.proposer, active.challenger, active.result

        # Liveness faults: either party may stall before its move.  Time
        # advances on chain; a stall at or beyond the round timeout lets the
        # counterparty enforce it, forfeiting the dispute.
        if self._stall(active, proposer.move_delay_s(dispute.round_index),
                       enforcer=challenger.name):
            return False

        slice_ = SubgraphSlice(dispute.current_start, dispute.current_end)
        partition_before = proposer.stopwatch.total("proposer_partition")
        records = proposer.partition(
            self.graph_module, self.model_commitment, result, slice_, self.n_way
        )
        partition_time = proposer.stopwatch.total("proposer_partition") - partition_before

        entries = [
            PartitionEntry(r.slice_start, r.slice_end, r.h_in, r.h_out) for r in records
        ]
        onchain_bytes = 16 + 80 * len(entries)
        self.coordinator.post_partition(dispute.dispute_id, proposer.name, entries,
                                        payload_bytes=onchain_bytes)

        selection_before = challenger.stopwatch.total("challenger_selection")
        outcome = challenger.select_offending(
            self.graph_module, self.model_commitment, records
        )
        selection_time = challenger.stopwatch.total("challenger_selection") - selection_before

        active.per_round.append(RoundStatistics(
            round_index=dispute.round_index,
            slice_start=slice_.start,
            slice_end=slice_.end,
            num_children=len(records),
            selected_child=outcome.selected_index,
            partition_time_s=partition_time,
            selection_time_s=selection_time,
            merkle_checks=outcome.merkle_checks,
            challenger_flops=outcome.flops,
        ))

        if outcome.selected_index is None:
            # No child exceeds the thresholds: the challenger cannot make
            # progress and (per protocol) loses the round by timing out.
            self.coordinator.chain.advance_time(self.coordinator.round_timeout_s + 1.0)
            self.coordinator.enforce_timeout(dispute.dispute_id, active.challenger.name)
            active.resolved_by_timeout = True
            return False
        if self._stall(active, challenger.move_delay_s(dispute.round_index),
                       enforcer=proposer.name):
            return False
        self.coordinator.post_selection(dispute.dispute_id, active.challenger.name,
                                        outcome.selected_index)
        return not active.finished

    def _stall(self, active: ActiveDispute, delay_s: float, enforcer: str) -> bool:
        """Advance chain time by a party's stall; returns True when it forfeits.

        A delay below the round timeout is merely late (the move still
        lands); at or beyond it the counterparty enforces the timeout and the
        stalled party loses whichever phase the dispute is awaiting.
        """
        if delay_s <= 0:
            return False
        self.coordinator.chain.advance_time(float(delay_s))
        loser = self.coordinator.enforce_timeout(active.dispute.dispute_id, enforcer)
        if loser is None:
            return False
        active.resolved_by_timeout = True
        return True

    def conclude(self, active: ActiveDispute) -> DisputeOutcome:
        """Adjudicate the localized leaf (if reached) and settle the outcome."""
        dispute = active.dispute
        task, challenger, result = active.task, active.challenger, active.result
        adjudication: Optional[AdjudicationResult] = None
        localized_operator: Optional[str] = None
        adjudication_flops = 0.0

        if dispute.phase.value == "await_adjudication":
            localized_operator, operand_values, proposer_output = self._leaf_state(result, dispute)
            adjudication = self._adjudicate(localized_operator, operand_values,
                                            proposer_output, challenger)
            adjudication_flops = adjudication.flops
            self.coordinator.post_adjudication(
                dispute.dispute_id, challenger.name,
                proposer_cheated=adjudication.proposer_cheated,
                path=adjudication.path,
                details=dict(adjudication.details),
            )

        per_round = active.per_round
        statistics = DisputeStatistics(
            rounds=len(per_round),
            dispute_time_s=sum(r.partition_time_s + r.selection_time_s for r in per_round),
            merkle_checks=active.binding_checks + sum(r.merkle_checks for r in per_round),
            challenger_flops=challenger.dispute_flops,
            adjudication_flops=adjudication_flops,
            gas_used=self.coordinator.dispute_gas(dispute.dispute_id),
            per_round=per_round,
        )
        task_record = self.coordinator.task(task.task_id)
        proposer_cheated = task_record.status.value == "proposer_slashed"
        winner = challenger.name if proposer_cheated else active.proposer.name
        return DisputeOutcome(
            dispute_id=dispute.dispute_id,
            task_id=task.task_id,
            proposer_cheated=proposer_cheated,
            winner=winner,
            localized_operator=localized_operator,
            adjudication=adjudication,
            statistics=statistics,
            resolved_by_timeout=active.resolved_by_timeout,
        )

    # ------------------------------------------------------------------
    # Leaf handling
    # ------------------------------------------------------------------

    def _leaf_state(self, result: ProposedResult, dispute) -> Tuple[str, List[np.ndarray], np.ndarray]:
        """Resolve the localized operator, its agreed inputs and the claimed output.

        The inputs come from the proposer's committed trace: by construction
        of the selection rule, every value upstream of the localized operator
        has been implicitly accepted by the challenger.
        """
        operator = self.graph_module.graph.operators[dispute.current_start]
        operand_values: List[np.ndarray] = []
        for arg in operator.args:
            if isinstance(arg, Node):
                if arg.op == "get_param":
                    operand_values.append(np.asarray(self.graph_module.parameters[arg.target]))
                elif arg.op == "constant":
                    operand_values.append(np.asarray(self.graph_module.graph.constants[arg.target]))
                else:
                    operand_values.append(np.asarray(result.trace_values[arg.name]))
            else:
                operand_values.append(arg)
        proposer_output = np.asarray(result.trace_values[operator.name])
        return operator.name, operand_values, proposer_output

    def _adjudicate(self, operator_name: str, operand_values: Sequence[np.ndarray],
                    proposer_output: np.ndarray, challenger: Challenger) -> AdjudicationResult:
        if self.leaf_path == "theoretical":
            return theoretical_bound_check(
                self.graph_module, operator_name, operand_values, proposer_output,
                device=challenger.device, mode=self.bound_mode,
            )
        if self.leaf_path == "committee":
            return committee_vote(
                self.graph_module, operator_name, operand_values, proposer_output,
                self.committee, self.thresholds,
                committee_envelope=self.committee_envelope,
            )
        return route_and_adjudicate(
            self.graph_module, operator_name, operand_values, proposer_output,
            challenger_device=challenger.device, committee=self.committee,
            thresholds=self.thresholds, mode=self.bound_mode,
            committee_envelope=self.committee_envelope,
        )
