"""FLOP accounting.

The paper's Table 3 reports the challenger's dispute compute (DCR) as a FLOP
count and normalizes it by the model's forward-pass FLOPs ("Cost Ratio").
This module provides a :class:`FlopCounter` plus per-operator estimators used
by the graph interpreter so that every (sub)graph execution carries an exact
FLOP figure, enabling the Table 3 reproduction without wall-clock noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np


@dataclass
class FlopCounter:
    """Accumulates floating-point operation counts keyed by operator name."""

    per_op: Dict[str, float] = field(default_factory=dict)

    def add(self, op_name: str, flops: float) -> None:
        self.per_op[op_name] = self.per_op.get(op_name, 0.0) + float(flops)

    @property
    def total(self) -> float:
        return float(sum(self.per_op.values()))

    def merge(self, other: "FlopCounter") -> None:
        for name, flops in other.per_op.items():
            self.add(name, flops)

    def as_giga(self) -> float:
        """Total FLOPs in units of 1e9, matching Table 3's reporting unit."""
        return self.total / 1e9


def matmul_flops(a_shape: Sequence[int], b_shape: Sequence[int]) -> float:
    """FLOPs of ``a @ b``: 2*M*N*K per batch element (multiply + add)."""
    a_shape = tuple(int(s) for s in a_shape)
    b_shape = tuple(int(s) for s in b_shape)
    if len(a_shape) < 2 or len(b_shape) < 2:
        return 2.0 * float(np.prod(a_shape)) * float(b_shape[-1] if b_shape else 1)
    m = a_shape[-2]
    k = a_shape[-1]
    n = b_shape[-1]
    batch = float(np.prod(a_shape[:-2])) if len(a_shape) > 2 else 1.0
    return 2.0 * batch * m * n * k


def conv2d_flops(
    input_shape: Sequence[int],
    weight_shape: Sequence[int],
    output_spatial: Tuple[int, int],
) -> float:
    """FLOPs of a 2-D convolution: 2 * N * C_out * OH * OW * C_in * kH * kW."""
    n = int(input_shape[0])
    c_out, c_in, kh, kw = (int(s) for s in weight_shape)
    oh, ow = (int(s) for s in output_spatial)
    return 2.0 * n * c_out * oh * ow * c_in * kh * kw


def elementwise_flops(output_shape: Sequence[int], ops_per_element: float = 1.0) -> float:
    """FLOPs of an elementwise operator over ``output_shape``."""
    return float(np.prod([int(s) for s in output_shape])) * float(ops_per_element)


def reduction_flops(input_shape: Sequence[int]) -> float:
    """FLOPs of a full reduction over ``input_shape`` (one add per element)."""
    return float(np.prod([int(s) for s in input_shape]))


def normalization_flops(input_shape: Sequence[int]) -> float:
    """FLOPs of a layer/batch/group norm: ~5 ops per element (mean, var, scale)."""
    return 5.0 * float(np.prod([int(s) for s in input_shape]))


def softmax_flops(input_shape: Sequence[int]) -> float:
    """FLOPs of softmax: ~4 ops per element (max, sub, exp, div) + reduction."""
    return 5.0 * float(np.prod([int(s) for s in input_shape]))
