"""Parent-held write-ahead journal for one shard worker.

Workers hold no durable state: every ledger mutation already flows through
the parent as a nested ``chain_call``.  :class:`ShardJournal` makes that
stream (plus the command stream that produced it) recoverable.  It lives in
the **parent** process — the crash domain is the worker — and stores every
record through the repo's canonical codec
(:func:`repro.utils.serialization.canonical_bytes`), so journal contents are
exactly the bytes that crossed the transport, decode strictly, and fingerprint
deterministically.

Three streams, with distinct write points:

* **spec entries** — the coordinator's ``(state, event)`` records
  (``repro.spec.machine``).  The worker ships each one as a one-way
  ``journal`` frame *before* issuing the chain calls of that transition;
  FIFO socket ordering therefore gives the write-ahead property: any chain
  mutation the parent applied is covered by a journaled transition.
* **chain replies** — every nested ``chain_call`` (reads, writes and error
  replies alike), keyed by the worker's per-incarnation sequence id and
  recorded *after* the parent applied it.  A restarted worker re-issues the
  same deterministic sequence; replies at-or-below the journal tail are
  answered from the journal without re-applying — the at-most-once
  guarantee for ``fund``/``transfer``/``append_stamped``.
* **commands** — completed op conversations (``register``/``submit``/
  ``process``/…), recorded only once their response arrived.  Replaying them
  against a fresh worker rebuilds its entire in-memory stack; the op that
  was in flight at the crash is *not* replayed here — its caller retries it,
  and the chain stream dedupe makes the retry exact.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.utils.serialization import canonical_bytes, decode_canonical


class JournalDivergence(RuntimeError):
    """A replayed worker issued a chain call that contradicts the journal —
    the deterministic-replay assumption broke; recovery must not continue."""


class ShardJournal:
    """Write-ahead journal of one shard worker, owned by the fleet parent."""

    def __init__(self, shard_id: str) -> None:
        self.shard_id = str(shard_id)
        self._spec: List[bytes] = []
        self._spec_by_seq: Dict[int, bytes] = {}
        self._commands: List[bytes] = []
        self._chain: Dict[int, bytes] = {}
        #: Highest chain sequence id recorded; a restarted worker's calls at
        #: or below this are replay duplicates.
        self.chain_tail = 0

    # -- spec (state, event) stream --------------------------------------

    def record_spec(self, entry: Dict[str, Any]) -> None:
        """Append one ``(state, event)`` record (idempotent under replay).

        Entries are stamped worker-side with ``chain_seq`` — the sequence id
        of the transition's first upcoming chain call.  A recovered worker
        retrying its interrupted command re-emits the already-journaled
        records with identical stamps: those are dropped (after checking
        they match byte-for-byte), so the journal stays one entry per
        logical transition across any number of crashes.
        """
        blob = canonical_bytes(dict(entry))
        seq = entry.get("chain_seq")
        if seq is not None:
            seq = int(seq)
            recorded = self._spec_by_seq.get(seq)
            if recorded is not None:
                if recorded != blob:
                    raise JournalDivergence(
                        f"[{self.shard_id}] replayed journal entry at chain "
                        f"seq {seq} does not match the recorded transition; "
                        f"deterministic replay broke")
                return
            self._spec_by_seq[seq] = blob
        self._spec.append(blob)

    def spec_entries(self) -> List[Dict[str, Any]]:
        return [decode_canonical(blob) for blob in self._spec]

    # -- chain_call stream ------------------------------------------------

    def record_chain(self, seq: int, message: Dict[str, Any],
                     reply: Dict[str, Any]) -> None:
        seq = int(seq)
        self._chain[seq] = canonical_bytes({
            "method": message.get("method"),
            "args": message.get("args", {}),
            "reply": reply,
        })
        if seq > self.chain_tail:
            self.chain_tail = seq

    def chain_reply(self, seq: int, message: Dict[str, Any],
                    ) -> Optional[Dict[str, Any]]:
        """The recorded reply for ``seq``, or ``None`` if the call is fresh.

        A recorded entry must match the incoming call exactly (method and
        arguments, canonical bytes); anything else means the replayed worker
        diverged from its pre-crash execution.
        """
        seq = int(seq)
        blob = self._chain.get(seq)
        if blob is None:
            if seq <= self.chain_tail:
                raise JournalDivergence(
                    f"[{self.shard_id}] chain call seq {seq} is below the "
                    f"journal tail {self.chain_tail} but was never recorded")
            return None
        recorded = decode_canonical(blob)
        incoming = canonical_bytes({"method": message.get("method"),
                                    "args": message.get("args", {})})
        original = canonical_bytes({"method": recorded["method"],
                                    "args": recorded["args"]})
        if incoming != original:
            raise JournalDivergence(
                f"[{self.shard_id}] replayed chain call seq {seq} "
                f"({message.get('method')!r}) does not match the journaled "
                f"call ({recorded['method']!r}); deterministic replay broke")
        return recorded["reply"]

    # -- command stream ---------------------------------------------------

    def record_command(self, payload: Dict[str, Any], ok: bool,
                       value: Any) -> None:
        self._commands.append(canonical_bytes({
            "payload": payload, "ok": bool(ok), "value": value}))

    def commands(self) -> List[Dict[str, Any]]:
        """Completed commands in order: ``{"payload", "ok", "value"}``."""
        return [decode_canonical(blob) for blob in self._commands]

    # -- accounting -------------------------------------------------------

    @property
    def command_count(self) -> int:
        return len(self._commands)

    @property
    def chain_entry_count(self) -> int:
        return len(self._chain)

    @property
    def spec_entry_count(self) -> int:
        return len(self._spec)

    def size_bytes(self) -> int:
        return (sum(len(blob) for blob in self._spec)
                + sum(len(blob) for blob in self._commands)
                + sum(len(blob) for blob in self._chain.values()))
