"""MiniQwen: the Qwen3-8B analogue.

A decoder-only LLM with the modern architecture ingredients the paper's LLM
workload uses: RMSNorm, rotary position embeddings (RoPE), causal multi-head
attention, a SwiGLU feed-forward block and a tied-vocabulary LM head.  The
output is next-token logits for the final position, matching the paper's
"feed the first part of the sequence, target the next token" attack setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.graph import functional as F
from repro.graph.module import Module, Parameter
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class QwenConfig:
    """Architecture hyperparameters of MiniQwen."""

    vocab_size: int = 512
    max_seq_len: int = 32
    d_model: int = 64
    num_heads: int = 4
    num_layers: int = 3
    d_ff: int = 128
    rope_base: float = 10_000.0
    seed: int = 2

    @property
    def head_dim(self) -> int:
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        return self.d_model // self.num_heads

    @classmethod
    def small(cls) -> "QwenConfig":
        return cls()

    @classmethod
    def large(cls) -> "QwenConfig":
        return cls(d_model=96, num_heads=6, num_layers=6, d_ff=256, vocab_size=1024)


def _linear_init(rng: np.random.Generator, out_dim: int, in_dim: int) -> np.ndarray:
    scale = 1.0 / np.sqrt(in_dim)
    return (rng.standard_normal((out_dim, in_dim)) * scale).astype(np.float32)


def rope_tables(seq_len: int, head_dim: int, base: float) -> Tuple[np.ndarray, np.ndarray]:
    """Precompute the RoPE cos/sin tables of shape (seq_len, head_dim)."""
    if head_dim % 2 != 0:
        raise ValueError("RoPE requires an even head dimension")
    positions = np.arange(seq_len, dtype=np.float64)[:, None]
    freq_index = np.arange(head_dim // 2, dtype=np.float64)[None, :]
    inv_freq = base ** (-2.0 * freq_index / head_dim)
    angles = positions * inv_freq  # (seq, head_dim/2)
    angles = np.concatenate([angles, angles], axis=-1)  # (seq, head_dim)
    return np.cos(angles).astype(np.float32), np.sin(angles).astype(np.float32)


class CausalSelfAttention(Module):
    """Multi-head causal attention with rotary position embeddings."""

    def __init__(self, rng: np.random.Generator, config: QwenConfig) -> None:
        super().__init__()
        d = config.d_model
        self.num_heads = config.num_heads
        self.head_dim = config.head_dim
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.wq = Parameter(_linear_init(rng, d, d))
        self.wk = Parameter(_linear_init(rng, d, d))
        self.wv = Parameter(_linear_init(rng, d, d))
        self.wo = Parameter(_linear_init(rng, d, d))
        cos, sin = rope_tables(config.max_seq_len, config.head_dim, config.rope_base)
        self.rope_cos = Parameter(cos)
        self.rope_sin = Parameter(sin)
        # Causal mask constant: True above the diagonal (future positions).
        self.causal_mask = np.triu(
            np.ones((config.max_seq_len, config.max_seq_len), dtype=bool), k=1
        )

    def _split_heads(self, x, batch: int, seq: int):
        x = F.reshape(x, shape=(batch, seq, self.num_heads, self.head_dim))
        return F.permute(x, dims=(0, 2, 1, 3))

    def _apply_rope(self, x, seq: int):
        """x: (batch, heads, seq, head_dim) -> rotary-embedded x."""
        cos = F.slice(self.rope_cos, axis=0, start=0, stop=seq)
        sin = F.slice(self.rope_sin, axis=0, start=0, stop=seq)
        half = self.head_dim // 2
        x1 = F.slice(x, axis=3, start=0, stop=half)
        x2 = F.slice(x, axis=3, start=half, stop=self.head_dim)
        rotated = F.concat([F.neg(x2), x1], axis=3)
        return F.add(F.mul(x, cos), F.mul(rotated, sin))

    def forward(self, hidden):
        batch, seq, d_model = hidden.shape
        q = self._split_heads(F.linear(hidden, self.wq), batch, seq)
        k = self._split_heads(F.linear(hidden, self.wk), batch, seq)
        v = self._split_heads(F.linear(hidden, self.wv), batch, seq)
        q = self._apply_rope(q, seq)
        k = self._apply_rope(k, seq)

        k_t = F.transpose(k, axis0=2, axis1=3)
        scores = F.mul(F.bmm(q, k_t), self.scale)
        mask = self.causal_mask[:seq, :seq]
        scores = F.masked_fill(scores, mask, value=-1e9)
        attention = F.softmax(scores, axis=-1)
        context = F.bmm(attention, v)
        context = F.permute(context, dims=(0, 2, 1, 3))
        context = F.reshape(context, shape=(batch, seq, d_model))
        return F.linear(context, self.wo)


class DecoderLayer(Module):
    """Pre-norm decoder layer: RMSNorm -> attention, RMSNorm -> SwiGLU."""

    def __init__(self, rng: np.random.Generator, config: QwenConfig) -> None:
        super().__init__()
        d = config.d_model
        self.attn_norm = Parameter(np.ones(d))
        self.attention = CausalSelfAttention(rng, config)
        self.ffn_norm = Parameter(np.ones(d))
        self.w_gate = Parameter(_linear_init(rng, config.d_ff, d))
        self.w_up = Parameter(_linear_init(rng, config.d_ff, d))
        self.w_down = Parameter(_linear_init(rng, d, config.d_ff))

    def forward(self, hidden):
        attn_in = F.rms_norm(hidden, self.attn_norm)
        hidden = F.add(hidden, self.attention(attn_in))
        ffn_in = F.rms_norm(hidden, self.ffn_norm)
        gate = F.silu(F.linear(ffn_in, self.w_gate))
        up = F.linear(ffn_in, self.w_up)
        ffn_out = F.linear(F.mul(gate, up), self.w_down)
        return F.add(hidden, ffn_out)


class MiniQwen(Module):
    """Decoder-only LLM (the Qwen3-8B stand-in); returns next-token logits."""

    def __init__(self, config: QwenConfig = QwenConfig()) -> None:
        super().__init__()
        self.config = config
        rng = seeded_rng(config.seed)
        self.token_embedding = Parameter(
            (rng.standard_normal((config.vocab_size, config.d_model)) * 0.02).astype(np.float32)
        )
        self.layers: List[DecoderLayer] = []
        for i in range(config.num_layers):
            layer = DecoderLayer(rng, config)
            self.add_module(f"layer{i}", layer)
            self.layers.append(layer)
        self.final_norm = Parameter(np.ones(config.d_model))
        self.lm_head = Parameter(_linear_init(rng, config.vocab_size, config.d_model))

    def forward(self, token_ids):
        hidden = F.embedding(token_ids, self.token_embedding)
        for layer in self.layers:
            hidden = layer(hidden)
        hidden = F.rms_norm(hidden, self.final_norm)
        # Next-token prediction: logits of the final position.
        last = F.slice(hidden, axis=1, start=token_ids.shape[1] - 1, stop=token_ids.shape[1])
        last = F.reshape(last, shape=(token_ids.shape[0], self.config.d_model))
        logits = F.linear(last, self.lm_head)
        return logits

    def example_inputs(self, batch_size: int = 2, seed: int = 123) -> dict:
        rng = seeded_rng(seed)
        tokens = rng.integers(0, self.config.vocab_size,
                              size=(batch_size, self.config.max_seq_len), dtype=np.int64)
        return {"token_ids": tokens}
