"""Figure 4: mean empirical cross-device error vs normalized operator position.

The paper traces the mean cross-device error of every operator against its
normalized position in the canonical topological order for BERT-large,
Qwen-8B and ResNet-152, finding essentially flat profiles with localized
spikes and *no systematic accumulation with depth* — the non-accumulation
property that limits the adversary's headroom.
"""

from __future__ import annotations

import numpy as np

from benchmarks.reporting import emit_table

MODELS = ("bert_mini", "qwen_mini", "resnet_mini")
NUM_BINS = 10


def test_fig4_error_vs_depth(benchmark, bench_all):
    def run():
        series = {}
        for name in MODELS:
            positions, errors = bench_all[name].calibration.mean_error_by_position()
            series[name] = (positions, errors)
        return series

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    accumulation_ratios = {}
    for name, (positions, errors) in results.items():
        bins = np.linspace(0.0, 1.0, NUM_BINS + 1)
        binned = []
        for lo, hi in zip(bins[:-1], bins[1:]):
            mask = (positions >= lo) & (positions <= hi)
            binned.append(float(errors[mask].mean()) if mask.any() else 0.0)
        rows.append([name] + binned)
        first_half = errors[positions <= 0.5]
        second_half = errors[positions > 0.5]
        accumulation_ratios[name] = float(np.median(second_half) /
                                          max(np.median(first_half), 1e-30))

    emit_table(
        "fig4_error_vs_depth",
        "Mean empirical error vs normalized operator position (10 depth bins)",
        ["model"] + [f"bin {i}" for i in range(NUM_BINS)],
        rows,
        notes=("Paper (Fig. 4): profiles are essentially flat (1e-6 to 1e-5) with localized "
               "spikes; no systematic accumulation with depth.  "
               f"Measured depth-accumulation ratios (median late / median early): "
               f"{ {k: round(v, 2) for k, v in accumulation_ratios.items()} }"),
    )

    for name, (positions, errors) in results.items():
        assert errors.max() < 1e-3, f"{name}: cross-device errors should be tiny"
        # Non-accumulation: late-graph errors are within ~100x of early-graph errors
        # (the paper's profiles are flat; spikes are localized, not compounding).
        assert accumulation_ratios[name] < 100.0, name
