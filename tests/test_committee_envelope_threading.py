"""The calibrated committee envelope travels the whole serving stack.

Commitment (root ``r_c`` beside ``r_e``), session wiring (challenger
selection floor, dispute game, committee votes), service clones, and cluster
shard adoption on failover — the envelope a model registered with must be
the envelope every adjudication of that model consults, wherever the tenant
currently lives.
"""

import numpy as np
import pytest

from repro.calibration import (
    CommitteeEnvelopeConfig,
    CommitteeEnvelopeProfile,
    calibrate_committee_envelope,
)
from repro.cluster import TAOCluster
from repro.merkle.cache import HashCache
from repro.merkle.commitments import commit_model
from repro.protocol.lifecycle import TAOSession
from repro.protocol.service import TAOService
from repro.tensorlib import DEVICE_FLEET


@pytest.fixture(scope="module")
def envelope(mlp_graph, mlp_input_factory):
    return calibrate_committee_envelope(
        mlp_graph, [mlp_input_factory(1000 + i) for i in range(8)],
        CommitteeEnvelopeConfig(devices=DEVICE_FLEET),
    )


def test_commitment_gains_committee_root(mlp_graph, mlp_thresholds, envelope):
    plain = commit_model(mlp_graph, mlp_thresholds)
    with_envelope = commit_model(mlp_graph, mlp_thresholds,
                                 committee_envelope=envelope)
    assert plain.committee_root is None
    assert with_envelope.committee_root is not None
    assert len(with_envelope.committee_root) == 32
    # The other roots are untouched; the digest covers r_c only when present.
    assert with_envelope.weight_root == plain.weight_root
    assert with_envelope.threshold_root == plain.threshold_root
    assert with_envelope.digest() != plain.digest()
    # The public (coordinator-visible) view keeps the root but not the tree.
    view = with_envelope.public_view()
    assert view.committee_root == with_envelope.committee_root
    assert view.committee_tree is None


def test_hash_cache_keys_envelope_identity(mlp_graph, mlp_thresholds, envelope):
    """Same model committed with and without an envelope never alias."""
    cache = HashCache()
    plain = commit_model(mlp_graph, mlp_thresholds, cache=cache)
    with_envelope = commit_model(mlp_graph, mlp_thresholds, cache=cache,
                                 committee_envelope=envelope)
    assert plain.committee_root is None
    assert with_envelope.committee_root is not None
    # Memo hits return the exact same objects on re-commit.
    assert commit_model(mlp_graph, mlp_thresholds, cache=cache) is plain
    assert commit_model(mlp_graph, mlp_thresholds, cache=cache,
                        committee_envelope=envelope) is with_envelope


def test_session_threads_envelope_everywhere(mlp_graph, mlp_input_factory,
                                             mlp_thresholds, envelope):
    session = TAOSession(mlp_graph, threshold_table=mlp_thresholds,
                         committee_envelope=envelope)
    session.setup()
    assert session.model_commitment.committee_root is not None
    challenger = session.make_challenger()
    assert challenger.committee_envelope is envelope
    # The selection rule consults the floored table, not the raw one.
    assert isinstance(challenger.selection_thresholds, CommitteeEnvelopeProfile)
    floored = challenger.selection_thresholds
    for name in mlp_thresholds.operator_names():
        assert np.all(floored.abs_thresholds[name]
                      >= mlp_thresholds.abs_thresholds[name])
    game = session.make_dispute_game()
    assert game.committee_envelope is envelope


def test_service_clones_inherit_envelope(mlp_graph, mlp_input_factory,
                                         mlp_thresholds, envelope):
    service = TAOService()
    service.register_model(mlp_graph, threshold_table=mlp_thresholds,
                           committee_envelope=envelope)
    entry = service.model(mlp_graph.name)
    assert entry.session.committee_envelope is envelope
    assert entry.challenger.committee_envelope is envelope
    clone = service._challenger_clone(entry)
    assert clone.committee_envelope is envelope


def test_cluster_adoption_keeps_envelope_across_failover(
        mlp_graph, mlp_input_factory, mlp_thresholds, envelope):
    """A tenant fails over to its ring successor with its envelope intact —
    and the adjudication on the fallback shard still consults it."""
    cluster = TAOCluster(num_shards=3, leaf_path="committee")
    cluster.register_model(mlp_graph, threshold_table=mlp_thresholds,
                           committee_envelope=envelope)
    home = cluster.location(mlp_graph.name)

    # Run one dispute-bound request on the fallback shard after a drain.
    cluster.submit(mlp_graph.name, mlp_input_factory(77), force_challenge=True)
    cluster.drain_shard(home)
    assert cluster.location(mlp_graph.name) != home
    entry = cluster.model(mlp_graph.name)
    assert entry.session.committee_envelope is envelope
    assert entry.challenger.committee_envelope is envelope

    processed = cluster.process()
    assert len(processed) == 1
    report = processed[0].report
    assert report is not None and report.challenged
    # A forced challenge against an honest proposer under the calibrated
    # envelope dead-ends (no credible selection) rather than pressing a
    # false dispute: the challenger forfeits, the honest proposer survives.
    assert processed[0].status == "challenger_slashed"
