"""Unit and property tests for feasible-set projections."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attacks.projections import (
    empirical_quantile_violation,
    project_empirical,
    project_theoretical,
)
from repro.calibration.profiles import PERCENTILE_GRID


def test_theoretical_projection_clips_elementwise(rng):
    delta = rng.standard_normal((4, 4)) * 10
    tau = np.abs(rng.standard_normal((4, 4)))
    projected = project_theoretical(delta, tau)
    assert (np.abs(projected) <= tau + 1e-15).all()
    # Values already inside the box are untouched.
    small = 0.5 * tau
    assert np.allclose(project_theoretical(small, tau), small)


def test_theoretical_projection_preserves_sign(rng):
    delta = rng.standard_normal(100) * 5
    tau = np.full(100, 0.1)
    projected = project_theoretical(delta, tau)
    assert (np.sign(projected)[np.abs(delta) > 0.1] == np.sign(delta)[np.abs(delta) > 0.1]).all()


def _cap_curve(scale=1.0):
    ranks = np.asarray(PERCENTILE_GRID) / 100.0
    caps = scale * np.linspace(1e-6, 1e-4, len(ranks))
    return ranks, caps


def test_empirical_projection_lands_inside_feasible_set(rng):
    ranks, caps = _cap_curve()
    delta = rng.standard_normal(500) * 1e-3
    projected = project_empirical(delta, ranks, caps)
    assert empirical_quantile_violation(projected, ranks, caps) <= 1.0 + 1e-9


def test_empirical_projection_is_idempotent(rng):
    ranks, caps = _cap_curve()
    delta = rng.standard_normal(300) * 1e-3
    once = project_empirical(delta, ranks, caps)
    twice = project_empirical(once, ranks, caps)
    assert np.allclose(once, twice, atol=1e-18)


def test_empirical_projection_no_op_for_feasible_delta(rng):
    ranks, caps = _cap_curve()
    delta = rng.standard_normal(200) * 1e-8   # far below every cap
    projected = project_empirical(delta, ranks, caps)
    assert np.allclose(projected, delta)


def test_empirical_projection_preserves_signs_and_shape(rng):
    ranks, caps = _cap_curve()
    delta = rng.standard_normal((8, 16)) * 1e-3
    projected = project_empirical(delta, ranks, caps)
    assert projected.shape == delta.shape
    nonzero = np.abs(projected) > 0
    assert (np.sign(projected[nonzero]) == np.sign(delta[nonzero])).all()


def test_empirical_projection_only_shrinks_magnitudes(rng):
    ranks, caps = _cap_curve()
    delta = rng.standard_normal(256) * 1e-3
    projected = project_empirical(delta, ranks, caps)
    assert (np.abs(projected) <= np.abs(delta) + 1e-18).all()


def test_empirical_violation_detects_infeasible_delta():
    ranks, caps = _cap_curve()
    delta = np.full(100, 1.0)  # grossly larger than every cap
    assert empirical_quantile_violation(delta, ranks, caps) > 1e3


def test_empirical_violation_zero_for_zero_delta():
    ranks, caps = _cap_curve()
    assert empirical_quantile_violation(np.zeros(50), ranks, caps) == 0.0
    assert empirical_quantile_violation(np.zeros(0), ranks, caps) == 0.0


def test_empty_delta_passthrough():
    ranks, caps = _cap_curve()
    out = project_empirical(np.zeros((0,)), ranks, caps)
    assert out.shape == (0,)


@settings(deadline=None, max_examples=40)
@given(st.integers(1, 400), st.floats(1e-7, 1e-2), st.integers(0, 10_000))
def test_projection_always_feasible_property(n, scale, seed):
    ranks, caps = _cap_curve()
    delta = np.random.default_rng(seed).standard_normal(n) * scale
    projected = project_empirical(delta, ranks, caps)
    assert empirical_quantile_violation(projected, ranks, caps) <= 1.0 + 1e-9
    assert (np.abs(projected) <= np.abs(delta) + 1e-18).all()
