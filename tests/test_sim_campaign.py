"""Adaptive campaigns: determinism pin, annealing, stake dynamics, carry-over.

The load-bearing test here is the determinism pin: a campaign fanned across
worker processes must be *byte-identical* to the single-process reference —
same per-scenario verdict fingerprints, same final stake ledger, same minted
total — for the same seeds, under any completion interleaving.  Everything
the campaign reports (boundary estimates, economics series, SPRT verdicts)
inherits its reproducibility from that pin.

The annealer convergence seeds below were chosen by scanning (per the
seed-hazard guidance in ``docs/simulator.md``): seeds 0-7 all collapse the
``bound_edge`` bracket into the scanned detection band [0.05, 0.9] within 18
rounds with zero certain-zone escapes; the pinned subset is representative,
not cherry-picked.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.protocol.economics import EconomicParameters
from repro.sim import (
    BoundaryAnnealer,
    Campaign,
    CampaignConfig,
    CollusionConfig,
    CollusionStakeStrategy,
    Scenario,
    SPRTConfig,
    StakeAwareCheatPolicy,
    run_scenario,
)
from repro.sim.campaign import CampaignRunner, campaign_workload, run_campaign_scenario
from repro.utils.rng import derive_seed
from repro.utils.serialization import canonical_bytes, decode_canonical


@pytest.fixture(scope="module")
def campaign_mlp():
    return campaign_workload("campaign_mlp")


# ----------------------------------------------------------------------
# Determinism pin: multiprocess == inline, byte for byte
# ----------------------------------------------------------------------

def test_campaign_is_byte_identical_across_worker_counts():
    """2-worker campaign == single-process reference: fingerprints + ledger.

    The per-scenario verdict fingerprints (sha256 over the canonical event
    rows) and the final stake ledger must match exactly — not approximately
    — because both paths execute the same ``run_campaign_scenario`` code on
    the same carried snapshots and the fold consumes results in cycle
    order, regardless of which worker finished first.
    """
    base = dict(cycles=8, batch_size=4, seed=7,
                challenger_opening_stake=500.0)
    inline = Campaign(CampaignConfig(**base, num_workers=0)).run()
    fanned = Campaign(CampaignConfig(**base, num_workers=2)).run()
    assert inline.fingerprints == fanned.fingerprints
    assert inline.ledger == fanned.ledger
    assert inline.minted == fanned.minted
    assert inline.campaign_fingerprint() == fanned.campaign_fingerprint()
    assert inline.ledger_fingerprint() == fanned.ledger_fingerprint()
    assert [r.fingerprint for r in inline.records] == \
        [r.fingerprint for r in fanned.records]
    assert not inline.violations and not fanned.violations


def test_campaign_scenarios_round_trip_the_canonical_codec(campaign_mlp):
    """Scenario specs survive the wire framing workers actually receive."""
    scenario = Scenario(
        name="wire-trip", seed=3, model="campaign_mlp", num_requests=3,
        fault_kinds=("bit_flip", "device_drift"), drift_devices=(1, 3),
    ).with_magnitude("bit_flip", 7.0)
    payload = decode_canonical(canonical_bytes(scenario.to_payload()))
    assert Scenario.from_payload(payload) == scenario


def test_worker_errors_propagate_to_the_parent():
    runner = CampaignRunner("campaign_mlp", num_workers=1)
    try:
        # process_fleet + scaled thresholds is rejected by the runner's
        # service builder — inside the worker, whose error must surface.
        bad = Scenario(name="bad", seed=0, model="campaign_mlp",
                       process_fleet=True, threshold_scale=0.5)
        with pytest.raises(RuntimeError, match="campaign worker"):
            runner.run_round([(0, bad)], {})
    finally:
        runner.close()


# ----------------------------------------------------------------------
# Stake carry-over across cycles
# ----------------------------------------------------------------------

def test_campaign_threads_stakes_across_cycles_and_conserves_value():
    """Balances carried cycle to cycle; sum(ledger) == total minted, exactly.

    Each scenario runs on a fresh chain seeded from the carried ledger, so
    within-scenario conservation (invariant C1) extends to the campaign:
    the final ledger sums to the pre-seeded stakes plus everything minted
    inside scenarios plus the recorded subsidies — no value appears or
    vanishes at the fold.
    """
    result = Campaign(CampaignConfig(cycles=8, batch_size=4, seed=3)).run()
    assert not result.violations
    assert sum(result.ledger.values()) == pytest.approx(result.minted, abs=1e-6)
    # Adversarial proposer stakes genuinely moved: slashes from earlier
    # cycles are visible in later cycles' policy reads.
    opening = result.config.initial_balance
    assert any(r.proposer_stake < opening for r in result.records)
    # The same standing accounts persist (not re-minted): every cycle's
    # scenario reuses the sim-proposer-* accounts the first round created.
    sim_accounts = [a for a in result.ledger if a.startswith("sim-proposer-")]
    assert len(sim_accounts) == result.config.requests_per_cycle


def test_carried_chain_is_not_reminted(campaign_mlp):
    """fund_once semantics: a carried account keeps its balance."""
    scenario = Scenario(name="carry", seed=1, model="campaign_mlp",
                        num_requests=2, fault_rate=0.0)
    frame = run_campaign_scenario(scenario, campaign_mlp,
                                  {"campaign_mlp-user": 1234.0})
    # The user account existed in the carried ledger, so setup's fund_once
    # skipped it: its delta reflects only fees paid, never a fresh mint.
    assert frame["balance_delta"]["campaign_mlp-user"] < 0
    assert frame["minted_delta"] > 0  # other standing accounts did mint


# ----------------------------------------------------------------------
# Boundary annealing (regression-pinned seeds; see module docstring)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 3])
def test_annealer_converges_into_the_detection_band(campaign_mlp, seed):
    """Stochastic bisection lands inside the cap-curve detection band.

    The scanned band for ``bound_edge`` on the campaign MLP: magnitudes
    below ~0.05 always escape, above ~0.9 are always caught, the middle is
    stochastic (victim and input dependent).  Within 18 rounds the bracket
    must collapse into the band — and nothing probed in the certain-
    detection zone may ever escape uncaught.
    """
    annealer = BoundaryAnnealer("bound_edge", seed)
    certain_zone_escapes = 0
    for round_index in range(18):
        magnitude = annealer.propose()
        scenario = Scenario(
            name=f"anneal-pin-{round_index}",
            seed=derive_seed(seed, "anneal-round", round_index),
            model="campaign_mlp", num_requests=2, fault_rate=1.0,
            fault_kinds=("bound_edge",),
        ).with_magnitude("bound_edge", magnitude)
        result = run_scenario(scenario, campaign_mlp)
        assert not result.violations, result.violations
        for outcome in result.outcomes:
            if outcome.event.kind != "bound_edge":
                continue
            caught = outcome.flagged or outcome.proposer_slashed
            if not caught and outcome.finalized and magnitude >= 0.9:
                certain_zone_escapes += 1
            annealer.observe(magnitude, caught)
    estimate = annealer.estimate()
    assert annealer.converged(0.05), (estimate.lo, estimate.hi)
    assert 0.05 <= estimate.lo <= estimate.hi <= 0.9, estimate
    assert certain_zone_escapes == 0
    assert estimate.caught > 0 and estimate.escaped > 0


def test_annealer_bracket_never_inverts():
    """Noisy verdicts are clamped: lo <= hi always, inversions counted."""
    annealer = BoundaryAnnealer("bound_edge", seed=0)
    annealer.observe(1.5, caught=True)   # hi -> 1.5
    annealer.observe(0.3, caught=False)  # lo -> 0.3
    annealer.observe(0.2, caught=True)   # catch below a known escape:
    assert annealer.inversions == 1      # counted, bracket untouched
    assert annealer.lo == 0.3 and annealer.hi == 1.5
    annealer.observe(0.8, caught=True)   # inside bracket: hi shrinks
    assert annealer.hi == 0.8
    annealer.observe(1.7, caught=False)  # escape above hi: inversion
    assert annealer.inversions == 2
    assert annealer.lo <= annealer.hi


# ----------------------------------------------------------------------
# Stake-aware EV policy
# ----------------------------------------------------------------------

def test_cheat_rate_conditions_on_challenger_stake():
    """The EV rule flips regimes exactly as the economics tables predict.

    Under low audit pressure (phi = 0.05) a healthy challenger keeps
    cheating EV-negative; a challenger whose stake cannot cover its deposit
    zeroes the voluntary-challenge channel and flips cheap cheating
    EV-positive (ev_cheat ~ 52.75 > ev_honest = 40 at the feasible-midpoint
    slash) — so the adversary's scheduled fault rate jumps.
    """
    policy = StakeAwareCheatPolicy(
        EconomicParameters(audit_probability=0.05))
    strong = policy.decide(proposer_stake=10_000.0, challenger_stake=10_000.0)
    weak = policy.decide(proposer_stake=10_000.0, challenger_stake=500.0)
    broke = policy.decide(proposer_stake=100.0, challenger_stake=500.0)
    assert strong.ev_cheat < strong.ev_honest
    assert not strong.challenger_weak
    assert weak.challenger_weak
    assert weak.ev_cheat > weak.ev_honest
    assert weak.fault_rate > strong.fault_rate
    assert broke.proposer_broke and broke.fault_rate == 0.0
    assert weak.detection < strong.detection


def test_campaigns_schedule_more_faults_against_a_weak_challenger():
    """End to end: the depleted-challenger campaign cheats at the ceiling."""
    base = dict(cycles=4, batch_size=4, seed=5)
    healthy = Campaign(CampaignConfig(**base)).run()
    depleted = Campaign(CampaignConfig(
        **base, challenger_opening_stake=500.0)).run()
    assert all(not r.challenger_weak for r in healthy.records)
    assert all(r.challenger_weak for r in depleted.records)
    assert depleted.records[0].fault_rate > healthy.records[0].fault_rate


# ----------------------------------------------------------------------
# Committee collusion and Sybil stake dynamics
# ----------------------------------------------------------------------

def test_collusion_wins_grow_colluder_stakes():
    strategy = CollusionStakeStrategy(seed=1)
    opening = strategy.stakes.copy()
    strategy.observe_cycle(adjudications=3, colluded=True, escaped=3)
    colluders = strategy.colluder_indices
    assert np.all(strategy.stakes[colluders] > opening[colluders])
    assert strategy.escapes == 3
    assert len(strategy.trajectory) == 2


def test_collusion_losses_drain_colluders_and_trigger_sybil_resplit():
    """A losing streak dries one Sybil identity first; the pool re-splits."""
    # Opening stakes [200, 186.7, 173.3]: the junior colluder dries first
    # (~33 losing adjudications), the pooled ~56 still floats two seats at
    # the 25 floor, so the re-split fires once before the pool itself dies.
    strategy = CollusionStakeStrategy(
        CollusionConfig(member_stake=200.0, seat_cost=5.0, stake_floor=25.0),
        seed=2)
    for _ in range(60):
        strategy.observe_cycle(adjudications=1, colluded=True, escaped=0)
        if not strategy.colluding_majority():
            break
    assert strategy.sybil_resplits >= 1
    # Eventually the pool itself cannot float the floor: collusion dies.
    assert not strategy.colluding_majority()


def test_extrapolation_is_seeded_and_shaped():
    strategy = CollusionStakeStrategy(seed=9)
    a = strategy.extrapolate(200, dispute_rate=1.5, escape_rate=0.9)
    b = CollusionStakeStrategy(seed=9).extrapolate(
        200, dispute_rate=1.5, escape_rate=0.9)
    assert a.shape == (201, strategy.config.committee_size)
    assert np.array_equal(a, b)
    # Winning collusion compounds; the honest seat merely collects fees.
    assert a[-1, 0] > a[0, 0]


def test_campaign_collusion_probes_feed_the_stake_game():
    result = Campaign(CampaignConfig(cycles=12, batch_size=4, seed=3)).run()
    collusion_cycles = [r for r in result.records if r.mode == "collusion"]
    assert collusion_cycles, "campaign never probed collusion"
    assert any(r.escaped > 0 for r in collusion_cycles)
    strategy = result.adversary.collusion
    assert strategy.cycles == len(collusion_cycles)
    assert len(strategy.trajectory) == len(collusion_cycles) + 1


# ----------------------------------------------------------------------
# Heterogeneous-fleet drift
# ----------------------------------------------------------------------

def test_drift_devices_enter_and_leave_mid_campaign():
    """The device pool varies across cycles and drift draws respect it."""
    result = Campaign(CampaignConfig(cycles=12, batch_size=4, seed=3)).run()
    pools = {r.drift_pool for r in result.records}
    assert len(pools) > 1, "drift schedule never changed the fleet mix"
    assert all(2 <= len(pool) <= 4 for pool in pools)
    drift_rows = [
        (record, row)
        for record, rows in zip(result.records, result.event_rows)
        for row in rows if row["kind"] == "device_drift"
    ]
    assert drift_rows, "campaign scheduled no device_drift events"
    for record, row in drift_rows:
        assert row["drift_device"] in record.drift_pool


def test_default_drift_pool_preserves_pinned_schedules(campaign_mlp):
    """The pool-indexed draw is RNG-stream-identical to the historical one.

    ``expand`` draws ``rng.integers(0, len(pool))``; with the default
    4-device pool that is call-for-call the historical
    ``rng.integers(0, 4)``, so every schedule pinned before pools existed
    expands unchanged.
    """
    from repro.sim import expand

    base = Scenario(name="pin", seed=77, model="campaign_mlp",
                    num_requests=8, fault_rate=0.9,
                    fault_kinds=("device_drift",))
    explicit = Scenario(name="pin", seed=77, model="campaign_mlp",
                        num_requests=8, fault_rate=0.9,
                        fault_kinds=("device_drift",),
                        drift_devices=(0, 1, 2, 3))
    a = expand(base, campaign_mlp.graph, campaign_mlp.thresholds)
    b = expand(explicit, campaign_mlp.graph, campaign_mlp.thresholds)
    assert a.events == b.events


# ----------------------------------------------------------------------
# Scenario value semantics (regression: with_magnitude aliasing)
# ----------------------------------------------------------------------

def test_scenario_magnitudes_never_alias_caller_state():
    """Mutating the dict a scenario was built from cannot change the spec.

    Regression for the adaptive adversary's planning loop: it keeps a
    working magnitude map and mutates it between cycles; a scenario that
    aliased that dict would silently retarget already-planned (possibly
    already-shipped) cycles.
    """
    magnitudes = {"bit_flip": 5.0, "bound_edge": 0.4}
    scenario = Scenario(name="alias", seed=0, model="m",
                        magnitudes=magnitudes)
    magnitudes["bit_flip"] = 99.0
    magnitudes["bound_edge"] = 99.0
    assert scenario.magnitude_for("bit_flip") == 5.0
    assert scenario.magnitude_for("bound_edge") == 0.4


def test_with_magnitude_returns_a_frozen_independent_copy():
    scenario = Scenario(name="copy", seed=0, model="m")
    bumped = scenario.with_magnitude("bit_flip", 3.0)
    assert bumped.magnitude_for("bit_flip") == 3.0
    assert scenario.magnitude_for("bit_flip") != 3.0
    assert isinstance(bumped.magnitudes, tuple)
    assert all(isinstance(pair, tuple) for pair in bumped.magnitudes)
    # Equal content => equal and hash-equal, however it was constructed.
    from_dict = Scenario(name="copy", seed=0, model="m",
                         magnitudes=dict(bumped.magnitudes))
    assert from_dict == bumped
    assert hash(from_dict) == hash(bumped)


def test_scenario_payload_round_trip_freezes_tuples():
    scenario = Scenario(name="trip", seed=2, model="m",
                        fault_kinds=["bit_flip"],  # lists normalize too
                        drift_devices=[0, 2],
                        magnitudes=[("bit_flip", 4.0)])
    assert scenario.fault_kinds == ("bit_flip",)
    assert scenario.drift_devices == (0, 2)
    restored = Scenario.from_payload(scenario.to_payload())
    assert restored == scenario
    assert isinstance(restored.magnitudes, tuple)
