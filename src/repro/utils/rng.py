"""Seeded random-number helpers.

Every stochastic component in the reproduction (synthetic datasets, model
initialization, committee sampling, attack restarts) derives its generator
from an explicit seed so that experiments are bit-for-bit repeatable — the
only nondeterminism in the system is the *intentional* floating-point
reduction-order divergence produced by :mod:`repro.tensorlib`.
"""

from __future__ import annotations

import hashlib

import numpy as np


def seeded_rng(seed: int) -> np.random.Generator:
    """Return a NumPy Generator seeded with ``seed``."""
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation hashes the base seed together with the string form of each
    label, so independent components (e.g. ``derive_seed(s, "calibration", 3)``
    vs ``derive_seed(s, "attack", 3)``) receive uncorrelated streams.
    """
    hasher = hashlib.sha256()
    hasher.update(int(base_seed).to_bytes(8, "big", signed=False))
    for label in labels:
        hasher.update(str(label).encode("utf-8"))
        hasher.update(b"\x00")
    return int.from_bytes(hasher.digest()[:8], "big")
