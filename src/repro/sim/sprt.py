"""Sequential probability-ratio early stopping for invariant campaigns.

A campaign asks, per invariant family, "is the per-scenario violation rate
zero?"  Wald's sequential probability-ratio test answers it with a bounded
error without a fixed sample size: the null hypothesis is the protocol's
claim (violation probability 0), the alternative is a violation rate of at
least ``p1``.  Under a zero null the test degenerates into a particularly
clean one-sided form:

* any observed violation has likelihood 0 under the null, so the log
  likelihood ratio jumps to +inf and the family is **rejected immediately**
  (one counterexample falsifies a universal claim — no statistics needed);
* every clean scenario multiplies the ratio by ``(1 - p1)``, so the log
  ratio drifts down by ``log(1 - p1)`` and the family is **accepted** once
  it crosses ``log(beta)`` — after ``ceil(log(beta) / log(1 - p1))`` clean
  scenarios the probability of wrongly accepting a protocol whose true
  violation rate is ``>= p1`` is at most ``beta``.

Observations are consumed in **scenario-index order** regardless of arrival
order (the multiprocess campaign runner completes scenarios out of order),
and the decision freezes at the first crossing.  Both properties together
make the stopping decision invariant to how the campaign was partitioned
into worker batches — the property test in ``tests/test_sim_sprt.py`` pins
exactly this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: The invariant families the campaign monitors, in report order.  Rules map
#: onto them by prefix: liveness rules (L1, L2) fold into one liveness
#: family, conservation rules (C1-C3) into one conservation family, and the
#: fleet journal rule stands alone; the safety rules stay distinct because
#: each states a different protocol claim.
FAMILIES: Tuple[str, ...] = ("S1", "S2", "S3", "L1", "C", "J1")


def family_of(rule: str) -> str:
    """Map an :class:`~repro.sim.invariants.InvariantViolation` rule to its family."""
    if rule.startswith("C"):
        return "C"
    if rule.startswith("L"):
        return "L1"
    if rule.startswith("J"):
        return "J1"
    return rule


@dataclass(frozen=True)
class SPRTConfig:
    """Error budget of the one-sided test.

    ``p1`` is the smallest violation rate the campaign must not miss;
    ``beta`` bounds the probability of accepting a family whose true rate is
    at least ``p1``.  The defaults accept after 90 clean scenarios.
    """

    p1: float = 0.05
    beta: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.p1 < 1.0:
            raise ValueError("p1 must lie in (0, 1)")
        if not 0.0 < self.beta < 1.0:
            raise ValueError("beta must lie in (0, 1)")

    @property
    def step(self) -> float:
        """Log-likelihood drift contributed by one clean scenario."""
        return math.log1p(-self.p1)

    @property
    def acceptance_samples(self) -> int:
        """Clean scenarios needed before the family accepts."""
        return math.ceil(math.log(self.beta) / self.step)


class SPRTFamily:
    """The sequential test for one invariant family.

    ``observe(index, clean)`` may arrive in any order; observations are
    consumed strictly in index order and the verdict freezes at the first
    boundary crossing — later observations (including violations a deeper
    sweep would have surfaced after the stopping point) cannot change it.
    """

    def __init__(self, family: str, config: SPRTConfig) -> None:
        self.family = family
        self.config = config
        self.llr = 0.0
        self.consumed = 0
        self.verdict: Optional[str] = None  # "accept_clean" | "violated"
        self.decided_at: Optional[int] = None
        self._pending: Dict[int, bool] = {}
        self._next_index = 0

    @property
    def decided(self) -> bool:
        return self.verdict is not None

    def observe(self, index: int, clean: bool) -> None:
        index = int(index)
        if index < self._next_index or index in self._pending:
            raise ValueError(f"duplicate observation for scenario {index}")
        self._pending[index] = bool(clean)
        self._drain()

    def _drain(self) -> None:
        while self._next_index in self._pending:
            clean = self._pending.pop(self._next_index)
            index = self._next_index
            self._next_index += 1
            if self.decided:
                continue  # frozen: order-consumption still advances
            self.consumed += 1
            if not clean:
                self.verdict = "violated"
                self.decided_at = index
                self.llr = math.inf
                continue
            self.llr += self.config.step
            if self.llr <= math.log(self.config.beta):
                self.verdict = "accept_clean"
                self.decided_at = index


class SPRTMonitor:
    """One :class:`SPRTFamily` per invariant family, fed whole scenarios."""

    def __init__(self, config: Optional[SPRTConfig] = None,
                 families: Iterable[str] = FAMILIES) -> None:
        self.config = config or SPRTConfig()
        self.families: Dict[str, SPRTFamily] = {
            family: SPRTFamily(family, self.config) for family in families
        }

    def observe_scenario(self, index: int, violated_rules: Iterable[str]) -> None:
        """Record one finished scenario: which rules (if any) it violated."""
        hit = {family_of(rule) for rule in violated_rules}
        for family, test in self.families.items():
            test.observe(index, clean=family not in hit)

    @property
    def all_accepted(self) -> bool:
        return all(t.verdict == "accept_clean" for t in self.families.values())

    @property
    def any_violated(self) -> bool:
        return any(t.verdict == "violated" for t in self.families.values())

    @property
    def decided(self) -> bool:
        """Every family has stopped — the campaign may halt early."""
        return all(t.decided for t in self.families.values())

    def verdicts(self) -> Dict[str, Optional[str]]:
        return {family: t.verdict for family, t in self.families.items()}

    def summary_rows(self) -> List[Tuple[str, str, int, Optional[int]]]:
        """(family, verdict, scenarios consumed, decided-at index) rows."""
        return [
            (family, t.verdict or "undecided", t.consumed, t.decided_at)
            for family, t in sorted(self.families.items())
        ]
