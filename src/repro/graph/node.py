"""Graph node IR.

A :class:`Node` is one vertex of the traced dataflow graph.  Node kinds
mirror the paper's graph representation:

* ``placeholder`` — a model input tensor;
* ``get_param``  — a reference to a committed weight tensor (by qualified
  name into the weight Merkle tree);
* ``constant``   — a traced-in literal tensor (e.g. a causal mask);
* ``call_op``    — a primitive tensor operator (the unit of dispute);
* ``output``     — the graph's result tuple.

Edges are implied by ``args``: any argument that is itself a :class:`Node`
is a data dependency.  ``kwargs`` hold only static attributes (axis, stride,
eps, ...), never tensors, so the canonical operator signature that gets
merkleized (Sec. 5.2) is a pure function of (name, op, target, args, kwargs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class Node:
    """A single vertex in the traced dataflow graph."""

    name: str
    op: str
    target: str
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Shape of the value this node produced during tracing (reporting only).
    shape: Optional[Tuple[int, ...]] = None
    #: Dtype string of the traced value (reporting only).
    dtype: Optional[str] = None

    VALID_OPS = ("placeholder", "get_param", "constant", "call_op", "output")

    def __post_init__(self) -> None:
        if self.op not in self.VALID_OPS:
            raise ValueError(f"invalid node op {self.op!r}; expected one of {self.VALID_OPS}")

    @property
    def input_nodes(self) -> List["Node"]:
        """Nodes this node depends on (flattening nested arg structures)."""
        found: List[Node] = []
        _collect_nodes(self.args, found)
        return found

    @property
    def is_operator(self) -> bool:
        """True for ``call_op`` nodes — the unit the dispute game partitions."""
        return self.op == "call_op"

    def signature_payload(self) -> Dict[str, Any]:
        """Canonical signature content: ``(name, op, target, args, kwargs)``.

        Node-valued arguments are replaced by their names so the signature
        captures topology (edges) without embedding tensor data; this is the
        payload hashed into the graph Merkle tree leaf.
        """
        return {
            "name": self.name,
            "op": self.op,
            "target": self.target,
            "args": _name_args(self.args),
            "kwargs": {k: _name_args(v) for k, v in sorted(self.kwargs.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args_repr = ", ".join(
            a.name if isinstance(a, Node) else repr(a) for a in self.args
        )
        return f"Node({self.name}: {self.op}[{self.target}]({args_repr}))"

    def __hash__(self) -> int:
        return hash(self.name)


def _collect_nodes(value: Any, out: List[Node]) -> None:
    if isinstance(value, Node):
        out.append(value)
    elif isinstance(value, (list, tuple)):
        for item in value:
            _collect_nodes(item, out)
    elif isinstance(value, dict):
        for item in value.values():
            _collect_nodes(item, out)


def _name_args(value: Any) -> Any:
    if isinstance(value, Node):
        return {"__node__": value.name}
    if isinstance(value, (list, tuple)):
        return [_name_args(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _name_args(v) for k, v in sorted(value.items())}
    return value
