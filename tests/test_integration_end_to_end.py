"""End-to-end integration tests on real zoo models.

These are the heaviest tests in the suite: they take a real workload (MiniBERT
/ MiniResNet), calibrate it across the simulated fleet, commit it, and run the
full optimistic pipeline with honest and cheating proposers — asserting the
paper's headline behaviours (no false positives, exact fault localization,
slashing, bounded dispute cost).
"""

import numpy as np
import pytest

from repro.models import get_model_spec
from repro.protocol.lifecycle import TAOSession
from repro.tensorlib.device import DEVICE_FLEET


@pytest.fixture(scope="module")
def bert_session():
    spec = get_model_spec("bert_mini")
    module = spec.build_module()
    graph = spec.trace(module, batch_size=1)
    session = TAOSession(graph, calibration_inputs=spec.dataset(module, 5, seed=1, batch_size=1),
                         n_way=4, committee_size=3)
    session.setup()
    return spec, module, graph, session


@pytest.fixture(scope="module")
def resnet_session():
    spec = get_model_spec("resnet_mini")
    module = spec.build_module()
    graph = spec.trace(module, batch_size=1)
    session = TAOSession(graph, calibration_inputs=spec.dataset(module, 4, seed=2, batch_size=1),
                         n_way=4, committee_size=3)
    session.setup()
    return spec, module, graph, session


def test_bert_honest_requests_have_no_false_positives(bert_session):
    spec, module, graph, session = bert_session
    for i, device in enumerate(DEVICE_FLEET):
        proposer = session.make_honest_proposer(f"prov-{i}", device)
        report = session.run_request(spec.sample_inputs(module, 1, seed=600 + i), proposer)
        assert report.final_status == "finalized"
        assert not report.challenged


def test_bert_model_swap_is_caught_and_localized(bert_session):
    """A model downgrade (zeroing an attention projection output) is detected,
    localized to an operator inside the tampered slice, and slashed."""
    spec, module, graph, session = bert_session
    victim = next(n.name for n in graph.graph.operators if n.target == "linear")
    cheater = session.make_adversarial_proposer(
        "swapper", {victim: lambda value: np.zeros_like(value)}, DEVICE_FLEET[0]
    )
    report = session.run_request(spec.sample_inputs(module, 1, seed=700), cheater)
    assert report.final_status == "proposer_slashed"
    assert report.dispute.localized_operator == victim
    stats = report.dispute.statistics
    assert stats.rounds >= 2
    assert stats.cost_ratio(report.result.forward_flops) < 10.0
    assert stats.gas_used < 5_000_000


def test_bert_subtle_quantization_is_caught(bert_session):
    spec, module, graph, session = bert_session
    ffn = [n.name for n in graph.graph.operators if n.target == "linear"][-1]

    def quantize(value):
        return (np.round(value / 1e-2) * 1e-2).astype(np.float32)

    cheater = session.make_adversarial_proposer("quantizer", {ffn: quantize}, DEVICE_FLEET[1])
    report = session.run_request(spec.sample_inputs(module, 1, seed=701), cheater)
    assert report.challenged
    assert report.final_status == "proposer_slashed"


def test_resnet_fault_positions_localize_correctly(resnet_session):
    spec, module, graph, session = resnet_session
    operators = graph.graph.operators
    victims = [operators[3].name, operators[len(operators) // 2].name, operators[-3].name]
    for i, victim in enumerate(victims):
        cheater = session.make_adversarial_proposer(
            f"cheat-{i}", {victim: np.float32(0.05)}, DEVICE_FLEET[0]
        )
        report = session.run_request(spec.sample_inputs(module, 1, seed=800 + i), cheater)
        assert report.final_status == "proposer_slashed", victim
        assert report.dispute.localized_operator == victim


def test_resnet_honest_cross_device_requests_finalize(resnet_session):
    spec, module, graph, session = resnet_session
    proposer = session.make_honest_proposer("resnet-prov", DEVICE_FLEET[2])
    report = session.run_request(spec.sample_inputs(module, 1, seed=900), proposer)
    assert report.final_status == "finalized"
    assert report.result.forward_flops > 1e6


def test_dispute_cost_is_comparable_to_forward_pass(bert_session):
    spec, module, graph, session = bert_session
    victim = graph.graph.operators[len(graph.graph.operators) // 2].name
    cheater = session.make_adversarial_proposer("mid-cheat", {victim: np.float32(0.05)},
                                                DEVICE_FLEET[0])
    report = session.run_request(spec.sample_inputs(module, 1, seed=901), cheater)
    ratio = report.dispute.statistics.cost_ratio(report.result.forward_flops)
    # DCR should be on the order of a forward pass (paper: 0.39x - 1.24x), not
    # the rounds-times-forward blowup naive replication would cost.
    assert 0.1 < ratio < 6.0
