"""Open-loop driver end-to-end: SLO accounting, admission, autoscaling.

Two layers of pin:

* against a plain :class:`TAOService` — phase latencies add up, admission
  rejections hit the counter, backpressure ticks register;
* against a :class:`TAOCluster` under a step-load spike — the autoscaler
  scales 1 -> N from live signals, every admitted request still finalizes,
  and the run is **verdict- and ledger-exact** against a static N-shard
  cluster replaying the identical arrival schedule (the elastic layer's
  transparency guarantee, in miniature).
"""

from __future__ import annotations

import pytest

from repro.cluster import TAOCluster
from repro.elastic import (
    Autoscaler,
    AutoscalerConfig,
    ClusterTarget,
    OpenLoopDriver,
    OpenLoopGenerator,
    RateSchedule,
    SLOConfig,
    SLOTracker,
)
from repro.protocol import TAOService

from test_cluster_equivalence import _fingerprint  # noqa: F401 - shared pin
from repro.protocol.service import TERMINAL_TASK_STATUSES

NUM_TENANTS = 4


@pytest.fixture(scope="module")
def elastic_graphs(mlp_module, mlp_input_factory):
    from repro.graph import trace_module
    return [trace_module(mlp_module, mlp_input_factory(0), name=f"tenant_{i}")
            for i in range(NUM_TENANTS)]


def _arrivals(seed: int = 20260808):
    schedule = RateSchedule.step(base_rate=4.0, peak_rate=24.0,
                                 spike_at_s=3.0, spike_duration_s=4.0,
                                 duration_s=10.0)
    generator = OpenLoopGenerator(
        schedule, tuple(f"tenant_{i}" for i in range(NUM_TENANTS)),
        seed=seed, zipf_exponent=0.6, payload_pool=3,
        force_challenge_every=19)
    return generator.generate()


class TestPlainServiceDriver:
    def test_slo_accounting_and_completion(self, elastic_graphs,
                                           mlp_thresholds, mlp_input_factory):
        service = TAOService(n_way=2)
        for graph in elastic_graphs:
            service.register_model(graph, threshold_table=mlp_thresholds)
        arrivals = _arrivals()
        driver = OpenLoopDriver(service, arrivals, mlp_input_factory,
                                per_worker_capacity=16,
                                slo_tracker=SLOTracker(
                                    SLOConfig(p99_latency_s=60.0)))
        report = driver.run()

        assert len(report.requests) == len(arrivals)
        assert all(r.status in TERMINAL_TASK_STATUSES for r in report.requests)
        assert service.pending_count == 0

        tracker = report.slo
        total = tracker.phases["total"]
        assert total.count == len(arrivals)
        # Phases decompose: queue + service observations exist for each.
        assert tracker.phases["queue"].count == total.count
        assert tracker.phases["service"].count == total.count
        # The spike outruns capacity 16/tick, so backlog (and queue-age
        # samples) must have registered.
        assert tracker.backpressure_ticks >= 1
        assert tracker.queue_age.count >= 1
        rows = tracker.quantile_rows()
        assert [row[0] for row in rows] == ["total", "queue", "service"]

    def test_admission_bound_rejects_over_capacity(self, elastic_graphs,
                                                   mlp_thresholds,
                                                   mlp_input_factory):
        service = TAOService(n_way=2)
        for graph in elastic_graphs:
            service.register_model(graph, threshold_table=mlp_thresholds)
        arrivals = _arrivals()
        driver = OpenLoopDriver(service, arrivals, mlp_input_factory,
                                per_worker_capacity=8, max_queue_depth=10)
        report = driver.run()
        assert report.slo.admission_rejections >= 1
        rejected = sum(tick.rejected for tick in report.ticks)
        admitted = sum(tick.admitted for tick in report.ticks)
        assert rejected == report.slo.admission_rejections
        assert admitted + rejected == len(arrivals)
        assert len(report.requests) == admitted
        assert all(r.status in TERMINAL_TASK_STATUSES for r in report.requests)


class TestAutoscaledCluster:
    def _drive_cluster(self, cluster, graphs, thresholds, input_factory,
                       arrivals, autoscaler=None):
        for graph in graphs:
            cluster.register_model(graph, threshold_table=thresholds)
        driver = OpenLoopDriver(cluster, arrivals, input_factory,
                                per_worker_capacity=8,
                                autoscaler=autoscaler,
                                slo_tracker=SLOTracker(
                                    SLOConfig(p99_latency_s=60.0,
                                              queue_age_slo_s=30.0)))
        return driver.run()

    def test_step_load_scales_up_and_stays_exact(self, elastic_graphs,
                                                 mlp_thresholds,
                                                 mlp_input_factory):
        arrivals = _arrivals()

        elastic = TAOCluster(num_shards=1, n_way=2)
        config = AutoscalerConfig(min_workers=1, max_workers=3,
                                  queue_high_per_worker=6.0,
                                  queue_low_per_worker=0.5,
                                  cooldown_ticks=0, scale_down_patience=10)
        autoscaler = Autoscaler(ClusterTarget(elastic, config), config)
        elastic_report = self._drive_cluster(
            elastic, elastic_graphs, mlp_thresholds, mlp_input_factory,
            arrivals, autoscaler=autoscaler)

        # The spike forced real scale-up, from live signals only.
        timeline = elastic_report.workers_timeline()
        assert timeline[0] == 1
        assert max(timeline) == 3
        assert elastic.active_shard_count == 3
        assert any(d.action == "up" for d in elastic_report.decisions)
        assert len(elastic_report.requests) == len(arrivals)
        assert all(r.status in TERMINAL_TASK_STATUSES
                   for r in elastic_report.requests)

        # Differential pin: a static 3-shard cluster replaying the same
        # schedule produces byte-identical verdicts and an equal ledger.
        static = TAOCluster(num_shards=3, n_way=2)
        static_report = self._drive_cluster(
            static, elastic_graphs, mlp_thresholds, mlp_input_factory,
            arrivals)
        assert len(static_report.requests) == len(arrivals)

        # requests are admission-ordered, so position aligns the two runs.
        for index, (expected, got) in enumerate(zip(static_report.requests,
                                                    elastic_report.requests)):
            assert _fingerprint(got) == _fingerprint(expected), f"arrival {index}"

        assert dict(elastic.chain.balances) == dict(static.chain.balances)
        assert elastic.chain.minted == static.chain.minted
        assert sum(elastic.chain.balances.values()) == elastic.chain.minted
