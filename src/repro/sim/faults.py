"""Fault models and faulty actor wrappers for the protocol simulator.

Each fault model is a recipe for building a *misbehaving actor* out of the
real role objects in :mod:`repro.protocol.roles` — no protocol code is
forked.  Proposer-side faults reuse the :class:`AdversarialProposer`
override hook (compute honestly, then tamper); challenger/committee faults
override the narrow liveness and voting hooks the protocol exposes.

Catalog (``FAULT_KINDS``):

``bit_flip``
    XOR the low-order mantissa bits of one operator's output — the smallest
    physically meaningful tamper.  Magnitude = number of low bits flipped;
    a handful of bits hides inside cross-device noise, ~16+ bits is far
    outside any calibrated threshold.
``bound_edge``
    A random perturbation of a graph output projected onto the committed
    empirical cap curve with :func:`repro.attacks.projections.project_empirical`
    and scaled by an edge factor: below 1 rides inside the feasible set (the
    tolerated sub-threshold cheat of Sec. 4), above 1 sticks out of it.
``wrong_weight``
    Substitute one committed parameter tensor at execution time (the
    ``get_param`` node is overridden), so the whole trace is honestly
    computed from the wrong weights — detectable only against the Merkle
    weight commitment.
``stale_trace``
    Replay a previously committed trace against a fresh request: the
    commitment binds the fresh ``H(x)`` but the trace extends a stale one.
    Caught by the challenger's input-binding check, settled by
    ``post_input_binding_fraud`` without a localization game.
``drop_partition``
    A cheating proposer that never answers the dispute (stalls past the
    round timeout) — must be slashed by timeout.
``drop_selection``
    A challenger that opens the dispute but never posts its selection —
    forfeits its bond by timeout, letting the cheat escape (the paper's
    one-honest-challenger assumption, made executable).
``late_move``
    A challenger that answers every round late but inside the timeout — the
    dispute must still conclude.
``colluding_committee``
    Committee members that always vote for the proposer; with an
    honest-majority assumption broken, a localized cheat escapes at the leaf.
``device_drift``
    An *honest* proposer whose device profile drifts to another fleet member
    mid-schedule — must never be flagged or slashed (the fleet is what the
    thresholds were calibrated over).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.attacks.projections import project_empirical
from repro.calibration.thresholds import ThresholdTable
from repro.graph.graph import GraphModule
from repro.merkle.cache import HashCache
from repro.merkle.commitments import ModelCommitment, make_execution_commitment
from repro.protocol.roles import (
    AdversarialProposer,
    Challenger,
    CommitteeMember,
    CommitteeVoteRecord,
    ProposedResult,
    Proposer,
)
from repro.tensorlib.device import DeviceProfile
from repro.utils.rng import seeded_rng

#: Every fault kind the scenario engine can schedule.
FAULT_KINDS = (
    "bit_flip",
    "bound_edge",
    "wrong_weight",
    "stale_trace",
    "drop_partition",
    "drop_selection",
    "late_move",
    "colluding_committee",
    "device_drift",
)

#: Fault kinds whose proposer commits a tampered execution.
TAMPERING_KINDS = frozenset({
    "bit_flip", "bound_edge", "wrong_weight", "stale_trace",
    "drop_partition", "drop_selection", "late_move", "colluding_committee",
})

#: Tampering kinds for which, under fully honest adjudication, a flagged
#: request MUST end with the proposer slashed (the strong safety check S3).
#: ``bound_edge`` is excluded by design: it rides the threshold boundary,
#: where the paper's tolerance semantics deliberately lets the cheat stand.
#: Localization-*dependent* kinds in this set are only enforced under a
#: scenario's ``strict_localization`` flag — on deep graphs an intermediate
#: tamper can be flagged at the output yet attenuate below the thresholds of
#: the intermediate cut points (attention softmax, global pooling), so the
#: threshold-guided bisection legitimately dead-ends.
STRONG_TAMPER_KINDS = frozenset({
    "bit_flip", "wrong_weight", "stale_trace", "drop_partition", "late_move",
})

#: The subset of STRONG_TAMPER_KINDS whose slash path does not depend on
#: localization at all: a replayed trace is settled by the input-binding
#: fraud proof, and a proposer that never partitions is slashed by timeout.
#: These are enforced in *every* scenario.
LOCALIZATION_FREE_KINDS = frozenset({"stale_trace", "drop_partition"})


def flip_low_bits(value: np.ndarray, bits: int, seed: int) -> np.ndarray:
    """XOR a random pattern into the ``bits`` low-order mantissa bits."""
    arr = np.asarray(value, dtype=np.float32)
    rng = seeded_rng(seed)
    raw = arr.view(np.uint32).copy()
    mask = rng.integers(0, np.uint32(1) << bits, size=raw.shape, dtype=np.uint32)
    flipped = (raw ^ mask).view(np.float32)
    # Never turn a finite value into inf/nan through exponent carries.
    return np.where(np.isfinite(flipped), flipped, arr).astype(np.float32)


def bound_edge_delta(base: np.ndarray, thresholds: ThresholdTable, node_name: str,
                     edge_factor: float, seed: int) -> np.ndarray:
    """A random delta projected onto the cap curve, then scaled by the factor."""
    rng = seeded_rng(seed)
    ranks, caps = thresholds.cap_curve(node_name)
    scale = float(np.max(caps)) if caps.size else 1e-6
    raw = rng.standard_normal(np.shape(base)) * max(scale, 1e-9)
    projected = project_empirical(raw, ranks, caps)
    return float(edge_factor) * projected


class SimProposer(AdversarialProposer):
    """An adversarial proposer with the simulator's liveness fault hook."""

    def __init__(self, name: str, device: DeviceProfile, perturbations=None,
                 hash_cache: Optional[HashCache] = None,
                 partition_delay_s: float = 0.0) -> None:
        super().__init__(name, device, perturbations, hash_cache=hash_cache)
        self.partition_delay_s = float(partition_delay_s)

    def move_delay_s(self, round_index: int) -> float:
        return self.partition_delay_s


class StaleTraceProposer(Proposer):
    """Commits a previously recorded trace against a fresh request.

    The execution commitment is built over the *fresh* inputs (the payload
    hash the coordinator records), but outputs and trace values are replayed
    from ``source`` — the committed trace does not extend the committed
    ``H(x)``, which is exactly what the challenger's input-binding check
    catches.
    """

    def __init__(self, name: str, device: DeviceProfile, source: ProposedResult,
                 hash_cache: Optional[HashCache] = None) -> None:
        super().__init__(name, device, hash_cache=hash_cache)
        self.source = source

    def execute(self, graph_module: GraphModule, model_commitment: ModelCommitment,
                inputs) -> ProposedResult:
        commitment = make_execution_commitment(
            model_commitment, dict(inputs), list(self.source.outputs),
            meta={
                "device": self.device.name,
                "dtype": "float32",
                "proposer": self.name,
                "kernel_stack": self.device.signature(),
            },
            cache=self.hash_cache,
        )
        return ProposedResult(
            model_name=graph_module.name,
            inputs=dict(inputs),
            outputs=self.source.outputs,
            output_names=self.source.output_names,
            trace_values=dict(self.source.trace_values),
            commitment=commitment,
            forward_flops=self.source.forward_flops,
            wall_time_s=self.source.wall_time_s,
            device_name=self.device.name,
        )


class SimChallenger(Challenger):
    """A challenger with configurable per-round lateness (or a full drop)."""

    def __init__(self, name: str, device: DeviceProfile,
                 threshold_table: ThresholdTable,
                 hash_cache: Optional[HashCache] = None,
                 selection_delay_s: float = 0.0,
                 committee_envelope=None) -> None:
        super().__init__(name, device, threshold_table, hash_cache=hash_cache,
                         committee_envelope=committee_envelope)
        self.selection_delay_s = float(selection_delay_s)

    def move_delay_s(self, round_index: int) -> float:
        return self.selection_delay_s


class ColludingCommitteeMember(CommitteeMember):
    """Votes for the proposer unconditionally (a bought adjudicator)."""

    def vote(self, graph_module, operator_name, operand_values, proposer_output,
             thresholds, committee_envelope=None) -> CommitteeVoteRecord:
        return CommitteeVoteRecord(self.name, True, None)


def make_fault_overrides(kind: str, graph: GraphModule, thresholds: ThresholdTable,
                         victim: str, magnitude: float, seed: int,
                         ) -> Dict[str, object]:
    """Build the interpreter override spec for a proposer-side tamper."""
    if kind == "bit_flip" or kind in ("drop_partition", "drop_selection",
                                      "late_move", "colluding_committee"):
        bits = int(magnitude)
        return {victim: (lambda base, b=bits, s=seed: flip_low_bits(base, b, s))}
    if kind == "bound_edge":
        return {victim: (lambda base, f=float(magnitude), s=seed, n=victim:
                         base + bound_edge_delta(base, thresholds, n, f, s))}
    if kind == "wrong_weight":
        # Override the get_param node itself: the whole downstream trace is
        # honestly computed from substituted weights.  The additive component
        # falls back to an absolute scale so zero-initialized parameters
        # (biases) are still genuinely substituted.
        def substitute(base, m=float(magnitude), s=seed):
            scale = float(np.abs(base).mean()) if np.size(base) else 0.0
            if scale == 0.0:
                scale = 1.0
            noise = seeded_rng(s).standard_normal(np.shape(base)).astype(np.float32)
            return base * (1.0 + m) + m * scale * noise

        return {victim: substitute}
    raise ValueError(f"fault kind {kind!r} has no proposer override spec")
