"""Simulated accelerator profiles.

The paper calibrates its empirical error thresholds across a fleet of four
GPUs (RTX 4090, RTX 6000 Ada, A100, H100).  No GPUs are available in this
reproduction, so a :class:`DeviceProfile` stands in for each accelerator: it
fixes the reduction chunk size and the chunk-combination order used by every
kernel in :mod:`repro.tensorlib.kernels`.  Because FP32 addition is not
associative, two profiles produce outputs that differ in the low-order bits —
the same physical mechanism (reduction reordering) that makes real GPU fleets
disagree, exercised on the same code path the paper's runtime exercises.

``REFERENCE_DEVICE`` accumulates in float64 and rounds once; it is used as the
high-precision reference when *measuring* errors, mirroring the paper's use of
FP64 for error-bound arithmetic, and is never part of the calibration fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.tensorlib.accumulate import AccumulationStrategy


@dataclass(frozen=True)
class DeviceProfile:
    """A simulated accelerator.

    Attributes
    ----------
    name:
        Stable identifier recorded in commitments and calibration artifacts.
    reduction_chunk:
        Number of elements each "tile" reduces natively before partials are
        combined; loosely analogous to a GPU thread-block tile along the
        reduction axis.
    strategy:
        Order in which chunk partials are combined (see
        :class:`AccumulationStrategy`).
    matmul_split_k:
        Number of K-dimension splits used by the matmul kernel.  Split-K is
        the dominant source of cross-GPU matmul divergence in practice.
    conv_split:
        Number of splits of the (C_in * kH * kW) contraction used by the
        im2col convolution kernel.
    description:
        Human-readable note about which physical device this profile stands
        in for.
    """

    name: str
    reduction_chunk: int
    strategy: AccumulationStrategy
    matmul_split_k: int = 4
    conv_split: int = 4
    description: str = ""

    def __post_init__(self) -> None:
        if self.reduction_chunk <= 0:
            raise ValueError("reduction_chunk must be positive")
        if self.matmul_split_k <= 0:
            raise ValueError("matmul_split_k must be positive")
        if self.conv_split <= 0:
            raise ValueError("conv_split must be positive")

    @property
    def is_reference(self) -> bool:
        """True when this profile is the FP64-accumulating reference device."""
        return self.strategy is AccumulationStrategy.FP64

    def signature(self) -> Dict[str, object]:
        """Metadata dictionary embedded in execution commitments ("meta")."""
        return {
            "device": self.name,
            "reduction_chunk": self.reduction_chunk,
            "strategy": self.strategy.value,
            "matmul_split_k": self.matmul_split_k,
            "conv_split": self.conv_split,
        }


#: Fleet of simulated devices standing in for the paper's four-GPU testbed.
DEVICE_FLEET: Tuple[DeviceProfile, ...] = (
    DeviceProfile(
        name="sim-rtx4090",
        reduction_chunk=32,
        strategy=AccumulationStrategy.SEQUENTIAL,
        matmul_split_k=2,
        conv_split=2,
        description="Consumer-card analogue: small tiles, sequential split-K.",
    ),
    DeviceProfile(
        name="sim-rtx6000",
        reduction_chunk=48,
        strategy=AccumulationStrategy.REVERSED,
        matmul_split_k=3,
        conv_split=3,
        description="Workstation-card analogue: medium tiles, reversed accumulation.",
    ),
    DeviceProfile(
        name="sim-a100",
        reduction_chunk=64,
        strategy=AccumulationStrategy.PAIRWISE,
        matmul_split_k=4,
        conv_split=4,
        description="Datacenter analogue: large tiles, pairwise tree reduction.",
    ),
    DeviceProfile(
        name="sim-h100",
        reduction_chunk=128,
        strategy=AccumulationStrategy.PAIRWISE,
        matmul_split_k=8,
        conv_split=8,
        description="Datacenter analogue: very large tiles, deep split-K tree.",
    ),
)

#: High-precision reference profile used for error measurement only.
REFERENCE_DEVICE = DeviceProfile(
    name="reference-fp64",
    reduction_chunk=1_048_576,
    strategy=AccumulationStrategy.FP64,
    matmul_split_k=1,
    conv_split=1,
    description="FP64 accumulation, rounded once to FP32; error-measurement reference.",
)

_REGISTRY: Dict[str, DeviceProfile] = {d.name: d for d in DEVICE_FLEET}
_REGISTRY[REFERENCE_DEVICE.name] = REFERENCE_DEVICE


def get_device(name: str) -> DeviceProfile:
    """Look up a device profile by name.

    Raises ``KeyError`` with the list of known devices when ``name`` is
    unknown, which surfaces configuration typos early.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown device {name!r}; known devices: {known}") from None


def list_devices(include_reference: bool = False) -> List[DeviceProfile]:
    """Return the calibration fleet, optionally including the reference device."""
    devices = list(DEVICE_FLEET)
    if include_reference:
        devices.append(REFERENCE_DEVICE)
    return devices


def register_device(profile: DeviceProfile) -> None:
    """Register a custom device profile (e.g. to model onboarding a new GPU).

    Used by the "onboarding new configurations" discussion experiments: a new
    profile with an unusual accumulation order can shift observed errors
    outside previously committed thresholds.
    """
    if profile.name in _REGISTRY:
        raise ValueError(f"device {profile.name!r} already registered")
    _REGISTRY[profile.name] = profile
