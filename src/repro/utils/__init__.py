"""Shared low-level utilities: hashing, canonical serialization, RNG, timing.

These helpers are deliberately dependency-free (NumPy only) so that every
other subpackage — the tensor substrate, the Merkle layer, the protocol — can
rely on a single canonical byte representation of tensors and metadata.
"""

from repro.utils.hashing import sha256_hex, sha256_bytes, hash_concat
from repro.utils.serialization import canonical_bytes, canonical_json
from repro.utils.rng import seeded_rng, derive_seed
from repro.utils.timing import Stopwatch

__all__ = [
    "sha256_hex",
    "sha256_bytes",
    "hash_concat",
    "canonical_bytes",
    "canonical_json",
    "seeded_rng",
    "derive_seed",
    "Stopwatch",
]
