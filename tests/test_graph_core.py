"""Unit tests for Node, Graph and GraphModule."""

import numpy as np
import pytest

from repro.graph.graph import Graph, GraphModule
from repro.graph.node import Node


def _build_linear_chain():
    graph = Graph()
    x = graph.add_node(Node("x", "placeholder", "x"))
    w = graph.add_node(Node("param::w", "get_param", "w"))
    mm = graph.add_node(Node("matmul", "call_op", "matmul", args=(x, w)))
    act = graph.add_node(Node("relu", "call_op", "relu", args=(mm,)))
    graph.add_node(Node("output", "output", "output", args=(act,)))
    return graph


def test_node_rejects_invalid_kind():
    with pytest.raises(ValueError):
        Node("bad", "frobnicate", "x")


def test_node_input_nodes_flatten_nested_args():
    a = Node("a", "placeholder", "a")
    b = Node("b", "placeholder", "b")
    n = Node("op", "call_op", "concat", args=((a, b),), kwargs={"axis": 0})
    assert [dep.name for dep in n.input_nodes] == ["a", "b"]


def test_graph_enforces_topological_insertion():
    graph = Graph()
    ghost = Node("ghost", "placeholder", "ghost")
    with pytest.raises(ValueError):
        graph.add_node(Node("op", "call_op", "relu", args=(ghost,)))


def test_graph_rejects_duplicate_names():
    graph = Graph()
    graph.add_node(Node("x", "placeholder", "x"))
    with pytest.raises(ValueError):
        graph.add_node(Node("x", "placeholder", "x"))


def test_graph_queries():
    graph = _build_linear_chain()
    assert [n.name for n in graph.placeholders] == ["x"]
    assert [n.name for n in graph.operators] == ["matmul", "relu"]
    assert graph.num_operators == 2
    assert graph.operator_index("relu") == 1
    assert graph.output_node.name == "output"
    assert ("matmul", "relu") in graph.edges()
    users = graph.users(graph.node("matmul"))
    assert [u.name for u in users] == ["relu"]


def test_graph_validate_passes_for_well_formed_graph():
    _build_linear_chain().validate()


def test_node_signature_names_dependencies_not_values():
    graph = _build_linear_chain()
    signature = graph.node_signature(graph.node("matmul"))
    assert '"__node__":"x"' in signature.replace(" ", "")
    assert "matmul" in signature


def test_fresh_name_uniqueness():
    graph = Graph()
    assert graph.fresh_name("linear") == "linear"
    assert graph.fresh_name("linear") == "linear_1"
    assert graph.fresh_name("linear") == "linear_2"


def test_graph_module_validates_inputs_and_params():
    graph = _build_linear_chain()
    params = {"w": np.ones((3, 3), dtype=np.float32)}
    gm = GraphModule(graph=graph, parameters=params, input_names=["x"], name="chain")
    assert gm.num_operators == 2
    assert gm.parameter_nbytes() == 9 * 4
    assert gm.state_dict().keys() == {"w"}
    description = gm.describe()
    assert description["num_operators"] == 2
    assert description["operator_counts"] == {"matmul": 1, "relu": 1}

    with pytest.raises(ValueError):
        GraphModule(graph=graph, parameters=params, input_names=["wrong"], name="bad")
    with pytest.raises(ValueError):
        GraphModule(graph=graph, parameters={}, input_names=["x"], name="bad")
