"""The stage-pipelined executor: ordering, lanes, backpressure, failure.

These tests pin the properties the pipelined service drain is built on:

* results come back in submission order and every stage sees items in order;
* stages sharing a serial lane execute in item-major protocol order — the
  exact sequence a synchronous loop over the stages would produce;
* bounded hand-off queues and admission control actually bound how many
  items are in flight (backpressure, not buffering);
* a stage exception aborts the whole pipeline promptly and re-raises.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.pipeline import (
    HandoffQueue,
    Pipeline,
    PipelineAborted,
    SerialLane,
    StageDef,
)


def test_results_in_submission_order_and_stagewise_fifo():
    seen = {"a": [], "b": []}

    def stage_a(item):
        seen["a"].append(item)
        if item % 3 == 0:
            time.sleep(0.002)  # uneven stage time must not reorder anything
        return item * 10

    def stage_b(item):
        seen["b"].append(item)
        return item + 1

    pipeline = Pipeline([StageDef("a", stage_a), StageDef("b", stage_b)])
    results = pipeline.run(list(range(12)))
    assert results == [i * 10 + 1 for i in range(12)]
    assert seen["a"] == list(range(12))
    assert seen["b"] == [i * 10 for i in range(12)]
    stats = pipeline.stats
    assert stats.items == 12
    assert [s.items for s in stats.stages] == [12, 12]
    assert stats.busy_total_s >= stats.critical_path_s >= 0.0


def test_serial_lane_enforces_protocol_order():
    """Lane stages interleave item-major: s(0), d(0), s(1), d(1), ..."""
    log = []

    def settle(item):
        log.append(("settle", item))
        return item

    def dispute(item):
        log.append(("dispute", item))
        return item

    pipeline = Pipeline([
        StageDef("compute", lambda item: item),
        StageDef("settle", settle, lane="chain"),
        StageDef("dispute", dispute, lane="chain"),
    ], queue_depth=3)
    pipeline.run(list(range(8)))
    expected = []
    for index in range(8):
        expected.extend([("settle", index), ("dispute", index)])
    assert log == expected


def test_lane_free_stages_overlap_while_lane_stays_serial():
    """A slow lane-free stage runs concurrently with the lane stages."""
    in_execute = threading.Event()
    saw_overlap = threading.Event()

    def execute(item):
        in_execute.set()
        time.sleep(0.005)
        in_execute.clear()
        return item

    def settle(item):
        if in_execute.is_set():
            saw_overlap.set()
        return item

    pipeline = Pipeline([
        StageDef("execute", execute),
        StageDef("settle", settle, lane="chain"),
    ])
    pipeline.run(list(range(6)))
    assert saw_overlap.is_set()


def test_admission_control_bounds_items_in_flight():
    active = []
    high_water = []
    lock = threading.Lock()

    def enter(item):
        with lock:
            active.append(item)
            high_water.append(len(active))
        time.sleep(0.002)
        return item

    def leave(item):
        with lock:
            active.remove(item)
        return item

    pipeline = Pipeline([StageDef("enter", enter), StageDef("leave", leave)],
                        queue_depth=1, max_in_flight=2)
    pipeline.run(list(range(10)))
    assert max(high_water) <= 2


def test_backpressure_blocks_the_producer():
    queue = HandoffQueue(capacity=1, name="narrow")
    queue.put("x")
    release = threading.Timer(0.02, queue.get)
    release.start()
    queue.put("y")  # must block until the timer drains one slot
    release.join()
    assert queue.put_wait_s > 0.0
    assert queue.max_depth == 1


def test_stage_failure_aborts_and_reraises():
    def explode(item):
        if item == 3:
            raise ValueError("stage blew up on item 3")
        return item

    pipeline = Pipeline([
        StageDef("pre", lambda item: item),
        StageDef("explode", explode, lane="chain"),
        StageDef("post", lambda item: item, lane="chain"),
    ], queue_depth=1)
    with pytest.raises(ValueError, match="item 3"):
        pipeline.run(list(range(50)))  # far more items than queue slots


def test_aborted_queue_and_lane_raise():
    queue = HandoffQueue(capacity=1)
    queue.abort()
    with pytest.raises(PipelineAborted):
        queue.put("x")
    with pytest.raises(PipelineAborted):
        queue.get()
    lane = SerialLane("chain", [0, 1])
    lane.abort()
    with pytest.raises(PipelineAborted):
        lane.acquire(0, 0)


def test_empty_run_and_validation():
    pipeline = Pipeline([StageDef("noop", lambda item: item)])
    assert pipeline.run([]) == []
    with pytest.raises(ValueError):
        Pipeline([])
    with pytest.raises(ValueError):
        HandoffQueue(capacity=0)


def test_critical_path_groups_lane_stages():
    stats = Pipeline([
        StageDef("a", lambda i: i),
        StageDef("b", lambda i: i, lane="chain"),
        StageDef("c", lambda i: i, lane="chain"),
    ]).stats
    stats.stages[0].busy_cpu_s = 5.0
    stats.stages[1].busy_cpu_s = 3.0
    stats.stages[2].busy_cpu_s = 3.0
    # The lane serializes b+c (6s) which beats the free stage a (5s).
    assert stats.critical_path_s == pytest.approx(6.0)
    assert stats.busy_total_s == pytest.approx(11.0)
    assert stats.overlap_speedup == pytest.approx(11.0 / 6.0)


def test_lane_stage_failure_does_not_hand_on_the_ticket():
    """A failing lane stage must abort before its lane ticket is handed on.

    If the worker released the lane first, the next item's lane stage could
    wake and commit its (chain) side effects after the pipeline had already
    failed — stranding that item beyond what a retry can recover.  The
    failing dispute(0) below sleeps long enough for settle(1) to be parked
    in lane.acquire; on failure settle(1) must raise out of the lane, never
    run.
    """
    ran = []

    def settle(item):
        ran.append(("settle", item))
        return item

    def dispute(item):
        if item == 0:
            time.sleep(0.01)  # let settle(1) reach lane.acquire and park
            raise RuntimeError("dispute blew up")
        ran.append(("dispute", item))
        return item

    pipeline = Pipeline([
        StageDef("settle", settle, lane="chain"),
        StageDef("dispute", dispute, lane="chain"),
    ], queue_depth=2)
    with pytest.raises(RuntimeError, match="dispute blew up"):
        pipeline.run([0, 1, 2])
    assert ran == [("settle", 0)]
