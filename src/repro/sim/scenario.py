"""Scenario specifications and their expansion into reproducible schedules.

A :class:`Scenario` is a compact, declarative description of one adversarial
serving episode: which workload, how many requests, which fault kinds at
which rates, how the requests burst into processing cycles.  ``expand``
turns it into a :class:`ScenarioSchedule` — an explicit list of
:class:`RequestEvent` rows — using a seeded RNG, so the same scenario always
produces the same schedule and every schedule is independently re-runnable
(the shrinker relies on this: events carry their own payload seeds, so any
subset of a schedule is itself a valid, deterministic schedule).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.graph import GraphModule
from repro.sim.faults import (
    FAULT_KINDS,
    LOCALIZATION_FREE_KINDS,
    STRONG_TAMPER_KINDS,
    TAMPERING_KINDS,
)
from repro.utils.rng import derive_seed, seeded_rng

#: Fault kinds scheduled by default: everything except committee collusion,
#: which breaks the honest-majority assumption for a whole scenario and is
#: therefore opted into explicitly (``colluding_committee=True`` plus the
#: kind in ``fault_kinds``).
DEFAULT_FAULT_KINDS = tuple(k for k in FAULT_KINDS if k != "colluding_committee")

#: Default per-kind fault magnitudes: number of low mantissa bits for
#: ``bit_flip``-style tampers, the cap-curve edge factor for ``bound_edge``,
#: and the relative weight perturbation for ``wrong_weight``.
DEFAULT_MAGNITUDES: Dict[str, float] = {
    "bit_flip": 18,
    "bound_edge": 0.5,
    "wrong_weight": 0.5,
    "stale_trace": 1.0,
    "drop_partition": 18,
    "drop_selection": 18,
    "late_move": 18,
    "colluding_committee": 18,
    "device_drift": 0.0,
}


@dataclass(frozen=True)
class Scenario:
    """Declarative spec of one randomized adversarial serving episode."""

    name: str
    seed: int
    model: str
    num_requests: int = 6
    fault_rate: float = 0.45
    fault_kinds: Tuple[str, ...] = DEFAULT_FAULT_KINDS
    #: "uniform" drains everything in one process() call; "trickle" processes
    #: after every submission; "front" submits all, then drains in pairs.
    burst: str = "uniform"
    n_way: int = 2
    leaf_path: str = "routed"
    committee_size: int = 3
    #: When True a majority of the session's committee is bought (votes for
    #: the proposer unconditionally) — the honest-majority assumption is
    #: broken for the *whole* scenario, so the strong safety check S3 is
    #: conditioned out for every event in it.
    colluding_committee: bool = False
    #: When True the strong safety check S3 is enforced for every flagged
    #: strong tamper, not just the localization-free ones.  Only set this on
    #: workloads whose graphs cannot attenuate an injected error below the
    #: thresholds of intermediate cut points (shallow graphs with calibrated
    #: operators throughout, like the test MLP) — on deep attention/pooling
    #: graphs the threshold-guided bisection can legitimately dead-end.
    strict_localization: bool = False
    force_challenge_rate: float = 0.08
    #: Multiplier applied to the committed thresholds at registration; 1.0 is
    #: the calibrated table, 0.0 is the deliberately broken canary.
    threshold_scale: float = 1.0
    #: Number of cluster shards the scenario targets; 1 keeps the plain
    #: single-process :class:`~repro.protocol.service.TAOService` (the seed
    #: path).  Values > 1 build a :class:`~repro.cluster.cluster.TAOCluster`
    #: and the invariant families are checked fleet-wide.
    num_shards: int = 1
    #: When set (and ``num_shards`` > 1), the workload model's current home
    #: shard is administratively drained right after this cycle's events are
    #: submitted and before they are processed — so the cycle's in-flight
    #: requests are withdrawn and re-dispatched to the ring's next node,
    #: exercising failover under whatever faults the cycle carries.
    drain_home_at_cycle: Optional[int] = None
    #: When set (with ``drain_home_at_cycle`` on an earlier cycle), the shard
    #: or fleet worker drained then is returned to service *before* this
    #: cycle's events are submitted — the elastic scale-up leg: tenants whose
    #: ring home flips back re-migrate, and the cycle's requests land on the
    #: restored topology.
    undrain_home_at_cycle: Optional[int] = None
    #: When True the scenario runs against a
    #: :class:`~repro.fleet.fleet.ProcessFleet` of ``num_shards`` worker
    #: *processes* instead of the in-process service/cluster: actors travel
    #: as wire specs and are rebuilt inside the workers
    #: (:mod:`repro.sim.fleet_actors`), settlement flows back to the shared
    #: parent chain, and ``drain_home_at_cycle`` drains a fleet worker.
    #: Requires ``threshold_scale == 1.0`` (fault overrides are rebuilt
    #: worker-side from the *registered* table, which must therefore equal
    #: the workload table the in-process runner uses).
    process_fleet: bool = False
    #: When set (and ``process_fleet`` is True), the workload model's home
    #: worker is SIGKILLed at this cycle's first *fresh* chain mutation —
    #: mid-transition, after the write-ahead record but inside the chain
    #: call stream — and the runner drives the fleet in ``recovery="journal"``
    #: mode so the worker restarts from its parent-held journal and the
    #: cycle's drain resumes.  Exercises the crash-recovery path under
    #: whatever faults the cycle carries.
    crash_home_at_cycle: Optional[int] = None
    #: Whether the service drains on the stage pipeline (the service
    #: default) or the synchronous reference path.  Pipelining only overlaps
    #: when a drain spans several cycles — pair with ``cycle_capacity``.
    pipelined: bool = True
    #: Whether the session adopts the workload's calibrated committee-leaf
    #: acceptance envelope (when the workload carries one).  ``False`` runs
    #: the pre-calibration reference tolerance — the setting under which the
    #: ROADMAP defect seeds reproduce their S1/S3 violations.
    calibrated_committee: bool = True
    #: Per-cycle request cap handed to the service (clamped to the protocol
    #: bound).  Small values split one burst into many in-flight cycles, so
    #: faulty disputes of cycle N genuinely overlap execution of cycle N+1.
    cycle_capacity: Optional[int] = None
    #: Pool of fleet device indices ``device_drift`` events draw their
    #: drifted proposer from.  The default is the full calibrated fleet (and
    #: reproduces the historical RNG stream exactly); the campaign driver
    #: narrows it per cycle to model devices entering/leaving mid-campaign.
    drift_devices: Tuple[int, ...] = (0, 1, 2, 3)
    magnitudes: Tuple[Tuple[str, float], ...] = tuple(sorted(DEFAULT_MAGNITUDES.items()))

    def __post_init__(self) -> None:
        # Freeze the canonical tuple representation at construction.
        # ``magnitudes`` may arrive as a dict, or as lists-of-pairs decoded
        # from the canonical wire codec; normalizing here means a scenario
        # never aliases caller-held mutable state (the adaptive adversary
        # updates its magnitude maps between cycles) and two specs with the
        # same content always compare and hash equal.
        mags = self.magnitudes
        items = mags.items() if isinstance(mags, dict) else mags
        object.__setattr__(
            self, "magnitudes",
            tuple(sorted((str(k), float(v)) for k, v in items)))
        object.__setattr__(
            self, "fault_kinds", tuple(str(k) for k in self.fault_kinds))
        object.__setattr__(
            self, "drift_devices", tuple(int(d) for d in self.drift_devices))

    def magnitude_for(self, kind: str) -> float:
        return dict(self.magnitudes).get(kind, 0.0)

    def with_magnitude(self, kind: str, value: float) -> "Scenario":
        mags = dict(self.magnitudes)
        mags[kind] = float(value)
        return replace(self, magnitudes=tuple(sorted(mags.items())))

    def to_payload(self) -> Dict[str, object]:
        """Codec-ready form (scalars, sequences, string-keyed maps only).

        The campaign runner ships scenarios to worker processes over the
        fleet transport's canonical framing — no pickle — so the spec must
        round-trip through :func:`repro.utils.serialization.canonical_bytes`.
        """
        return asdict(self)

    @staticmethod
    def from_payload(payload: Dict[str, object]) -> "Scenario":
        """Inverse of :meth:`to_payload` (``__post_init__`` re-freezes tuples)."""
        return Scenario(**payload)  # type: ignore[arg-type]


@dataclass(frozen=True)
class RequestEvent:
    """One fully determined request in a schedule.

    ``kind`` is ``"honest"`` or a member of :data:`FAULT_KINDS`.  All seeds
    are baked in so the event replays identically regardless of which other
    events surround it — the property the shrinker's bisection depends on.
    """

    index: int
    input_seed: int
    kind: str = "honest"
    magnitude: float = 0.0
    victim: Optional[str] = None
    force_challenge: bool = False
    #: Input seed of the decoy request a stale trace is replayed from.
    decoy_seed: int = 0
    #: Fleet device index the drifted proposer executes on (device_drift).
    drift_device: int = 0
    fault_seed: int = 0
    #: When True the runner SIGKILLs the workload's home fleet worker at the
    #: first fresh chain mutation of the cycle this event opens, then lets
    #: journal recovery resume the drain.  Carried on the event (not just the
    #: scenario) so shrunk schedules replay the crash deterministically.
    crash_after: bool = False

    @property
    def tampers(self) -> bool:
        return self.kind in TAMPERING_KINDS

    @property
    def strong_tamper(self) -> bool:
        return self.kind in STRONG_TAMPER_KINDS

    @property
    def localization_free(self) -> bool:
        """True when the fault's slash path does not rely on localization."""
        return self.kind in LOCALIZATION_FREE_KINDS

    @property
    def challenger_faulty(self) -> bool:
        return self.kind in ("drop_selection", "late_move")

    @property
    def committee_faulty(self) -> bool:
        return self.kind == "colluding_committee"

    @property
    def execution_honest(self) -> bool:
        """True when the proposer's committed execution is untampered."""
        return not self.tampers


@dataclass
class ScenarioSchedule:
    """A scenario together with its expanded event list."""

    scenario: Scenario
    events: List[RequestEvent] = field(default_factory=list)

    @property
    def cycles(self) -> List[List[RequestEvent]]:
        """Group events into the process() bursts the runner will issue."""
        if self.scenario.burst == "trickle":
            return [[event] for event in self.events]
        if self.scenario.burst == "front":
            return [list(self.events[i:i + 2]) for i in range(0, len(self.events), 2)]
        return [list(self.events)] if self.events else []

    @property
    def fault_kinds_used(self) -> Tuple[str, ...]:
        return tuple(sorted({e.kind for e in self.events if e.kind != "honest"}))


def _victim_pools(graph: GraphModule, thresholds) -> Dict[str, List[str]]:
    """Candidate fault targets per kind, in deterministic graph order."""
    operators = [node.name for node in graph.graph.operators]
    calibrated = [name for name in operators if thresholds.has_operator(name)]
    output_ops = [
        arg.name for arg in graph.graph.output_node.args
        if hasattr(arg, "name") and thresholds.has_operator(getattr(arg, "name", ""))
    ]
    params = [
        node.name for node in graph.graph.nodes
        if node.op == "get_param"
    ]
    return {
        "operators": calibrated or operators,
        "outputs": output_ops or (calibrated or operators)[-1:],
        "params": params,
    }


def expand(scenario: Scenario, graph: GraphModule, thresholds) -> ScenarioSchedule:
    """Deterministically expand a scenario into its event schedule."""
    rng = seeded_rng(derive_seed(scenario.seed, "sim-scenario", scenario.name,
                                 scenario.model))
    pools = _victim_pools(graph, thresholds)
    kinds = [k for k in scenario.fault_kinds if k in FAULT_KINDS]
    events: List[RequestEvent] = []
    for index in range(scenario.num_requests):
        input_seed = int(rng.integers(0, 2**31 - 1))
        fault_seed = int(rng.integers(0, 2**31 - 1))
        kind = "honest"
        if kinds and rng.random() < scenario.fault_rate:
            kind = kinds[int(rng.integers(0, len(kinds)))]
        if kind == "stale_trace" and index == 0:
            # Nothing to replay yet; stay honest rather than substituting a
            # fault family the scenario's declared kinds may exclude.
            kind = "honest"
        victim: Optional[str] = None
        magnitude = scenario.magnitude_for(kind)
        if kind == "bound_edge":
            pool = pools["outputs"]
            victim = pool[int(rng.integers(0, len(pool)))]
        elif kind == "wrong_weight":
            pool = pools["params"] or pools["operators"]
            victim = pool[int(rng.integers(0, len(pool)))]
        elif kind in ("bit_flip", "drop_partition", "drop_selection",
                      "late_move", "colluding_committee"):
            pool = pools["operators"]
            victim = pool[int(rng.integers(0, len(pool)))]
        force = (kind == "honest"
                 and rng.random() < scenario.force_challenge_rate)
        decoy_seed = events[int(rng.integers(0, len(events)))].input_seed \
            if events else int(rng.integers(0, 2**31 - 1))
        # Drawing an index into the drift pool consumes the same RNG stream
        # as the historical fixed-fleet draw whenever the pool has 4 entries,
        # so every pinned schedule expands unchanged under the default pool.
        drift_device = scenario.drift_devices[
            int(rng.integers(0, len(scenario.drift_devices)))] \
            if kind == "device_drift" else 0
        events.append(RequestEvent(
            index=index,
            input_seed=input_seed,
            kind=kind,
            magnitude=magnitude,
            victim=victim,
            force_challenge=force,
            decoy_seed=decoy_seed,
            drift_device=drift_device,
            fault_seed=fault_seed,
        ))
    if scenario.crash_home_at_cycle is not None and events:
        # Lower the scenario-level knob onto the event that opens the target
        # cycle (after the RNG loop, so the flag never perturbs the seeded
        # stream).  The shrinker preserves flagged events verbatim, which
        # keeps shrunk recovery counterexamples crashing at the same point.
        cycle = int(scenario.crash_home_at_cycle)
        if scenario.burst == "trickle":
            opener = cycle
        elif scenario.burst == "front":
            opener = 2 * cycle
        else:  # uniform: the whole schedule is one cycle
            opener = 0 if cycle == 0 else len(events)
        if 0 <= opener < len(events):
            events[opener] = replace(events[opener], crash_after=True)
    return ScenarioSchedule(scenario=scenario, events=events)
