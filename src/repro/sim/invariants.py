"""Protocol invariant checking over a finished simulation episode.

Three invariant families, checked after every scenario:

**Safety**
  * S1 — a proposer whose committed execution is honest is never slashed,
    no matter how the challenger or committee behave.
  * S2 — a result the (honest) verification flagged as beyond threshold
    never reaches ``finalized``: a flag always escalates to a dispute, and a
    dispute ends in a slash, never a quiet finalization.
  * S3 — a *strong* tamper (far outside the committed thresholds) that was
    flagged, fought by an honest, live challenger and judged by an
    honest-majority committee always ends with the proposer slashed.

**Liveness**
  * L1 — every accepted request reaches a terminal coordinator status by the
    end of its drain (no task left ``pending``, no dispute left open, and no
    request stranded on a service queue — a pipelined drain must hand every
    admitted cycle back, not just the ones that cleared every stage).
  * L2 — rejected requests are terminal too, and never touched the chain.

**Conservation**
  * C1 — stake conservation: the sum of every account balance equals the
    total ever minted, exactly (all protocol amounts are binary fractions,
    so float addition is exact here).
  * C2 — gas partition: per-dispute gas accounting is exact under
    multiplexing — dispute-tagged gas plus untagged gas equals total gas.
  * C3 — no account balance is negative.

**Journal** (fleet scenarios only)
  * J1 — every shard's write-ahead journal is a well-formed run of the
    protocol state machine (:func:`repro.spec.machine.validate_journal`):
    each recorded ``(state, event)`` extends its task's transition chain,
    and after the final drain every journaled task is terminal.

The checker is deliberately *conditional*: each assertion states the actor
assumptions under which the paper claims it (e.g. S3 assumes one honest
challenger and an honest-majority committee), and the scenario schedule
carries exactly those honesty bits per request.

Every family is **fleet-aware**: when a scenario drives a
:class:`~repro.cluster.cluster.TAOCluster`, liveness sweeps every shard
coordinator (active and retired), and conservation is checked on the shared
settlement chain — balances across all shards sum exactly to the total ever
minted, and the per-dispute gas of every shard's coordinator partitions the
dispute-tagged gas of the whole shared log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.protocol.coordinator import TaskStatus
from repro.sim.scenario import RequestEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.runner import SimulationResult

TERMINAL_STATUSES = {
    TaskStatus.FINALIZED.value,
    TaskStatus.PROPOSER_SLASHED.value,
    TaskStatus.CHALLENGER_SLASHED.value,
    "rejected",
}


def service_coordinators(service) -> List:
    """Every coordinator behind a serving front end.

    A plain :class:`~repro.protocol.service.TAOService` has exactly one; a
    :class:`~repro.cluster.cluster.TAOCluster` has one per shard (including
    retired shards, whose history stays on the shared chain).  Duck-typed so
    this module needs no cluster import.
    """
    coordinators = getattr(service, "coordinators", None)
    if callable(coordinators):
        return list(coordinators())
    return [service.coordinator]


def settlement_chain(service):
    """The ledger a front end settles on (the shared chain for a cluster)."""
    chain = getattr(service, "chain", None)
    if chain is not None:
        return chain
    return service.coordinator.chain


@dataclass(frozen=True)
class InvariantViolation:
    """One invariant failure, tied to the event(s) that produced it."""

    family: str  # "safety" | "liveness" | "conservation"
    rule: str    # e.g. "S1"
    message: str
    event_index: Optional[int] = None

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        where = f" [event {self.event_index}]" if self.event_index is not None else ""
        return f"{self.rule} ({self.family}){where}: {self.message}"


class InvariantError(AssertionError):
    """Raised by :func:`assert_invariants` when any invariant fails."""

    def __init__(self, violations: List[InvariantViolation]) -> None:
        self.violations = list(violations)
        super().__init__("; ".join(str(v) for v in violations))


@dataclass
class EventOutcome:
    """What actually happened to one scheduled event."""

    event: RequestEvent
    status: str
    flagged: bool            # verification reported a threshold exceedance
    challenged: bool
    proposer_slashed: bool
    finalized: bool
    rejected: bool
    dispute_path: Optional[str] = None


def check_invariants(result: "SimulationResult") -> List[InvariantViolation]:
    """Run all three invariant families; returns the (possibly empty) list."""
    violations: List[InvariantViolation] = []
    violations.extend(_check_safety(result))
    violations.extend(_check_liveness(result))
    violations.extend(_check_conservation(result))
    violations.extend(_check_journal(result))
    return violations


def assert_invariants(result: "SimulationResult") -> None:
    violations = check_invariants(result)
    if violations:
        raise InvariantError(violations)


# ----------------------------------------------------------------------
# Safety
# ----------------------------------------------------------------------

def _check_safety(result: "SimulationResult") -> List[InvariantViolation]:
    out: List[InvariantViolation] = []
    for outcome in result.outcomes:
        event = outcome.event
        if outcome.rejected:
            continue
        # S1: honest execution is never slashed.
        if event.execution_honest and outcome.proposer_slashed:
            out.append(InvariantViolation(
                "safety", "S1",
                f"honest proposer slashed (kind={event.kind}, "
                f"status={outcome.status})",
                event.index,
            ))
        # S2: a flagged result never finalizes.
        if outcome.flagged and outcome.finalized:
            out.append(InvariantViolation(
                "safety", "S2",
                f"verification flagged the result but it finalized "
                f"(kind={event.kind})",
                event.index,
            ))
        # S3: strong tamper + flag + honest live adjudication => slash.
        # The theoretical-only leaf path is excluded: its IEEE envelope is
        # sound for honest proposers but deliberately permissive (a cheat
        # hiding inside the worst-case envelope is acquitted by design).
        # Localization-dependent tampers are enforced only under
        # ``strict_localization``: on deep graphs a flagged intermediate
        # tamper can attenuate below the thresholds of the bisection's cut
        # points and legitimately dead-end the dispute.
        adjudication_honest = (
            not event.challenger_faulty
            and not event.committee_faulty
            and not result.schedule.scenario.colluding_committee
            and result.schedule.scenario.leaf_path != "theoretical"
            and result.schedule.scenario.threshold_scale == 1.0
        )
        s3_applies = event.strong_tamper and (
            event.localization_free
            or result.schedule.scenario.strict_localization
        )
        if (s3_applies and outcome.flagged and adjudication_honest
                and not outcome.proposer_slashed):
            out.append(InvariantViolation(
                "safety", "S3",
                f"flagged strong tamper escaped the honest challenger "
                f"(kind={event.kind}, victim={event.victim}, "
                f"status={outcome.status}, path={outcome.dispute_path})",
                event.index,
            ))
    return out


# ----------------------------------------------------------------------
# Liveness
# ----------------------------------------------------------------------

def _check_liveness(result: "SimulationResult") -> List[InvariantViolation]:
    out: List[InvariantViolation] = []
    for outcome in result.outcomes:
        if outcome.status not in TERMINAL_STATUSES:
            out.append(InvariantViolation(
                "liveness", "L1",
                f"request ended in non-terminal status {outcome.status!r}",
                outcome.event.index,
            ))
    for coordinator in service_coordinators(result.service):
        for task in coordinator.tasks.values():
            if task.status is TaskStatus.PENDING or task.status is TaskStatus.DISPUTED:
                out.append(InvariantViolation(
                    "liveness", "L1",
                    f"coordinator task {task.task_id} left in {task.status.value!r}",
                ))
        for dispute in coordinator.disputes.values():
            if dispute.phase.value != "resolved":
                out.append(InvariantViolation(
                    "liveness", "L1",
                    f"dispute {dispute.dispute_id} left in phase "
                    f"{dispute.phase.value!r}",
                ))
    stranded = int(getattr(result.service, "pending_count", 0))
    if stranded:
        out.append(InvariantViolation(
            "liveness", "L1",
            f"{stranded} request(s) left on the service queue after the "
            f"final drain",
        ))
    for outcome in result.outcomes:
        if outcome.rejected and outcome.challenged:
            out.append(InvariantViolation(
                "liveness", "L2",
                "rejected request reached the coordinator",
                outcome.event.index,
            ))
    return out


# ----------------------------------------------------------------------
# Conservation
# ----------------------------------------------------------------------

def _check_conservation(result: "SimulationResult") -> List[InvariantViolation]:
    out: List[InvariantViolation] = []
    chain = settlement_chain(result.service)
    total = sum(chain.balances.values())
    if total != chain.minted:
        out.append(InvariantViolation(
            "conservation", "C1",
            f"balances sum to {total!r} but {chain.minted!r} was minted",
        ))
    for account, balance in chain.balances.items():
        if balance < 0:
            out.append(InvariantViolation(
                "conservation", "C3",
                f"account {account!r} has negative balance {balance!r}",
            ))
    # C2 fleet-wide: per-coordinator dispute gas (shard-filtered on a shared
    # log) must partition every dispute-tagged transaction exactly.
    tagged = 0
    for coordinator in service_coordinators(result.service):
        for dispute_id in coordinator.disputes:
            tagged += coordinator.dispute_gas(dispute_id)
    untagged = sum(
        tx.gas_used for tx in chain.transactions
        if tx.details.get("dispute_id") is None
    )
    total_gas = chain.total_gas()
    if tagged + untagged != total_gas:
        out.append(InvariantViolation(
            "conservation", "C2",
            f"gas partition mismatch: {tagged} dispute-tagged + {untagged} "
            f"untagged != {total_gas} total",
        ))
    return out


# ----------------------------------------------------------------------
# Journal (fleet scenarios)
# ----------------------------------------------------------------------

def _check_journal(result: "SimulationResult") -> List[InvariantViolation]:
    """J1: each shard's write-ahead journal is a valid spec-machine run.

    Duck-typed on ``service.spec_journals()`` so only fleet scenarios pay
    for it; a scenario over the in-process service/cluster has no journal
    and the family vacuously passes.
    """
    spec_journals = getattr(result.service, "spec_journals", None)
    if not callable(spec_journals):
        return []
    from repro.spec.machine import SpecViolation, validate_journal

    out: List[InvariantViolation] = []
    for shard_id, entries in spec_journals().items():
        try:
            summary = validate_journal(entries)
        except SpecViolation as exc:
            out.append(InvariantViolation(
                "journal", "J1",
                f"shard {shard_id!r} journal is not a valid spec run: {exc}",
            ))
            continue
        for task_id, state in sorted(summary.in_flight_tasks.items()):
            out.append(InvariantViolation(
                "journal", "J1",
                f"shard {shard_id!r} journal leaves task {task_id} "
                f"non-terminal in {state!r} after the final drain",
            ))
    return out


def summarize_outcomes(outcomes: List[EventOutcome]) -> Dict[str, int]:
    """Small status histogram used by reports and tests."""
    counts: Dict[str, int] = {}
    for outcome in outcomes:
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
    return counts
