"""Forward and VJP tests for convolution / pooling / upsampling operators."""

import numpy as np
import pytest

from repro.ops.registry import get_op
from repro.tensorlib.device import REFERENCE_DEVICE

from tests.helpers import finite_difference_vjp_check


def _run(name, *tensors, **attrs):
    return get_op(name).forward(REFERENCE_DEVICE, *tensors, **attrs)


def test_conv2d_identity_kernel(rng):
    x = rng.standard_normal((1, 1, 5, 5)).astype(np.float32)
    w = np.zeros((1, 1, 3, 3), dtype=np.float32)
    w[0, 0, 1, 1] = 1.0
    out = _run("conv2d", x, w, stride=(1, 1), padding=(1, 1))
    assert np.allclose(out, x, atol=1e-6)


def test_conv2d_stride_downsamples(rng):
    x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
    w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
    out = _run("conv2d", x, w, stride=(2, 2), padding=(1, 1))
    assert out.shape == (2, 4, 4, 4)


def test_max_pool_and_avg_pool(rng):
    x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
    maxed = _run("max_pool2d", x, kernel_size=(2, 2), stride=(2, 2))
    avged = _run("avg_pool2d", x, kernel_size=(2, 2), stride=(2, 2))
    assert maxed.shape == avged.shape == (1, 2, 2, 2)
    block = x[0, 0, :2, :2]
    assert np.isclose(maxed[0, 0, 0, 0], block.max())
    assert np.isclose(avged[0, 0, 0, 0], block.mean(), atol=1e-6)


def test_max_pool_with_padding(rng):
    x = rng.standard_normal((1, 1, 5, 5)).astype(np.float32)
    out = _run("max_pool2d", x, kernel_size=(3, 3), stride=(2, 2), padding=(1, 1))
    assert out.shape == (1, 1, 3, 3)
    # Padded corners must never win (they are -inf).
    assert np.isfinite(out).all()


def test_adaptive_avg_pool_global_mean(rng):
    x = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
    out = _run("adaptive_avg_pool2d", x, output_size=(1, 1))
    assert out.shape == (2, 3, 1, 1)
    assert np.allclose(out[..., 0, 0], x.mean(axis=(2, 3)), atol=1e-5)


def test_adaptive_avg_pool_rejects_other_sizes(rng):
    x = rng.standard_normal((1, 1, 4, 4)).astype(np.float32)
    with pytest.raises(NotImplementedError):
        _run("adaptive_avg_pool2d", x, output_size=(2, 2))


def test_upsample_nearest(rng):
    x = rng.standard_normal((1, 2, 3, 3)).astype(np.float32)
    out = _run("upsample_nearest", x, scale_factor=2)
    assert out.shape == (1, 2, 6, 6)
    assert np.allclose(out[:, :, ::2, ::2], x)
    assert np.allclose(out[:, :, 1::2, 1::2], x)


@pytest.mark.parametrize("with_bias", [True, False])
def test_conv2d_vjp(with_bias, rng):
    x = rng.standard_normal((1, 2, 5, 5))
    w = rng.standard_normal((3, 2, 3, 3))
    tensors = [x, w] + ([rng.standard_normal(3)] if with_bias else [])
    finite_difference_vjp_check("conv2d", tensors, {"stride": (1, 1), "padding": (1, 1)},
                                seed=13)


def test_conv2d_vjp_strided(rng):
    x = rng.standard_normal((1, 2, 6, 6))
    w = rng.standard_normal((2, 2, 3, 3))
    finite_difference_vjp_check("conv2d", [x, w], {"stride": (2, 2), "padding": (1, 1)},
                                seed=14)


def test_avg_pool_vjp(rng):
    x = rng.standard_normal((1, 2, 6, 6))
    finite_difference_vjp_check("avg_pool2d", [x], {"kernel_size": (2, 2), "stride": (2, 2)},
                                seed=15)


def test_max_pool_vjp(rng):
    # Distinct values avoid ties so finite differences stay valid.
    x = np.arange(36, dtype=np.float64).reshape(1, 1, 6, 6)
    x += 0.01 * rng.standard_normal(x.shape)
    finite_difference_vjp_check("max_pool2d", [x], {"kernel_size": (2, 2), "stride": (2, 2)},
                                seed=16)


def test_adaptive_avg_pool_vjp(rng):
    x = rng.standard_normal((2, 3, 4, 4))
    finite_difference_vjp_check("adaptive_avg_pool2d", [x], {"output_size": (1, 1)}, seed=17)


def test_upsample_vjp(rng):
    x = rng.standard_normal((1, 2, 3, 3))
    finite_difference_vjp_check("upsample_nearest", [x], {"scale_factor": 2}, seed=18)
