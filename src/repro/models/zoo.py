"""Model registry mapping workload names to builders and input samplers.

Benchmarks and examples refer to models by the zoo name (``"resnet_mini"``,
``"bert_mini"``, ``"qwen_mini"``, ``"diffusion_mini"``); each
:class:`ModelSpec` knows how to construct the module, trace it, and sample
fresh inputs for calibration, attacks or serving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.graph.graph import GraphModule
from repro.graph.module import Module
from repro.graph.tracer import trace_module
from repro.models.bert import BertConfig, MiniBERT
from repro.models.diffusion import MiniUNet, UNetConfig, sinusoidal_time_embedding
from repro.models.qwen import MiniQwen, QwenConfig
from repro.models.resnet import MiniResNet, ResNetConfig
from repro.utils.rng import derive_seed, seeded_rng


@dataclass
class ModelSpec:
    """One zoo entry: builder, input sampler and metadata."""

    name: str
    paper_analogue: str
    kind: str  # "cnn" | "encoder" | "llm" | "diffusion"
    build: Callable[[], Module]
    sample_inputs: Callable[[Module, int, int], Dict[str, np.ndarray]]
    description: str
    default_batch: int = 2

    def build_module(self) -> Module:
        return self.build()

    def trace(self, module: Optional[Module] = None, batch_size: Optional[int] = None,
              seed: int = 0) -> GraphModule:
        module = module or self.build_module()
        inputs = self.sample_inputs(module, batch_size or self.default_batch, seed)
        return trace_module(module, inputs, name=self.name)

    def dataset(self, module: Module, num_samples: int, seed: int = 0,
                batch_size: Optional[int] = None) -> List[Dict[str, np.ndarray]]:
        """A list of fresh input dictionaries (calibration / attack data)."""
        batch = batch_size or self.default_batch
        return [
            self.sample_inputs(module, batch, derive_seed(seed, self.name, i))
            for i in range(num_samples)
        ]


def _resnet_inputs(module: MiniResNet, batch_size: int, seed: int) -> Dict[str, np.ndarray]:
    rng = seeded_rng(seed)
    cfg = module.config
    images = rng.standard_normal(
        (batch_size, cfg.in_channels, cfg.image_size, cfg.image_size)
    ).astype(np.float32)
    return {"images": images}


def _bert_inputs(module: MiniBERT, batch_size: int, seed: int) -> Dict[str, np.ndarray]:
    rng = seeded_rng(seed)
    cfg = module.config
    tokens = rng.integers(0, cfg.vocab_size, size=(batch_size, cfg.max_seq_len), dtype=np.int64)
    return {"token_ids": tokens}


def _qwen_inputs(module: MiniQwen, batch_size: int, seed: int) -> Dict[str, np.ndarray]:
    rng = seeded_rng(seed)
    cfg = module.config
    tokens = rng.integers(0, cfg.vocab_size, size=(batch_size, cfg.max_seq_len), dtype=np.int64)
    return {"token_ids": tokens}


def _diffusion_inputs(module: MiniUNet, batch_size: int, seed: int) -> Dict[str, np.ndarray]:
    rng = seeded_rng(seed)
    cfg = module.config
    latent = rng.standard_normal(
        (batch_size, cfg.in_channels, cfg.image_size, cfg.image_size)
    ).astype(np.float32)
    timestep = int(rng.integers(0, cfg.num_timesteps))
    time_features = sinusoidal_time_embedding(
        np.full((batch_size,), timestep), cfg.time_embed_dim
    )
    return {"noisy_latent": latent, "time_features": time_features}


_ZOO: Dict[str, ModelSpec] = {
    "resnet_mini": ModelSpec(
        name="resnet_mini",
        paper_analogue="ResNet-152 on ImageNet",
        kind="cnn",
        build=lambda: MiniResNet(ResNetConfig.small()),
        sample_inputs=_resnet_inputs,
        description="Residual CNN classifier: conv2d / batch_norm / relu / pooling / linear.",
    ),
    "resnet_deep": ModelSpec(
        name="resnet_deep",
        paper_analogue="ResNet-152 on ImageNet (deeper variant)",
        kind="cnn",
        build=lambda: MiniResNet(ResNetConfig.deep()),
        sample_inputs=_resnet_inputs,
        description="Deeper residual CNN for long-canonical-order experiments.",
    ),
    "bert_mini": ModelSpec(
        name="bert_mini",
        paper_analogue="BERT-large on DBpedia",
        kind="encoder",
        build=lambda: MiniBERT(BertConfig.small()),
        sample_inputs=_bert_inputs,
        description="Encoder transformer classifier: linear / bmm / softmax / layer_norm / gelu.",
    ),
    "bert_deep": ModelSpec(
        name="bert_deep",
        paper_analogue="BERT-large on DBpedia (deeper variant)",
        kind="encoder",
        build=lambda: MiniBERT(BertConfig.large()),
        sample_inputs=_bert_inputs,
        description="Deeper encoder transformer for dispute-game scaling experiments.",
    ),
    "qwen_mini": ModelSpec(
        name="qwen_mini",
        paper_analogue="Qwen3-8B on C4 (next-token prediction)",
        kind="llm",
        build=lambda: MiniQwen(QwenConfig.small()),
        sample_inputs=_qwen_inputs,
        description="Decoder-only LLM: rms_norm / RoPE / causal attention / SwiGLU / lm head.",
    ),
    "diffusion_mini": ModelSpec(
        name="diffusion_mini",
        paper_analogue="Stable Diffusion v1-5 (UNet denoiser)",
        kind="diffusion",
        build=lambda: MiniUNet(UNetConfig.small()),
        sample_inputs=_diffusion_inputs,
        description="UNet noise predictor: conv2d / group_norm / silu / upsample / concat.",
        default_batch=1,
    ),
}


def available_models() -> List[str]:
    return sorted(_ZOO)


def get_model_spec(name: str) -> ModelSpec:
    try:
        return _ZOO[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(available_models())}"
        ) from None


def build_model(name: str) -> Module:
    return get_model_spec(name).build_module()
