"""The IEEE-754 rounding model and reduction error factors (Appendix A).

The standard model: for basic operations ``o`` in ``{+, -, *, /}``,
``fl(x o y) = (x o y)(1 + delta)`` with ``|delta| <= u`` where ``u`` is the
unit roundoff (``2^-24`` for float32).  Products of ``(1 + delta)`` terms are
bounded deterministically by ``gamma_k = k*u / (1 - k*u)`` and
probabilistically by ``gamma_tilde_k(lambda) = exp(lambda*sqrt(k)*u +
k*u^2/(1-u)) - 1``, which holds with probability at least
``1 - 2*exp(-lambda^2 (1-u)^2 / 2)`` under independent mean-zero roundoffs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum


class BoundMode(str, Enum):
    """Which reduction-error factor to apply."""

    DETERMINISTIC = "deterministic"
    PROBABILISTIC = "probabilistic"


@dataclass(frozen=True)
class FloatingPointModel:
    """Floating-point format parameters used for bound computation.

    ``unit_roundoff`` is machine epsilon divided by two; ``lambda_`` is the
    probabilistic bound's confidence knob (the paper fixes ``lambda = 4``).
    """

    name: str
    unit_roundoff: float
    lambda_: float = 4.0

    @property
    def u(self) -> float:
        return self.unit_roundoff

    def gamma(self, k: int) -> float:
        """Deterministic worst-case factor ``gamma_k = k*u / (1 - k*u)``."""
        return gamma(k, self.unit_roundoff)

    def gamma_tilde(self, k: int) -> float:
        """Probabilistic factor ``gamma_tilde_k(lambda)`` at this model's lambda."""
        return gamma_tilde(k, self.unit_roundoff, self.lambda_)

    def reduction_factor(self, k: int, mode: BoundMode) -> float:
        """Error factor for a length-``k`` chain of roundings under ``mode``."""
        if mode is BoundMode.DETERMINISTIC:
            return self.gamma(k)
        if mode is BoundMode.PROBABILISTIC:
            return self.gamma_tilde(k)
        raise ValueError(f"unknown bound mode {mode!r}")

    def confidence(self) -> float:
        """Probability with which the probabilistic bounds hold."""
        return probabilistic_confidence(self.lambda_, self.unit_roundoff)


def gamma(k: int, u: float) -> float:
    """``gamma_k = k*u / (1 - k*u)``, valid while ``k*u < 1``.

    For pathological ``k*u >= 1`` (far beyond any realistic tensor dimension
    for FP32) the bound degenerates; we saturate to a large-but-finite value
    so downstream arithmetic never sees infinities.
    """
    if k <= 0:
        return 0.0
    ku = k * u
    if ku >= 1.0:
        return float(1e30)
    return ku / (1.0 - ku)


def gamma_tilde(k: int, u: float, lambda_: float) -> float:
    """Probabilistic factor ``exp(lambda*sqrt(k)*u + k*u^2/(1-u)) - 1``.

    First-order this is ``lambda * sqrt(k) * u`` — markedly tighter than the
    deterministic ``k*u`` for large reductions, which is why the paper adopts
    it for the leaf-level theoretical check.
    """
    if k <= 0:
        return 0.0
    exponent = lambda_ * math.sqrt(k) * u + k * u * u / (1.0 - u)
    if exponent >= 0.5:
        # exp(t) <= 1/(1-t) only holds for t < 1; saturate conservatively.
        return float(math.expm1(min(exponent, 30.0)))
    return float(math.expm1(exponent))


def probabilistic_confidence(lambda_: float, u: float) -> float:
    """``P(lambda) = 1 - 2*exp(-lambda^2 (1-u)^2 / 2)``."""
    return 1.0 - 2.0 * math.exp(-(lambda_ ** 2) * (1.0 - u) ** 2 / 2.0)


#: IEEE-754 binary32 with round-to-nearest-even; the execution precision.
FP32_MODEL = FloatingPointModel(name="float32", unit_roundoff=2.0 ** -24)

#: IEEE-754 binary64; used for the bound arithmetic itself (and the reference).
FP64_MODEL = FloatingPointModel(name="float64", unit_roundoff=2.0 ** -53)

#: Maximum-ULP error assumptions for library intrinsics, loosely following the
#: CUDA math API accuracy tables the paper cites: each entry is the assumed
#: worst-case error of the vendor intrinsic in units of the result's ULP.
INTRINSIC_ULP = {
    "exp": 2.0,
    "log": 1.0,
    "sin": 2.0,
    "cos": 2.0,
    "tanh": 2.0,
    "sigmoid": 3.0,
    "erf": 2.0,
    "sqrt": 0.5,
    "rsqrt": 2.0,
    "pow": 4.0,
    "div": 0.5,
}
