"""The TAO protocol layer (paper Secs. 2 and 5).

This package contains the coordination substrate (a gas-metered simulated
ledger standing in for the paper's Ethereum Holesky deployment), the
coordinator state machine, the protocol roles (proposer, challenger,
committee), the N-way threshold-guided dispute game, leaf adjudication, the
economic/incentive model, and an analytic zkML cost baseline used for the
Sec. 6.3 comparison.
"""

from repro.protocol.chain import GasSchedule, ShardChainView, SimulatedChain, Transaction
from repro.protocol.coordinator import (
    Coordinator,
    CoordinatorError,
    DisputeRecord,
    TaskRecord,
    TaskStatus,
)
from repro.protocol.roles import (
    Challenger,
    CommitteeMember,
    HonestProposer,
    AdversarialProposer,
    ProposedResult,
    Proposer,
    User,
)
from repro.protocol.dispute import DisputeGame, DisputeOutcome, DisputeStatistics
from repro.protocol.adjudication import (
    AdjudicationDecision,
    AdjudicationResult,
    committee_vote,
    committee_vote_reference,
    route_and_adjudicate,
    theoretical_bound_check,
)
from repro.protocol.economics import (
    EconomicParameters,
    IncentiveAnalysis,
    analyze_incentives,
    detection_probability,
    feasible_slash_region,
)
from repro.protocol.multistep import (
    MultiStepDispute,
    MultiStepOutcome,
    TemporalCommitment,
    commit_step_chain,
    find_earliest_offending_step,
    hash_seeded_tie_break,
    lexicographic_tie_break,
)
from repro.protocol.zk_baseline import ZkProverModel, ZkCostEstimate, compare_with_tao
from repro.protocol.lifecycle import TAOSession, SessionReport
from repro.protocol.service import ServiceCore, ServiceRequest, ServiceStats, TAOService

__all__ = [
    "GasSchedule",
    "ShardChainView",
    "SimulatedChain",
    "Transaction",
    "Coordinator",
    "CoordinatorError",
    "DisputeRecord",
    "TaskRecord",
    "TaskStatus",
    "Challenger",
    "CommitteeMember",
    "HonestProposer",
    "AdversarialProposer",
    "ProposedResult",
    "Proposer",
    "User",
    "DisputeGame",
    "DisputeOutcome",
    "DisputeStatistics",
    "AdjudicationDecision",
    "AdjudicationResult",
    "committee_vote",
    "committee_vote_reference",
    "route_and_adjudicate",
    "theoretical_bound_check",
    "EconomicParameters",
    "IncentiveAnalysis",
    "analyze_incentives",
    "detection_probability",
    "feasible_slash_region",
    "MultiStepDispute",
    "MultiStepOutcome",
    "TemporalCommitment",
    "commit_step_chain",
    "find_earliest_offending_step",
    "hash_seeded_tie_break",
    "lexicographic_tie_break",
    "ZkProverModel",
    "ZkCostEstimate",
    "compare_with_tao",
    "TAOSession",
    "SessionReport",
    "ServiceCore",
    "ServiceRequest",
    "ServiceStats",
    "TAOService",
]
