"""Unit tests for the fixed-memory latency quantile digest.

The digest underwrites the elastic layer's SLO arithmetic, so two properties
are pinned hard: (1) the rank-error bound — every reported quantile is within
one log-bucket (a ``growth**2`` relative factor, conservatively) of NumPy's
exact ``inverted_cdf`` quantile; and (2) exactly associative merge — folding
per-worker digests in any order yields byte-identical serialized state, the
property fleet-wide aggregation depends on.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.elastic import LatencyDigest
from repro.elastic.digest import merged
from repro.utils.rng import seeded_rng

QUANTILES = (0.5, 0.9, 0.99, 0.999)


def _samples(seed: int, n: int) -> np.ndarray:
    """Heavy-tailed positive latencies spanning several decades."""
    rng = seeded_rng(seed)
    return np.exp(rng.normal(loc=-4.0, scale=2.0, size=n))


class TestRankErrorBound:
    def test_quantiles_track_numpy_inverted_cdf(self):
        values = _samples(11, 20_000)
        digest = LatencyDigest()
        digest.add_many(values)
        # One bucket of slack on the index plus the representative's
        # half-bucket offset: growth**2 bounds the relative error.
        bound = digest.growth ** 2
        for q in QUANTILES:
            exact = float(np.quantile(values, q, method="inverted_cdf"))
            approx = digest.quantile(q)
            assert exact / bound <= approx <= exact * bound, (q, exact, approx)

    def test_single_value_is_exact(self):
        digest = LatencyDigest()
        digest.add(0.125)
        for q in QUANTILES:
            assert digest.quantile(q) == 0.125

    def test_quantiles_clamp_to_observed_range(self):
        digest = LatencyDigest()
        digest.add_many([0.01, 0.02, 0.03])
        assert digest.quantile(0.001) >= 0.01
        assert digest.quantile(1.0) <= 0.03

    def test_out_of_range_values_clamp_not_crash(self):
        digest = LatencyDigest(min_value=1e-3, max_value=1.0)
        digest.add(1e-9)   # below min_value -> bucket 0
        digest.add(1e4)    # above max_value -> top bucket
        assert digest.count == 2
        assert digest.quantile(0.5) >= 1e-9
        assert digest.quantile(1.0) <= 1e4

    def test_rejects_negative_and_nan(self):
        digest = LatencyDigest()
        with pytest.raises(ValueError):
            digest.add(-0.1)
        with pytest.raises(ValueError):
            digest.add(float("nan"))

    def test_empty_digest_reports_zero(self):
        digest = LatencyDigest()
        assert digest.count == 0
        assert digest.p50 == 0.0
        assert digest.summary()["max"] == 0.0

    def test_quantile_argument_validation(self):
        digest = LatencyDigest()
        digest.add(1.0)
        with pytest.raises(ValueError):
            digest.quantile(0.0)
        with pytest.raises(ValueError):
            digest.quantile(1.5)


class TestMergeAssociativity:
    def _parts(self, n_parts: int = 5, n_each: int = 1_000):
        parts = []
        for part_index in range(n_parts):
            digest = LatencyDigest()
            digest.add_many(_samples(100 + part_index, n_each))
            parts.append(digest)
        return parts

    def test_merge_is_order_invariant_byte_exact(self):
        parts = self._parts()
        forward = merged(parts)
        backward = merged(list(reversed(parts)))
        assert forward.to_dict() == backward.to_dict()

    def test_merge_is_associative_byte_exact(self):
        a, b, c = self._parts(3)
        left = merged([merged([a, b]), c])
        right = merged([a, merged([b, c])])
        assert left.to_dict() == right.to_dict()

    def test_merge_equals_single_digest_over_union(self):
        values = _samples(7, 6_000)
        whole = LatencyDigest()
        whole.add_many(values)
        halves = merged([
            (lambda d: (d.add_many(values[:3_000]), d)[1])(LatencyDigest()),
            (lambda d: (d.add_many(values[3_000:]), d)[1])(LatencyDigest()),
        ])
        assert whole.to_dict() == halves.to_dict()

    def test_merge_rejects_config_mismatch(self):
        coarse = LatencyDigest(growth=1.1)
        fine = LatencyDigest(growth=1.02)
        with pytest.raises(ValueError):
            coarse.merge(fine)

    def test_dict_roundtrip_preserves_state(self):
        digest = LatencyDigest()
        digest.add_many(_samples(3, 2_000))
        clone = LatencyDigest.from_dict(digest.to_dict())
        assert clone.to_dict() == digest.to_dict()
        for q in QUANTILES:
            assert clone.quantile(q) == digest.quantile(q)

    def test_empty_dict_roundtrip(self):
        clone = LatencyDigest.from_dict(LatencyDigest().to_dict())
        assert clone.count == 0
        assert math.isinf(clone.observed_min)


class TestConfigValidation:
    def test_growth_must_exceed_one(self):
        with pytest.raises(ValueError):
            LatencyDigest(growth=1.0)

    def test_range_ordering_enforced(self):
        with pytest.raises(ValueError):
            LatencyDigest(min_value=1.0, max_value=0.5)
        with pytest.raises(ValueError):
            LatencyDigest(min_value=0.0)
