"""Length-prefixed RPC framing over a socket pair.

One :class:`MessageChannel` wraps one stream socket and moves whole messages:
an 8-byte big-endian length prefix followed by the payload, encoded with the
repository's canonical wire codec
(:func:`~repro.utils.serialization.canonical_bytes`).  Everything that
crosses a fleet process boundary — requests, verdicts, dispute statistics,
chain settlement calls — travels through this one framing; there is no
pickle on the data path, so a worker can only exchange the value shapes the
codec admits (arrays, scalars, bytes, lists, string-keyed maps).

The parent creates the pair with :func:`channel_pair` and ships the child
socket to the worker process as a ``multiprocessing.Process`` argument (the
``multiprocessing`` reduction machinery transfers the descriptor under both
``fork`` and ``spawn`` start methods).  A peer that dies — or closes its end
on orderly shutdown — surfaces as :class:`TransportClosed` on the next send
or receive, which is the signal the fleet's failover path keys on.
"""

from __future__ import annotations

import socket
from typing import Any, Tuple

from repro.utils.serialization import canonical_bytes, decode_canonical

#: Width of the big-endian message-length prefix.
LENGTH_BYTES = 8

#: Largest chunk requested from the kernel per ``recv`` call.
_RECV_CHUNK = 1 << 20


class TransportClosed(ConnectionError):
    """The peer hung up: worker death or an orderly channel shutdown."""


class MessageChannel:
    """Whole-message send/receive over one stream socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock

    def send(self, payload: Any) -> None:
        """Encode ``payload`` with the canonical codec and write one frame."""
        data = canonical_bytes(payload)
        frame = len(data).to_bytes(LENGTH_BYTES, "big") + data
        try:
            self._sock.sendall(frame)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise TransportClosed(f"send on closed transport: {exc}") from exc

    def recv(self) -> Any:
        """Read one frame and decode it; raises TransportClosed on EOF."""
        header = self._recv_exact(LENGTH_BYTES)
        length = int.from_bytes(header, "big")
        return decode_canonical(self._recv_exact(length))

    def _recv_exact(self, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            try:
                chunk = self._sock.recv(min(remaining, _RECV_CHUNK))
            except (ConnectionResetError, OSError) as exc:
                raise TransportClosed(f"recv on closed transport: {exc}") from exc
            if not chunk:
                raise TransportClosed("peer closed the transport mid-message"
                                      if remaining != count else
                                      "peer closed the transport")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close races are benign
            pass


def channel_pair() -> Tuple[MessageChannel, socket.socket]:
    """A connected (parent channel, raw child socket) pair.

    The child end is returned raw so it can ride in ``Process`` args; the
    worker wraps it in its own :class:`MessageChannel` after the fork/spawn.
    """
    parent_sock, child_sock = socket.socketpair()
    return MessageChannel(parent_sock), child_sock
