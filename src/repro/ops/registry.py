"""Global operator registry.

An :class:`OpSpec` bundles everything the rest of the system needs to know
about a primitive operator:

* ``forward(device, *tensors, **attrs)`` — executes the operator on a
  simulated device (reductions follow the device's accumulation order);
* ``vjp(device, grad_out, out, *tensors, **attrs)`` — vector-Jacobian product
  returning one gradient per positional tensor input (``None`` where no
  gradient flows, e.g. into integer index tensors);
* ``flops(out, *tensors, **attrs)`` — floating-point operation estimate used
  by the dispute-cost accounting (Table 3);
* ``category`` — coarse operator family used in reports ("linalg", "norm",
  "elementwise", "structural", ...); structural/data-movement operators
  contribute no floating-point error (paper Sec. 3.1).

Theoretical error-bound templates are registered separately in
:mod:`repro.bounds.templates`, keyed by the same operator name, so the bound
machinery stays decoupled from the execution kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.tensorlib.device import DeviceProfile

ForwardFn = Callable[..., np.ndarray]
VjpFn = Callable[..., Tuple[Optional[np.ndarray], ...]]
FlopsFn = Callable[..., float]


@dataclass(frozen=True)
class OpSpec:
    """Description of a primitive tensor operator."""

    name: str
    forward: ForwardFn
    vjp: Optional[VjpFn] = None
    flops: Optional[FlopsFn] = None
    category: str = "elementwise"
    #: Structural (pure data-movement) operators introduce no rounding error.
    introduces_rounding: bool = True

    def __call__(self, device: DeviceProfile, *tensors: np.ndarray, **attrs) -> np.ndarray:
        return self.forward(device, *tensors, **attrs)

    def estimate_flops(self, out: np.ndarray, *tensors: np.ndarray, **attrs) -> float:
        if self.flops is None:
            return 0.0
        return float(self.flops(out, *tensors, **attrs))


_REGISTRY: Dict[str, OpSpec] = {}


def register_op(spec: OpSpec) -> OpSpec:
    """Register ``spec`` globally; duplicate names are an error."""
    if spec.name in _REGISTRY:
        raise ValueError(f"operator {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_op(name: str) -> OpSpec:
    """Look up an operator by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown operator {name!r}; registered operators: {', '.join(sorted(_REGISTRY))}"
        ) from None


def has_op(name: str) -> bool:
    return name in _REGISTRY


def list_ops(category: Optional[str] = None) -> List[str]:
    """Return registered operator names, optionally filtered by category."""
    if category is None:
        return sorted(_REGISTRY)
    return sorted(name for name, spec in _REGISTRY.items() if spec.category == category)


def _f32(x: np.ndarray) -> np.ndarray:
    """Cast to float32 unless the array is an integer/bool index tensor."""
    arr = np.asarray(x)
    if arr.dtype.kind in ("i", "u", "b"):
        return arr
    return arr.astype(np.float32, copy=False)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast dimensions.

    Used by elementwise VJPs so gradients match the original operand shapes
    even when NumPy broadcasting expanded them during the forward pass.
    """
    grad = np.asarray(grad, dtype=np.float64)
    if grad.shape == tuple(shape):
        return grad
    # Sum away leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad
