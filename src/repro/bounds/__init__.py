"""Theoretical IEEE-754 rounding-error bounds (paper Sec. 3.1, Appendix A).

For each traced operator, TAO computes a same-shape worst-case error envelope
``tau_theo`` certifying that any IEEE-754-compliant re-association of the
operator's arithmetic stays within ``[y - tau, y + tau]``.  Two variants are
supported, mirroring the paper:

* **deterministic** bounds built from the classic ``gamma_k = k*u / (1 - k*u)``
  factor (Higham-style worst case), and
* **probabilistic** bounds built from ``gamma_tilde_k(lambda) ≈ lambda*sqrt(k)*u``
  which hold with probability ``>= 1 - 2*exp(-lambda^2 (1-u)^2 / 2)`` under the
  mean-zero independent rounding model (the paper uses ``lambda = 4``,
  i.e. >= 99.93% confidence).

Bounds are *operator-local*: they account for propagation of intra-operator
sub-step errors plus fresh rounding, but are never propagated across operator
boundaries — composition is replaced by dispute localization.
"""

from repro.bounds.fp_model import (
    BoundMode,
    FloatingPointModel,
    FP32_MODEL,
    FP64_MODEL,
    gamma,
    gamma_tilde,
    probabilistic_confidence,
)
from repro.bounds.templates import (
    BoundContext,
    bound_for_operator,
    has_bound_template,
    list_bound_templates,
    register_bound_template,
)
from repro.bounds.coexec import BoundedExecution, BoundInterpreter

__all__ = [
    "BoundMode",
    "FloatingPointModel",
    "FP32_MODEL",
    "FP64_MODEL",
    "gamma",
    "gamma_tilde",
    "probabilistic_confidence",
    "BoundContext",
    "bound_for_operator",
    "has_bound_template",
    "list_bound_templates",
    "register_bound_template",
    "BoundedExecution",
    "BoundInterpreter",
]
