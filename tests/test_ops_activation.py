"""Forward and VJP tests for activation operators."""

import numpy as np
import pytest
from scipy import special

from repro.ops.registry import get_op
from repro.tensorlib.device import REFERENCE_DEVICE

from tests.helpers import finite_difference_vjp_check


def _run(name, *tensors, **attrs):
    return get_op(name).forward(REFERENCE_DEVICE, *tensors, **attrs)


def test_relu_forward(rng):
    x = rng.standard_normal((4, 4)).astype(np.float32)
    assert np.allclose(_run("relu", x), np.maximum(x, 0.0))


def test_leaky_relu_forward(rng):
    x = rng.standard_normal((4, 4)).astype(np.float32)
    out = _run("leaky_relu", x, negative_slope=0.1)
    assert np.allclose(out, np.where(x > 0, x, 0.1 * x), rtol=1e-6)


def test_gelu_matches_exact_formula(rng):
    x = rng.standard_normal((5, 3)).astype(np.float32)
    expected = x * 0.5 * (1.0 + special.erf(x / np.sqrt(2.0)))
    assert np.allclose(_run("gelu", x), expected, rtol=1e-5, atol=1e-6)


def test_silu_matches_exact_formula(rng):
    x = rng.standard_normal((5, 3)).astype(np.float32)
    expected = x / (1.0 + np.exp(-x))
    assert np.allclose(_run("silu", x), expected, rtol=1e-5, atol=1e-6)


def test_gelu_monotone_region():
    x = np.linspace(0.0, 4.0, 50, dtype=np.float32)
    out = _run("gelu", x)
    assert (np.diff(out) > 0).all()


@pytest.mark.parametrize("name,attrs", [
    ("relu", {}),
    ("leaky_relu", {"negative_slope": 0.05}),
    ("gelu", {}),
    ("silu", {}),
])
def test_activation_vjps(name, attrs, rng):
    # Keep values away from the ReLU kink so finite differences are valid.
    x = rng.standard_normal((4, 5)) + np.where(rng.standard_normal((4, 5)) > 0, 0.5, -0.5)
    finite_difference_vjp_check(name, [x], attrs, seed=3)
