"""Table 2: bucketed attack outcomes under threshold scaling.

For each model the PGD/Adam adversary attacks targets bucketed by their logit
margin percentile, once per verification regime:

* empirical percentile thresholds at scale alpha in {1, 2, 3};
* theoretical bounds, deterministic (x1) and probabilistic (x1, x0.5).

Reported per regime: ASR and the mean margin progress of failed attacks, plus
the honest-run false-positive rate of the full pipeline.  The paper finds 0%
ASR and 0% false positives under empirical thresholds for every model, while
worst-case theoretical bounds leave a small window on the LLM (up to 2.4%).

This reproduction uses a reduced campaign (3 inputs x 5 buckets x 12 PGD
steps per regime) so the whole table regenerates in a few minutes on a CPU.
"""

from __future__ import annotations

from typing import Dict, List

from repro.attacks.evaluation import false_positive_rate, run_attack_campaign
from repro.attacks.pgd import AttackConfig
from repro.bounds.fp_model import BoundMode
from repro.protocol.lifecycle import TAOSession
from repro.tensorlib.device import DEVICE_FLEET

from benchmarks.reporting import emit_table

MODELS = ("bert_mini", "qwen_mini", "resnet_mini")
ATTACK_INPUTS = 3
ATTACK_STEPS = 12

REGIMES = (
    ("empirical", None, 1.0, "empirical x1"),
    ("empirical", None, 2.0, "empirical x2"),
    ("empirical", None, 3.0, "empirical x3"),
    ("theoretical", BoundMode.DETERMINISTIC, 1.0, "theoretical d x1"),
    ("theoretical", BoundMode.PROBABILISTIC, 1.0, "theoretical p x1"),
    ("theoretical", BoundMode.PROBABILISTIC, 0.5, "theoretical p x0.5"),
)


def _run_campaigns(bench_model) -> Dict[str, object]:
    dataset = bench_model.dataset(ATTACK_INPUTS, seed=909)
    config = AttackConfig(num_steps=ATTACK_STEPS)
    campaigns = {}
    for mode, bound_mode, scale, label in REGIMES:
        campaigns[label] = run_attack_campaign(
            bench_model.graph, dataset, mode=mode,
            thresholds=bench_model.thresholds if mode == "empirical" else None,
            bound_mode=bound_mode or BoundMode.PROBABILISTIC,
            bound_scale=scale, attack_config=config, seed=13,
        )
    return campaigns


def _false_positives(bench_model) -> float:
    session = TAOSession(bench_model.graph, threshold_table=bench_model.thresholds,
                         calibration_result=bench_model.calibration, n_way=4)
    session.setup()
    proposer = session.make_honest_proposer("honest-fp", DEVICE_FLEET[1])
    return false_positive_rate(session, proposer, bench_model.dataset(3, seed=2025))


def test_table2_attacks(benchmark, bench_all):
    def run():
        out = {}
        for name in MODELS:
            out[name] = {
                "campaigns": _run_campaigns(bench_all[name]),
                "false_positive": _false_positives(bench_all[name]),
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows: List[list] = []
    for name in MODELS:
        fp = results[name]["false_positive"]
        for _, _, _, label in REGIMES:
            campaign = results[name]["campaigns"][label]
            for bucket_row in campaign.as_rows():
                rows.append([
                    name, label,
                    f"{bucket_row['bucket_low']:.0f}-{bucket_row['bucket_high']:.0f}%",
                    bucket_row["asr_percent"],
                    bucket_row["mean_dm_fail"],
                    100.0 * bucket_row["mean_delta_fail"],
                    100.0 * fp if label.startswith("empirical") else float("nan"),
                ])
    emit_table(
        "table2_attacks",
        "Bucketed attack outcomes under threshold scaling",
        ["model", "bound check", "bucket", "ASR (%)", "mean dm_fail", "delta_fail (%)",
         "false positive (%)"],
        rows,
        notes=("Paper (Table 2): empirical thresholds give 0% ASR and 0% false positives for all "
               "models even at x3; deterministic theoretical bounds leave a window (up to 58.6% "
               "on BERT buckets / 12.6% on Qwen); probabilistic bounds shrink it to <= 2.4% on "
               "the LLM.  Failed-attack progress is smallest under empirical thresholds."),
    )

    for name in MODELS:
        campaigns = results[name]["campaigns"]
        # (1) Empirical thresholds are robust: 0% ASR at every scale, and honest
        #     executions never trigger disputes.
        for label in ("empirical x1", "empirical x2", "empirical x3"):
            assert campaigns[label].overall_asr == 0.0, (name, label)
        assert results[name]["false_positive"] == 0.0, name
        # (2) Looser admissible sets let failed attacks make more progress:
        #     empirical x1 <= empirical x3 <= theoretical deterministic.
        def mean_progress(label):
            changes = campaigns[label].failed_normalized_changes
            return sum(changes) / len(changes) if changes else 0.0

        assert mean_progress("empirical x1") <= mean_progress("empirical x3") + 1e-9, name
        assert mean_progress("empirical x1") <= mean_progress("theoretical d x1") + 1e-9, name
        # (3) Probabilistic theoretical bounds are tighter than deterministic ones.
        assert mean_progress("theoretical p x1") <= mean_progress("theoretical d x1") + 1e-9, name
