"""Functional operator API used by model ``forward`` methods.

Each function corresponds to one registered operator.  When called during
tracing the call is recorded as a graph node (and evaluated concretely on the
tracer's device); when called outside tracing it simply executes eagerly on
the FP64-reference device, which makes the functions convenient for unit
tests and for building constants at model-construction time.

The convention mirrors the operator registry: tensors are positional,
attributes are keywords.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.graph.tracer import Proxy, current_tracer
from repro.ops.registry import get_op
from repro.tensorlib.device import REFERENCE_DEVICE


def _apply(op_name: str, tensor_args: Sequence[Any], attrs: Dict[str, Any]):
    tracer = current_tracer()
    if tracer is not None:
        return tracer.create_proxy(op_name, tensor_args, attrs)
    spec = get_op(op_name)
    values = [a.value if isinstance(a, Proxy) else a for a in tensor_args]
    return spec.forward(REFERENCE_DEVICE, *values, **attrs)


# ---------------------------------------------------------------------------
# Elementwise arithmetic
# ---------------------------------------------------------------------------

def add(a, b):
    return _apply("add", [a, b], {})


def sub(a, b):
    return _apply("sub", [a, b], {})


def mul(a, b):
    return _apply("mul", [a, b], {})


def div(a, b):
    return _apply("div", [a, b], {})


def pow(a, *, exponent: float):  # noqa: A001 - mirrors torch.pow naming
    return _apply("pow", [a], {"exponent": float(exponent)})


def neg(a):
    return _apply("neg", [a], {})


def abs(a):  # noqa: A001 - mirrors torch.abs naming
    return _apply("abs", [a], {})


def maximum(a, b):
    return _apply("maximum", [a, b], {})


def minimum(a, b):
    return _apply("minimum", [a, b], {})


def sqrt(a):
    return _apply("sqrt", [a], {})


def rsqrt(a):
    return _apply("rsqrt", [a], {})


def exp(a):
    return _apply("exp", [a], {})


def log(a):
    return _apply("log", [a], {})


def sin(a):
    return _apply("sin", [a], {})


def cos(a):
    return _apply("cos", [a], {})


def tanh(a):
    return _apply("tanh", [a], {})


def sigmoid(a):
    return _apply("sigmoid", [a], {})


def erf(a):
    return _apply("erf", [a], {})


def clip(a, *, minimum: Optional[float] = None, maximum: Optional[float] = None):
    return _apply("clip", [a], {"minimum": minimum, "maximum": maximum})


def where(condition, a, b):
    return _apply("where", [condition, a, b], {})


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------

def relu(a):
    return _apply("relu", [a], {})


def leaky_relu(a, *, negative_slope: float = 0.01):
    return _apply("leaky_relu", [a], {"negative_slope": float(negative_slope)})


def gelu(a):
    return _apply("gelu", [a], {})


def silu(a):
    return _apply("silu", [a], {})


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------

def sum(a, *, axis=None, keepdims: bool = False):  # noqa: A001
    return _apply("sum", [a], {"axis": axis, "keepdims": keepdims})


def mean(a, *, axis=None, keepdims: bool = False):
    return _apply("mean", [a], {"axis": axis, "keepdims": keepdims})


def var(a, *, axis=None, keepdims: bool = False, ddof: int = 0):
    return _apply("var", [a], {"axis": axis, "keepdims": keepdims, "ddof": ddof})


def amax(a, *, axis=None, keepdims: bool = False):
    return _apply("amax", [a], {"axis": axis, "keepdims": keepdims})


def amin(a, *, axis=None, keepdims: bool = False):
    return _apply("amin", [a], {"axis": axis, "keepdims": keepdims})


def argmax(a, *, axis=None):
    return _apply("argmax", [a], {"axis": axis})


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------

def matmul(a, b):
    return _apply("matmul", [a, b], {})


def bmm(a, b):
    return _apply("bmm", [a, b], {})


def linear(x, weight, bias=None):
    if bias is None:
        return _apply("linear", [x, weight], {})
    return _apply("linear", [x, weight, bias], {})


# ---------------------------------------------------------------------------
# Convolution / pooling / upsampling
# ---------------------------------------------------------------------------

def conv2d(x, weight, bias=None, *, stride=(1, 1), padding=(0, 0)):
    attrs = {"stride": tuple(stride) if isinstance(stride, (tuple, list)) else (stride, stride),
             "padding": tuple(padding) if isinstance(padding, (tuple, list)) else (padding, padding)}
    if bias is None:
        return _apply("conv2d", [x, weight], attrs)
    return _apply("conv2d", [x, weight, bias], attrs)


def max_pool2d(x, *, kernel_size=(2, 2), stride=None, padding=(0, 0)):
    return _apply("max_pool2d", [x], {"kernel_size": kernel_size, "stride": stride,
                                      "padding": padding})


def avg_pool2d(x, *, kernel_size=(2, 2), stride=None, padding=(0, 0)):
    return _apply("avg_pool2d", [x], {"kernel_size": kernel_size, "stride": stride,
                                      "padding": padding})


def adaptive_avg_pool2d(x, *, output_size=(1, 1)):
    return _apply("adaptive_avg_pool2d", [x], {"output_size": output_size})


def upsample_nearest(x, *, scale_factor: int = 2):
    return _apply("upsample_nearest", [x], {"scale_factor": int(scale_factor)})


# ---------------------------------------------------------------------------
# Normalization / softmax
# ---------------------------------------------------------------------------

def softmax(x, *, axis: int = -1):
    return _apply("softmax", [x], {"axis": int(axis)})


def layer_norm(x, weight, bias, *, eps: float = 1e-5):
    return _apply("layer_norm", [x, weight, bias], {"eps": float(eps)})


def rms_norm(x, weight, *, eps: float = 1e-6):
    return _apply("rms_norm", [x, weight], {"eps": float(eps)})


def batch_norm(x, weight, bias, running_mean, running_var, *, eps: float = 1e-5):
    return _apply("batch_norm", [x, weight, bias, running_mean, running_var],
                  {"eps": float(eps)})


def group_norm(x, weight, bias, *, num_groups: int, eps: float = 1e-5):
    return _apply("group_norm", [x, weight, bias],
                  {"num_groups": int(num_groups), "eps": float(eps)})


# ---------------------------------------------------------------------------
# Structural / data movement
# ---------------------------------------------------------------------------

def reshape(x, *, shape: Sequence[int]):
    return _apply("reshape", [x], {"shape": tuple(int(s) for s in shape)})


def flatten(x, *, start_dim: int = 0):
    return _apply("flatten", [x], {"start_dim": int(start_dim)})


def transpose(x, *, axis0: int, axis1: int):
    return _apply("transpose", [x], {"axis0": int(axis0), "axis1": int(axis1)})


def permute(x, *, dims: Sequence[int]):
    return _apply("permute", [x], {"dims": tuple(int(d) for d in dims)})


def expand(x, *, shape: Sequence[int]):
    return _apply("expand", [x], {"shape": tuple(int(s) for s in shape)})


def concat(tensors: Sequence[Any], *, axis: int = 0):
    return _apply("concat", list(tensors), {"axis": int(axis)})


def slice(x, *, axis: int, start: int, stop: Optional[int] = None, step: int = 1):  # noqa: A001
    return _apply("slice", [x], {"axis": int(axis), "start": int(start),
                                 "stop": None if stop is None else int(stop),
                                 "step": int(step)})


def index_select(x, indices, *, axis: int = 0):
    return _apply("index_select", [x, indices], {"axis": int(axis)})


def embedding(indices, weight):
    return _apply("embedding", [indices, weight], {})


def masked_fill(x, mask, *, value: float):
    return _apply("masked_fill", [x, mask], {"value": float(value)})


def dropout(x, *, p: float = 0.1):
    return _apply("dropout", [x], {"p": float(p)})


def pad(x, *, pad_width: Sequence[Sequence[int]], value: float = 0.0):
    return _apply("pad", [x], {"pad_width": tuple(tuple(int(v) for v in pair) for pair in pad_width),
                               "value": float(value)})


def identity(x):
    return _apply("identity", [x], {})
