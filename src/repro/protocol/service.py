"""Batched multi-request verification service (the serving front end).

:class:`TAOSession` serves exactly one request per call; this module adds the
layer the ROADMAP's production goal needs on top of it: a **multi-tenant
service** that keeps many requests in flight against one coordinator.

Request life cycle inside :meth:`TAOService.process` — four explicit stages,
run strictly in sequence by the reference drain
(:meth:`TAOService.drain_reference`) and overlapped across cycles by the
stage-pipelined drain (:mod:`repro.pipeline`, the default):

1. **Queue** — :meth:`TAOService.submit` enqueues (model, inputs) pairs;
   tenants are models registered once via :meth:`TAOService.register_model`
   (per-model session reuse: calibration, commitments and role objects are
   built once, not per request).
2. **Execute** — queued requests for the same model and the default honest
   proposer are executed through
   :meth:`~repro.engine.engine.ExecutionEngine.run_batch`, which stacks them
   along the leading batch axis when the graph is certified batchable;
   adversarial / custom proposers run their own (override-bearing) path.
   A **content-addressed result cache** keyed by the execution commitment's
   input hash short-circuits repeated requests: the proposer's committed
   trace and the challenger's verdict for identical payloads are reused.
3. **Submit + verify** — every request becomes its own coordinator task
   (fees, bonds and challenge windows per request); the default challenger's
   re-execution is batched the same way and threshold-checked per request.
4. **Dispute** — flagged (or force-challenged) tasks open disputes while
   every challenge window is still live, then the active dispute games are
   **multiplexed**: advanced round-robin one partition/selection round at a
   time over the shared chain, each with its own challenger clone so
   per-dispute accounting stays exact.
5. **Finalize** — time advances past the challenge window once and all
   unchallenged tasks finalize; every processed request ends in a terminal
   coordinator status.

Nothing in the protocol requires the *service* to run that sequence
lock-step across requests: commitment hashing for cycle N+1 can overlap
proposer execution of cycle N and the multiplexed dispute rounds of cycle
N-1.  The default drain therefore decomposes each cycle into the four stages
above — *hash* (HashCache + Merkle input digests), *execute*
(ExecutionEngine batch + challenger verification), *settle* (chain append +
challenge-window bookkeeping) and *dispute* (round-robin
``DisputeGame.step_round`` multiplexing) — and runs them on a
:class:`~repro.pipeline.core.Pipeline`: one worker per stage, bounded
hand-off queues with backpressure, and the chain-touching *settle* and
*dispute* stages serialized in exact protocol order on one
:class:`~repro.pipeline.stages.SerialLane`.  Every protocol-observable event
(chain transaction, dispute move, finalization) happens in the same order
the synchronous drain produces, so the two drains are byte-identical — the
differential pin in ``tests/test_pipeline_equivalence.py``.

Throughput/latency statistics are collected per request and aggregated in
:meth:`TAOService.stats`.

:class:`ServiceCore` is the front-end contract this module's request/verdict
types travel through: both :class:`TAOService` (one queue, one coordinator)
and :class:`~repro.cluster.cluster.TAOCluster` (N shards, each a full
``TAOService``) implement it, so examples, benchmarks and the protocol
simulator can drive either interchangeably.  :meth:`TAOService.withdraw_queued`,
:meth:`TAOService.detach_model` and :meth:`TAOService.adopt_model` are the
migration primitives the cluster's failover uses to move a tenant — session,
standing roles, result cache and clone accounting intact — between shards
without minting or forfeiting a single ledger unit.
"""

from __future__ import annotations

import abc
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.calibration.thresholds import ExceedanceReport
from repro.graph.graph import GraphModule
from repro.merkle.cache import HashCache
from repro.merkle.commitments import execution_input_hash, make_execution_commitment
from repro.pipeline import Pipeline, PipelineStats, StageDef
from repro.protocol.coordinator import Coordinator
from repro.protocol.dispute import ActiveDispute, DisputeGame
from repro.protocol.lifecycle import SessionReport, TAOSession
from repro.protocol.roles import Challenger, ProposedResult, Proposer
from repro.tensorlib.device import DEVICE_FLEET, DeviceProfile
from repro.utils.timing import now, thread_now

#: Coordinator task states with no further protocol step pending — a failed
#: drain adopts these as the request's final status during unwind.
TERMINAL_TASK_STATUSES = frozenset(
    {"finalized", "proposer_slashed", "challenger_slashed"})


@dataclass
class CachedVerdict:
    """Proposer trace + challenger verdict memoized for one input hash."""

    result: ProposedResult
    looks_honest: bool
    reports: List[ExceedanceReport]


@dataclass
class ServiceRequest:
    """One submitted request and everything that happened to it."""

    request_id: int
    model_name: str
    inputs: Dict[str, np.ndarray]
    proposer: Optional[Proposer] = None  # None -> the model's default honest proposer
    #: Per-request challenger override: verifies (custom-proposer path) and
    #: fights any dispute for this request instead of the model's standing
    #: challenger / a fresh clone.  The protocol simulator injects faulty
    #: challengers here; None keeps the default machinery.
    challenger: Optional[Challenger] = None
    force_challenge: bool = False
    status: str = "queued"
    report: Optional[SessionReport] = None
    #: Execution error for rejected requests (malformed payloads never reach
    #: the coordinator; the rest of the batch is unaffected).
    error: Optional[str] = None
    cache_hit: bool = False
    batched: bool = False
    submitted_s: float = 0.0
    completed_s: float = 0.0

    @property
    def latency_s(self) -> float:
        return max(self.completed_s - self.submitted_s, 0.0)


@dataclass
class ModelEntry:
    """Per-tenant state: the reused session and its standing role objects."""

    name: str
    session: TAOSession
    proposer: Proposer
    challenger: Challenger
    user: object
    #: Content-addressed verdict memo, LRU-bounded by TAOService.result_cache_size
    #: (each entry pins a full recorded trace, so it must not grow unbounded).
    result_cache: "OrderedDict[bytes, CachedVerdict]" = field(default_factory=OrderedDict)
    challenger_clones: int = 0


@dataclass
class ServiceStats:
    """Aggregate service accounting."""

    requests_submitted: int = 0
    requests_completed: int = 0
    cache_hits: int = 0
    batched_requests: int = 0
    disputes_opened: int = 0
    dispute_rounds: int = 0
    processing_time_s: float = 0.0
    #: Thread-CPU seconds spent inside drain stages — the service's own
    #: demand (the sequential-equivalent drain cost), measured independently
    #: of host core count and GIL interleaving.
    busy_cpu_s: float = 0.0
    #: Modeled bottleneck time of the drains: for a pipelined drain the
    #: slowest stage group (chain-lane stages sum, independent stages don't);
    #: for a synchronous drain identical to ``busy_cpu_s``.  The pipeline
    #: throughput benchmark gates ``busy_cpu_s / pipeline_critical_s``.
    #: Sums across *sequential* drains of one service; across concurrent
    #: shards the cluster overrides the aggregate with the max over shards.
    pipeline_critical_s: float = 0.0
    #: Drains that actually overlapped stages (>= 2 cycles on the pipeline).
    pipelined_drains: int = 0
    #: Per-stage busy breakdown (hash / execute / settle / dispute).
    stage_busy_s: Dict[str, float] = field(default_factory=dict)
    latencies_s: List[float] = field(default_factory=list)
    status_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        if self.processing_time_s <= 0:
            return 0.0
        return self.requests_completed / self.processing_time_s

    @property
    def mean_latency_s(self) -> float:
        if not self.latencies_s:
            return 0.0
        return float(sum(self.latencies_s) / len(self.latencies_s))

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests_submitted": self.requests_submitted,
            "requests_completed": self.requests_completed,
            "cache_hits": self.cache_hits,
            "batched_requests": self.batched_requests,
            "disputes_opened": self.disputes_opened,
            "dispute_rounds": self.dispute_rounds,
            "processing_time_s": self.processing_time_s,
            "busy_cpu_s": self.busy_cpu_s,
            "pipeline_critical_s": self.pipeline_critical_s,
            "pipelined_drains": self.pipelined_drains,
            "stage_busy_s": dict(self.stage_busy_s),
            "throughput_rps": self.throughput_rps,
            "mean_latency_s": self.mean_latency_s,
            "status_counts": dict(self.status_counts),
        }

    @classmethod
    def aggregate(cls, parts: Iterable["ServiceStats"]) -> "ServiceStats":
        """Fleet-wide roll-up of per-shard statistics (sums and concatenation)."""
        total = cls()
        for part in parts:
            total.requests_submitted += part.requests_submitted
            total.requests_completed += part.requests_completed
            total.cache_hits += part.cache_hits
            total.batched_requests += part.batched_requests
            total.disputes_opened += part.disputes_opened
            total.dispute_rounds += part.dispute_rounds
            total.processing_time_s += part.processing_time_s
            total.busy_cpu_s += part.busy_cpu_s
            total.pipeline_critical_s += part.pipeline_critical_s
            total.pipelined_drains += part.pipelined_drains
            for stage, seconds in part.stage_busy_s.items():
                total.stage_busy_s[stage] = \
                    total.stage_busy_s.get(stage, 0.0) + seconds
            total.latencies_s.extend(part.latencies_s)
            for status, count in part.status_counts.items():
                total.status_counts[status] = \
                    total.status_counts.get(status, 0) + count
        return total


@dataclass
class _CycleState:
    """Everything one processing cycle carries between pipeline stages.

    A cycle is the unit flowing through the drain: hashed, executed, settled
    and disputed as a whole.  All mutable per-cycle state lives here (never
    on the service), so concurrent cycles in different stages share nothing
    but the explicitly synchronized resources (result cache on the execute
    worker, the chain on the serial chain lane).
    """

    index: int
    batch: List[ServiceRequest]
    #: Default-path requests grouped per model in first-seen order (the
    #: grouping fixes the chain submission order, so it is computed once in
    #: the hash stage and replayed identically by settle).
    default_path: Dict[str, List[ServiceRequest]] = field(default_factory=dict)
    custom_path: List[ServiceRequest] = field(default_factory=list)
    #: request_id -> execution input hash (cache key == commitment H(x)).
    input_hashes: Dict[int, bytes] = field(default_factory=dict)
    #: request_id -> memoized/fresh verdict, filled by the execute stage.
    verdicts: Dict[int, CachedVerdict] = field(default_factory=dict)
    #: request_id -> (result, looks_honest, reports) for custom proposers.
    custom_results: Dict[int, Tuple[ProposedResult, bool, List[ExceedanceReport]]] = \
        field(default_factory=dict)
    #: Disputes opened by the settle stage, multiplexed by the dispute stage.
    actives: List[Tuple[ServiceRequest, DisputeGame, ActiveDispute]] = \
        field(default_factory=list)
    #: Set by the dispute stage once the cycle's requests are fully counted
    #: into the service statistics; a failed drain folds the terminal
    #: statuses of unclosed cycles into the histogram during unwind.
    closed: bool = False


class ServiceCore(abc.ABC):
    """The serving front-end contract shared by one service and a cluster.

    Implementations accept the same request shapes, hand back the same
    :class:`ServiceRequest`/:class:`~repro.protocol.lifecycle.SessionReport`
    objects and account through :class:`ServiceStats`, so a caller written
    against this interface (examples, benchmarks, the protocol simulator's
    runner) is oblivious to whether one queue or a sharded fleet serves it.
    """

    @abc.abstractmethod
    def register_model(self, graph_module: GraphModule,
                       calibration_inputs: Optional[Iterable[Dict[str, np.ndarray]]] = None,
                       threshold_table=None, **session_kwargs) -> TAOSession:
        """Register one tenant model; returns its (home) session."""

    @abc.abstractmethod
    def model(self, name: str) -> "ModelEntry":
        """The tenant entry currently serving ``name``."""

    @abc.abstractmethod
    def submit(self, model_name: str, inputs: Mapping[str, np.ndarray],
               proposer: Optional[Proposer] = None, force_challenge: bool = False,
               challenger: Optional[Challenger] = None) -> int:
        """Enqueue one request; returns its request id."""

    @abc.abstractmethod
    def request(self, request_id: int) -> ServiceRequest:
        """The (terminal or in-flight) record for one submitted request."""

    @abc.abstractmethod
    def process(self, max_requests: Optional[int] = None) -> List[ServiceRequest]:
        """Drain (up to ``max_requests`` of) the queue to terminal statuses."""

    @abc.abstractmethod
    def stats(self) -> ServiceStats:
        """Aggregate accounting for everything processed so far."""

    def submit_many(self, model_name: str,
                    inputs_list: Iterable[Mapping[str, np.ndarray]]) -> List[int]:
        return [self.submit(model_name, inputs) for inputs in inputs_list]

    def queue_ages(self, at_s: Optional[float] = None) -> List[float]:
        """Ages (seconds) of every queued request, oldest first.

        The elastic tier's backlog-staleness signal (queue-age SLO burn).
        Front ends with a queue override this; the default is an empty
        backlog so SLO accounting degrades gracefully on custom cores.
        """
        return []

    def queued_model_names(self) -> List[str]:
        """Distinct tenants with queued work — the autoscaler's routing
        grain (scaling past one worker per queued tenant cannot help)."""
        return []

    def close(self) -> None:
        """Release any long-lived resources (executors, worker processes).

        The plain in-process service holds none, so the default is a no-op;
        front ends owning pools override it.  ``close`` is idempotent, and
        every front end works as a context manager::

            with TAOCluster(num_shards=4) as cluster:
                ...
        """

    def __enter__(self) -> "ServiceCore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class TAOService(ServiceCore):
    """Multi-tenant, batching front end over the TAO protocol stack."""

    def __init__(
        self,
        coordinator: Optional[Coordinator] = None,
        devices: Sequence[DeviceProfile] = DEVICE_FLEET,
        max_batch: int = 32,
        enable_batching: bool = True,
        enable_result_cache: bool = True,
        result_cache_size: int = 256,
        alpha: float = 3.0,
        n_way: int = 2,
        committee_size: int = 3,
        leaf_path: str = "routed",
        hash_cache: Optional[HashCache] = None,
        enable_pipeline: bool = True,
        cycle_capacity: Optional[int] = None,
        pipeline_queue_depth: int = 2,
    ) -> None:
        self.coordinator = coordinator or Coordinator()
        self.devices = tuple(devices)
        self.max_batch = int(max_batch)
        self.enable_batching = bool(enable_batching)
        self.enable_result_cache = bool(enable_result_cache)
        self.result_cache_size = int(result_cache_size)
        self.alpha = float(alpha)
        self.n_way = int(n_way)
        self.committee_size = int(committee_size)
        self.leaf_path = leaf_path
        # An externally shared cache lets many short-lived services over the
        # same committed weights (e.g. simulator scenarios) reuse digests.
        self.hash_cache = hash_cache or HashCache()
        #: Overlap cycles on the stage pipeline when a drain spans more than
        #: one (:meth:`drain_reference` always runs the synchronous path).
        self.enable_pipeline = bool(enable_pipeline)
        #: Optional cap on requests per cycle, clamped to the protocol bound
        #: (:meth:`_cycle_capacity`).  Smaller cycles mean finer pipelining
        #: granularity — more cycles in flight for the same drain.
        self.cycle_capacity = None if cycle_capacity is None else int(cycle_capacity)
        self.pipeline_queue_depth = int(pipeline_queue_depth)
        #: Stage/queue accounting of the most recent pipelined drain.
        self.last_pipeline_stats: Optional[PipelineStats] = None

        self._models: Dict[str, ModelEntry] = {}
        self._queue: Deque[int] = deque()
        self._requests: Dict[int, ServiceRequest] = {}
        self.stats_record = ServiceStats()

    # ------------------------------------------------------------------
    # Tenant management
    # ------------------------------------------------------------------

    def register_model(
        self,
        graph_module: GraphModule,
        calibration_inputs: Optional[Iterable[Dict[str, np.ndarray]]] = None,
        threshold_table=None,
        proposer_device: Optional[DeviceProfile] = None,
        challenger_device: Optional[DeviceProfile] = None,
        fund_accounts: bool = True,
        **session_kwargs,
    ) -> TAOSession:
        """Register one model: calibrate/commit once, build standing roles.

        ``fund_accounts=False`` builds the standing roles without minting
        their initial balances — the re-registration leg of a process-fleet
        failover, where the tenant's accounts already exist on the shared
        settlement chain and re-homing must not create money.
        """
        name = graph_module.name
        if name in self._models:
            raise ValueError(f"model {name!r} is already registered with this service")
        session = TAOSession(
            graph_module,
            calibration_inputs=calibration_inputs,
            threshold_table=threshold_table,
            devices=self.devices,
            coordinator=self.coordinator,
            alpha=self.alpha,
            n_way=self.n_way,
            committee_size=self.committee_size,
            leaf_path=self.leaf_path,
            hash_cache=self.hash_cache,
            **session_kwargs,
        )
        session.setup(owner=f"{name}-owner", fund_owner=fund_accounts)
        entry = ModelEntry(
            name=name,
            session=session,
            proposer=session.make_honest_proposer(f"{name}-proposer", proposer_device,
                                                  fund=fund_accounts),
            challenger=session.make_challenger(f"{name}-challenger", challenger_device,
                                               fund=fund_accounts),
            user=session.make_user(f"{name}-user", fund=fund_accounts),
        )
        self._models[name] = entry
        return session

    def model(self, name: str) -> ModelEntry:
        try:
            return self._models[name]
        except KeyError:
            raise KeyError(f"model {name!r} is not registered with this service") from None

    @property
    def model_names(self) -> List[str]:
        return sorted(self._models)

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------

    def submit(
        self,
        model_name: str,
        inputs: Mapping[str, np.ndarray],
        proposer: Optional[Proposer] = None,
        force_challenge: bool = False,
        challenger: Optional[Challenger] = None,
    ) -> int:
        """Enqueue one request; returns its request id."""
        self.model(model_name)  # fail fast on unknown tenants
        request = ServiceRequest(
            request_id=len(self._requests),
            model_name=model_name,
            inputs=dict(inputs),
            proposer=proposer,
            challenger=challenger,
            force_challenge=force_challenge,
            submitted_s=now(),
        )
        self._requests[request.request_id] = request
        self._queue.append(request.request_id)
        self.stats_record.requests_submitted += 1
        return request.request_id

    def request(self, request_id: int) -> ServiceRequest:
        return self._requests[request_id]

    @property
    def pending_count(self) -> int:
        return len(self._queue)

    def queue_ages(self, at_s: Optional[float] = None) -> List[float]:
        """Ages (seconds) of every queued request, oldest first."""
        reference = now() if at_s is None else float(at_s)
        ages = [max(0.0, reference - self._requests[request_id].submitted_s)
                for request_id in self._queue]
        return sorted(ages, reverse=True)

    def queued_model_names(self) -> List[str]:
        """Distinct tenants with queued work."""
        return sorted({self._requests[request_id].model_name
                       for request_id in self._queue})

    def withdraw_queued(self, model_name: str) -> List[ServiceRequest]:
        """Pull this model's not-yet-processed requests out of the queue.

        The failover path re-dispatches in-flight requests to a fallback
        shard: withdrawn requests are marked terminal here (``withdrawn``)
        and their payloads/actors are resubmitted elsewhere by the caller.
        Requests already processed (terminal) are untouched.
        """
        withdrawn: List[ServiceRequest] = []
        keep: Deque[int] = deque()
        while self._queue:
            request_id = self._queue.popleft()
            request = self._requests[request_id]
            if request.model_name == model_name:
                request.status = "withdrawn"
                withdrawn.append(request)
            else:
                keep.append(request_id)
        self._queue = keep
        return withdrawn

    # ------------------------------------------------------------------
    # Tenant migration (cluster failover / ring resize)
    # ------------------------------------------------------------------

    def detach_model(self, name: str) -> ModelEntry:
        """Remove and return a tenant entry so another service can adopt it.

        Queued requests must be withdrawn first (:meth:`withdraw_queued`);
        detaching with work still queued would strand those requests.
        """
        entry = self.model(name)
        if any(self._requests[rid].model_name == name for rid in self._queue):
            raise RuntimeError(
                f"model {name!r} still has queued requests; withdraw them first"
            )
        del self._models[name]
        return entry

    def adopt_model(self, entry: ModelEntry) -> None:
        """Adopt a tenant entry migrated from another service.

        The entry arrives whole — session, standing roles, result cache and
        challenger-clone accounting — so no ledger account is re-funded: the
        tenant's accounts simply continue on the shared settlement chain.
        The committed model is registered with this service's coordinator if
        it has never seen it (a gas-metered transaction, no balance
        movement), and the session is re-pointed so future dispute games run
        against this coordinator.
        """
        if entry.name in self._models:
            raise ValueError(f"model {entry.name!r} is already registered here")
        if entry.name not in self.coordinator.models:
            self.coordinator.register_model(entry.session.model_commitment,
                                            owner=f"{entry.name}-owner")
        entry.session.coordinator = self.coordinator
        self._models[entry.name] = entry
        # The entry arrives with the *source* service's cache bound; enforce
        # this service's bound immediately rather than on the next insert.
        self._trim_result_cache(entry)

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------

    def process(self, max_requests: Optional[int] = None,
                pipelined: Optional[bool] = None) -> List[ServiceRequest]:
        """Drain (up to ``max_requests`` of) the queue to terminal statuses.

        The drain proceeds in bounded cycles: every coordinator transaction
        advances chain time one block, and a cycle's disputes must open while
        every task's challenge window is still live, so each cycle takes at
        most :meth:`_cycle_capacity` requests through submit -> verify ->
        dispute -> finalize before the next cycle starts.

        When more than one cycle is admitted and pipelining is enabled, the
        cycles overlap on the stage pipeline (:meth:`_drain_pipelined`);
        otherwise each cycle's stages run strictly in sequence.  Both paths
        produce byte-identical protocol events.
        """
        use_pipeline = self.enable_pipeline if pipelined is None else bool(pipelined)
        cycles = self._admit_cycles(max_requests)
        if not cycles:
            return []
        started = now()
        processed: List[ServiceRequest] = []
        try:
            if use_pipeline and len(cycles) > 1:
                processed = self._drain_pipelined(cycles)
            else:
                for cycle in cycles:
                    processed.extend(self._run_cycle(cycle))
        except BaseException:
            # A stage failure must not strand the admitted-but-untouched
            # requests: every request that never produced a side effect
            # beyond pure compute goes back to the queue head (original
            # order), so a retry drain can still serve it.
            self._requeue_unprocessed(cycles)
            raise
        self.stats_record.processing_time_s += now() - started
        return processed

    def drain_reference(self, max_requests: Optional[int] = None) -> List[ServiceRequest]:
        """The synchronous reference drain: stages strictly in sequence.

        Semantically the seed drain — the pipelined drain is pinned
        byte-identical to it (same per-request verdicts, same chain
        transaction order, same ledger) by the differential test.
        """
        return self.process(max_requests, pipelined=False)

    def _cycle_capacity(self) -> int:
        """Requests per cycle such that no challenge window lapses mid-cycle.

        The first task of a cycle is submitted ~2 transactions (blocks) per
        request before the last dispute of the cycle opens; keeping a cycle
        to a quarter of the window in blocks leaves ample margin.  An
        explicit ``cycle_capacity`` only ever tightens this protocol bound.
        """
        window_blocks = self.coordinator.challenge_window_s / \
            self.coordinator.chain.block_interval_s
        protocol_cap = max(1, int(window_blocks / 4))
        if self.cycle_capacity is not None:
            return max(1, min(protocol_cap, self.cycle_capacity))
        return protocol_cap

    def _admit_cycles(self, max_requests: Optional[int]) -> List[_CycleState]:
        """Admission control: pop the queue into bounded cycle batches."""
        remaining = max_requests
        capacity = self._cycle_capacity()
        cycles: List[_CycleState] = []
        while self._queue and (remaining is None or remaining > 0):
            take = capacity if remaining is None else min(capacity, remaining)
            batch: List[ServiceRequest] = []
            while self._queue and len(batch) < take:
                batch.append(self._requests[self._queue.popleft()])
            if not batch:
                break
            cycles.append(_CycleState(index=len(cycles), batch=batch))
            if remaining is not None:
                remaining -= len(batch)
        return cycles

    def _requeue_unprocessed(self, cycles: List[_CycleState]) -> None:
        """Recover what a failed drain admitted: requeue or mark stranded.

        Requests still ``queued`` with no report have at most been hashed,
        executed and memoized (pure compute over content-addressed caches) —
        they never reached the chain, so they go back to the queue head in
        order and a retry drain serves them exactly once.

        Requests whose settle already ran (report exists) but whose dispute
        stage never closed the cycle cannot be re-run — re-processing would
        double-submit their coordinator tasks.  They are marked ``stranded``
        (with ``error`` describing the chain-side state) instead of being
        left silently ``queued`` forever: the record is queryable, the
        status histogram shows it, and the on-chain task remains PENDING for
        an operator (or the liveness invariant sweep) to find.
        """
        requeue: List[int] = []
        counts = self.stats_record.status_counts
        for cycle in cycles:
            if cycle.closed:
                continue  # dispute stage finished: already counted
            for request in cycle.batch:
                if request.status == "queued" and request.report is None:
                    requeue.append(request.request_id)
                    continue
                if request.status == "queued":
                    # The request settled; what happened next is on the
                    # TaskRecord itself (the failure may have hit partway
                    # through the dispute stage, *after* this task already
                    # finalized or resolved its dispute).
                    task = request.report.task
                    if task.status.value in TERMINAL_TASK_STATUSES:
                        request.status = request.report.final_status
                    else:
                        request.status = "stranded"
                        request.error = (
                            "drain failed before this request's dispute/"
                            f"finalize step; task {task.task_id} left "
                            f"{task.status.value!r} on chain"
                        )
                # Terminal-but-uncounted (stranded here, or rejected in a
                # cycle whose dispute stage never ran): fold the status into
                # the histogram so monitoring sees it — but not into
                # requests_completed, which counts only drained requests.
                counts[request.status] = counts.get(request.status, 0) + 1
        self._queue.extendleft(reversed(requeue))

    def _stage_table(self) -> Tuple[Tuple[str, object, Optional[str]], ...]:
        """The drain's stages in order: (name, callable, serial lane)."""
        return (
            ("hash", self._stage_hash, None),
            ("execute", self._stage_execute, None),
            # Settle and dispute both append to the settlement chain, whose
            # transaction order is protocol-observable: they share one
            # serial lane so settle(N+1) can never overtake dispute(N).
            ("settle", self._stage_settle, "chain"),
            ("dispute", self._stage_dispute, "chain"),
        )

    def _run_cycle(self, cycle: _CycleState) -> List[ServiceRequest]:
        """Reference composition: the four stages, strictly in sequence."""
        stats = self.stats_record
        for name, stage_fn, _lane in self._stage_table():
            cpu_start = thread_now()
            stage_fn(cycle)
            elapsed = thread_now() - cpu_start
            stats.busy_cpu_s += elapsed
            stats.pipeline_critical_s += elapsed  # serial: everything is critical
            stats.stage_busy_s[name] = stats.stage_busy_s.get(name, 0.0) + elapsed
        return cycle.batch

    def _drain_pipelined(self, cycles: List[_CycleState]) -> List[ServiceRequest]:
        """Overlap the admitted cycles on the stage pipeline.

        Hash and execute are pure compute (HashCache is thread-safe, the
        result cache is confined to the single execute worker), so they run
        concurrently with the chain lane, where settle and dispute replay
        every protocol event in exactly the reference order.
        """
        pipeline = Pipeline(
            [StageDef(name, stage_fn, lane=lane)
             for name, stage_fn, lane in self._stage_table()],
            queue_depth=self.pipeline_queue_depth,
        )
        try:
            batches = pipeline.run(cycles)
        finally:
            # Fold the run's accounting in even when a stage failed and
            # run() re-raises (its stats are complete by then): the CPU the
            # completed stages burned is real demand, and the cluster's
            # shard busy clock reads busy_cpu_s deltas around process().
            stats = self.stats_record
            run_stats = pipeline.stats
            self.last_pipeline_stats = run_stats
            stats.busy_cpu_s += run_stats.busy_total_s
            stats.pipeline_critical_s += run_stats.critical_path_s
            stats.pipelined_drains += 1
            for stage in run_stats.stages:
                stats.stage_busy_s[stage.name] = \
                    stats.stage_busy_s.get(stage.name, 0.0) + stage.busy_cpu_s
        processed: List[ServiceRequest] = []
        for batch in batches:
            processed.extend(batch)
        return processed

    # -- pipeline stages ---------------------------------------------------

    def _stage_hash(self, cycle: _CycleState) -> _CycleState:
        """Stage 1 — hash/commit: route requests, digest default payloads.

        Pure compute over the (thread-safe, content-addressed) hash cache:
        the commitment's H(x) doubles as the result-cache key, so the two
        can never diverge.  Unhashable payloads are rejected here, before
        anything touches the cache or the chain.
        """
        for request in cycle.batch:
            if request.proposer is None:
                cycle.default_path.setdefault(request.model_name, []).append(request)
            else:
                cycle.custom_path.append(request)
        for requests in cycle.default_path.values():
            for request in requests:
                try:
                    key = execution_input_hash(request.inputs, self.hash_cache)
                except Exception as exc:
                    self._reject(request, f"unhashable payload: {exc}")
                    continue
                cycle.input_hashes[request.request_id] = key
        return cycle

    def _stage_execute(self, cycle: _CycleState) -> _CycleState:
        """Stage 2 — execute: result-cache lookups, batched runs, verdicts.

        The only stage that touches the per-model result caches (lookups,
        inserts and LRU eviction), so cache state advances in exact cycle
        order even while other stages overlap.
        """
        for model_name, requests in cycle.default_path.items():
            entry = self.model(model_name)
            misses: List[ServiceRequest] = []
            pending: Dict[bytes, List[ServiceRequest]] = {}
            for request in requests:
                if request.status == "rejected":  # unhashable payload
                    continue
                key = cycle.input_hashes[request.request_id]
                if self.enable_result_cache:
                    cached = entry.result_cache.get(key)
                    if cached is not None:
                        entry.result_cache.move_to_end(key)
                        # Content-addressed hit from an earlier cycle.
                        cycle.verdicts[request.request_id] = cached
                        request.cache_hit = True
                        self.stats_record.cache_hits += 1
                        continue
                    if key in pending:
                        # Duplicate payload within this cycle: executed once.
                        pending[key].append(request)
                        request.cache_hit = True
                        self.stats_record.cache_hits += 1
                        continue
                    pending[key] = []
                misses.append(request)

            for chunk_start in range(0, len(misses), self.max_batch):
                chunk = misses[chunk_start:chunk_start + self.max_batch]
                fresh = self._execute_default(entry, chunk)
                for request, verdict in zip(chunk, fresh):
                    key = cycle.input_hashes[request.request_id]
                    if verdict is None:
                        # Rejected; duplicates of the same payload fail alike.
                        for waiter in pending.get(key, ()):
                            self._reject(waiter, request.error)
                        continue
                    cycle.verdicts[request.request_id] = verdict
                    if self.enable_result_cache:
                        self._cache_store(entry, key, verdict)
                        for waiter in pending.get(key, ()):
                            cycle.verdicts[waiter.request_id] = verdict

        for request in cycle.custom_path:
            entry = self.model(request.model_name)
            try:
                result = request.proposer.execute(
                    entry.session.graph_module,
                    entry.session.model_commitment, request.inputs)
            except Exception as exc:
                self._reject(request, str(exc))
                continue
            looks_honest, reports = (request.challenger or entry.challenger) \
                .verify_result(entry.session.graph_module, result)
            cycle.custom_results[request.request_id] = (result, looks_honest, reports)
        return cycle

    def _stage_settle(self, cycle: _CycleState) -> _CycleState:
        """Stage 3 — settle: chain submission + dispute opening (chain lane).

        Submits every request as its own coordinator task — default-path
        groups first, then custom proposers, matching the reference order
        exactly — then opens every dispute while all of the cycle's
        challenge windows are still live (chain time moves with every
        transaction, so disputes must open before windows may lapse).
        """
        for model_name, requests in cycle.default_path.items():
            entry = self.model(model_name)
            for request in requests:
                if request.status == "rejected":
                    continue
                verdict = cycle.verdicts[request.request_id]
                task = self.coordinator.submit_result(
                    model_name, entry.user.name, entry.proposer.name,
                    verdict.result.commitment, fee=entry.user.fee_per_request,
                )
                request.report = SessionReport(
                    task=task,
                    result=verdict.result,
                    challenged=False,
                    finalized_optimistically=verdict.looks_honest
                    and not request.force_challenge,
                    verification_reports=list(verdict.reports),
                )

        for request in cycle.custom_path:
            if request.status == "rejected":  # execution failed in stage 2
                continue
            entry = self.model(request.model_name)
            result, looks_honest, reports = cycle.custom_results[request.request_id]
            task = self.coordinator.submit_result(
                request.model_name, entry.user.name, request.proposer.name,
                result.commitment, fee=entry.user.fee_per_request,
            )
            request.report = SessionReport(
                task=task,
                result=result,
                challenged=False,
                finalized_optimistically=looks_honest and not request.force_challenge,
                verification_reports=reports,
            )

        for request in cycle.batch:
            report = request.report
            if report is None:  # rejected before reaching the coordinator
                continue
            if request.force_challenge or not report.finalized_optimistically:
                entry = self.model(request.model_name)
                game = entry.session.make_dispute_game()
                challenger = request.challenger or self._challenger_clone(entry)
                proposer = request.proposer or entry.proposer
                active = game.open(report.task, proposer, challenger, report.result)
                cycle.actives.append((request, game, active))
                report.challenged = True
                report.finalized_optimistically = False
                self.stats_record.disputes_opened += 1
        return cycle

    def _stage_dispute(self, cycle: _CycleState) -> List[ServiceRequest]:
        """Stage 4 — dispute: multiplex games, finalize, close the cycle.

        Runs on the chain lane directly after the cycle's settle stage, so
        dispute rounds, the window advance and finalizations land on the
        chain in exactly the reference order.
        """
        running = list(cycle.actives)
        while running:
            still_running = []
            for item in running:
                request, game, active = item
                rounds_before = len(active.per_round)
                if game.step_round(active):
                    still_running.append(item)
                # Count rounds actually played (a terminal no-op iteration,
                # or a dispute settled at open by an input-binding fraud
                # proof, plays none).
                self.stats_record.dispute_rounds += \
                    len(active.per_round) - rounds_before
            running = still_running
        for request, game, active in cycle.actives:
            request.report.dispute = game.conclude(active)

        # Finalize every unchallenged task after one window advance.
        window = self.coordinator.challenge_window_s
        if any(r.report is not None and not r.report.challenged
               for r in cycle.batch):
            self.coordinator.chain.advance_time(window + 1.0)
        for request in cycle.batch:
            report = request.report
            if report is not None and not report.challenged:
                proposer = request.proposer or self.model(request.model_name).proposer
                self.coordinator.try_finalize(report.task.task_id, caller=proposer.name)
                report.finalized_optimistically = True

        completed = now()
        for request in cycle.batch:
            if request.report is not None:
                request.status = request.report.final_status
            request.completed_s = completed
            self.stats_record.requests_completed += 1
            self.stats_record.latencies_s.append(request.latency_s)
            counts = self.stats_record.status_counts
            counts[request.status] = counts.get(request.status, 0) + 1
        cycle.closed = True
        return cycle.batch

    # -- execution internals ---------------------------------------------

    @staticmethod
    def _reject(request: ServiceRequest, error: Optional[str]) -> None:
        """Mark a request as rejected (terminal) without touching the chain."""
        request.status = "rejected"
        request.error = error or "execution failed"

    def _cache_store(self, entry: ModelEntry, key: bytes,
                     verdict: CachedVerdict) -> None:
        """The single insert path of the result cache: store + LRU-evict.

        Every insert runs eviction (each entry pins a full recorded trace,
        so the bound must hold after *every* insert, on every path) — the
        invariant ``len(result_cache) <= result_cache_size`` is pinned by a
        mixed-traffic regression test.
        """
        entry.result_cache[key] = verdict
        entry.result_cache.move_to_end(key)
        self._trim_result_cache(entry)

    def _trim_result_cache(self, entry: ModelEntry) -> None:
        while len(entry.result_cache) > self.result_cache_size:
            entry.result_cache.popitem(last=False)

    def _execute_default(self, entry: ModelEntry,
                         requests: List[ServiceRequest]) -> List[Optional[CachedVerdict]]:
        """Honest-proposer execution + challenger verification, batched.

        Returns one verdict per request; a request whose execution raises
        (malformed payload) is rejected in place and yields ``None`` — the
        rest of the chunk is unaffected.
        """
        graph_module = entry.session.graph_module
        inputs_list = [request.inputs for request in requests]

        pairs: Optional[List] = None
        batched = False
        if self.enable_batching and len(requests) > 1:
            try:
                proposer_traces = entry.proposer.interpreter.engine.run_batch(
                    graph_module, inputs_list, record=True, count_flops=True,
                )
                batched = entry.proposer.interpreter.engine.last_batch_stacked
                challenger_traces = entry.challenger.interpreter.engine.run_batch(
                    graph_module, inputs_list, record=True, count_flops=True,
                )
                pairs = list(zip(proposer_traces, challenger_traces))
            except Exception:
                pairs = None  # isolate the failure per request below
                batched = False
        if pairs is None:
            pairs = []
            for request, inputs in zip(requests, inputs_list):
                try:
                    pairs.append((
                        entry.proposer.interpreter.run(graph_module, inputs,
                                                       record=True, count_flops=True),
                        entry.challenger.interpreter.run(graph_module, inputs,
                                                         record=True, count_flops=True),
                    ))
                except Exception as exc:
                    self._reject(request, str(exc))
                    pairs.append(None)

        verdicts: List[Optional[CachedVerdict]] = []
        for request, pair in zip(requests, pairs):
            if pair is None:
                verdicts.append(None)
                continue
            trace, check = pair
            request.batched = batched
            if batched:
                self.stats_record.batched_requests += 1
            commitment = make_execution_commitment(
                entry.session.model_commitment, dict(request.inputs),
                list(trace.outputs),
                meta={
                    "device": entry.proposer.device.name,
                    "dtype": "float32",
                    "proposer": entry.proposer.name,
                    "kernel_stack": entry.proposer.device.signature(),
                },
                cache=self.hash_cache,
            )
            result = ProposedResult(
                model_name=graph_module.name,
                inputs=dict(request.inputs),
                outputs=trace.outputs,
                output_names=trace.output_names,
                trace_values=dict(trace.values),
                commitment=commitment,
                forward_flops=trace.flops.total,
                wall_time_s=trace.wall_time_s,
                device_name=entry.proposer.device.name,
            )
            looks_honest, reports = entry.challenger.verify_with_trace(result, check)
            verdicts.append(CachedVerdict(result=result, looks_honest=looks_honest,
                                          reports=reports))
        return verdicts

    def _challenger_clone(self, entry: ModelEntry) -> Challenger:
        """A fresh challenger for one dispute (isolated per-dispute accounting).

        Multiplexed disputes step concurrently; a shared challenger object
        would mix the FLOP/Merkle accounting of one game into another's
        statistics.  Clones share the device, thresholds and hash cache of
        the model's standing challenger, so selection behaviour is identical.
        """
        entry.challenger_clones += 1
        name = f"{entry.challenger.name}-{entry.challenger_clones}"
        self.coordinator.chain.fund_once(name, entry.session.initial_balance)
        return Challenger(name, entry.challenger.device, entry.challenger.thresholds,
                          hash_cache=self.hash_cache,
                          committee_envelope=entry.challenger.committee_envelope)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> ServiceStats:
        return self.stats_record
