"""Unit tests for the executable protocol state machine and its explorer."""

import pytest

from repro.spec import (
    DEFAULT_PROFILES,
    SpecEvent,
    SpecScope,
    SpecViolation,
    TRANSITIONS,
    account_deltas,
    count_traces,
    explore,
    local_traces,
    partition_children,
    settlement,
    transition,
    validate_journal,
)
from repro.spec.machine import (
    ACCOUNTS,
    CHALLENGER_BOND,
    CHALLENGER_REWARD,
    DISPUTE_STATES,
    EVENTS,
    FEE,
    PROPOSER_BOND,
    STATES,
    TERMINAL_STATES,
)


# ----------------------------------------------------------------------
# Transition relation
# ----------------------------------------------------------------------

def test_relation_is_closed_over_declared_states_and_events():
    for (state, event), targets in TRANSITIONS.items():
        assert state in STATES
        assert event in EVENTS
        assert state not in TERMINAL_STATES
        for target in targets:
            assert target in STATES


def test_terminal_states_admit_no_events():
    for state in TERMINAL_STATES:
        for event in EVENTS:
            assert (state, event) not in TRANSITIONS


def test_transition_follows_payload():
    assert transition("queued", SpecEvent("submit")) == "pending"
    assert transition("pending", SpecEvent("window_lapse")) == "pending"
    assert transition("pending", SpecEvent("finalize")) == "finalized"
    assert transition("pending", SpecEvent("challenge")) == "dispute_partition"
    assert transition("pending", SpecEvent("challenge", at_leaf=True)) == \
        "dispute_adjudication"
    assert transition("dispute_selection", SpecEvent("select", child=0)) == \
        "dispute_partition"
    assert transition("dispute_selection",
                      SpecEvent("select", at_leaf=True, child=1)) == \
        "dispute_adjudication"
    assert transition("dispute_adjudication",
                      SpecEvent("adjudicate", cheated=True)) == \
        "proposer_slashed"
    assert transition("dispute_adjudication",
                      SpecEvent("adjudicate", cheated=False)) == \
        "challenger_slashed"


def test_inadmissible_events_raise():
    with pytest.raises(SpecViolation):
        transition("queued", SpecEvent("finalize"))
    with pytest.raises(SpecViolation):
        transition("finalized", SpecEvent("challenge"))
    with pytest.raises(SpecViolation):
        transition("dispute_partition", SpecEvent("select", child=0))
    with pytest.raises(SpecViolation):
        SpecEvent("bogus")


# ----------------------------------------------------------------------
# Economics: conservation as a theorem
# ----------------------------------------------------------------------

def test_every_state_conserves_value_exactly():
    for state in STATES:
        deltas = account_deltas(state)
        assert set(deltas) == set(ACCOUNTS)
        assert sum(deltas.values()) == 0, state
        assert deltas["escrow"] >= 0, state


def test_dispute_states_escrow_all_bonds():
    for state in DISPUTE_STATES:
        assert account_deltas(state)["escrow"] == \
            FEE + PROPOSER_BOND + CHALLENGER_BOND


def test_slash_splits_the_bond_exactly():
    slashed = settlement("proposer_slashed")
    assert slashed["challenger"] == CHALLENGER_REWARD
    assert slashed["burn"] == PROPOSER_BOND - CHALLENGER_REWARD
    assert slashed["proposer"] == -PROPOSER_BOND
    forfeit = settlement("challenger_slashed")
    assert forfeit["challenger"] == -CHALLENGER_BOND
    assert forfeit["proposer"] == FEE + CHALLENGER_BOND
    with pytest.raises(SpecViolation):
        settlement("pending")


def test_integer_amounts_are_exact_floats():
    for amount in (FEE, PROPOSER_BOND, CHALLENGER_BOND, CHALLENGER_REWARD):
        assert float(amount) == amount
        assert int(float(amount)) == amount


# ----------------------------------------------------------------------
# Partition geometry
# ----------------------------------------------------------------------

def test_partition_children_cover_and_shrink():
    for size in range(2, 12):
        for n_way in (2, 3, 4):
            children = partition_children(0, size, n_way)
            assert children[0][0] == 0 and children[-1][1] == size
            for (a_lo, a_hi), (b_lo, b_hi) in zip(children, children[1:]):
                assert a_hi == b_lo  # contiguous
            for lo, hi in children:
                assert 0 < hi - lo < size  # non-empty, strictly smaller
    with pytest.raises(SpecViolation):
        partition_children(0, 1, 2)


# ----------------------------------------------------------------------
# Journal validation
# ----------------------------------------------------------------------

def _entry(task, state, event, nxt):
    return {"task": task, "state": state, "event": event, "next": nxt}


def test_validate_journal_accepts_a_full_run():
    entries = [
        {"event": "register", "model": "m"},
        _entry(0, "queued", "submit", "pending"),
        _entry(1, "queued", "submit", "pending"),
        _entry(0, "pending", "challenge", "dispute_partition"),
        _entry(1, "pending", "finalize", "finalized"),
        _entry(0, "dispute_partition", "partition", "dispute_selection"),
        _entry(0, "dispute_selection", "select", "dispute_adjudication"),
        _entry(0, "dispute_adjudication", "adjudicate", "proposer_slashed"),
    ]
    summary = validate_journal(entries)
    assert summary.entries_validated == len(entries)
    assert summary.registered_models == ["m"]
    assert summary.final_states == {0: "proposer_slashed", 1: "finalized"}
    assert summary.in_flight_tasks == {}


def test_validate_journal_reports_in_flight_disputes():
    entries = [
        _entry(0, "queued", "submit", "pending"),
        _entry(0, "pending", "challenge", "dispute_partition"),
    ]
    summary = validate_journal(entries)
    assert summary.in_flight_tasks == {0: "dispute_partition"}


def test_validate_journal_rejects_skipped_states_and_bad_edges():
    with pytest.raises(SpecViolation, match="implies"):
        validate_journal([
            _entry(0, "queued", "submit", "pending"),
            _entry(0, "dispute_partition", "partition", "dispute_selection"),
        ])
    with pytest.raises(SpecViolation, match="not\\s+admissible"):
        validate_journal([_entry(0, "queued", "finalize", "finalized")])
    with pytest.raises(SpecViolation, match="cannot reach"):
        validate_journal([_entry(0, "queued", "submit", "finalized")])
    with pytest.raises(SpecViolation, match="missing"):
        validate_journal([{"event": "submit"}])


# ----------------------------------------------------------------------
# Small-scope exhaustive exploration
# ----------------------------------------------------------------------

def test_exhaustive_two_tenant_scope_is_clean():
    result = explore(SpecScope(tenants=2, num_operators=7, n_way=2))
    assert result.ok, result.violations[:5]
    assert result.states_explored > 1000
    assert result.transitions_explored > result.states_explored
    assert result.terminal_global_states > 0


def test_exploration_covers_every_local_transition_edge():
    """Every edge of the relation is exercised somewhere in the scope."""
    scope = SpecScope(tenants=1, num_operators=7, n_way=2)
    seen_edges = set()
    for _pair, events in local_traces(scope):
        state = "queued"
        for event, nxt in events:
            seen_edges.add((state, event.kind))
            state = nxt
    assert seen_edges == set(TRANSITIONS)


def test_trace_count_matches_exploration_of_one_tenant():
    scope = SpecScope(tenants=1, num_operators=7, n_way=2)
    n = count_traces(scope)
    assert n == sum(1 for _ in local_traces(scope))
    assert n >= len(DEFAULT_PROFILES)


def test_explorer_state_budget_is_enforced():
    result = explore(SpecScope(tenants=2), max_states=10)
    assert not result.ok
    assert any("budget" in v for v in result.violations)
