"""Onboarding new device configurations (paper Sec. 7, "Onboarding new configurations").

A new device, kernel stack or library version may shift floating-point
behaviour outside the previously committed empirical thresholds, causing
*benign* disputes: the execution is faithful, but its rounding profile was
never calibrated.  The paper's mitigation is operational: detect the benign
drift, treat it as an onboarding event, and publish updated thresholds for
the new configuration class (a new commitment root, so the update itself is
auditable).

This module implements that workflow:

* :func:`detect_configuration_drift` — run a candidate device against an
  incumbent device on probe inputs and report which operators exceed the
  committed thresholds (i.e. whether faithful executions on the candidate
  would be disputed under the current commitment);
* :func:`onboard_device` — re-calibrate with the candidate device included
  and produce an updated :class:`~repro.calibration.thresholds.ThresholdTable`
  plus a summary of how much each operator's thresholds widened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.calibration.calibrator import CalibrationConfig, CalibrationResult, Calibrator
from repro.calibration.thresholds import ExceedanceReport, ThresholdTable
from repro.graph.graph import GraphModule
from repro.graph.interpreter import Interpreter
from repro.tensorlib.device import DeviceProfile


@dataclass
class DriftReport:
    """Outcome of probing a candidate device against committed thresholds."""

    candidate: str
    incumbent: str
    probes: int
    checked_operators: int
    exceedances: List[ExceedanceReport] = field(default_factory=list)

    @property
    def offending_operators(self) -> List[str]:
        return sorted({report.node_name for report in self.exceedances})

    @property
    def exceedance_fraction(self) -> float:
        if self.checked_operators == 0:
            return 0.0
        return len(self.offending_operators) / self.checked_operators

    @property
    def worst_ratio(self) -> float:
        return max((r.max_ratio for r in self.exceedances), default=0.0)

    @property
    def within_committed_thresholds(self) -> bool:
        return not self.exceedances

    def requires_onboarding(self) -> bool:
        """True when the candidate configuration cannot serve under the current
        commitment: its faithful executions would be disputed.  Whether the
        drift is *benign* is a policy decision (the configuration must be
        declared and calibrated as its own class, per the paper's discussion);
        numerically it is indistinguishable from an undeclared approximation.
        """
        return bool(self.exceedances)


def detect_configuration_drift(
    graph_module: GraphModule,
    thresholds: ThresholdTable,
    candidate_device: DeviceProfile,
    incumbent_device: DeviceProfile,
    probe_inputs: Iterable[Dict[str, np.ndarray]],
) -> DriftReport:
    """Probe a candidate device configuration against the committed thresholds."""
    candidate = Interpreter(candidate_device)
    incumbent = Interpreter(incumbent_device)
    exceedances: List[ExceedanceReport] = []
    probes = 0
    checked: set = set()
    for inputs in probe_inputs:
        probes += 1
        candidate_trace = candidate.run(graph_module, dict(inputs), record=True)
        incumbent_trace = incumbent.run(graph_module, dict(inputs), record=True)
        for name in thresholds.operator_names():
            checked.add(name)
            report = thresholds.check(name, candidate_trace.values[name],
                                      incumbent_trace.values[name])
            if report.exceeded:
                exceedances.append(report)
    return DriftReport(
        candidate=candidate_device.name,
        incumbent=incumbent_device.name,
        probes=probes,
        checked_operators=len(checked),
        exceedances=exceedances,
    )


@dataclass
class OnboardingResult:
    """Updated calibration artifacts after admitting a new device."""

    updated_calibration: CalibrationResult
    updated_thresholds: ThresholdTable
    widened_operators: Dict[str, float]

    @property
    def max_widening(self) -> float:
        return max(self.widened_operators.values(), default=1.0)


def onboard_device(
    graph_module: GraphModule,
    previous_thresholds: ThresholdTable,
    fleet: Sequence[DeviceProfile],
    new_device: DeviceProfile,
    calibration_inputs: Iterable[Dict[str, np.ndarray]],
    alpha: Optional[float] = None,
) -> OnboardingResult:
    """Re-calibrate with ``new_device`` included and build updated thresholds.

    Returns the new calibration, the new threshold table (same safety factor
    as the previous one unless overridden), and the per-operator widening
    factor max(new p100 threshold / old p100 threshold, 1).
    """
    devices = tuple(fleet) + (new_device,)
    calibrator = Calibrator(CalibrationConfig(devices=devices))
    calibration = calibrator.calibrate(graph_module, calibration_inputs)
    effective_alpha = previous_thresholds.alpha if alpha is None else float(alpha)
    updated = ThresholdTable.from_calibration(calibration, alpha=effective_alpha)

    widened: Dict[str, float] = {}
    for name in updated.operator_names():
        if not previous_thresholds.has_operator(name):
            widened[name] = float("inf")
            continue
        old = float(previous_thresholds.abs_threshold(name)[-1])
        new = float(updated.abs_threshold(name)[-1])
        widened[name] = max(new / max(old, 1e-30), 1.0)
    return OnboardingResult(
        updated_calibration=calibration,
        updated_thresholds=updated,
        widened_operators=widened,
    )
