"""Shared test helpers: finite-difference gradient checking for operator VJPs."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.ops.registry import get_op
from repro.tensorlib.device import REFERENCE_DEVICE


def finite_difference_vjp_check(
    op_name: str,
    tensors: Sequence[np.ndarray],
    attrs: Optional[Dict] = None,
    check_inputs: Optional[Sequence[int]] = None,
    epsilon: float = 1e-4,
    rtol: float = 5e-2,
    atol: float = 5e-4,
    seed: int = 0,
) -> None:
    """Compare an operator's VJP against central finite differences.

    The check contracts the Jacobian with a random cotangent: for a random
    ``g`` with the output's shape, ``<vjp_i, e>`` must match
    ``d/d eps <g, f(..., x_i + eps*e, ...)>`` for a random direction ``e``.
    All arithmetic is float64 to keep the finite differences meaningful.
    """
    attrs = attrs or {}
    spec = get_op(op_name)
    assert spec.vjp is not None, f"{op_name} has no registered VJP"
    rng = np.random.default_rng(seed)

    tensors64 = [np.asarray(t, dtype=np.float64) if np.asarray(t).dtype.kind == "f"
                 else np.asarray(t) for t in tensors]
    out = spec.forward(REFERENCE_DEVICE, *tensors64, **attrs)
    cotangent = rng.standard_normal(np.shape(out))

    grads = spec.vjp(REFERENCE_DEVICE, cotangent, out, *tensors64, **attrs)
    indices = check_inputs if check_inputs is not None else range(len(tensors64))

    for index in indices:
        tensor = tensors64[index]
        if np.asarray(tensor).dtype.kind != "f":
            continue
        grad = grads[index]
        assert grad is not None, f"{op_name}: missing gradient for input {index}"
        direction = rng.standard_normal(np.shape(tensor))
        analytic = float(np.sum(np.asarray(grad, dtype=np.float64) * direction))

        def perturbed(scale: float) -> float:
            shifted = list(tensors64)
            shifted[index] = tensor + scale * direction
            result = spec.forward(REFERENCE_DEVICE, *shifted, **attrs)
            return float(np.sum(np.asarray(result, dtype=np.float64) * cotangent))

        numeric = (perturbed(epsilon) - perturbed(-epsilon)) / (2.0 * epsilon)
        scale = max(abs(analytic), abs(numeric), 1.0)
        assert abs(analytic - numeric) <= rtol * scale + atol, (
            f"{op_name}: VJP mismatch on input {index}: "
            f"analytic={analytic:.6g}, numeric={numeric:.6g}"
        )
