"""Soundness tests for per-operator theoretical bound templates.

The core property: for every operator, re-executing the *same operator on the
same inputs* on two different simulated devices must land within the
operator-local envelope tau_theo (this is exactly the leaf-check setting the
paper uses the bounds for).
"""

import numpy as np
import pytest

from repro.bounds.fp_model import BoundMode
from repro.bounds.templates import (
    BoundContext,
    bound_for_operator,
    has_bound_template,
    list_bound_templates,
)
from repro.ops.registry import get_op, list_ops
from repro.tensorlib.device import DEVICE_FLEET, REFERENCE_DEVICE

_RNG = np.random.default_rng(2024)


def _case(name):
    """Random but well-conditioned inputs + attrs for each bounded operator."""
    r = _RNG
    if name in ("add", "sub", "mul", "div", "maximum", "minimum"):
        a = r.standard_normal((16, 16)).astype(np.float32)
        b = (r.standard_normal((16, 16)) + 3.0).astype(np.float32)
        return [a, b], {}
    if name in ("exp", "tanh", "sigmoid", "erf", "sin", "cos", "neg", "abs",
                "relu", "leaky_relu", "gelu", "silu"):
        return [r.standard_normal((16, 16)).astype(np.float32)], {}
    if name in ("sqrt", "rsqrt", "log"):
        return [(np.abs(r.standard_normal((16, 16))) + 0.5).astype(np.float32)], {}
    if name == "pow":
        return [(np.abs(r.standard_normal((8, 8))) + 0.5).astype(np.float32)], {"exponent": 2.0}
    if name == "clip":
        return [r.standard_normal((8, 8)).astype(np.float32)], {"minimum": -0.5, "maximum": 0.5}
    if name == "where":
        cond = r.standard_normal((8, 8)) > 0
        return [cond, r.standard_normal((8, 8)).astype(np.float32),
                r.standard_normal((8, 8)).astype(np.float32)], {}
    if name in ("sum", "mean", "var", "amax", "amin"):
        return [r.standard_normal((8, 256)).astype(np.float32)], {"axis": -1}
    if name in ("matmul", "bmm"):
        shape_a = (2, 24, 96) if name == "bmm" else (24, 96)
        shape_b = (2, 96, 16) if name == "bmm" else (96, 16)
        return [r.standard_normal(shape_a).astype(np.float32),
                r.standard_normal(shape_b).astype(np.float32)], {}
    if name == "linear":
        return [r.standard_normal((8, 96)).astype(np.float32),
                r.standard_normal((32, 96)).astype(np.float32),
                r.standard_normal(32).astype(np.float32)], {}
    if name == "conv2d":
        return [r.standard_normal((1, 8, 10, 10)).astype(np.float32),
                r.standard_normal((4, 8, 3, 3)).astype(np.float32),
                r.standard_normal(4).astype(np.float32)], {"stride": (1, 1), "padding": (1, 1)}
    if name in ("max_pool2d", "avg_pool2d"):
        return [r.standard_normal((1, 4, 8, 8)).astype(np.float32)], \
            {"kernel_size": (2, 2), "stride": (2, 2)}
    if name == "adaptive_avg_pool2d":
        return [r.standard_normal((2, 4, 8, 8)).astype(np.float32)], {"output_size": (1, 1)}
    if name == "upsample_nearest":
        return [r.standard_normal((1, 2, 4, 4)).astype(np.float32)], {"scale_factor": 2}
    if name == "softmax":
        return [r.standard_normal((4, 128)).astype(np.float32) * 3.0], {"axis": -1}
    if name == "layer_norm":
        d = 128
        return [r.standard_normal((4, d)).astype(np.float32),
                np.abs(r.standard_normal(d)).astype(np.float32) + 0.5,
                r.standard_normal(d).astype(np.float32)], {"eps": 1e-5}
    if name == "rms_norm":
        d = 128
        return [r.standard_normal((4, d)).astype(np.float32),
                np.abs(r.standard_normal(d)).astype(np.float32) + 0.5], {"eps": 1e-6}
    if name == "batch_norm":
        c = 8
        return [r.standard_normal((2, c, 6, 6)).astype(np.float32),
                np.abs(r.standard_normal(c)).astype(np.float32) + 0.5,
                r.standard_normal(c).astype(np.float32),
                r.standard_normal(c).astype(np.float32) * 0.1,
                np.abs(r.standard_normal(c)).astype(np.float32) + 0.5], {"eps": 1e-5}
    if name == "group_norm":
        c = 8
        return [r.standard_normal((2, c, 6, 6)).astype(np.float32),
                np.abs(r.standard_normal(c)).astype(np.float32) + 0.5,
                r.standard_normal(c).astype(np.float32)], {"num_groups": 4, "eps": 1e-5}
    return None


ARITHMETIC_OPS = [name for name in list_ops() if _case(name) is not None
                  and get_op(name).introduces_rounding]


def test_every_registered_operator_has_a_bound_or_is_structural():
    for name in list_ops():
        spec = get_op(name)
        if spec.introduces_rounding and name not in ("argmax",):
            assert has_bound_template(name) or name in ARITHMETIC_OPS, (
                f"operator {name} has no bound template"
            )


def test_template_listing_covers_the_paper_operator_families():
    templates = list_bound_templates()
    for name in ("softmax", "layer_norm", "matmul", "conv2d", "gelu", "mean", "batch_norm"):
        assert name in templates


@pytest.mark.parametrize("name", ARITHMETIC_OPS)
@pytest.mark.parametrize("mode", [BoundMode.DETERMINISTIC, BoundMode.PROBABILISTIC])
def test_cross_device_single_operator_divergence_within_bound(name, mode):
    tensors, attrs = _case(name)
    ctx = BoundContext(mode=mode)
    spec = get_op(name)
    outputs = [spec.forward(device, *tensors, **attrs) for device in DEVICE_FLEET]
    reference = spec.forward(REFERENCE_DEVICE, *tensors, **attrs)
    tau = bound_for_operator(ctx, name, reference, tensors, attrs)
    assert tau.shape == np.shape(reference)
    assert (tau >= 0).all()
    for out in outputs:
        diff = np.abs(np.asarray(out, dtype=np.float64) - np.asarray(reference, dtype=np.float64))
        assert (diff <= tau + 1e-12).all(), (
            f"{name} ({mode.value}): observed cross-device error exceeds tau_theo "
            f"(max diff {diff.max():.3e}, max tau {tau.max():.3e})"
        )


@pytest.mark.parametrize("name", ["matmul", "linear", "sum", "mean", "softmax", "layer_norm"])
def test_deterministic_bound_looser_than_probabilistic_for_reductions(name):
    tensors, attrs = _case(name)
    spec = get_op(name)
    out = spec.forward(REFERENCE_DEVICE, *tensors, **attrs)
    det = bound_for_operator(BoundContext(mode=BoundMode.DETERMINISTIC), name, out, tensors, attrs)
    prob = bound_for_operator(BoundContext(mode=BoundMode.PROBABILISTIC), name, out, tensors, attrs)
    assert det.mean() > prob.mean()


def test_structural_operators_have_zero_bound():
    ctx = BoundContext()
    x = np.random.default_rng(0).standard_normal((3, 4)).astype(np.float32)
    for name in ("reshape", "embedding", "dropout", "concat", "identity"):
        out = x.copy()
        tau = bound_for_operator(ctx, name, out, [x], {})
        assert (tau == 0).all()


def test_unknown_operator_falls_back_to_single_rounding():
    ctx = BoundContext()
    out = np.ones((2, 2), dtype=np.float32) * 8.0
    tau = bound_for_operator(ctx, "maximum", out, [out, out], {})
    # maximum has an explicit zero template; "amax" falls back structurally.
    assert tau.shape == (2, 2)
