"""Co-execution of values and theoretical error bounds (paper Sec. 3.1).

The :class:`BoundInterpreter` walks a traced graph exactly like the ordinary
:class:`~repro.graph.interpreter.Interpreter`, but additionally evaluates the
per-operator bound template for every ``call_op`` node, yielding a same-shape
``tau_theo`` envelope per operator.  Bounds are *not* propagated across
operator boundaries: every operator's inputs are treated as exact, matching
the paper's "turn composition into localization" design.

Values are computed in FP32 on the requested device; bound arithmetic runs in
FP64 (the paper does the same), and the numerical error of computing the
bounds themselves is ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.bounds.fp_model import BoundMode, FloatingPointModel, FP32_MODEL
from repro.bounds.templates import BoundContext, bound_for_operator
from repro.graph.graph import GraphModule
from repro.graph.node import Node
from repro.ops.registry import get_op
from repro.tensorlib.device import DeviceProfile, REFERENCE_DEVICE


@dataclass
class BoundedExecution:
    """Result of a bounded run: per-node values and per-operator tau_theo."""

    device_name: str
    mode: BoundMode
    outputs: Tuple[np.ndarray, ...]
    output_names: Tuple[str, ...]
    values: Dict[str, np.ndarray] = field(default_factory=dict)
    bounds: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def output(self) -> np.ndarray:
        if len(self.outputs) != 1:
            raise ValueError(f"graph has {len(self.outputs)} outputs; use .outputs")
        return self.outputs[0]

    def bound(self, node_name: str) -> np.ndarray:
        try:
            return self.bounds[node_name]
        except KeyError:
            raise KeyError(f"no bound recorded for node {node_name!r}") from None

    def mean_bound_by_operator_type(self, graph_module: GraphModule) -> Dict[str, float]:
        """Mean absolute bound per operator type — the Fig. 3 statistic."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for node in graph_module.graph.operators:
            if node.name not in self.bounds:
                continue
            tau = self.bounds[node.name]
            sums[node.target] = sums.get(node.target, 0.0) + float(np.abs(tau).mean())
            counts[node.target] = counts.get(node.target, 0) + 1
        return {name: sums[name] / counts[name] for name in sums}


class BoundInterpreter:
    """Executes a GraphModule while co-computing theoretical error bounds."""

    def __init__(
        self,
        device: DeviceProfile = REFERENCE_DEVICE,
        mode: BoundMode = BoundMode.PROBABILISTIC,
        fp_model: FloatingPointModel = FP32_MODEL,
    ) -> None:
        self.device = device
        self.ctx = BoundContext(fp=fp_model, mode=mode)

    def run(
        self,
        graph_module: GraphModule,
        inputs: Dict[str, np.ndarray],
        record_values: bool = True,
        only_operators: Optional[set] = None,
    ) -> BoundedExecution:
        """Run ``graph_module`` and compute tau_theo for (a subset of) operators.

        ``only_operators`` optionally restricts bound computation to the given
        node names — used at the dispute leaf where only one operator's bound
        is required.
        """
        graph = graph_module.graph
        missing = [n for n in graph_module.input_names if n not in inputs]
        if missing:
            raise ValueError(f"missing graph inputs: {missing}")

        env: Dict[str, np.ndarray] = {}
        bounds: Dict[str, np.ndarray] = {}

        for node in graph.nodes:
            if node.op == "placeholder":
                value = np.asarray(inputs[node.name])
            elif node.op == "get_param":
                value = np.asarray(graph_module.parameters[node.target])
            elif node.op == "constant":
                value = np.asarray(graph.constants[node.target])
            elif node.op == "call_op":
                spec = get_op(node.target)
                args = [self._resolve(arg, env) for arg in node.args]
                value = spec.forward(self.device, *args, **node.kwargs)
                if only_operators is None or node.name in only_operators:
                    bounds[node.name] = bound_for_operator(
                        self.ctx, node.target, value, args, node.kwargs
                    )
            elif node.op == "output":
                continue
            else:  # pragma: no cover - Node validates op kinds
                raise ValueError(f"unknown node op {node.op!r}")
            env[node.name] = value

        output_node = graph.output_node
        output_names = tuple(arg.name for arg in output_node.args if isinstance(arg, Node))
        outputs = tuple(env[name] for name in output_names)
        values = env if record_values else {name: env[name] for name in output_names}
        return BoundedExecution(
            device_name=self.device.name,
            mode=self.ctx.mode,
            outputs=outputs,
            output_names=output_names,
            values=values,
            bounds=bounds,
        )

    def bound_single_operator(
        self,
        graph_module: GraphModule,
        operator_name: str,
        operand_values,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Reference value and tau_theo for one operator on given operands.

        This is the Phase 3 theoretical-bound check primitive: the committed
        operator attributes come from the graph, the operand tensors from the
        agreed dispute state; the returned pair is (y_ref, tau_theo).
        """
        node = graph_module.graph.node(operator_name)
        if not node.is_operator:
            raise ValueError(f"{operator_name!r} is not an operator node")
        spec = get_op(node.target)
        value = spec.forward(self.device, *operand_values, **node.kwargs)
        tau = bound_for_operator(self.ctx, node.target, value, operand_values, node.kwargs)
        return value, tau

    @staticmethod
    def _resolve(arg: Any, env: Dict[str, np.ndarray]) -> Any:
        if isinstance(arg, Node):
            return env[arg.name]
        return arg
