"""Activation operators: ReLU, GELU, SiLU, leaky ReLU.

GELU follows the exact (erf-based) formulation used by BERT/Qwen-style
transformers; SiLU (a.k.a. swish) is ``x * sigmoid(x)`` as used by modern LLM
feed-forward blocks and diffusion UNets.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.ops.registry import OpSpec, register_op
from repro.tensorlib.device import DeviceProfile
from repro.tensorlib.flops import elementwise_flops


def _f32(x) -> np.ndarray:
    return np.asarray(x, dtype=np.float32)


def _relu_forward(device: DeviceProfile, a) -> np.ndarray:
    return np.maximum(_f32(a), np.float32(0.0)).astype(np.float32)


def _relu_vjp(device, grad_out, out, a):
    return (grad_out * (np.asarray(a, dtype=np.float64) > 0.0),)


def _leaky_relu_forward(device: DeviceProfile, a, *, negative_slope: float = 0.01) -> np.ndarray:
    a32 = _f32(a)
    return np.where(a32 > 0, a32, np.float32(negative_slope) * a32).astype(np.float32)


def _leaky_relu_vjp(device, grad_out, out, a, *, negative_slope: float = 0.01):
    a64 = np.asarray(a, dtype=np.float64)
    slope = np.where(a64 > 0.0, 1.0, negative_slope)
    return (grad_out * slope,)


def _gelu_forward(device: DeviceProfile, a) -> np.ndarray:
    a32 = _f32(a)
    cdf = np.float32(0.5) * (np.float32(1.0) + special.erf(a32 / np.float32(np.sqrt(2.0))))
    return (a32 * cdf.astype(np.float32)).astype(np.float32)


def _gelu_vjp(device, grad_out, out, a):
    a64 = np.asarray(a, dtype=np.float64)
    cdf = 0.5 * (1.0 + special.erf(a64 / np.sqrt(2.0)))
    pdf = np.exp(-0.5 * a64 ** 2) / np.sqrt(2.0 * np.pi)
    return (grad_out * (cdf + a64 * pdf),)


def _silu_forward(device: DeviceProfile, a) -> np.ndarray:
    a32 = _f32(a)
    sig = np.float32(1.0) / (np.float32(1.0) + np.exp(-a32))
    return (a32 * sig).astype(np.float32)


def _silu_vjp(device, grad_out, out, a):
    a64 = np.asarray(a, dtype=np.float64)
    sig = 1.0 / (1.0 + np.exp(-a64))
    return (grad_out * (sig + a64 * sig * (1.0 - sig)),)


register_op(OpSpec("relu", _relu_forward, _relu_vjp,
                   lambda out, *t, **k: elementwise_flops(np.shape(out)), "activation"))
register_op(OpSpec("leaky_relu", _leaky_relu_forward, _leaky_relu_vjp,
                   lambda out, *t, **k: elementwise_flops(np.shape(out), 2.0), "activation"))
register_op(OpSpec("gelu", _gelu_forward, _gelu_vjp,
                   lambda out, *t, **k: elementwise_flops(np.shape(out), 10.0), "activation"))
register_op(OpSpec("silu", _silu_forward, _silu_vjp,
                   lambda out, *t, **k: elementwise_flops(np.shape(out), 6.0), "activation"))
