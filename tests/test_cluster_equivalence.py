"""Cross-shard differential test: sharding is observationally transparent.

The headline guarantee of the cluster layer, pinned as a test: one seeded
multi-tenant request schedule — honest traffic, repeated payloads,
adversarial proposers, forced challenges — is run through

* the plain single-process :class:`~repro.protocol.service.TAOService`,
* a 1-shard :class:`~repro.cluster.cluster.TAOCluster`,
* a 4-shard cluster, and
* a 4-shard cluster with a failover injected mid-schedule (the busiest
  shard is drained with requests still queued, so they are withdrawn and
  re-dispatched to the ring successor),

and every deployment must produce **byte-identical per-request verdicts**
(statuses, execution-commitment bytes, dispute localizations) and an
**exactly equal ledger**: the same per-account balance for every account
that exists anywhere, and the same minted total — float equality, no
tolerance.  Migration moves tenant entries whole (roles, clone accounting)
precisely so that not one ledger unit diverges.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.cluster import TAOCluster
from repro.graph import trace_module
from repro.protocol import TAOService
from repro.protocol.service import ServiceCore

NUM_TENANTS = 4
ROUNDS = 8  # requests per tenant


@pytest.fixture(scope="module")
def tenant_graphs(mlp_module, mlp_input_factory):
    """Four tenants: the shared MLP module traced under distinct names.

    Tracing the same module yields graphs over the *same* parameter arrays,
    so weight digests are shared through the hash cache exactly as a fleet
    hosting replicas of one checkpoint would share them — and the shared
    ``mlp_thresholds`` table applies to every tenant (identical node names).
    """
    return [trace_module(mlp_module, mlp_input_factory(0), name=f"tenant_{i}")
            for i in range(NUM_TENANTS)]


def _schedule() -> List[Tuple[int, int, str]]:
    """Seeded (tenant, payload_seed, kind) schedule shared by every run."""
    rng = np.random.default_rng(20260729)
    events: List[Tuple[int, int, str]] = []
    for round_index in range(ROUNDS):
        for tenant in range(NUM_TENANTS):
            roll = rng.random()
            if roll < 0.12:
                kind = "cheat"
            elif roll < 0.22:
                kind = "force"
            else:
                kind = "honest"
            # A small payload pool per tenant so repeats hit the
            # content-addressed result cache (within and across cycles).
            payload_seed = 300 + tenant * 10 + round_index % 3
            events.append((tenant, payload_seed, kind))
    return events


def _victim(graph) -> str:
    return next(node.name for node in graph.graph.operators
                if node.target == "linear")


def _drive(front_end: ServiceCore, graphs, thresholds, input_factory,
           drain_midway: bool = False) -> List:
    """Register tenants, play the schedule, return per-request records."""
    sessions = {}
    for graph in graphs:
        sessions[graph.name] = front_end.register_model(
            graph, threshold_table=thresholds)

    events = _schedule()
    half = len(events) // 2
    request_ids: List[int] = []

    def submit(chunk):
        for tenant, payload_seed, kind in chunk:
            graph = graphs[tenant]
            proposer = None
            if kind == "cheat":
                proposer = sessions[graph.name].make_adversarial_proposer(
                    f"{graph.name}-cheat-{payload_seed}",
                    {_victim(graph): np.float32(0.05)},
                )
            request_ids.append(front_end.submit(
                graph.name, input_factory(payload_seed),
                proposer=proposer, force_challenge=(kind == "force"),
            ))

    submit(events[:half])
    front_end.process()
    submit(events[half:])
    if drain_midway:
        # Failover under load: the second half is queued but unprocessed;
        # draining the busiest shard withdraws and re-dispatches its share.
        assert isinstance(front_end, TAOCluster)
        busiest = max(
            front_end.shards,
            key=lambda sid: (front_end.shards[sid].service.pending_count, sid),
        )
        front_end.drain_shard(busiest)
    front_end.process()
    return [front_end.request(request_id) for request_id in request_ids]


def _ledger(front_end: ServiceCore) -> Tuple[Dict[str, float], float]:
    if isinstance(front_end, TAOCluster):
        chain = front_end.chain
    else:
        chain = front_end.coordinator.chain
    return dict(chain.balances), chain.minted


def _fingerprint(request) -> Tuple:
    """Everything the protocol lets a client observe about one request."""
    report = request.report
    if report is None:
        return (request.status, request.error is not None)
    dispute = report.dispute
    return (
        request.status,
        report.final_status,
        report.finalized_optimistically,
        bytes(report.result.commitment.value),
        tuple(bool(r.exceeded) for r in report.verification_reports),
        None if dispute is None else (
            dispute.proposer_cheated,
            dispute.localized_operator,
            dispute.resolved_by_timeout,
            dispute.statistics.rounds,
            dispute.statistics.gas_used,
        ),
    )


@pytest.fixture(scope="module")
def reference(tenant_graphs, mlp_thresholds, mlp_input_factory):
    """The plain single-service run every cluster deployment must match."""
    service = TAOService(n_way=2)
    requests = _drive(service, tenant_graphs, mlp_thresholds, mlp_input_factory)
    return service, requests


@pytest.mark.parametrize("num_shards,drain", [(1, False), (4, False), (4, True)],
                         ids=["1-shard", "4-shard", "4-shard-failover"])
def test_cluster_matches_plain_service(reference, tenant_graphs, mlp_thresholds,
                                       mlp_input_factory, num_shards, drain):
    service, service_requests = reference
    cluster = TAOCluster(num_shards=num_shards, n_way=2)
    cluster_requests = _drive(cluster, tenant_graphs, mlp_thresholds,
                              mlp_input_factory, drain_midway=drain)

    # Byte-identical per-request verdicts, in submission order.
    assert len(cluster_requests) == len(service_requests)
    for index, (expected, got) in enumerate(zip(service_requests,
                                                cluster_requests)):
        assert _fingerprint(got) == _fingerprint(expected), f"request {index}"

    # Exact ledger equality: every account, every balance, the minted total.
    expected_balances, expected_minted = _ledger(service)
    got_balances, got_minted = _ledger(cluster)
    assert got_balances == expected_balances
    assert got_minted == expected_minted

    # Conservation holds fleet-wide on the shared settlement chain.
    assert sum(got_balances.values()) == got_minted

    if drain:
        # The failover actually happened: requests moved shards.
        assert cluster.failovers >= 1
        assert cluster.redispatched_requests >= 1
        drained = [sid for sid, shard in cluster.shards.items() if shard.drained]
        assert drained
        for name in cluster.model_names:
            assert cluster.location(name) not in drained


def test_ring_resize_migrates_deterministically(tenant_graphs, mlp_thresholds,
                                                mlp_input_factory):
    """add/remove shard moves exactly the ring-dictated tenants, and serving
    continues unchanged (caches and roles migrate whole)."""
    cluster = TAOCluster(num_shards=2, n_way=2)
    for graph in tenant_graphs:
        cluster.register_model(graph, threshold_table=mlp_thresholds)
    # Warm every tenant's result cache and record the verdicts.
    warm_ids = {g.name: cluster.submit(g.name, mlp_input_factory(3))
                for g in tenant_graphs}
    cluster.process()
    warm_status = {name: cluster.request(rid).status
                   for name, rid in warm_ids.items()}
    before = {g.name: cluster.location(g.name) for g in tenant_graphs}

    grown = cluster.add_shard("shard-2")
    after_add = {g.name: cluster.location(g.name) for g in tenant_graphs}
    for name in before:
        # Minimal migration: a tenant either stayed put or moved to the
        # *new* shard — never shuffled between pre-existing shards.
        assert after_add[name] in (before[name], grown.shard_id)
    # Placement matches an independently computed ring oracle.
    from repro.cluster import ConsistentHashRing
    oracle = ConsistentHashRing(["shard-0", "shard-1", "shard-2"], vnodes=64)
    for name, record in cluster._models.items():
        assert after_add[name] == oracle.node_for(record.key)

    # Migrated tenants keep serving, with their warmed caches intact: the
    # repeated payload hits the migrated cache and reproduces the warm
    # verdict exactly.
    moved = [name for name in before if after_add[name] != before[name]]
    for name in moved or list(before):
        request_id = cluster.submit(name, mlp_input_factory(3))
        cluster.process()
        assert cluster.request(request_id).status == warm_status[name]
        assert cluster.request(request_id).cache_hit

    # Removing the shard sends its tenants back to their ring owners, and
    # the retired shard's history stays visible to fleet settlement.
    cluster.remove_shard("shard-2")
    after_remove = {g.name: cluster.location(g.name) for g in tenant_graphs}
    assert after_remove == before
    assert cluster.retired_shards and \
        cluster.retired_shards[0].shard_id == "shard-2"
    assert sum(cluster.chain.balances.values()) == cluster.chain.minted
    request_id = cluster.submit(tenant_graphs[0].name, mlp_input_factory(3))
    cluster.process()
    assert cluster.request(request_id).status == warm_status[tenant_graphs[0].name]
    assert cluster.request(request_id).cache_hit


def test_four_shard_cluster_spreads_tenants(tenant_graphs, mlp_thresholds,
                                            mlp_input_factory):
    """Consistent-hash placement uses more than one shard for 4 tenants.

    (Placement is a pure function of the commitment digests, so this pins
    the fleet actually sharding the workload rather than collapsing onto a
    single node.)
    """
    cluster = TAOCluster(num_shards=4, n_way=2)
    for graph in tenant_graphs:
        cluster.register_model(graph, threshold_table=mlp_thresholds)
    homes = {cluster.location(graph.name) for graph in tenant_graphs}
    assert len(homes) >= 2
    # And requests follow their tenants: shard-locality of the result cache.
    payload = mlp_input_factory(9)
    first = cluster.submit(tenant_graphs[0].name, payload)
    second = cluster.submit(tenant_graphs[0].name, payload)
    cluster.process()
    assert cluster.request(first).report is not None
    assert cluster.request(second).cache_hit
