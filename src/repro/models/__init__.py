"""Model zoo: mini-scale analogues of the paper's four evaluation workloads.

The paper evaluates ResNet-152, BERT-large, Qwen3-8B and Stable Diffusion
v1-5.  Running those models is impossible in this offline NumPy environment,
so the zoo provides structurally faithful miniatures built from the same
operator families (convolutions + batch norm + residual adds; encoder
attention + LayerNorm + GELU; decoder attention + RMSNorm + SwiGLU + RoPE;
UNet with GroupNorm/SiLU, down/upsampling and skip connections).  Per-operator
error statistics, dispute behaviour and attack surfaces are driven by the
operator mix and graph topology, which these miniatures preserve.
"""

from repro.models.resnet import MiniResNet, ResNetConfig
from repro.models.bert import MiniBERT, BertConfig
from repro.models.qwen import MiniQwen, QwenConfig
from repro.models.diffusion import MiniUNet, UNetConfig, DiffusionSampler
from repro.models.zoo import ModelSpec, available_models, build_model, get_model_spec

__all__ = [
    "MiniResNet",
    "ResNetConfig",
    "MiniBERT",
    "BertConfig",
    "MiniQwen",
    "QwenConfig",
    "MiniUNet",
    "UNetConfig",
    "DiffusionSampler",
    "ModelSpec",
    "available_models",
    "build_model",
    "get_model_spec",
]
