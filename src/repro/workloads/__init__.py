"""Synthetic workloads standing in for the paper's datasets.

The paper calibrates and attacks with ImageNet, DBpedia, C4 and WikiText-103
inputs.  Calibration and attacks only need representative activations (not
labelled accuracy), so deterministic synthetic datasets with controlled
statistics exercise exactly the same code paths.
"""

from repro.workloads.datasets import (
    SyntheticImageDataset,
    SyntheticTokenDataset,
    calibration_dataset,
    serving_requests,
)

__all__ = [
    "SyntheticImageDataset",
    "SyntheticTokenDataset",
    "calibration_dataset",
    "serving_requests",
]
