"""Unit tests for the coordinator state machine."""

import numpy as np
import pytest

from repro.graph.interpreter import Interpreter
from repro.merkle.commitments import commit_model, make_execution_commitment
from repro.protocol.chain import SimulatedChain
from repro.protocol.coordinator import (
    Coordinator,
    CoordinatorError,
    DisputePhase,
    PartitionEntry,
    TaskStatus,
)
from repro.tensorlib.device import DEVICE_FLEET


@pytest.fixture()
def coordinator_setup(mlp_graph, mlp_thresholds, mlp_inputs):
    """A coordinator with a registered model and one submitted task."""
    coordinator = Coordinator(SimulatedChain(), challenge_window_s=600.0,
                              round_timeout_s=120.0)
    commitment = commit_model(mlp_graph, mlp_thresholds)
    for account in ("owner", "user", "proposer", "challenger"):
        coordinator.chain.fund(account, 10_000.0)
    coordinator.register_model(commitment, owner="owner")
    trace = Interpreter(DEVICE_FLEET[0]).run(mlp_graph, mlp_inputs)
    execution = make_execution_commitment(commitment, mlp_inputs, list(trace.outputs),
                                          meta={"device": DEVICE_FLEET[0].name})
    task = coordinator.submit_result("tiny_mlp", "user", "proposer", execution, fee=10.0)
    return coordinator, commitment, task


def test_register_model_twice_fails(coordinator_setup, mlp_graph, mlp_thresholds):
    coordinator, commitment, _ = coordinator_setup
    with pytest.raises(CoordinatorError):
        coordinator.register_model(commit_model(mlp_graph, mlp_thresholds), owner="owner")


def test_submit_result_requires_registered_model(coordinator_setup):
    coordinator, _, task = coordinator_setup
    with pytest.raises(CoordinatorError):
        coordinator.submit_result("unknown-model", "user", "proposer", task.commitment, fee=1.0)


def test_submission_escrows_fee_and_bond(coordinator_setup):
    coordinator, _, task = coordinator_setup
    assert coordinator.chain.balance("user") == pytest.approx(10_000.0 - task.fee)
    assert coordinator.chain.balance("proposer") == pytest.approx(10_000.0 - task.proposer_bond)


def test_cannot_finalize_before_window(coordinator_setup):
    coordinator, _, task = coordinator_setup
    assert coordinator.try_finalize(task.task_id, caller="proposer") is False
    assert coordinator.task(task.task_id).status is TaskStatus.PENDING


def test_finalize_after_window_pays_proposer(coordinator_setup):
    coordinator, _, task = coordinator_setup
    coordinator.chain.advance_time(coordinator.challenge_window_s + 1.0)
    assert coordinator.try_finalize(task.task_id, caller="proposer") is True
    assert coordinator.task(task.task_id).status is TaskStatus.FINALIZED
    assert coordinator.chain.balance("proposer") == pytest.approx(10_000.0 + task.fee)
    # Finalizing twice is a harmless no-op.
    assert coordinator.try_finalize(task.task_id, caller="proposer") is True


def test_dispute_cannot_open_after_window(coordinator_setup):
    coordinator, _, task = coordinator_setup
    coordinator.chain.advance_time(coordinator.challenge_window_s + 1.0)
    with pytest.raises(CoordinatorError):
        coordinator.open_dispute(task.task_id, "challenger")


def test_dispute_state_machine_happy_path(coordinator_setup, mlp_graph):
    coordinator, _, task = coordinator_setup
    dispute = coordinator.open_dispute(task.task_id, "challenger")
    assert coordinator.task(task.task_id).status is TaskStatus.DISPUTED
    assert dispute.current_size == mlp_graph.num_operators

    # Round 0: a two-way partition, challenger selects child 1.
    mid = mlp_graph.num_operators // 2
    entries = [PartitionEntry(0, mid, b"h1", b"h2"),
               PartitionEntry(mid, mlp_graph.num_operators, b"h3", b"h4")]
    coordinator.post_partition(dispute.dispute_id, "proposer", entries, payload_bytes=160)
    assert dispute.phase is DisputePhase.AWAIT_SELECTION
    coordinator.post_selection(dispute.dispute_id, "challenger", 1)
    assert dispute.current_start == mid
    assert dispute.round_index == 1

    # Cannot post a selection when a partition is expected.
    with pytest.raises(CoordinatorError):
        coordinator.post_selection(dispute.dispute_id, "challenger", 0)


def test_partition_validation(coordinator_setup, mlp_graph):
    coordinator, _, task = coordinator_setup
    dispute = coordinator.open_dispute(task.task_id, "challenger")
    n = mlp_graph.num_operators
    with pytest.raises(CoordinatorError):  # wrong sender
        coordinator.post_partition(dispute.dispute_id, "challenger",
                                   [PartitionEntry(0, n, b"", b"")], payload_bytes=10)
    with pytest.raises(CoordinatorError):  # does not cover the disputed range
        coordinator.post_partition(dispute.dispute_id, "proposer",
                                   [PartitionEntry(0, n - 1, b"", b"")], payload_bytes=10)
    with pytest.raises(CoordinatorError):  # non-contiguous children
        coordinator.post_partition(dispute.dispute_id, "proposer",
                                   [PartitionEntry(0, 2, b"", b""),
                                    PartitionEntry(3, n, b"", b"")], payload_bytes=10)
    with pytest.raises(CoordinatorError):  # empty partition
        coordinator.post_partition(dispute.dispute_id, "proposer", [], payload_bytes=0)


def test_selection_validation(coordinator_setup, mlp_graph):
    coordinator, _, task = coordinator_setup
    dispute = coordinator.open_dispute(task.task_id, "challenger")
    n = mlp_graph.num_operators
    coordinator.post_partition(dispute.dispute_id, "proposer",
                               [PartitionEntry(0, 2, b"", b""), PartitionEntry(2, n, b"", b"")],
                               payload_bytes=80)
    with pytest.raises(CoordinatorError):  # wrong sender
        coordinator.post_selection(dispute.dispute_id, "proposer", 0)
    with pytest.raises(CoordinatorError):  # out-of-range child
        coordinator.post_selection(dispute.dispute_id, "challenger", 5)


def test_adjudication_slashes_proposer(coordinator_setup):
    coordinator, _, task = coordinator_setup
    dispute = coordinator.open_dispute(task.task_id, "challenger")
    # Drive the dispute to a single operator with repeated binary partitions.
    while not dispute.at_leaf:
        mid = (dispute.current_start + dispute.current_end) // 2
        entries = [PartitionEntry(dispute.current_start, mid, b"", b""),
                   PartitionEntry(mid, dispute.current_end, b"", b"")]
        coordinator.post_partition(dispute.dispute_id, "proposer", entries, payload_bytes=80)
        coordinator.post_selection(dispute.dispute_id, "challenger", 0)
    coordinator.post_adjudication(dispute.dispute_id, "challenger", proposer_cheated=True,
                                  path="theoretical_bound")
    task_record = coordinator.task(task.task_id)
    assert task_record.status is TaskStatus.PROPOSER_SLASHED
    assert dispute.winner == "challenger"
    # Challenger got its bond back plus a share of the proposer bond; the user
    # was refunded the fee.
    assert coordinator.chain.balance("challenger") > 10_000.0 - dispute.challenger_bond
    assert coordinator.chain.balance("user") == pytest.approx(10_000.0)
    assert coordinator.dispute_gas(dispute.dispute_id) > 0
    assert "post_partition" in coordinator.dispute_gas_by_action(dispute.dispute_id)


def test_adjudication_can_clear_proposer(coordinator_setup):
    coordinator, _, task = coordinator_setup
    dispute = coordinator.open_dispute(task.task_id, "challenger")
    while not dispute.at_leaf:
        mid = (dispute.current_start + dispute.current_end) // 2
        coordinator.post_partition(
            dispute.dispute_id, "proposer",
            [PartitionEntry(dispute.current_start, mid, b"", b""),
             PartitionEntry(mid, dispute.current_end, b"", b"")],
            payload_bytes=80,
        )
        coordinator.post_selection(dispute.dispute_id, "challenger", 1)
    coordinator.post_adjudication(dispute.dispute_id, "challenger", proposer_cheated=False,
                                  path="committee_vote")
    assert coordinator.task(task.task_id).status is TaskStatus.CHALLENGER_SLASHED
    # Proposer recovers fee + own bond + the challenger's bond.
    assert coordinator.chain.balance("proposer") == pytest.approx(
        10_000.0 + task.fee + dispute.challenger_bond)


def test_timeout_resolution(coordinator_setup):
    coordinator, _, task = coordinator_setup
    dispute = coordinator.open_dispute(task.task_id, "challenger")
    # Nothing happens until the timeout elapses.
    assert coordinator.enforce_timeout(dispute.dispute_id, caller="anyone") is None
    coordinator.chain.advance_time(coordinator.round_timeout_s + 1.0)
    loser = coordinator.enforce_timeout(dispute.dispute_id, caller="anyone")
    assert loser == "proposer"  # it was the proposer's turn to post a partition
    assert coordinator.task(task.task_id).status is TaskStatus.PROPOSER_SLASHED


def test_unknown_ids_raise(coordinator_setup):
    coordinator, _, _ = coordinator_setup
    with pytest.raises(CoordinatorError):
        coordinator.task(999)
    with pytest.raises(CoordinatorError):
        coordinator.dispute(999)
    with pytest.raises(CoordinatorError):
        coordinator.model("nope")
