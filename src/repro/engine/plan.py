"""Precompiled per-graph execution plans.

The seed interpreter re-derived everything it needed on every call: it
re-walked ``graph.nodes`` (a fresh tuple per access), re-resolved every
operator through the global registry, re-classified node kinds by string
comparison, and re-scanned the graph for the output node.  For a service
keeping many requests in flight against the same committed model, all of
that work is invariant across calls.

:func:`compile_plan` performs that resolution once per :class:`GraphModule`
and freezes it into an :class:`ExecutionPlan`:

* one :class:`PlanStep` per node, with the node kind pre-classified, the
  :class:`~repro.ops.registry.OpSpec` pre-fetched, and each positional
  argument pre-split into "read this env slot" vs. "pass this literal";
* the graph's output names, resolved once;
* output liveness: for every step, the set of upstream values whose last
  consumer is that step, so non-recording executions can free intermediate
  tensors as soon as they are dead;
* an input-dependence set used by the batched execution path to tell which
  node values vary per request (and therefore must be split along the batch
  axis) versus which are pure functions of weights/constants.

Plans contain no tensors and are device independent; the same plan drives
execution on every :class:`~repro.tensorlib.device.DeviceProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.graph.graph import GraphModule
from repro.graph.node import Node
from repro.ops.registry import OpSpec, get_op

#: Pre-classified node kinds (faster than string comparison per node per run).
KIND_INPUT = 0
KIND_PARAM = 1
KIND_CONST = 2
KIND_OP = 3

_KIND_BY_OP = {
    "placeholder": KIND_INPUT,
    "get_param": KIND_PARAM,
    "constant": KIND_CONST,
    "call_op": KIND_OP,
}

#: Attribute under which the compiled plan is cached on the GraphModule.
PLAN_ATTR = "_tao_execution_plan"


@dataclass(frozen=True)
class PlanStep:
    """One node of the graph with its execution-time lookups pre-resolved."""

    node: Node
    kind: int
    name: str
    target: str
    #: For ``call_op`` steps: the resolved operator spec.
    spec: Optional[OpSpec] = None
    #: For ``call_op`` steps: per positional argument, ``(True, env_name)``
    #: when the argument is a node value or ``(False, literal)`` otherwise.
    arg_specs: Tuple[Tuple[bool, Any], ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Env entries whose last consumer is this step (excluding outputs);
    #: non-recording runs drop them right after the step executes.
    release: Tuple[str, ...] = ()
    #: True when this node's value depends on at least one graph input, i.e.
    #: varies per request.  Pure functions of weights/constants are False.
    depends_on_input: bool = True


@dataclass
class ExecutionPlan:
    """A compiled, reusable schedule for one :class:`GraphModule`."""

    graph_name: str
    steps: Tuple[PlanStep, ...]
    input_names: Tuple[str, ...]
    output_names: Tuple[str, ...]
    #: Names of node values that depend on graph inputs (vary per request).
    input_dependent: FrozenSet[str]
    #: Length of the graph this plan was compiled from; used to detect a
    #: mutated/retraced graph and recompile.
    num_nodes: int
    #: Batched-execution certifications keyed by (device name, input
    #: signature); populated lazily by the engine's empirical probe.
    batch_certified: Dict[Tuple[str, Tuple], bool] = field(default_factory=dict)

    @property
    def num_operators(self) -> int:
        return sum(1 for step in self.steps if step.kind == KIND_OP)


def compile_plan(graph_module: GraphModule) -> ExecutionPlan:
    """Compile ``graph_module`` into an :class:`ExecutionPlan`."""
    graph = graph_module.graph
    nodes = graph.nodes

    output_node = graph.output_node
    output_names = tuple(arg.name for arg in output_node.args if isinstance(arg, Node))
    keep_alive = set(output_names)

    # Last consumer per value, over the flattened dependency structure (the
    # interpreter only resolves top-level Node args, but nested Node refs are
    # still conservatively treated as uses so release can never free a value
    # another node might observe).
    last_use: Dict[str, int] = {}
    compute_steps = [node for node in nodes if node.op != "output"]
    for index, node in enumerate(compute_steps):
        for dep in node.input_nodes:
            last_use[dep.name] = index

    release_at: Dict[int, List[str]] = {}
    for name, index in last_use.items():
        if name in keep_alive:
            continue
        release_at.setdefault(index, []).append(name)

    input_dependent: set = set()
    steps: List[PlanStep] = []
    for index, node in enumerate(compute_steps):
        kind = _KIND_BY_OP[node.op]
        spec: Optional[OpSpec] = None
        arg_specs: Tuple[Tuple[bool, Any], ...] = ()
        if kind == KIND_INPUT:
            input_dependent.add(node.name)
        elif kind == KIND_OP:
            spec = get_op(node.target)
            arg_specs = tuple(
                (True, arg.name) if isinstance(arg, Node) else (False, arg)
                for arg in node.args
            )
            if any(dep.name in input_dependent for dep in node.input_nodes):
                input_dependent.add(node.name)
        steps.append(PlanStep(
            node=node,
            kind=kind,
            name=node.name,
            target=node.target,
            spec=spec,
            arg_specs=arg_specs,
            kwargs=node.kwargs,
            release=tuple(release_at.get(index, ())),
            depends_on_input=node.name in input_dependent,
        ))

    return ExecutionPlan(
        graph_name=graph_module.name,
        steps=tuple(steps),
        input_names=tuple(graph_module.input_names),
        output_names=output_names,
        input_dependent=frozenset(input_dependent),
        num_nodes=len(graph),
    )


def plan_for(graph_module: GraphModule) -> ExecutionPlan:
    """Return the cached plan for ``graph_module``, compiling on first use.

    The plan is cached on the module instance itself so every engine (and
    every device) executing the same committed model shares one compilation.
    A changed node count (retrace/mutation) invalidates the cache.
    """
    plan = getattr(graph_module, PLAN_ATTR, None)
    if plan is None or plan.num_nodes != len(graph_module.graph):
        plan = compile_plan(graph_module)
        setattr(graph_module, PLAN_ATTR, plan)
    return plan
