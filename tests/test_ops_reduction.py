"""Forward and VJP tests for reduction operators."""

import numpy as np
import pytest

from repro.ops.registry import get_op
from repro.tensorlib.device import DEVICE_FLEET, REFERENCE_DEVICE

from tests.helpers import finite_difference_vjp_check


def _run(name, *tensors, **attrs):
    return get_op(name).forward(REFERENCE_DEVICE, *tensors, **attrs)


@pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True), ((0, 1), False)])
def test_sum_mean_var_forward(axis, keepdims, rng):
    x = rng.standard_normal((6, 9)).astype(np.float32)
    assert np.allclose(_run("sum", x, axis=axis, keepdims=keepdims),
                       x.sum(axis=axis, keepdims=keepdims), atol=1e-4)
    assert np.allclose(_run("mean", x, axis=axis, keepdims=keepdims),
                       x.mean(axis=axis, keepdims=keepdims), atol=1e-5)
    assert np.allclose(_run("var", x, axis=axis, keepdims=keepdims),
                       x.var(axis=axis, keepdims=keepdims), rtol=1e-4, atol=1e-5)


def test_amax_amin_argmax_forward(rng):
    x = rng.standard_normal((5, 7)).astype(np.float32)
    assert np.allclose(_run("amax", x, axis=1), x.max(axis=1))
    assert np.allclose(_run("amin", x, axis=0), x.min(axis=0))
    assert np.array_equal(_run("argmax", x, axis=1), np.argmax(x, axis=1))


def test_reductions_run_on_all_devices(rng):
    x = rng.standard_normal((16, 40)).astype(np.float32)
    for device in DEVICE_FLEET:
        out = get_op("sum").forward(device, x, axis=1)
        assert np.allclose(out, x.sum(axis=1), atol=1e-4)


@pytest.mark.parametrize("name,attrs", [
    ("sum", {"axis": 1}),
    ("sum", {"axis": None}),
    ("mean", {"axis": 0, "keepdims": True}),
    ("mean", {"axis": (0, 1)}),
    ("var", {"axis": 1}),
    ("amax", {"axis": 1}),
    ("amin", {"axis": 0}),
])
def test_reduction_vjps(name, attrs, rng):
    x = rng.standard_normal((5, 6)) * 2.0
    finite_difference_vjp_check(name, [x], attrs, seed=11)


def test_amax_vjp_splits_ties():
    x = np.array([[1.0, 3.0, 3.0]])
    spec = get_op("amax")
    out = spec.forward(REFERENCE_DEVICE, x, axis=1)
    grads = spec.vjp(REFERENCE_DEVICE, np.ones_like(out, dtype=np.float64), out, x, axis=1)
    assert np.allclose(grads[0], [[0.0, 0.5, 0.5]])


def test_argmax_has_no_gradient(rng):
    x = rng.standard_normal((3, 4))
    spec = get_op("argmax")
    out = spec.forward(REFERENCE_DEVICE, x, axis=1)
    grads = spec.vjp(REFERENCE_DEVICE, np.zeros_like(out, dtype=np.float64), out, x, axis=1)
    assert grads == (None,)
