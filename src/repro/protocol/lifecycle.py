"""End-to-end protocol lifecycle (paper Sec. 2.2, Phases 0-3).

:class:`TAOSession` is the highest-level entry point of the library: it wires
together calibration, commitments, the coordinator, and the role objects, and
exposes two operations that mirror the protocol's life of a request:

* :meth:`TAOSession.setup` — Phase 0: calibrate empirical thresholds across
  the device fleet, commit weights/graph/thresholds, register with the
  coordinator;
* :meth:`TAOSession.run_request` — Phases 1-3: the proposer executes and
  commits, the challenger re-executes and (if the committed thresholds are
  exceeded) opens a dispute that is localized and adjudicated.

Examples and benchmarks drive the system exclusively through this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bounds.fp_model import BoundMode
from repro.calibration.calibrator import CalibrationConfig, CalibrationResult, Calibrator
from repro.calibration.thresholds import ExceedanceReport, ThresholdTable
from repro.graph.graph import GraphModule
from repro.merkle.cache import HashCache
from repro.merkle.commitments import ModelCommitment, commit_model
from repro.protocol.coordinator import Coordinator, TaskRecord
from repro.protocol.dispute import DisputeGame, DisputeOutcome
from repro.protocol.roles import (
    AdversarialProposer,
    Challenger,
    CommitteeMember,
    HonestProposer,
    ProposedResult,
    Proposer,
    User,
)
from repro.tensorlib.device import DEVICE_FLEET, DeviceProfile


@dataclass
class SessionReport:
    """Everything that happened to one request."""

    task: TaskRecord
    result: ProposedResult
    challenged: bool
    finalized_optimistically: bool
    verification_reports: List[ExceedanceReport] = field(default_factory=list)
    dispute: Optional[DisputeOutcome] = None

    @property
    def proposer_cheated(self) -> bool:
        return bool(self.dispute and self.dispute.proposer_cheated)

    @property
    def final_status(self) -> str:
        return self.task.status.value


class TAOSession:
    """Wires the full TAO pipeline together for one committed model."""

    def __init__(
        self,
        graph_module: GraphModule,
        calibration_inputs: Optional[Iterable[Dict[str, np.ndarray]]] = None,
        threshold_table: Optional[ThresholdTable] = None,
        calibration_result: Optional[CalibrationResult] = None,
        devices: Sequence[DeviceProfile] = DEVICE_FLEET,
        coordinator: Optional[Coordinator] = None,
        alpha: float = 3.0,
        n_way: int = 2,
        committee_size: int = 3,
        bound_mode: BoundMode = BoundMode.PROBABILISTIC,
        leaf_path: str = "routed",
        initial_balance: float = 10_000.0,
        hash_cache: Optional[HashCache] = None,
        committee_factory: Optional[Callable[[int, DeviceProfile], CommitteeMember]] = None,
        committee_envelope=None,
    ) -> None:
        self.graph_module = graph_module
        self.devices = tuple(devices)
        self.coordinator = coordinator or Coordinator()
        self.hash_cache = hash_cache
        self.alpha = float(alpha)
        self.n_way = int(n_way)
        self.committee_size = int(committee_size)
        self.bound_mode = bound_mode
        self.leaf_path = leaf_path
        self.initial_balance = float(initial_balance)
        #: Optional hook building committee member ``i`` on a given device;
        #: the protocol simulator injects faulty (e.g. colluding) adjudicators
        #: here without forking the session wiring.
        self.committee_factory = committee_factory
        #: Calibrated committee-leaf acceptance envelope
        #: (:class:`~repro.calibration.committee.CommitteeEnvelopeProfile`).
        #: Committed as root ``r_c`` at setup, consulted by committee votes
        #: and by the challenger's selection floor; ``None`` keeps the
        #: reference (pre-calibration) tolerance everywhere.
        self.committee_envelope = committee_envelope

        self._calibration_inputs = list(calibration_inputs) if calibration_inputs is not None else None
        self.calibration: Optional[CalibrationResult] = calibration_result
        self.thresholds: Optional[ThresholdTable] = threshold_table
        self.model_commitment: Optional[ModelCommitment] = None
        self.committee: List[CommitteeMember] = []
        self._is_setup = False

    # ------------------------------------------------------------------
    # Phase 0
    # ------------------------------------------------------------------

    def setup(self, owner: str = "model-owner",
              fund_owner: bool = True) -> ModelCommitment:
        """Calibrate (if necessary), commit the model and register it.

        ``fund_owner=False`` registers without minting the owner's initial
        balance — the failover path re-homing an already-funded tenant on a
        new shard (or a new fleet worker) must not create money.  Funding
        itself goes through :meth:`~repro.protocol.chain.SimulatedChain.fund_once`,
        so a chain carried across campaign cycles keeps existing balances
        instead of re-minting them.
        """
        if self.thresholds is None:
            if self.calibration is None:
                if self._calibration_inputs is None:
                    raise ValueError(
                        "setup requires calibration inputs, a calibration result, "
                        "or a pre-built threshold table"
                    )
                calibrator = Calibrator(CalibrationConfig(devices=self.devices))
                self.calibration = calibrator.calibrate(
                    self.graph_module, self._calibration_inputs
                )
            self.thresholds = ThresholdTable.from_calibration(self.calibration, alpha=self.alpha)

        self.model_commitment = commit_model(
            self.graph_module, self.thresholds,
            metadata={"alpha": self.alpha, "num_operators": self.graph_module.num_operators},
            cache=self.hash_cache,
            committee_envelope=self.committee_envelope,
        )
        if fund_owner:
            self.coordinator.chain.fund_once(owner, self.initial_balance)
        # A tenant re-homed to a worker that hosted it before (drain, then a
        # later rebalance routing it back) re-runs setup against a
        # coordinator that already holds the model.  Registration is
        # idempotent for a byte-identical commitment — same guard
        # ``TAOService.adopt_model`` applies — while a *different* model
        # under the same name still trips the coordinator's conflict error.
        registered = self.coordinator.models.get(self.model_commitment.model_name)
        if registered is None or registered.digest() != self.model_commitment.digest():
            self.coordinator.register_model(self.model_commitment, owner=owner)

        factory = self.committee_factory or (
            lambda i, device: CommitteeMember(f"committee-{i}", device)
        )
        self.committee = [
            factory(i, self.devices[i % len(self.devices)])
            for i in range(self.committee_size)
        ]
        self._is_setup = True
        return self.model_commitment

    def require_setup(self) -> None:
        if not self._is_setup:
            raise RuntimeError("TAOSession.setup() must be called before running requests")

    # ------------------------------------------------------------------
    # Role factories
    # ------------------------------------------------------------------

    def make_user(self, name: str = "user", fee: float = 10.0,
                  fund: bool = True) -> User:
        if fund:
            self.coordinator.chain.fund_once(name, self.initial_balance)
        return User(name=name, fee_per_request=fee)

    def make_honest_proposer(self, name: str = "proposer",
                             device: Optional[DeviceProfile] = None,
                             fund: bool = True) -> HonestProposer:
        if fund:
            self.coordinator.chain.fund_once(name, self.initial_balance)
        return HonestProposer(name, device or self.devices[0], hash_cache=self.hash_cache)

    def make_adversarial_proposer(self, name: str, perturbations,
                                  device: Optional[DeviceProfile] = None) -> AdversarialProposer:
        self.coordinator.chain.fund_once(name, self.initial_balance)
        return AdversarialProposer(name, device or self.devices[0], perturbations,
                                   hash_cache=self.hash_cache)

    def make_challenger(self, name: str = "challenger",
                        device: Optional[DeviceProfile] = None,
                        fund: bool = True) -> Challenger:
        self.require_setup()
        if fund:
            self.coordinator.chain.fund_once(name, self.initial_balance)
        return Challenger(name, device or self.devices[-1], self.thresholds,
                          hash_cache=self.hash_cache,
                          committee_envelope=self.committee_envelope)

    def make_dispute_game(self) -> DisputeGame:
        """A dispute game wired to this session's commitments and policies.

        Used by :meth:`run_request` and by :class:`~repro.protocol.service.TAOService`,
        which multiplexes several of these games round-robin over the shared
        coordinator.
        """
        self.require_setup()
        return DisputeGame(
            coordinator=self.coordinator,
            graph_module=self.graph_module,
            model_commitment=self.model_commitment,
            thresholds=self.thresholds,
            committee=self.committee,
            n_way=self.n_way,
            bound_mode=self.bound_mode,
            leaf_path=self.leaf_path,
            committee_envelope=self.committee_envelope,
        )

    # ------------------------------------------------------------------
    # Phases 1-3
    # ------------------------------------------------------------------

    def run_request(
        self,
        inputs: Mapping[str, np.ndarray],
        proposer: Proposer,
        challenger: Optional[Challenger] = None,
        user: Optional[User] = None,
        force_challenge: bool = False,
    ) -> SessionReport:
        """Serve one request end to end.

        The challenger re-executes and opens a dispute only when its committed
        thresholds flag the result (or when ``force_challenge`` is set, which
        models a spamming / overly eager challenger).
        """
        self.require_setup()
        user = user or self.make_user()
        challenger = challenger or self.make_challenger()

        result = proposer.execute(self.graph_module, self.model_commitment, inputs)
        task = self.coordinator.submit_result(
            self.graph_module.name, user.name, proposer.name, result.commitment,
            fee=user.fee_per_request,
        )

        looks_honest, reports = challenger.verify_result(self.graph_module, result)
        should_challenge = force_challenge or not looks_honest
        if not should_challenge:
            self.coordinator.chain.advance_time(self.coordinator.challenge_window_s + 1.0)
            self.coordinator.try_finalize(task.task_id, caller=proposer.name)
            return SessionReport(
                task=task, result=result, challenged=False,
                finalized_optimistically=True, verification_reports=reports,
            )

        outcome = self.make_dispute_game().run(task, proposer, challenger, result)
        return SessionReport(
            task=task, result=result, challenged=True,
            finalized_optimistically=False, verification_reports=reports,
            dispute=outcome,
        )
