"""Fleet throughput: *measured* wall-clock speedup from worker processes.

The cluster scaling benchmark reports the fleet's modeled parallel
throughput (completed / critical-path busy time) because its shards share
one GIL.  This benchmark removes the model: the same cached 16-tenant MLP
serving workload is driven through a :class:`~repro.fleet.fleet.ProcessFleet`
at 1/2/4 worker *processes*, and the reported number is the parent's real
wall clock around ``process()`` — codec, RPC framing, nested chain
settlement and all.

The acceptance gate (>= 1.6x measured speedup at 4 workers vs 1) is only
enforced when the host actually has >= 4 cores; a single-core container
cannot exceed 1x by physics, so there the table still reports the measured
numbers (stamped with the host provenance) and the gate is skipped rather
than faked.

The worker pool's second job is benchmarked alongside: chunk-parallel
Merkle weight commitment, whose root must be byte-identical to the serial
:func:`~repro.merkle.commitments.commit_weights` whatever the measured
speedup is.
"""

from __future__ import annotations

import gc
import os
import time
from collections import Counter
from typing import Dict, List

import numpy as np

from repro.fleet import ProcessFleet
from repro.merkle.commitments import commit_weights

from benchmarks.reporting import emit_table
from benchmarks.test_cluster_scaling import (
    DISTINCT_PAYLOADS,
    NUM_TENANTS,
    REPEATS,
    _payload,
    _stream,
    _workload,
)

WORKER_COUNTS = (1, 2, 4)
GATE_WORKERS = 4
GATE_SPEEDUP = 1.6
STREAM_TOTAL = NUM_TENANTS * DISTINCT_PAYLOADS * REPEATS

#: Synthetic checkpoint for the commitment benchmark: large enough that
#: serialization+hashing dominates the RPC round trip.
MERKLE_TENSORS = 48
MERKLE_SHAPE = (128, 128)


def _drive_fleet(fleet: ProcessFleet, graphs, thresholds) -> Dict[str, object]:
    """Warm up, then measure one full fleet stream at steady state."""
    for graph in graphs:
        fleet.register_model(graph, threshold_table=thresholds)
    for graph in graphs:  # absorbs plan compilation + batch certification
        fleet.submit(graph.name, _payload(1))
        fleet.submit(graph.name, _payload(2))
    fleet.process()
    gc.collect()

    wall_before = fleet.measured_wall_s
    completed_before = fleet.stats().requests_completed
    for graph_index, graph in enumerate(graphs):
        for payload in _stream(graph_index):
            fleet.submit(graph.name, payload)
    processed = fleet.process()
    for request in processed:
        assert request.status == "finalized", request.status

    stats = fleet.stats()
    wall = fleet.measured_wall_s - wall_before
    completed = stats.requests_completed - completed_before
    homes = Counter(fleet.location(graph.name) for graph in graphs)
    return {
        "completed": completed,
        "wall_s": wall,
        "measured_rps": completed / wall,
        "tenants_per_worker": sorted(homes.values(), reverse=True),
    }


def _merkle_checkpoint() -> Dict[str, np.ndarray]:
    rng = np.random.default_rng(20260808)
    return {f"block_{index:02d}.weight":
            rng.standard_normal(MERKLE_SHAPE).astype(np.float32)
            for index in range(MERKLE_TENSORS)}


def test_fleet_throughput(benchmark):
    graphs, thresholds = _workload()

    def run():
        scaling = {}
        for num_workers in WORKER_COUNTS:
            fleet = ProcessFleet(num_workers=num_workers)
            try:
                scaling[num_workers] = _drive_fleet(fleet, graphs, thresholds)
            finally:
                fleet.close()

        parameters = _merkle_checkpoint()
        serial_start = time.perf_counter()
        serial_tree, _ = commit_weights(parameters)
        serial_s = time.perf_counter() - serial_start
        merkle = {"serial_s": serial_s}
        fleet = ProcessFleet(num_workers=GATE_WORKERS)
        try:
            fleet.commit_weights_parallel(parameters)  # warm worker codecs
            parallel_start = time.perf_counter()
            tree, _ = fleet.commit_weights_parallel(parameters)
            merkle["parallel_s"] = time.perf_counter() - parallel_start
            merkle["root_equal"] = bytes(tree.root) == bytes(serial_tree.root)
        finally:
            fleet.close()
        return scaling, merkle

    scaling, merkle = benchmark.pedantic(run, rounds=1, iterations=1)

    cores = os.cpu_count() or 1
    base = scaling[1]
    gated = cores >= GATE_WORKERS
    emit_table(
        "fleet_throughput",
        "ProcessFleet measured wall-clock throughput vs worker processes "
        f"({NUM_TENANTS} tenants x {DISTINCT_PAYLOADS * REPEATS} requests, "
        "cached MLP workload)",
        ["workers", "measured wall (s)", "measured rps", "speedup vs 1 worker",
         "tenants per worker"],
        [[num_workers, r["wall_s"], r["measured_rps"],
          r["measured_rps"] / base["measured_rps"],
          str(r["tenants_per_worker"])]
         for num_workers, r in scaling.items()],
        notes=("Each worker is a full TAOService in its own process behind "
               "the serialized RPC transport; 'measured rps' is the parent's "
               "wall clock around process(), including codec, framing and "
               "nested chain settlement.  Acceptance gate: >= "
               f"{GATE_SPEEDUP}x at {GATE_WORKERS} workers, "
               + ("ENFORCED on this host."
                  if gated else
                  f"SKIPPED on this host ({cores} core(s) < {GATE_WORKERS}: "
                  "a single core cannot exceed 1x by physics)."))
        + f"\n\nParallel Merkle commitment ({MERKLE_TENSORS} tensors of "
          f"{MERKLE_SHAPE}): serial {merkle['serial_s']:.4f}s, "
          f"{GATE_WORKERS}-worker {merkle['parallel_s']:.4f}s, "
          f"byte-identical root: {merkle['root_equal']}.",
    )

    # Every deployment served the whole fleet stream, wall clock measured.
    for r in scaling.values():
        assert r["completed"] == STREAM_TOTAL
        assert r["wall_s"] > 0.0
    # The chunk-parallel commitment is exact regardless of host parallelism.
    assert merkle["root_equal"]

    if gated:
        # The headline: modeled speedup realized as measured wall clock.
        assert scaling[GATE_WORKERS]["measured_rps"] >= \
            GATE_SPEEDUP * base["measured_rps"], scaling
        # And adding the first extra worker already pays.
        assert scaling[2]["measured_rps"] > base["measured_rps"], scaling
