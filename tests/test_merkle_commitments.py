"""Unit tests for model / execution / subgraph commitments."""

import numpy as np
import pytest

from repro.graph.interpreter import Interpreter
from repro.graph.subgraph import SubgraphSlice
from repro.merkle.commitments import (
    commit_graph,
    commit_model,
    commit_thresholds,
    commit_weights,
    hash_tensor,
    interface_hash,
    make_execution_commitment,
    make_subgraph_record,
    verify_subgraph_record,
)
from repro.tensorlib.device import DEVICE_FLEET


@pytest.fixture(scope="module")
def model_commitment(mlp_graph, mlp_thresholds):
    return commit_model(mlp_graph, mlp_thresholds, metadata={"alpha": 3.0})


def test_hash_tensor_sensitive_to_values_and_dtype(rng):
    a = rng.standard_normal((3, 3)).astype(np.float32)
    assert hash_tensor(a) == hash_tensor(a.copy())
    assert hash_tensor(a) != hash_tensor(a + 1e-6)
    assert hash_tensor(a) != hash_tensor(a.astype(np.float64))


def test_interface_hash_order_sensitive(rng):
    a = rng.standard_normal(4).astype(np.float32)
    b = rng.standard_normal(4).astype(np.float32)
    assert interface_hash([a, b]) != interface_hash([b, a])


def test_weight_commitment_changes_with_any_parameter(mlp_graph):
    tree, index = commit_weights(mlp_graph.parameters)
    assert set(index) == set(mlp_graph.parameters)
    tampered = dict(mlp_graph.parameters)
    key = sorted(tampered)[0]
    tampered[key] = np.asarray(tampered[key]) + 1e-6
    tree2, _ = commit_weights(tampered)
    assert tree.root != tree2.root


def test_graph_commitment_covers_all_nodes(mlp_graph):
    tree, index = commit_graph(mlp_graph)
    assert len(index) == len(mlp_graph.graph.nodes)
    assert tree.num_leaves == len(mlp_graph.graph.nodes)


def test_threshold_commitment_changes_with_alpha(mlp_calibration, mlp_thresholds):
    from repro.calibration.thresholds import ThresholdTable

    tree_a, _ = commit_thresholds(mlp_thresholds)
    looser = ThresholdTable.from_calibration(mlp_calibration, alpha=4.0)
    tree_b, _ = commit_thresholds(looser)
    assert tree_a.root != tree_b.root


def test_model_commitment_public_view_drops_trees(model_commitment):
    public = model_commitment.public_view()
    assert public.weight_tree is None and public.graph_tree is None
    assert public.weight_root == model_commitment.weight_root
    assert public.num_operators == model_commitment.num_operators
    assert public.digest() == model_commitment.digest()


def test_execution_commitment_binds_inputs_and_outputs(model_commitment, mlp_graph,
                                                        mlp_inputs):
    trace = Interpreter(DEVICE_FLEET[0]).run(mlp_graph, mlp_inputs)
    c0 = make_execution_commitment(model_commitment, mlp_inputs, list(trace.outputs),
                                   meta={"device": "sim-rtx4090"})
    # Changing the output changes the commitment.
    altered = [trace.outputs[0] + 1e-5]
    c1 = make_execution_commitment(model_commitment, mlp_inputs, altered,
                                   meta={"device": "sim-rtx4090"})
    assert c0.value != c1.value
    # Changing the metadata changes the commitment.
    c2 = make_execution_commitment(model_commitment, mlp_inputs, list(trace.outputs),
                                   meta={"device": "sim-h100"})
    assert c0.value != c2.value
    assert c0.size_bytes() > 96


def test_subgraph_record_roundtrip(model_commitment, mlp_graph, mlp_inputs):
    trace = Interpreter(DEVICE_FLEET[0]).run(mlp_graph, mlp_inputs, record=True)
    slice_ = SubgraphSlice(1, 4)
    record = make_subgraph_record(mlp_graph, model_commitment, slice_, trace.values)
    assert record.slice.start == 1 and record.slice.end == 4
    assert record.num_merkle_proofs() == len(record.operator_proofs) + len(record.weight_proofs)
    assert record.onchain_size_bytes() > 0
    ok, checks = verify_subgraph_record(record, model_commitment)
    assert ok
    assert checks == record.num_merkle_proofs()


def test_subgraph_record_detects_tampered_boundary(model_commitment, mlp_graph, mlp_inputs):
    trace = Interpreter(DEVICE_FLEET[0]).run(mlp_graph, mlp_inputs, record=True)
    record = make_subgraph_record(mlp_graph, model_commitment, SubgraphSlice(0, 3), trace.values)
    victim = record.live_out_names[0]
    record.live_out_values[victim] = record.live_out_values[victim] + 1.0
    ok, _ = verify_subgraph_record(record, model_commitment)
    assert not ok


def test_subgraph_record_detects_wrong_model(model_commitment, mlp_graph, mlp_inputs,
                                             mlp_thresholds):
    # Commit a tampered copy of the model and try to verify its records
    # against the original roots.
    tampered_params = {k: np.asarray(v) + 1e-5 for k, v in mlp_graph.parameters.items()}
    from repro.graph.graph import GraphModule

    tampered_graph = GraphModule(graph=mlp_graph.graph, parameters=tampered_params,
                                 input_names=mlp_graph.input_names, name="tampered")
    tampered_commitment = commit_model(tampered_graph, mlp_thresholds)
    trace = Interpreter(DEVICE_FLEET[0]).run(tampered_graph, mlp_inputs, record=True)
    record = make_subgraph_record(tampered_graph, tampered_commitment, SubgraphSlice(1, 3),
                                  trace.values)
    ok, _ = verify_subgraph_record(record, model_commitment)
    assert not ok


def test_subgraph_record_requires_trees(model_commitment, mlp_graph, mlp_inputs):
    trace = Interpreter(DEVICE_FLEET[0]).run(mlp_graph, mlp_inputs, record=True)
    with pytest.raises(ValueError):
        make_subgraph_record(mlp_graph, model_commitment.public_view(), SubgraphSlice(0, 2),
                             trace.values)
