"""Every public package carries a real docstring, kept in sync with the docs.

``docs/architecture.md`` indexes the packages; each package's ``__init__.py``
docstring is the authoritative one-paragraph description.  This guard keeps
both honest: every package under ``repro`` must carry a substantive
docstring, and every package named in the architecture page's package map
must actually exist (and vice versa).
"""

from __future__ import annotations

import importlib
import pkgutil
import re
from pathlib import Path

import repro

REPO_ROOT = Path(__file__).resolve().parents[1]


def _public_packages():
    names = ["repro"]
    for info in pkgutil.iter_modules(repro.__path__, prefix="repro."):
        if info.ispkg:
            names.append(info.name)
    return names


def test_every_public_package_has_a_substantive_docstring():
    for name in _public_packages():
        module = importlib.import_module(name)
        doc = (module.__doc__ or "").strip()
        assert doc, f"package {name} has no docstring"
        # One real paragraph, not a placeholder: a headline plus prose.
        assert len(doc) >= 120, f"package {name} docstring is a stub: {doc!r}"
        assert "\n" in doc, f"package {name} docstring is a one-liner"


def test_architecture_package_map_matches_the_tree():
    text = (REPO_ROOT / "docs" / "architecture.md").read_text()
    table = re.findall(r"^\| `([^`|]+)`(?:, `([^`|]+)`)? \|", text, re.MULTILINE)
    documented = {name for row in table for name in row if name}
    actual = {name.split(".", 1)[1] for name in _public_packages() if "." in name}
    assert documented == actual, (
        f"docs/architecture.md package map out of sync: "
        f"missing={sorted(actual - documented)} stale={sorted(documented - actual)}"
    )
