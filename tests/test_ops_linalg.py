"""Forward and VJP tests for linear-algebra operators."""

import numpy as np
import pytest

from repro.ops.registry import get_op
from repro.tensorlib.device import DEVICE_FLEET, REFERENCE_DEVICE

from tests.helpers import finite_difference_vjp_check


def _run(name, *tensors, **attrs):
    return get_op(name).forward(REFERENCE_DEVICE, *tensors, **attrs)


def test_matmul_forward(rng):
    a = rng.standard_normal((6, 10)).astype(np.float32)
    b = rng.standard_normal((10, 4)).astype(np.float32)
    assert np.allclose(_run("matmul", a, b), a @ b, atol=1e-5)


def test_bmm_forward(rng):
    a = rng.standard_normal((3, 5, 7)).astype(np.float32)
    b = rng.standard_normal((3, 7, 2)).astype(np.float32)
    assert np.allclose(_run("bmm", a, b), np.matmul(a, b), atol=1e-5)


def test_linear_forward_matches_torch_layout(rng):
    x = rng.standard_normal((4, 9)).astype(np.float32)
    w = rng.standard_normal((5, 9)).astype(np.float32)   # (out, in) like torch.nn.Linear
    b = rng.standard_normal(5).astype(np.float32)
    assert np.allclose(_run("linear", x, w, b), x @ w.T + b, atol=1e-5)


def test_linear_without_bias(rng):
    x = rng.standard_normal((4, 9)).astype(np.float32)
    w = rng.standard_normal((5, 9)).astype(np.float32)
    assert np.allclose(_run("linear", x, w), x @ w.T, atol=1e-5)


def test_linear_batched_input(rng):
    x = rng.standard_normal((2, 6, 9)).astype(np.float32)
    w = rng.standard_normal((5, 9)).astype(np.float32)
    b = rng.standard_normal(5).astype(np.float32)
    out = _run("linear", x, w, b)
    assert out.shape == (2, 6, 5)
    assert np.allclose(out, x @ w.T + b, atol=1e-5)


def test_linear_consistent_across_devices_within_tolerance(rng):
    x = rng.standard_normal((8, 256)).astype(np.float32)
    w = rng.standard_normal((32, 256)).astype(np.float32)
    outs = [get_op("linear").forward(d, x, w) for d in DEVICE_FLEET]
    for out in outs[1:]:
        assert np.allclose(out, outs[0], atol=1e-3)
    # ... but not necessarily bitwise identical.
    assert len({o.tobytes() for o in outs}) >= 2


def test_matmul_vjp(rng):
    a = rng.standard_normal((4, 6))
    b = rng.standard_normal((6, 3))
    finite_difference_vjp_check("matmul", [a, b], seed=5)


def test_bmm_vjp(rng):
    a = rng.standard_normal((2, 3, 5))
    b = rng.standard_normal((2, 5, 4))
    finite_difference_vjp_check("bmm", [a, b], seed=6)


@pytest.mark.parametrize("with_bias", [True, False])
def test_linear_vjp(with_bias, rng):
    x = rng.standard_normal((3, 7))
    w = rng.standard_normal((4, 7))
    tensors = [x, w] + ([rng.standard_normal(4)] if with_bias else [])
    finite_difference_vjp_check("linear", tensors, seed=8)


def test_linear_vjp_batched(rng):
    x = rng.standard_normal((2, 3, 7))
    w = rng.standard_normal((4, 7))
    b = rng.standard_normal(4)
    finite_difference_vjp_check("linear", [x, w, b], seed=9)


def test_flop_estimates():
    a = np.zeros((4, 8), dtype=np.float32)
    b = np.zeros((8, 3), dtype=np.float32)
    spec = get_op("matmul")
    out = spec.forward(REFERENCE_DEVICE, a, b)
    assert spec.estimate_flops(out, a, b) == 2 * 4 * 3 * 8
