"""Worker-side proxy over the parent's settlement chain.

A fleet worker runs a full coordinator, and the coordinator needs a chain.
:class:`ChainClient` gives it one with exactly the split a
:class:`~repro.protocol.chain.ShardChainView` has in-process:

* **Owned locally** — the shard's block clock (``block_number`` /
  ``timestamp``, advanced one block per transaction) and a mirror of the
  transactions this shard appended.  Protocol time is a per-shard notion and
  the coordinator's per-dispute gas accounting indexes into *its own* shard's
  transaction sequence (``gas_start_index``), so both must live with the
  coordinator, not behind an RPC.
* **Delegated over RPC** — every ledger mutation (fund / transfer) and read
  (balance / balances / minted), plus the append itself: the worker ships
  its clock stamp with the call, the parent costs gas under the shared
  chain's own :class:`~repro.protocol.chain.GasSchedule` and appends under
  the chain lock (:meth:`~repro.protocol.chain.SimulatedChain.append_stamped`),
  and the returned gas figure lands in the local mirror.  Balances, the
  minted total and shard-tagged gas therefore stay exact fleet-wide.

Insufficient-balance failures re-raise as :class:`ValueError` with the
parent's message, matching the in-process chain's contract, so coordinator
escrow logic is oblivious to the process boundary.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.fleet.transport import MessageChannel
from repro.protocol.chain import GasSchedule, SimulatedChain, Transaction


class ChainClient:
    """Quacks like a :class:`~repro.protocol.chain.ShardChainView`."""

    def __init__(self, channel: MessageChannel, shard_id: str,
                 block_interval_s: float = 12.0) -> None:
        self._channel = channel
        self.shard_id = str(shard_id)
        self.block_interval_s = float(block_interval_s)
        self.block_number = 0
        self.timestamp = 0.0
        self.gas_schedule = GasSchedule()
        self._transactions: List[Transaction] = []
        #: Per-incarnation sequence id stamped on every chain call.  A
        #: worker restarted from its journal re-issues the same
        #: deterministic call stream from seq 1; the parent answers ids at
        #: or below its journal tail from the journal instead of
        #: re-applying them — at-most-once for every ledger mutation.
        self._seq = 0

    # -- per-shard protocol time (the chain's own rules, on this clock) ----

    advance_blocks = SimulatedChain.advance_blocks
    advance_time = SimulatedChain.advance_time

    @property
    def next_seq(self) -> int:
        """Sequence id the next chain call will carry.  Journal entries are
        stamped with it so a replayed worker's re-emitted write-ahead
        records land at the same position and dedupe exactly."""
        return self._seq + 1

    # -- RPC plumbing ------------------------------------------------------

    def _call(self, method: str, **kwargs: Any) -> Any:
        self._seq += 1
        self._channel.send({"kind": "chain_call", "method": method,
                            "args": kwargs, "seq": self._seq})
        reply = self._channel.recv()
        if not reply.get("ok"):
            message = str(reply.get("error", "chain call failed"))
            if reply.get("error_type") == "ValueError":
                raise ValueError(message)
            raise RuntimeError(message)
        return reply.get("value")

    # -- shared ledger state (delegated) --------------------------------

    def fund(self, account: str, amount: float) -> None:
        self._call("fund", account=account, amount=float(amount))

    def fund_once(self, account: str, amount: float) -> bool:
        return bool(self._call("fund_once", account=account,
                               amount=float(amount)))

    def transfer(self, source: str, destination: str, amount: float) -> None:
        self._call("transfer", source=source, destination=destination,
                   amount=float(amount))

    def balance(self, account: str) -> float:
        return float(self._call("balance", account=account))

    @property
    def balances(self) -> Dict[str, float]:
        return dict(self._call("balances"))

    @property
    def minted(self) -> float:
        return float(self._call("minted"))

    # -- transactions ------------------------------------------------------

    @property
    def transactions(self) -> List[Transaction]:
        """This shard's own appended transactions, in append order.

        The coordinator records ``gas_start_index = len(chain.transactions)``
        when a dispute opens and scans forward from it; the mirror is exactly
        that per-shard sequence (what a ShardChainView's shard-filtered slice
        of the global log would contain).
        """
        return self._transactions

    def submit(self, sender: str, action: str, payload_bytes: int = 0,
               storage_writes: int = 1, merkle_checks: int = 0,
               details: Optional[Dict[str, object]] = None) -> Transaction:
        """Append one shard-stamped transaction to the parent's shared log."""
        value = self._call(
            "submit", sender=sender, action=action,
            payload_bytes=int(payload_bytes),
            storage_writes=int(storage_writes),
            merkle_checks=int(merkle_checks),
            details=dict(details or {}),
            block=self.block_number, timestamp=self.timestamp,
            shard=self.shard_id,
        )
        tx = Transaction(
            index=len(self._transactions),
            block=self.block_number,
            timestamp=self.timestamp,
            sender=sender,
            action=action,
            gas_used=int(value["gas_used"]),
            payload_bytes=int(payload_bytes),
            details=dict(details or {}),
            shard=self.shard_id,
        )
        self._transactions.append(tx)
        # Every transaction lands in a (new) block, as on the parent chain.
        self.advance_blocks(1)
        return tx

    # -- accounting (this shard's own view) --------------------------------

    def total_gas(self, actions: Optional[List[str]] = None,
                  since_index: int = 0) -> int:
        txs = self._transactions[since_index:]
        if actions is not None:
            wanted = set(actions)
            txs = [tx for tx in txs if tx.action in wanted]
        return int(sum(tx.gas_used for tx in txs))

    def gas_by_action(self, since_index: int = 0) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for tx in self._transactions[since_index:]:
            out[tx.action] = out.get(tx.action, 0) + tx.gas_used
        return out

    def shard_gas(self) -> int:
        return self.total_gas()
