"""repro — reproduction of "TAO: Tolerance-Aware Optimistic Verification for
Floating-Point Neural Networks" (EuroSys 2026).

The package provides the full TAO stack built from scratch on NumPy:

* :mod:`repro.tensorlib` — FP32 kernels on simulated heterogeneous devices
  whose reduction orders genuinely diverge (the source of the floating-point
  nondeterminism TAO tolerates);
* :mod:`repro.graph` / :mod:`repro.ops` — an operator-granular traced
  dataflow graph with subgraph extraction, the PyTorch-FX analogue;
* :mod:`repro.bounds` — per-operator theoretical IEEE-754 error envelopes
  (deterministic and probabilistic);
* :mod:`repro.calibration` — cross-device empirical error percentile
  thresholds with stability diagnostics;
* :mod:`repro.merkle` — weight / graph / threshold commitments and
  verifiable subgraph records;
* :mod:`repro.protocol` — the optimistic protocol: coordinator, dispute
  game, leaf adjudication, economics, and the gas-metered simulated ledger;
* :mod:`repro.attacks` — bound-aware PGD attacks and their evaluation;
* :mod:`repro.models` / :mod:`repro.workloads` — mini-scale analogues of the
  paper's four workloads and synthetic datasets;
* :mod:`repro.runtime` — the deployable runtime facade, determinism-mode
  measurement and standalone verification helpers;
* :mod:`repro.sim` — the adversarial protocol simulator: seedable
  multi-actor fault injection with safety / liveness / conservation
  invariant checking and counterexample shrinking;
* :mod:`repro.cluster` — the sharded serving tier: consistent-hash tenant
  routing, concurrent shard workers over one settlement chain, failover
  re-dispatch — bit-identical to a single service by construction.

Quickstart::

    from repro import TAOSession, get_model_spec

    spec = get_model_spec("bert_mini")
    module = spec.build_module()
    graph = spec.trace(module)
    session = TAOSession(graph, calibration_inputs=spec.dataset(module, 10))
    session.setup()
    proposer = session.make_honest_proposer()
    report = session.run_request(spec.sample_inputs(module, 2, seed=1), proposer)
    assert report.final_status == "finalized"
"""

from repro.bounds import BoundInterpreter, BoundMode
from repro.calibration import (
    CalibrationConfig,
    Calibrator,
    CommitteeEnvelopeConfig,
    CommitteeEnvelopeProfile,
    ThresholdTable,
    calibrate_committee_envelope,
)
from repro.cluster import ConsistentHashRing, TAOCluster
from repro.engine import ExecutionEngine, ExecutionPlan
from repro.graph import GraphModule, Interpreter, Module, Parameter, Tracer, trace_module
from repro.merkle import HashCache, MerkleTree, commit_model
from repro.models import available_models, build_model, get_model_spec
from repro.protocol import (
    Coordinator,
    DisputeGame,
    EconomicParameters,
    TAOService,
    TAOSession,
    analyze_incentives,
)
from repro.runtime import TracedRuntime, measure_determinism_overhead
from repro.sim import Scenario, SimWorkload, run_scenario
from repro.tensorlib import DEVICE_FLEET, REFERENCE_DEVICE, DeviceProfile

__version__ = "1.0.0"

__all__ = [
    "BoundInterpreter",
    "BoundMode",
    "Calibrator",
    "CalibrationConfig",
    "CommitteeEnvelopeConfig",
    "CommitteeEnvelopeProfile",
    "calibrate_committee_envelope",
    "ThresholdTable",
    "ExecutionEngine",
    "ExecutionPlan",
    "GraphModule",
    "HashCache",
    "Interpreter",
    "Module",
    "Parameter",
    "Tracer",
    "trace_module",
    "MerkleTree",
    "commit_model",
    "available_models",
    "build_model",
    "get_model_spec",
    "ConsistentHashRing",
    "Coordinator",
    "DisputeGame",
    "EconomicParameters",
    "TAOCluster",
    "TAOService",
    "TAOSession",
    "analyze_incentives",
    "TracedRuntime",
    "measure_determinism_overhead",
    "Scenario",
    "SimWorkload",
    "run_scenario",
    "DEVICE_FLEET",
    "REFERENCE_DEVICE",
    "DeviceProfile",
    "__version__",
]
