"""Bounded hand-off queues with backpressure accounting.

A :class:`HandoffQueue` connects two adjacent pipeline stages.  Its capacity
bounds how far the upstream stage may run ahead of the downstream one: a
full queue blocks the producer (*backpressure*), an empty queue blocks the
consumer, and both wait times are accumulated so the pipeline's statistics
can attribute idle time to the stage imbalance that caused it.

``abort`` tears the queue down from any thread: every blocked or future
``put``/``get`` raises :class:`PipelineAborted`, which is how a stage failure
unwinds the whole worker pool without deadlocking on a bounded queue.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Optional

from repro.utils.timing import now


class PipelineAborted(RuntimeError):
    """The pipeline was torn down (a stage failed) while blocked on a queue."""


class HandoffQueue:
    """A bounded FIFO hand-off between two pipeline stages."""

    def __init__(self, capacity: int = 2, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("a hand-off queue needs capacity >= 1")
        self.name = name
        self.capacity = int(capacity)
        self._items: Deque[object] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._aborted = False
        #: Backpressure accounting: producer seconds blocked on a full queue,
        #: consumer seconds blocked on an empty one, high-water occupancy.
        self.put_wait_s = 0.0
        self.get_wait_s = 0.0
        self.max_depth = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def put(self, item: object) -> None:
        """Enqueue ``item``; blocks while the queue is full (backpressure)."""
        with self._not_full:
            if self._aborted:
                raise PipelineAborted(self.name)
            if len(self._items) >= self.capacity:
                started = now()
                while len(self._items) >= self.capacity and not self._aborted:
                    self._not_full.wait()
                self.put_wait_s += now() - started
            if self._aborted:
                raise PipelineAborted(self.name)
            self._items.append(item)
            self.max_depth = max(self.max_depth, len(self._items))
            self._not_empty.notify()

    def get(self) -> object:
        """Dequeue the oldest item; blocks while the queue is empty."""
        with self._not_empty:
            if not self._items:
                started = now()
                while not self._items and not self._aborted:
                    self._not_empty.wait()
                self.get_wait_s += now() - started
            if self._aborted:
                raise PipelineAborted(self.name)
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def abort(self) -> None:
        """Wake every blocked producer/consumer with :class:`PipelineAborted`."""
        with self._lock:
            self._aborted = True
            self._not_full.notify_all()
            self._not_empty.notify_all()
