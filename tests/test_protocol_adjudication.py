"""Unit tests for single-operator adjudication (Phase 3)."""

import numpy as np
import pytest

from repro.bounds.fp_model import BoundMode
from repro.calibration import CommitteeEnvelopeConfig, calibrate_committee_envelope
from repro.graph.interpreter import Interpreter
from repro.graph.node import Node
from repro.protocol.adjudication import (
    AdjudicationDecision,
    committee_vote,
    committee_vote_reference,
    route_and_adjudicate,
    theoretical_bound_check,
)
from repro.protocol.roles import CommitteeMember, CommitteeVoteRecord
from repro.tensorlib.device import DEVICE_FLEET


def _leaf_state(mlp_graph, mlp_inputs, op_target="linear_1", device=DEVICE_FLEET[0]):
    """Return (operator name, operand values, honest output) from a proposer trace."""
    trace = Interpreter(device).run(mlp_graph, mlp_inputs, record=True)
    node = mlp_graph.graph.node(op_target)
    operands = []
    for arg in node.args:
        if isinstance(arg, Node):
            if arg.op == "get_param":
                operands.append(np.asarray(mlp_graph.parameters[arg.target]))
            else:
                operands.append(trace.values[arg.name])
        else:
            operands.append(arg)
    return node.name, operands, trace.values[node.name]


@pytest.fixture(scope="module")
def committee():
    return [CommitteeMember(f"cm{i}", DEVICE_FLEET[i % len(DEVICE_FLEET)]) for i in range(3)]


def test_theoretical_check_accepts_honest_cross_device_output(mlp_graph, mlp_inputs):
    name, operands, honest_output = _leaf_state(mlp_graph, mlp_inputs, device=DEVICE_FLEET[0])
    # Challenger re-executes on a different device: divergence is pure FP noise.
    result = theoretical_bound_check(mlp_graph, name, operands, honest_output,
                                     device=DEVICE_FLEET[3])
    assert result.decision is AdjudicationDecision.PROPOSER_HONEST
    assert result.max_violation_ratio <= 1.0
    assert result.path == "theoretical_bound"
    assert result.flops > 0


def test_theoretical_check_rejects_large_perturbation(mlp_graph, mlp_inputs):
    name, operands, honest_output = _leaf_state(mlp_graph, mlp_inputs)
    result = theoretical_bound_check(mlp_graph, name, operands, honest_output + 0.01,
                                     device=DEVICE_FLEET[1])
    assert result.proposer_cheated
    assert result.max_violation_ratio > 1.0


def test_theoretical_check_deterministic_mode_is_more_permissive(mlp_graph, mlp_inputs):
    name, operands, honest_output = _leaf_state(mlp_graph, mlp_inputs)
    perturbed = honest_output + np.float32(2e-6)
    prob = theoretical_bound_check(mlp_graph, name, operands, perturbed,
                                   device=DEVICE_FLEET[1], mode=BoundMode.PROBABILISTIC)
    det = theoretical_bound_check(mlp_graph, name, operands, perturbed,
                                  device=DEVICE_FLEET[1], mode=BoundMode.DETERMINISTIC)
    assert det.max_violation_ratio <= prob.max_violation_ratio


def test_committee_vote_accepts_honest_and_rejects_cheat(mlp_graph, mlp_inputs, mlp_thresholds,
                                                         committee):
    name, operands, honest_output = _leaf_state(mlp_graph, mlp_inputs)
    accept = committee_vote(mlp_graph, name, operands, honest_output, committee, mlp_thresholds)
    assert accept.decision is AdjudicationDecision.PROPOSER_HONEST
    assert accept.details["votes_for"] == len(committee)

    reject = committee_vote(mlp_graph, name, operands, honest_output + 0.01,
                            committee, mlp_thresholds)
    assert reject.proposer_cheated
    assert reject.details["votes_for"] < len(committee)
    assert len(reject.committee_votes) == len(committee)


def test_committee_vote_requires_members(mlp_graph, mlp_inputs, mlp_thresholds):
    name, operands, honest_output = _leaf_state(mlp_graph, mlp_inputs)
    with pytest.raises(ValueError):
        committee_vote(mlp_graph, name, operands, honest_output, [], mlp_thresholds)


def test_routing_with_empty_committee_raises_for_subtle_claims(mlp_graph, mlp_inputs,
                                                               mlp_thresholds):
    """A claim inside tau_theo must reach the committee; with no members the
    routing cannot adjudicate and surfaces the configuration error."""
    name, operands, honest_output = _leaf_state(mlp_graph, mlp_inputs)
    with pytest.raises(ValueError, match="at least one member"):
        route_and_adjudicate(mlp_graph, name, operands, honest_output,
                             challenger_device=DEVICE_FLEET[2], committee=[],
                             thresholds=mlp_thresholds)


class _YesMember(CommitteeMember):
    """Always votes for the proposer (vote-splitting test double)."""

    def vote(self, graph_module, operator_name, operand_values, proposer_output,
             thresholds, committee_envelope=None):
        return CommitteeVoteRecord(self.name, True, None)


def test_tie_vote_resolves_against_the_proposer(mlp_graph, mlp_inputs,
                                                mlp_thresholds):
    """An even committee splitting 1-1 has no majority *for* the proposer:
    acceptance requires a strict majority, so ties slash."""
    name, operands, honest_output = _leaf_state(mlp_graph, mlp_inputs)
    split = [_YesMember("yes", DEVICE_FLEET[0]),
             CommitteeMember("honest", DEVICE_FLEET[1])]
    result = committee_vote(mlp_graph, name, operands, honest_output + 0.01,
                            split, mlp_thresholds)
    assert result.details["votes_for"] == 1
    assert result.details["votes_total"] == 2
    assert result.proposer_cheated

    # The same even committee unanimous for an honest claim still accepts.
    accept = committee_vote(mlp_graph, name, operands, honest_output,
                            split, mlp_thresholds)
    assert accept.details["votes_for"] == 2
    assert not accept.proposer_cheated


def test_theoretical_vs_committee_routing_boundary(mlp_graph, mlp_inputs,
                                                   mlp_thresholds, committee):
    """Claims straddling tau_theo route to different paths: just outside the
    IEEE envelope settles on the theoretical check, just inside falls through
    to the committee."""
    from repro.bounds.coexec import BoundInterpreter

    name, operands, honest_output = _leaf_state(mlp_graph, mlp_inputs)
    reference, tau = BoundInterpreter(DEVICE_FLEET[2]).bound_single_operator(
        mlp_graph, name, operands)
    just_outside = (reference + 1.5 * tau).astype(np.float32)
    just_inside = (reference + 0.5 * tau).astype(np.float32)

    outside = route_and_adjudicate(mlp_graph, name, operands, just_outside,
                                   challenger_device=DEVICE_FLEET[2],
                                   committee=committee, thresholds=mlp_thresholds)
    assert outside.path == "theoretical_bound"
    assert outside.proposer_cheated

    inside = route_and_adjudicate(mlp_graph, name, operands, just_inside,
                                  challenger_device=DEVICE_FLEET[2],
                                  committee=committee, thresholds=mlp_thresholds)
    assert inside.path == "committee_vote"


# ----------------------------------------------------------------------
# Calibrated committee envelope at the leaf
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def committee_envelope(mlp_graph, mlp_input_factory):
    return calibrate_committee_envelope(
        mlp_graph, [mlp_input_factory(1000 + i) for i in range(8)],
        CommitteeEnvelopeConfig(devices=DEVICE_FLEET),
    )


def test_committee_vote_reference_is_the_envelope_free_path(
        mlp_graph, mlp_inputs, mlp_thresholds, committee):
    """The reference entry point equals committee_vote without an envelope."""
    name, operands, honest_output = _leaf_state(mlp_graph, mlp_inputs)
    ref = committee_vote_reference(mlp_graph, name, operands, honest_output,
                                   committee, mlp_thresholds)
    plain = committee_vote(mlp_graph, name, operands, honest_output,
                           committee, mlp_thresholds, committee_envelope=None)
    assert ref.details["envelope"] == "reference"
    assert ref.decision is plain.decision
    assert ref.max_violation_ratio == plain.max_violation_ratio
    assert [v.within_threshold for v in ref.committee_votes] == \
        [v.within_threshold for v in plain.committee_votes]


def test_calibrated_envelope_vote_is_marked_and_accepts_honest(
        mlp_graph, mlp_inputs, mlp_thresholds, committee, committee_envelope):
    name, operands, honest_output = _leaf_state(mlp_graph, mlp_inputs)
    result = committee_vote(mlp_graph, name, operands, honest_output,
                            committee, mlp_thresholds,
                            committee_envelope=committee_envelope)
    assert result.details["envelope"] == "calibrated"
    assert not result.proposer_cheated
    # Members really consulted the envelope: every report carries a finite
    # ratio measured against it, not an abstention.
    assert all(v.report is not None for v in result.committee_votes)


def test_calibrated_envelope_catches_tamper_inside_full_trace_tolerance(
        mlp_graph, mlp_inputs, mlp_thresholds, committee, committee_envelope):
    """A tamper riding inside the committed full-trace tolerance is caught
    by the single-op envelope — the ROADMAP escape mechanism, reproduced at
    the adjudication level.

    The perturbation is projected onto the committed cap curve at half the
    tolerance edge (the simulator's ``bound_edge`` shape), so its percentile
    profile sits under the full-trace thresholds by construction; the
    committee's own re-execution of the (bit-deterministic) operator exposes
    it immediately.
    """
    from repro.sim.faults import bound_edge_delta

    name, operands, honest_output = _leaf_state(mlp_graph, mlp_inputs,
                                                op_target="gelu")
    delta = bound_edge_delta(honest_output, mlp_thresholds, name,
                             edge_factor=0.5, seed=99)
    tampered = (honest_output + delta).astype(np.float32)
    assert float(np.abs(delta).max()) > 0

    reference = committee_vote_reference(mlp_graph, name, operands, tampered,
                                         committee, mlp_thresholds)
    calibrated = committee_vote(mlp_graph, name, operands, tampered,
                                committee, mlp_thresholds,
                                committee_envelope=committee_envelope)
    assert not reference.proposer_cheated  # escapes the fixed tolerance
    assert calibrated.proposer_cheated     # caught by the leaf envelope


def test_routing_uses_theoretical_path_for_gross_violations(mlp_graph, mlp_inputs,
                                                            mlp_thresholds, committee):
    name, operands, honest_output = _leaf_state(mlp_graph, mlp_inputs)
    result = route_and_adjudicate(mlp_graph, name, operands, honest_output + 0.05,
                                  challenger_device=DEVICE_FLEET[2], committee=committee,
                                  thresholds=mlp_thresholds)
    assert result.path == "theoretical_bound"
    assert result.proposer_cheated


def test_routing_falls_back_to_committee_for_subtle_claims(mlp_graph, mlp_inputs,
                                                           mlp_thresholds, committee):
    name, operands, honest_output = _leaf_state(mlp_graph, mlp_inputs)
    result = route_and_adjudicate(mlp_graph, name, operands, honest_output,
                                  challenger_device=DEVICE_FLEET[2], committee=committee,
                                  thresholds=mlp_thresholds)
    assert result.path == "committee_vote"
    assert result.decision is AdjudicationDecision.PROPOSER_HONEST
    assert "theoretical_max_ratio" in result.details


def test_routing_committee_catches_within_theoretical_but_outside_empirical(
        mlp_graph, mlp_inputs, mlp_thresholds, committee):
    """A perturbation small enough to hide inside tau_theo is still caught by the
    (much tighter) empirical committee vote — the paper's motivation for path (ii)."""
    name, operands, honest_output = _leaf_state(mlp_graph, mlp_inputs, op_target="linear")
    from repro.bounds.coexec import BoundInterpreter

    reference, tau = BoundInterpreter(DEVICE_FLEET[2]).bound_single_operator(
        mlp_graph, name, operands)
    sneaky = (reference + 0.5 * tau).astype(np.float32)  # inside tau_theo everywhere
    result = route_and_adjudicate(mlp_graph, name, operands, sneaky,
                                  challenger_device=DEVICE_FLEET[2], committee=committee,
                                  thresholds=mlp_thresholds)
    assert result.path == "committee_vote"
    assert result.proposer_cheated
