"""TAOService demo: a mixed request stream through the batched service layer.

This drives the multi-request front end end to end on the MiniBERT workload:

1. register the model with the service (calibrate, commit, build standing
   proposer/challenger roles — all once, not per request);
2. submit a mixed stream: unique honest requests, repeated payloads (served
   from the content-addressed result cache), one cheating proposer and one
   spamming force-challenge;
3. process the queue — batched execution where certified, multiplexed
   dispute games over the shared coordinator, one finalization sweep;
4. print per-request outcomes and the service throughput statistics.

Run with:  python examples/service_throughput.py
"""

from __future__ import annotations

import numpy as np

from repro import TAOService, get_model_spec


def main() -> None:
    spec = get_model_spec("bert_mini")
    module = spec.build_module()
    graph = spec.trace(module, batch_size=1)

    service = TAOService()
    session = service.register_model(
        graph, calibration_inputs=spec.dataset(module, 10, seed=7, batch_size=1)
    )
    print(f"Registered {spec.paper_analogue} analogue with the service: "
          f"{graph.num_operators} operators committed once, roles standing by.")

    # A mixed stream: 6 unique requests, then the first payload repeated 4x.
    payloads = [spec.sample_inputs(module, 1, seed=100 + i) for i in range(6)]
    request_ids = service.submit_many("bert_mini", payloads)
    repeated = spec.sample_inputs(module, 1, seed=100)  # same content as payloads[0]
    request_ids += service.submit_many("bert_mini", [repeated] * 4)

    # One cheating proposer (perturbs a linear output) and one spammer.
    victim = next(n.name for n in graph.graph.operators if n.target == "linear")
    cheater = session.make_adversarial_proposer(
        "cheating-provider", {victim: np.float32(0.05)})
    cheat_id = service.submit("bert_mini", spec.sample_inputs(module, 1, seed=777),
                              proposer=cheater)
    spam_id = service.submit("bert_mini", spec.sample_inputs(module, 1, seed=778),
                             force_challenge=True)

    processed = service.process()
    print(f"\nProcessed {len(processed)} requests:")
    for request in processed:
        flags = []
        if request.cache_hit:
            flags.append("cache-hit")
        if request.batched:
            flags.append("batched")
        if request.report.dispute is not None:
            flags.append(f"dispute->{request.report.dispute.localized_operator}")
        print(f"  #{request.request_id:<3} {request.status:<20} {' '.join(flags)}")

    cheat = service.request(cheat_id)
    print(f"\nCheater localized at {cheat.report.dispute.localized_operator} "
          f"(injected at {victim}); status={cheat.status}")
    print(f"Spamming challenger: status={service.request(spam_id).status}")

    stats = service.stats()
    print(f"\nService statistics:")
    print(f"  completed         : {stats.requests_completed}")
    print(f"  cache hits        : {stats.cache_hits}")
    print(f"  batched requests  : {stats.batched_requests}")
    print(f"  disputes opened   : {stats.disputes_opened}")
    print(f"  throughput        : {stats.throughput_rps:.1f} requests/s")
    print(f"  mean latency      : {stats.mean_latency_s * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
