"""Reverse-mode differentiation through traced graphs.

The attack needs gradients of the output logit margin with respect to chosen
*intermediate activations* (the perturbation sites), not with respect to the
model inputs.  :class:`GraphBackward` replays a recorded execution in reverse
topological order, calling each operator's registered VJP, and returns the
accumulated gradient at every requested node.  All gradient arithmetic runs
in float64 — the adversary is not bound by the victim's precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

import numpy as np

from repro.graph.graph import GraphModule
from repro.graph.node import Node
from repro.ops.registry import get_op
from repro.tensorlib.device import DeviceProfile, REFERENCE_DEVICE


class GraphBackward:
    """Backpropagates output gradients to intermediate nodes of a traced graph."""

    def __init__(self, graph_module: GraphModule,
                 device: DeviceProfile = REFERENCE_DEVICE) -> None:
        self.graph_module = graph_module
        self.device = device

    def run(
        self,
        env: Mapping[str, np.ndarray],
        output_gradients: Mapping[str, np.ndarray],
        wanted: Optional[Iterable[str]] = None,
    ) -> Dict[str, np.ndarray]:
        """Backpropagate ``output_gradients`` through a recorded execution.

        Parameters
        ----------
        env:
            The recorded forward environment (node name -> value), e.g.
            ``ExecutionTrace.values`` from a run with ``record=True``.
        output_gradients:
            Seed gradients keyed by node name (typically the logits node).
        wanted:
            Node names whose accumulated gradient should be returned; when
            omitted, gradients for every node reached by backpropagation are
            returned.
        """
        graph = self.graph_module.graph
        wanted_set: Optional[Set[str]] = set(wanted) if wanted is not None else None
        grads: Dict[str, np.ndarray] = {
            name: np.asarray(g, dtype=np.float64) for name, g in output_gradients.items()
        }

        for node in reversed(graph.nodes):
            if node.op != "call_op":
                continue
            grad_out = grads.get(node.name)
            if grad_out is None:
                continue
            spec = get_op(node.target)
            if spec.vjp is None:
                continue
            arg_values: List[object] = []
            for arg in node.args:
                if isinstance(arg, Node):
                    arg_values.append(env[arg.name])
                else:
                    arg_values.append(arg)
            out_value = env[node.name]
            input_grads = spec.vjp(self.device, grad_out, out_value, *arg_values, **node.kwargs)
            if len(input_grads) != len(node.args):
                raise RuntimeError(
                    f"vjp for {node.target!r} returned {len(input_grads)} gradients "
                    f"for {len(node.args)} inputs"
                )
            for arg, grad in zip(node.args, input_grads):
                if grad is None or not isinstance(arg, Node):
                    continue
                if arg.op in ("get_param", "constant"):
                    # The adversary cannot modify committed weights or traced
                    # constants (Merkle commitments forbid it), so those
                    # gradients are irrelevant to the attack.
                    continue
                existing = grads.get(arg.name)
                grad64 = np.asarray(grad, dtype=np.float64)
                grads[arg.name] = grad64 if existing is None else existing + grad64

        if wanted_set is None:
            return grads
        return {name: grads[name] for name in wanted_set if name in grads}


def margin_gradients(
    graph_module: GraphModule,
    env: Mapping[str, np.ndarray],
    logits_node: str,
    original_class: int,
    target_class: int,
    perturbation_nodes: Sequence[str],
    batch_index: int = 0,
    device: DeviceProfile = REFERENCE_DEVICE,
) -> Dict[str, np.ndarray]:
    """Gradient of ``L_margin = z_target - z_original`` w.r.t. the chosen nodes.

    ``env`` must contain the logits node; the seed gradient is +1 at the
    target class and -1 at the originally predicted class for the selected
    batch row (Eq. 10).
    """
    logits = np.asarray(env[logits_node], dtype=np.float64)
    seed = np.zeros_like(logits)
    # Accumulate rather than assign so the degenerate case target == original
    # correctly yields a zero seed (the margin is identically zero there).
    seed[batch_index, target_class] += 1.0
    seed[batch_index, original_class] -= 1.0
    backward = GraphBackward(graph_module, device=device)
    return backward.run(env, {logits_node: seed}, wanted=perturbation_nodes)
