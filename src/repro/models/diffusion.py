"""MiniUNet + DDIM-style sampler: the Stable Diffusion v1-5 analogue.

The traced artifact is one denoiser (UNet) forward pass — noise prediction
from a noisy latent and a timestep embedding — built from the operator
families of a diffusion UNet: conv2d, GroupNorm, SiLU, residual adds,
sinusoidal time embeddings, downsampling via strided conv, nearest-neighbour
upsampling and skip-connection concatenation.  :class:`DiffusionSampler`
drives multi-step DDIM-style sampling by repeatedly executing the traced
graph, which is how the paper's multi-step workloads layer time on top of the
per-step dispute game (Sec. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph import functional as F
from repro.graph.graph import GraphModule
from repro.graph.interpreter import Interpreter
from repro.graph.module import Module, Parameter
from repro.tensorlib.device import DeviceProfile, REFERENCE_DEVICE
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class UNetConfig:
    """Architecture hyperparameters of MiniUNet."""

    in_channels: int = 3
    base_channels: int = 8
    channel_multipliers: Tuple[int, ...] = (1, 2)
    image_size: int = 16
    time_embed_dim: int = 16
    groups: int = 4
    num_timesteps: int = 50
    seed: int = 3

    @classmethod
    def small(cls) -> "UNetConfig":
        return cls()


def _kaiming(rng: np.random.Generator, shape) -> np.ndarray:
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else int(shape[0])
    return (rng.standard_normal(shape) * np.sqrt(2.0 / max(fan_in, 1))).astype(np.float32)


def sinusoidal_time_embedding(timesteps: np.ndarray, dim: int) -> np.ndarray:
    """Standard sinusoidal timestep features of shape (batch, dim)."""
    timesteps = np.asarray(timesteps, dtype=np.float64).reshape(-1)
    half = dim // 2
    freqs = np.exp(-np.log(10_000.0) * np.arange(half, dtype=np.float64) / max(half - 1, 1))
    args = timesteps[:, None] * freqs[None, :]
    embedding = np.concatenate([np.sin(args), np.cos(args)], axis=-1)
    if dim % 2 == 1:
        embedding = np.pad(embedding, ((0, 0), (0, 1)))
    return embedding.astype(np.float32)


class ResidualBlock(Module):
    """GroupNorm -> SiLU -> conv, with a time-embedding injection and skip."""

    def __init__(self, rng: np.random.Generator, in_ch: int, out_ch: int,
                 time_dim: int, groups: int) -> None:
        super().__init__()
        self.groups = min(groups, in_ch)
        self.out_groups = min(groups, out_ch)
        self.norm1_weight = Parameter(np.ones(in_ch))
        self.norm1_bias = Parameter(np.zeros(in_ch))
        self.conv1_weight = Parameter(_kaiming(rng, (out_ch, in_ch, 3, 3)))
        self.conv1_bias = Parameter(np.zeros(out_ch))
        self.time_weight = Parameter(_kaiming(rng, (out_ch, time_dim)))
        self.time_bias = Parameter(np.zeros(out_ch))
        self.norm2_weight = Parameter(np.ones(out_ch))
        self.norm2_bias = Parameter(np.zeros(out_ch))
        self.conv2_weight = Parameter(_kaiming(rng, (out_ch, out_ch, 3, 3)))
        self.conv2_bias = Parameter(np.zeros(out_ch))
        self.has_projection = in_ch != out_ch
        if self.has_projection:
            self.proj_weight = Parameter(_kaiming(rng, (out_ch, in_ch, 1, 1)))
            self.proj_bias = Parameter(np.zeros(out_ch))

    def forward(self, x, time_embed):
        residual = x
        h = F.group_norm(x, self.norm1_weight, self.norm1_bias, num_groups=self.groups)
        h = F.silu(h)
        h = F.conv2d(h, self.conv1_weight, self.conv1_bias, stride=(1, 1), padding=(1, 1))
        t = F.linear(F.silu(time_embed), self.time_weight, self.time_bias)
        batch = time_embed.shape[0]
        t = F.reshape(t, shape=(batch, self.conv1_weight.shape[0], 1, 1))
        h = F.add(h, t)
        h = F.group_norm(h, self.norm2_weight, self.norm2_bias, num_groups=self.out_groups)
        h = F.silu(h)
        h = F.conv2d(h, self.conv2_weight, self.conv2_bias, stride=(1, 1), padding=(1, 1))
        if self.has_projection:
            residual = F.conv2d(residual, self.proj_weight, self.proj_bias,
                                stride=(1, 1), padding=(0, 0))
        return F.add(h, residual)


class MiniUNet(Module):
    """Small UNet noise predictor (the Stable Diffusion UNet stand-in)."""

    def __init__(self, config: UNetConfig = UNetConfig()) -> None:
        super().__init__()
        self.config = config
        rng = seeded_rng(config.seed)
        base = config.base_channels
        time_dim = config.time_embed_dim

        self.time_w1 = Parameter(_kaiming(rng, (time_dim, time_dim)))
        self.time_b1 = Parameter(np.zeros(time_dim))
        self.time_w2 = Parameter(_kaiming(rng, (time_dim, time_dim)))
        self.time_b2 = Parameter(np.zeros(time_dim))

        self.stem_weight = Parameter(_kaiming(rng, (base, config.in_channels, 3, 3)))
        self.stem_bias = Parameter(np.zeros(base))

        channels = [base * m for m in config.channel_multipliers]
        self.down_blocks: List[ResidualBlock] = []
        self.down_convs: List[Tuple[Parameter, Parameter]] = []
        in_ch = base
        for level, out_ch in enumerate(channels):
            block = ResidualBlock(rng, in_ch, out_ch, time_dim, config.groups)
            self.add_module(f"down{level}", block)
            self.down_blocks.append(block)
            if level < len(channels) - 1:
                w = Parameter(_kaiming(rng, (out_ch, out_ch, 3, 3)))
                b = Parameter(np.zeros(out_ch))
                setattr(self, f"downsample{level}_weight", w)
                setattr(self, f"downsample{level}_bias", b)
                self.down_convs.append((w, b))
            in_ch = out_ch

        self.mid_block = ResidualBlock(rng, in_ch, in_ch, time_dim, config.groups)

        self.up_blocks: List[ResidualBlock] = []
        for level, out_ch in enumerate(reversed(channels[:-1])):
            block = ResidualBlock(rng, in_ch + out_ch, out_ch, time_dim, config.groups)
            self.add_module(f"up{level}", block)
            self.up_blocks.append(block)
            in_ch = out_ch

        self.out_norm_weight = Parameter(np.ones(in_ch))
        self.out_norm_bias = Parameter(np.zeros(in_ch))
        self.out_conv_weight = Parameter(_kaiming(rng, (config.in_channels, in_ch, 3, 3)))
        self.out_conv_bias = Parameter(np.zeros(config.in_channels))

    def forward(self, noisy_latent, time_features):
        time_embed = F.silu(F.linear(time_features, self.time_w1, self.time_b1))
        time_embed = F.linear(time_embed, self.time_w2, self.time_b2)

        h = F.conv2d(noisy_latent, self.stem_weight, self.stem_bias,
                     stride=(1, 1), padding=(1, 1))
        skips = []
        for level, block in enumerate(self.down_blocks):
            h = block(h, time_embed)
            skips.append(h)
            if level < len(self.down_convs):
                w, b = self.down_convs[level]
                h = F.conv2d(h, w, b, stride=(2, 2), padding=(1, 1))

        h = self.mid_block(h, time_embed)

        for level, block in enumerate(self.up_blocks):
            h = F.upsample_nearest(h, scale_factor=2)
            skip = skips[len(self.down_blocks) - 2 - level]
            h = F.concat([h, skip], axis=1)
            h = block(h, time_embed)

        h = F.group_norm(h, self.out_norm_weight, self.out_norm_bias,
                         num_groups=min(self.config.groups, h.shape[1]))
        h = F.silu(h)
        return F.conv2d(h, self.out_conv_weight, self.out_conv_bias,
                        stride=(1, 1), padding=(1, 1))

    def example_inputs(self, batch_size: int = 1, seed: int = 123,
                       timestep: Optional[int] = None) -> Dict[str, np.ndarray]:
        rng = seeded_rng(seed)
        latent = rng.standard_normal(
            (batch_size, self.config.in_channels, self.config.image_size, self.config.image_size)
        ).astype(np.float32)
        t = self.config.num_timesteps - 1 if timestep is None else int(timestep)
        time_features = sinusoidal_time_embedding(
            np.full((batch_size,), t), self.config.time_embed_dim
        )
        return {"noisy_latent": latent, "time_features": time_features}


class DiffusionSampler:
    """DDIM-style deterministic sampler driving a traced MiniUNet graph.

    Each denoising step is one execution of the committed graph, so in the
    protocol's multi-step extension (Sec. 7) every step can be committed and
    disputed independently with prefix finality.
    """

    def __init__(self, graph_module: GraphModule, config: UNetConfig,
                 device: DeviceProfile = REFERENCE_DEVICE) -> None:
        self.graph_module = graph_module
        self.config = config
        self.interpreter = Interpreter(device)
        # Linear beta schedule -> alpha-bar products used by DDIM updates.
        betas = np.linspace(1e-4, 2e-2, config.num_timesteps, dtype=np.float64)
        alphas = 1.0 - betas
        self.alpha_bars = np.cumprod(alphas)

    def sample(self, batch_size: int = 1, num_steps: int = 5, seed: int = 0
               ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Run ``num_steps`` denoising steps; returns (final latent, per-step latents)."""
        if num_steps < 1:
            raise ValueError("num_steps must be at least 1")
        rng = seeded_rng(seed)
        latent = rng.standard_normal(
            (batch_size, self.config.in_channels, self.config.image_size, self.config.image_size)
        ).astype(np.float32)
        timesteps = np.linspace(self.config.num_timesteps - 1, 0, num_steps).astype(int)
        trajectory: List[np.ndarray] = []
        for i, t in enumerate(timesteps):
            time_features = sinusoidal_time_embedding(
                np.full((batch_size,), t), self.config.time_embed_dim
            )
            trace = self.interpreter.run(
                self.graph_module,
                {"noisy_latent": latent, "time_features": time_features},
            )
            noise_pred = trace.output.astype(np.float64)
            alpha_bar = self.alpha_bars[t]
            prev_t = timesteps[i + 1] if i + 1 < len(timesteps) else 0
            alpha_bar_prev = self.alpha_bars[prev_t] if i + 1 < len(timesteps) else 1.0
            x0 = (latent - np.sqrt(1.0 - alpha_bar) * noise_pred) / np.sqrt(alpha_bar)
            latent = (np.sqrt(alpha_bar_prev) * x0
                      + np.sqrt(1.0 - alpha_bar_prev) * noise_pred).astype(np.float32)
            trajectory.append(latent.copy())
        return latent, trajectory
