"""Committee-envelope calibration sweep: false slashes vs escapes.

The committee leaf's acceptance envelope
(:mod:`repro.calibration.committee`) has one main knob: the across-sample
``envelope_percentile`` at which the per-operator single-op spreads
aggregate (100 = the max envelope, mirroring Eqs. 5-6; lower values tighten
it).  This benchmark charts both error rates of the leaf as that knob moves,
against the pre-calibration *reference* tolerance (the full-trace threshold
table) that produced the ROADMAP's rare-seed false verdicts:

* **false-slash rate** — honest leaf claims (fresh inputs, every proposer
  device in the fleet) judged cheating;
* **escape rate** — tampered claims (low-mantissa bit flips far outside any
  honest spread, and cap-curve ``bound_edge`` perturbations riding *inside*
  the committed full-trace tolerance) judged honest.

Because a lower percentile only ever tightens every threshold pointwise,
false slashes are monotonically nonincreasing and escapes nondecreasing in
the percentile — asserted below, together with the headline gate: at the
default (p100, safety 3) the calibrated envelope adjudicates every honest
claim honest and every bit-flip tamper cheating, while the reference
tolerance demonstrably lets cap-curve tampers escape.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.calibration import CommitteeEnvelopeConfig, calibrate_committee_envelope
from repro.calibration.committee import leaf_operands
from repro.graph.interpreter import Interpreter
from repro.protocol.adjudication import committee_vote, committee_vote_reference
from repro.protocol.roles import CommitteeMember
from repro.sim.faults import bound_edge_delta, flip_low_bits
from repro.tensorlib.device import DEVICE_FLEET

from benchmarks.reporting import emit_table

ENVELOPE_PERCENTILES = (50.0, 90.0, 99.0, 100.0)
CALIBRATION_SAMPLES = 8
HELD_OUT_INPUTS = 2
#: Deterministic operator subsample bound (every graph operator up to this
#: many, evenly strided) to keep the sweep CPU-friendly on MiniBERT.
MAX_OPERATORS = 24
BIT_FLIP_BITS = 18
BOUND_EDGE_FACTOR = 0.5


def _subsampled_operators(graph) -> List:
    operators = list(graph.graph.operators)
    if len(operators) <= MAX_OPERATORS:
        return operators
    stride = max(1, len(operators) // MAX_OPERATORS)
    return operators[::stride][:MAX_OPERATORS]


def _leaf_trials(bench_model):
    """(operator, operands, honest claim, tampered claims) per trial."""
    graph = bench_model.graph
    trials = []
    for i in range(HELD_OUT_INPUTS):
        inputs = bench_model.inputs(seed=90_000 + i)
        for d, proposer_device in enumerate(DEVICE_FLEET):
            trace = Interpreter(proposer_device).run(graph, inputs, record=True)
            for node in _subsampled_operators(graph):
                honest = np.asarray(trace.values[node.name])
                if honest.dtype.kind in "iub":
                    continue
                operands = leaf_operands(graph, node, trace.values)
                seed = 90_000 + i * 101 + d * 11
                tampered = {
                    "bit_flip": flip_low_bits(honest, BIT_FLIP_BITS, seed),
                }
                if bench_model.thresholds.has_operator(node.name):
                    delta = bound_edge_delta(honest, bench_model.thresholds,
                                             node.name, BOUND_EDGE_FACTOR, seed)
                    tampered["bound_edge"] = (honest + delta).astype(np.float32)
                trials.append((node.name, operands, honest, tampered))
    return trials


def _adjudicate_all(bench_model, trials, committee, envelope) -> Dict[str, float]:
    """Run every trial through the requested leaf; return the error rates."""
    graph, thresholds = bench_model.graph, bench_model.thresholds

    def vote(name, operands, claim) -> bool:
        if envelope is None:
            result = committee_vote_reference(graph, name, operands, claim,
                                              committee, thresholds)
        else:
            result = committee_vote(graph, name, operands, claim, committee,
                                    thresholds, committee_envelope=envelope)
        return result.proposer_cheated

    false_slashes = honest_total = 0
    escapes: Dict[str, int] = {}
    totals: Dict[str, int] = {}
    for name, operands, honest, tampered in trials:
        honest_total += 1
        if vote(name, operands, honest):
            false_slashes += 1
        for kind, claim in tampered.items():
            if np.array_equal(claim, honest):
                continue  # the fault projected to a no-op on this operator
            totals[kind] = totals.get(kind, 0) + 1
            if not vote(name, operands, claim):
                escapes[kind] = escapes.get(kind, 0) + 1
    rates = {"false_slash": false_slashes / max(honest_total, 1)}
    for kind in sorted(totals):
        rates[f"escape_{kind}"] = escapes.get(kind, 0) / totals[kind]
    rates["honest_trials"] = honest_total
    return rates


def test_committee_envelope_sweep(benchmark, bench_bert):
    committee = [CommitteeMember(f"cm{i}", DEVICE_FLEET[i % len(DEVICE_FLEET)])
                 for i in range(3)]
    dataset = bench_bert.dataset(CALIBRATION_SAMPLES, seed=17)

    def run():
        trials = _leaf_trials(bench_bert)
        rows = []
        rows.append({"envelope": "reference (full-trace table)",
                     **_adjudicate_all(bench_bert, trials, committee, None)})
        for percentile in ENVELOPE_PERCENTILES:
            envelope = calibrate_committee_envelope(
                bench_bert.graph, dataset,
                CommitteeEnvelopeConfig(devices=DEVICE_FLEET,
                                        envelope_percentile=percentile),
            )
            rows.append({"envelope": f"calibrated p{percentile:g}",
                         **_adjudicate_all(bench_bert, trials, committee, envelope)})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    emit_table(
        "committee_envelope",
        "Committee leaf: false-slash / escape rates vs envelope percentile (MiniBERT)",
        ["envelope", "false-slash rate", "escape rate (bit_flip)",
         "escape rate (bound_edge)", "honest trials"],
        [[r["envelope"], r["false_slash"], r.get("escape_bit_flip", 0.0),
          r.get("escape_bound_edge", 0.0), r["honest_trials"]] for r in rows],
        notes=("Honest trials re-execute every sampled operator from each fleet "
               "device's own trace; tampers are 18-low-bit flips (far outside any "
               "honest spread) and cap-curve bound_edge perturbations riding at "
               "half the committed full-trace tolerance — the escape class behind "
               "the ROADMAP defect seeds.  Lower percentiles tighten the envelope "
               "pointwise, so false slashes rise and escapes fall monotonically; "
               "the committed default (p100, safety factor 3) sits at zero false "
               "slashes with every bit-flip tamper caught."),
    )

    reference = rows[0]
    calibrated = {r["envelope"]: r for r in rows[1:]}
    default = calibrated["calibrated p100"]

    # Headline gate: the default calibrated envelope is simultaneously safer
    # on both axes than the reference tolerance.
    assert default["false_slash"] == 0.0
    assert default["escape_bit_flip"] == 0.0
    assert default["false_slash"] <= reference["false_slash"]
    assert default["escape_bound_edge"] <= reference["escape_bound_edge"]
    # The reference tolerance demonstrably leaks sub-tolerance tampers.
    assert reference["escape_bound_edge"] > 0.0

    # Tightening the envelope percentile can only trade escapes for slashes.
    ordered = [calibrated[f"calibrated p{p:g}"] for p in ENVELOPE_PERCENTILES]
    for tighter, looser in zip(ordered, ordered[1:]):
        assert tighter["false_slash"] >= looser["false_slash"] - 1e-12
        assert tighter["escape_bit_flip"] <= looser["escape_bit_flip"] + 1e-12
        assert tighter["escape_bound_edge"] <= looser["escape_bound_edge"] + 1e-12
