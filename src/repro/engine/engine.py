"""The pluggable execution engine.

:class:`ExecutionEngine` owns a per-graph :class:`~repro.engine.plan.ExecutionPlan`
and executes it on one :class:`~repro.tensorlib.device.DeviceProfile`.  It is
the single execution back end behind :class:`~repro.graph.interpreter.Interpreter`
(which is now a thin facade over it), so the proposer, challenger, committee,
calibration and attack paths all share one execution semantics — exactly as
the seed interpreter guaranteed — while gaining:

* **plan reuse** — operator resolution, node classification and output-name
  derivation happen once per committed model instead of once per request;
* **liveness-based memory release** — non-recording runs free intermediate
  tensors at their last use instead of keeping the whole trace alive;
* **batched execution** (:meth:`ExecutionEngine.run_batch`) — independent
  requests are stacked along the leading batch axis and executed in one pass
  where the graph permits it, with per-request traces recovered by slicing.

Bit-exactness of the batched path is *certified empirically* per
(graph, device, input signature): on first use the engine executes two probe
requests both individually and stacked and requires every recorded tensor to
be bit-identical.  Graphs that are not batch-polymorphic (e.g. transformer
graphs whose ``reshape`` attributes bake in the traced batch size, or any
operator coupling values across the leading axis) fail the probe and fall
back to sequential execution — correctness never depends on an op whitelist.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.engine.plan import (
    KIND_CONST,
    KIND_INPUT,
    KIND_OP,
    KIND_PARAM,
    ExecutionPlan,
    plan_for,
)
from repro.graph.graph import GraphModule
from repro.graph.interpreter import ExecutionTrace
from repro.tensorlib.device import DeviceProfile
from repro.tensorlib.flops import FlopCounter
from repro.utils.timing import now


class ExecutionEngine:
    """Executes compiled plans on one simulated device."""

    def __init__(self, device: DeviceProfile) -> None:
        self.device = device
        #: Whether the most recent :meth:`run_batch` used the stacked path
        #: (False when it fell back to sequential execution).
        self.last_batch_stacked = False

    # ------------------------------------------------------------------
    # Single-request execution (the Interpreter.run semantics)
    # ------------------------------------------------------------------

    def run(
        self,
        graph_module: GraphModule,
        inputs: Mapping[str, np.ndarray],
        record: bool = False,
        count_flops: bool = False,
        overrides: Optional[Dict[str, np.ndarray]] = None,
        delta_overrides: Optional[Dict[str, np.ndarray]] = None,
    ) -> ExecutionTrace:
        """Execute ``graph_module`` over a cached plan.

        Semantics (including override/delta handling, recorded values and
        error messages) are identical to the seed interpreter loop, which is
        preserved as :meth:`~repro.graph.interpreter.Interpreter.run_reference`
        and pinned by ``tests/test_engine_parity.py``.
        """
        plan = plan_for(graph_module)
        missing = [n for n in plan.input_names if n not in inputs]
        if missing:
            raise ValueError(f"missing graph inputs: {missing}")

        env: Dict[str, np.ndarray] = {}
        flops = FlopCounter()
        overrides = overrides or {}
        delta_overrides = delta_overrides or {}
        patched = bool(overrides) or bool(delta_overrides)
        parameters = graph_module.parameters
        constants = graph_module.graph.constants
        device = self.device
        start = now()

        for step in plan.steps:
            kind = step.kind
            if kind == KIND_OP:
                args = [env[ref] if is_node else ref for is_node, ref in step.arg_specs]
                value = step.spec.forward(device, *args, **step.kwargs)
                if count_flops:
                    flops.add(step.target,
                              step.spec.estimate_flops(value, *args, **step.kwargs))
            elif kind == KIND_INPUT:
                value = np.asarray(inputs[step.name])
            elif kind == KIND_PARAM:
                value = np.asarray(parameters[step.target])
            else:  # KIND_CONST
                value = np.asarray(constants[step.target])

            if patched:
                if step.name in overrides:
                    override = np.asarray(overrides[step.name])
                    if override.shape != np.shape(value):
                        raise ValueError(
                            f"override for {step.name!r} has shape {override.shape}, "
                            f"expected {np.shape(value)}"
                        )
                    value = override.astype(np.float32)
                if step.name in delta_overrides:
                    delta = np.asarray(delta_overrides[step.name], dtype=np.float32)
                    if delta.shape != np.shape(value):
                        raise ValueError(
                            f"delta override for {step.name!r} has shape {delta.shape}, "
                            f"expected {np.shape(value)}"
                        )
                    value = (np.asarray(value, dtype=np.float32) + delta).astype(np.float32)
            env[step.name] = value

            if not record and step.release:
                for dead in step.release:
                    env.pop(dead, None)

        outputs = tuple(env[name] for name in plan.output_names)
        elapsed = now() - start

        if record:
            values = env
        else:
            values = {name: env[name] for name in plan.output_names}
        return ExecutionTrace(
            device_name=device.name,
            outputs=outputs,
            output_names=plan.output_names,
            values=values,
            flops=flops,
            wall_time_s=elapsed,
        )

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------

    def run_batch(
        self,
        graph_module: GraphModule,
        inputs_list: Sequence[Mapping[str, np.ndarray]],
        record: bool = False,
        count_flops: bool = False,
    ) -> List[ExecutionTrace]:
        """Execute many independent requests, vectorizing where certified.

        Requests are stacked along the leading (batch) axis and executed in
        one pass when the graph's batched execution has been certified
        bit-identical for this device and input signature (see module
        docstring).  Uncertifiable graphs or ragged request shapes fall back
        to per-request :meth:`run` calls, so the result is always a list of
        per-request traces equivalent to sequential execution.  Callers
        never see the raggedness: a ``None`` from the batch-size/signature
        probes selects the fallback *inside* this method, so a ragged batch
        submitted through the service (or a pipelined/cluster drain) must
        complete per-request with correct verdicts — pinned end-to-end by
        the ragged-batch tests in ``tests/test_tao_service.py``.

        Note: in the stacked path, per-request FLOP counts and wall time are
        attributed proportionally to each request's share of the stacked
        batch (FLOPs of every zoo operator are linear in the leading axis).
        """
        self.last_batch_stacked = False
        requests = [dict(inputs) for inputs in inputs_list]
        if len(requests) <= 1:
            return [self.run(graph_module, req, record=record, count_flops=count_flops)
                    for req in requests]

        plan = plan_for(graph_module)
        batch_sizes = self._batch_sizes(plan, requests)
        signature = self._signature(plan, requests) if batch_sizes else None
        if batch_sizes is None or signature is None:
            return [self.run(graph_module, req, record=record, count_flops=count_flops)
                    for req in requests]

        cert_key = (self.device.name, signature)
        certified = plan.batch_certified.get(cert_key)
        if certified is None:
            certified = self._certify(graph_module, plan, requests)
            plan.batch_certified[cert_key] = certified
        if not certified:
            return [self.run(graph_module, req, record=record, count_flops=count_flops)
                    for req in requests]

        self.last_batch_stacked = True
        return self._run_stacked(graph_module, plan, requests, batch_sizes,
                                 record=record, count_flops=count_flops)

    # -- batching internals ----------------------------------------------

    @staticmethod
    def _batch_sizes(plan: ExecutionPlan,
                     requests: Sequence[Dict[str, np.ndarray]]) -> Optional[List[int]]:
        """Leading batch dim per request, or None when stacking is malformed."""
        sizes: List[int] = []
        for req in requests:
            size: Optional[int] = None
            for name in plan.input_names:
                arr = np.asarray(req.get(name))
                if arr.ndim == 0:
                    return None
                if size is None:
                    size = int(arr.shape[0])
                elif int(arr.shape[0]) != size:
                    return None  # inputs of one request disagree on batch dim
            if size is None or size <= 0:
                return None
            sizes.append(size)
        return sizes

    @staticmethod
    def _signature(plan: ExecutionPlan,
                   requests: Sequence[Dict[str, np.ndarray]]) -> Optional[Tuple]:
        """Per-input trailing shape/dtype signature shared by all requests."""
        signature = []
        for name in plan.input_names:
            trailing: Optional[Tuple] = None
            for req in requests:
                arr = np.asarray(req.get(name))
                item = (tuple(arr.shape[1:]), arr.dtype.str)
                if trailing is None:
                    trailing = item
                elif item != trailing:
                    return None  # ragged trailing shapes cannot stack
            signature.append((name,) + trailing)
        return tuple(signature)

    def _certify(self, graph_module: GraphModule, plan: ExecutionPlan,
                 requests: Sequence[Dict[str, np.ndarray]]) -> bool:
        """Empirically check that stacked execution is bit-identical.

        Runs the first two requests individually and stacked, comparing every
        recorded tensor (values, outputs, dtypes, shapes) bit-for-bit.
        """
        probe = list(requests[:2])
        individual = [self.run(graph_module, req, record=True) for req in probe]
        try:
            stacked = self._run_stacked(
                graph_module, plan, probe,
                [int(np.asarray(req[plan.input_names[0]]).shape[0]) for req in probe],
                record=True, count_flops=False,
            )
        except Exception:
            return False
        for solo, sliced in zip(individual, stacked):
            if set(solo.values) != set(sliced.values):
                return False
            for name, expected in solo.values.items():
                got = sliced.values[name]
                expected = np.asarray(expected)
                got = np.asarray(got)
                if expected.shape != got.shape or expected.dtype != got.dtype:
                    return False
                if expected.tobytes() != got.tobytes():
                    return False
        return True

    def _run_stacked(
        self,
        graph_module: GraphModule,
        plan: ExecutionPlan,
        requests: Sequence[Dict[str, np.ndarray]],
        batch_sizes: Sequence[int],
        record: bool,
        count_flops: bool,
    ) -> List[ExecutionTrace]:
        total = sum(batch_sizes)
        stacked_inputs = {
            name: np.concatenate([np.asarray(req[name]) for req in requests], axis=0)
            for name in plan.input_names
        }
        trace = self.run(graph_module, stacked_inputs, record=record,
                         count_flops=count_flops)

        offsets = np.cumsum([0] + list(batch_sizes))
        results: List[ExecutionTrace] = []
        for index, size in enumerate(batch_sizes):
            lo, hi = int(offsets[index]), int(offsets[index + 1])
            share = size / float(total)

            def split(name: str, value: np.ndarray) -> np.ndarray:
                if name in plan.input_dependent:
                    return value[lo:hi]
                return value  # pure function of weights/constants: shared

            values = {name: split(name, value) for name, value in trace.values.items()}
            outputs = tuple(values[name] for name in plan.output_names)
            flops = FlopCounter()
            if count_flops:
                for op_name, op_flops in trace.flops.per_op.items():
                    flops.add(op_name, op_flops * share)
            results.append(ExecutionTrace(
                device_name=trace.device_name,
                outputs=outputs,
                output_names=plan.output_names,
                values=values,
                flops=flops,
                wall_time_s=trace.wall_time_s * share,
            ))
        return results
