"""The stage-pipelined executor.

:class:`Pipeline` runs a fixed sequence of stages over an ordered list of
items, SYSFLOW-style: one worker thread per stage, bounded
:class:`~repro.pipeline.queues.HandoffQueue` hand-offs between adjacent
stages (backpressure), an optional admission semaphore bounding total items
in flight, and :class:`~repro.pipeline.stages.SerialLane` ticket locks
serializing the stages that share an order-sensitive resource.

Guarantees:

* every stage sees items in submission order (one worker per stage, FIFO
  hand-offs);
* stages sharing a lane execute in item-major protocol order, so their
  combined side effects are identical to running the stages sequentially;
* a stage exception aborts the whole pipeline promptly (queues and lanes are
  torn down so no worker deadlocks) and re-raises from :meth:`Pipeline.run`.

Accounting distinguishes *busy* time (thread-CPU seconds actually spent in a
stage callable — the stage's own demand, measured independently of how many
cores this host has or how the GIL interleaves workers) from *wall* and
*wait* time.  ``critical_path_s`` models the steady-state bottleneck of a
one-core-per-stage-worker deployment: stages sharing a lane cannot overlap
each other, so their busy times sum; independent stages overlap, so the
pipeline's floor is the maximum over those groups.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.pipeline.queues import HandoffQueue, PipelineAborted
from repro.pipeline.stages import SerialLane, StageDef
from repro.utils.timing import now, thread_now


@dataclass
class StageStats:
    """Per-stage accounting for one pipeline run."""

    name: str
    lane: Optional[str] = None
    items: int = 0
    #: Thread-CPU seconds inside the stage callable (the stage's demand).
    busy_cpu_s: float = 0.0
    #: Wall-clock seconds inside the stage callable.
    wall_s: float = 0.0
    #: Seconds blocked waiting for the lane ticket (chain-order hand-off).
    lane_wait_s: float = 0.0
    #: Seconds blocked on the inbound queue (starved by the upstream stage).
    #: Copied from the queue's own counters after the run — the hand-off
    #: queues are the single source of wait accounting.
    get_wait_s: float = 0.0
    #: Seconds blocked on the outbound queue (backpressure from downstream).
    put_wait_s: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "lane": self.lane,
            "items": self.items,
            "busy_cpu_s": self.busy_cpu_s,
            "wall_s": self.wall_s,
            "lane_wait_s": self.lane_wait_s,
            "get_wait_s": self.get_wait_s,
            "put_wait_s": self.put_wait_s,
        }


@dataclass
class PipelineStats:
    """Whole-run accounting: per-stage rows plus the modeled critical path."""

    stages: List[StageStats] = field(default_factory=list)
    items: int = 0
    wall_s: float = 0.0
    queue_depth: int = 0
    #: Seconds the feeder (caller) was blocked admitting items into the
    #: first bounded queue — backpressure reaching all the way upstream.
    admission_wait_s: float = 0.0

    @property
    def busy_total_s(self) -> float:
        """Total stage demand — the sequential-equivalent cost of the run."""
        return sum(stage.busy_cpu_s for stage in self.stages)

    @property
    def critical_path_s(self) -> float:
        """Bottleneck time of a one-core-per-stage-worker deployment.

        Stages sharing a lane serialize against each other, so each lane
        contributes the *sum* of its members' busy time; lane-free stages
        contribute their own.  The slowest group is the pipeline's floor.
        """
        groups: Dict[str, float] = {}
        for index, stage in enumerate(self.stages):
            key = stage.lane if stage.lane is not None else f"#{index}"
            groups[key] = groups.get(key, 0.0) + stage.busy_cpu_s
        return max(groups.values(), default=0.0)

    @property
    def overlap_speedup(self) -> float:
        """Modeled speedup of pipelining this run vs. draining it serially."""
        critical = self.critical_path_s
        if critical <= 0:
            return 1.0
        return self.busy_total_s / critical

    def as_dict(self) -> Dict[str, object]:
        return {
            "items": self.items,
            "wall_s": self.wall_s,
            "queue_depth": self.queue_depth,
            "admission_wait_s": self.admission_wait_s,
            "busy_total_s": self.busy_total_s,
            "critical_path_s": self.critical_path_s,
            "overlap_speedup": self.overlap_speedup,
            "stages": [stage.as_dict() for stage in self.stages],
        }


#: Sentinel closing the stage pipeline (flows through every queue once).
_CLOSE = object()


class Pipeline:
    """Run items through fixed stages with one worker per stage."""

    def __init__(
        self,
        stages: Sequence[StageDef],
        queue_depth: int = 2,
        max_in_flight: Optional[int] = None,
    ) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stage_defs = tuple(stages)
        self.queue_depth = int(queue_depth)
        #: Admission control: total items admitted but not yet finished.
        #: None leaves the structural bound — one in-flight item per stage
        #: plus ``queue_depth`` slots per hand-off queue, i.e.
        #: ``len(stages) * (1 + queue_depth)`` total — with backpressure
        #: coming purely from the bounded queues.
        self.max_in_flight = max_in_flight
        self.stats = PipelineStats(
            stages=[StageStats(name=s.name, lane=s.lane) for s in self.stage_defs],
            queue_depth=self.queue_depth,
        )
        self._lanes: Dict[str, SerialLane] = {}
        lane_positions: Dict[str, List[int]] = {}
        for position, stage in enumerate(self.stage_defs):
            if stage.lane is not None:
                lane_positions.setdefault(stage.lane, []).append(position)
        for name, positions in lane_positions.items():
            self._lanes[name] = SerialLane(name, positions)
        self._queues: List[HandoffQueue] = [
            HandoffQueue(self.queue_depth, name=f"->{stage.name}")
            for stage in self.stage_defs
        ]
        self._errors: List[BaseException] = []
        self._error_lock = threading.Lock()
        self._aborted = threading.Event()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, items: Sequence[object]) -> List[object]:
        """Drive every item through all stages; results in submission order."""
        items = list(items)
        if not items:
            return []
        started = now()
        results: List[object] = [None] * len(items)
        admit = threading.Semaphore(self.max_in_flight) \
            if self.max_in_flight else None

        workers = [
            threading.Thread(
                target=self._worker,
                args=(position, results, admit),
                name=f"pipeline-{self.stage_defs[position].name}",
                daemon=True,
            )
            for position in range(len(self.stage_defs))
        ]
        for worker in workers:
            worker.start()

        # Admission: the feeder (caller thread) blocks on the first bounded
        # queue — and on the admission semaphore when one is configured — so
        # at most len(stages) * (1 + queue_depth) items (one per stage plus
        # queue_depth per hand-off queue), or max_in_flight, are ever in
        # flight.
        try:
            for index, item in enumerate(items):
                if admit is not None:
                    while not admit.acquire(timeout=0.05):
                        if self._aborted.is_set():
                            raise PipelineAborted("admission")
                self._queues[0].put((index, item))
            self._queues[0].put(_CLOSE)
        except PipelineAborted:
            pass  # a stage failed; workers are unwinding
        for worker in workers:
            worker.join()
        self.stats.items = len(items)
        self.stats.wall_s = now() - started
        # The queues are the single source of wait accounting: a stage's
        # starvation is its inbound queue's get wait, its backpressure is
        # its outbound queue's put wait, and the first queue's put wait is
        # the feeder's admission wait.
        for position, stage_stats in enumerate(self.stats.stages):
            stage_stats.get_wait_s = self._queues[position].get_wait_s
            if position + 1 < len(self._queues):
                stage_stats.put_wait_s = self._queues[position + 1].put_wait_s
        self.stats.admission_wait_s = self._queues[0].put_wait_s
        if self._errors:
            raise self._errors[0]
        return results

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _worker(self, position: int, results: List[object],
                admit: Optional[threading.Semaphore]) -> None:
        stage = self.stage_defs[position]
        stats = self.stats.stages[position]
        inbound = self._queues[position]
        outbound = self._queues[position + 1] \
            if position + 1 < len(self._queues) else None
        lane = self._lanes.get(stage.lane) if stage.lane is not None else None
        try:
            while True:
                got = inbound.get()
                if got is _CLOSE:
                    if outbound is not None:
                        outbound.put(_CLOSE)
                    return
                index, payload = got

                if lane is not None:
                    lane_start = now()
                    lane.acquire(position, index)
                    stats.lane_wait_s += now() - lane_start
                wall_start = now()
                cpu_start = thread_now()
                try:
                    out = stage.fn(payload)
                except BaseException as exc:  # noqa: BLE001 - see run()
                    stats.busy_cpu_s += thread_now() - cpu_start
                    stats.wall_s += now() - wall_start
                    # Abort *before* any lane release: releasing first would
                    # wake the next item's lane stage and let it commit chain
                    # side effects after the pipeline has already failed —
                    # stranding those items beyond what a retry can recover.
                    # abort() wakes every lane waiter into PipelineAborted
                    # instead, so the held ticket is never handed on.
                    with self._error_lock:
                        self._errors.append(exc)
                    self._abort()
                    return
                stats.busy_cpu_s += thread_now() - cpu_start
                stats.wall_s += now() - wall_start
                if lane is not None:
                    lane.release(position, index)
                stats.items += 1

                if outbound is not None:
                    outbound.put((index, out))
                else:
                    results[index] = out
                    if admit is not None:
                        admit.release()
        except PipelineAborted:
            return
        except BaseException as exc:  # noqa: BLE001 - propagated to run()
            with self._error_lock:
                self._errors.append(exc)
            self._abort()
            return

    def _abort(self) -> None:
        self._aborted.set()
        for queue in self._queues:
            queue.abort()
        for lane in self._lanes.values():
            lane.abort()
