"""Adaptive campaign sweep: boundary estimates, stake games, throughput.

This benchmark runs the long-horizon adaptive adversary
(:mod:`repro.sim.adversary`) through the campaign driver
(:mod:`repro.sim.campaign`) and reports the paper's long-run questions as
one artifact, ``benchmarks/results/adaptive_campaign.md``:

* **detection boundary** — where the seeded stochastic bisection pinned
  each annealed fault kind's catch/escape boundary, against the initial
  bracket it started from;
* **economics series** — the per-cycle EV readings (fault rate, cheat vs
  honest EV, live stakes, subsidies) of a campaign opened in the
  weak-challenger regime;
* **collusion stake trajectories** — the colluding committee's per-seat
  stakes over the observed protocol cycles, then extrapolated thousands of
  cycles forward at the observed dispute rate: one undefended horizon where
  collusion keeps winning, and one defended horizon where losses drain the
  pool through Sybil re-splits until it dies;
* **campaign throughput** — wall-clock scenarios/s at 1/2/4 worker
  processes over identical campaigns, with the byte-identical fingerprint
  check that makes the speedup trustworthy.

The speedup gate (>= 1.5x at 4 workers vs 1) is enforced only on hosts with
>= 4 cores; a single-core container cannot exceed 1x by physics, so there
the table still reports measured numbers and the gate is skipped, not faked.

``CAMPAIGN_DEEP=1`` (the nightly CI job) multiplies the cycle budgets 10x;
the default is the CI-fast slice.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

import numpy as np

from repro.sim.adversary import ANNEALED_KINDS
from repro.sim.campaign import Campaign, CampaignConfig, campaign_workload
from repro.sim.sprt import SPRTConfig

from benchmarks.reporting import emit_report

DEEP = os.environ.get("CAMPAIGN_DEEP", "") not in ("", "0")
SCALE = 10 if DEEP else 1

#: Main adaptive sweep: opened in the weak-challenger regime so the EV rule
#: has a real regime flip to report.  The cycle budget exceeds the Wald
#: acceptance bound of the mode's SPRT config (29 CI-fast, 90 deep), so
#: every invariant family reaches a verdict.
MAIN_CYCLES = 240 if DEEP else 36
#: Shorter fixed slice timed at each worker count (identical config except
#: ``num_workers``, so the fingerprints must match byte for byte).
THROUGHPUT_CYCLES = 16 * SCALE
WORKER_COUNTS = (1, 2, 4)
GATE_WORKERS = 4
GATE_SPEEDUP = 1.5
EXTRAPOLATE_CYCLES = 2000 * SCALE
CHECKPOINT_FRACTIONS = (0.0, 0.05, 0.25, 0.5, 1.0)


def _main_config() -> CampaignConfig:
    return CampaignConfig(
        cycles=MAIN_CYCLES,
        batch_size=4,
        seed=2026,
        collusion_every=6,
        challenger_opening_stake=500.0,
        sprt=(SPRTConfig(p1=0.05, beta=0.01) if DEEP
              else SPRTConfig(p1=0.1, beta=0.05)),
    )


def _throughput_config(num_workers: int) -> CampaignConfig:
    return CampaignConfig(
        cycles=THROUGHPUT_CYCLES,
        batch_size=8,
        seed=7,
        collusion_every=6,
        num_workers=num_workers,
    )


def _checkpoints(trajectory: np.ndarray) -> List[int]:
    last = trajectory.shape[0] - 1
    return sorted({int(round(fraction * last))
                   for fraction in CHECKPOINT_FRACTIONS})


def test_adaptive_campaign(benchmark):
    campaign_workload("campaign_mlp")  # build once, outside the timing

    def run():
        main = Campaign(_main_config()).run()
        timing: Dict[int, Dict[str, object]] = {}
        for num_workers in WORKER_COUNTS:
            start = time.perf_counter()
            result = Campaign(_throughput_config(num_workers)).run()
            wall = time.perf_counter() - start
            timing[num_workers] = {
                "wall_s": wall,
                "scenarios": result.scenarios_run,
                "sps": result.scenarios_run / wall,
                "violations": list(result.violations),
                "campaign_fp": result.campaign_fingerprint(),
                "ledger_fp": result.ledger_fingerprint(),
            }
        return main, timing

    main, timing = benchmark.pedantic(run, rounds=1, iterations=1)

    # -- section 1: detection boundaries -----------------------------------
    boundary_rows = []
    for kind, estimate in sorted(main.boundaries.items()):
        lo0, hi0, _ = ANNEALED_KINDS[kind]
        boundary_rows.append([
            kind, f"[{lo0:g}, {hi0:g}]", estimate.lo, estimate.hi,
            estimate.estimate, estimate.width, estimate.rounds,
            estimate.caught, estimate.escaped, estimate.inversions,
        ])

    # -- section 2: per-cycle economics series ------------------------------
    stride = max(1, MAIN_CYCLES // 24)
    economics_rows = []
    for record in main.records:
        if record.cycle % stride and record.mode != "collusion":
            continue
        economics_rows.append([
            record.cycle, record.mode, record.kind,
            record.magnitude, record.fault_rate,
            record.ev_cheat, record.ev_honest,
            "weak" if record.challenger_weak else "healthy",
            record.proposer_stake, record.challenger_stake,
            record.subsidy, record.caught, record.escaped,
            len(record.violations),
        ])

    # -- section 3: collusion stake trajectories ----------------------------
    strategy = main.adversary.collusion
    collusion_records = [r for r in main.records if r.mode == "collusion"]
    observed_adjudications = [r.adjudications for r in collusion_records]
    observed_escapes = sum(r.escaped for r in collusion_records)
    dispute_rate = (float(np.mean(observed_adjudications))
                    if observed_adjudications else 1.0)
    dispute_rate = max(dispute_rate, 1.0)

    observed_rows = [
        [index, *(f"{stake:.1f}" for stake in stakes)]
        for index, stakes in enumerate(strategy.trajectory)
    ]

    extrapolated_rows = []
    resplits = {}
    for label, escape_rate in (("undefended", 0.9), ("defended", 0.1)):
        trajectory = strategy.extrapolate(
            EXTRAPOLATE_CYCLES, dispute_rate,
            escape_rate=escape_rate, seed_label=label)
        resplits[label] = strategy.last_extrapolation_resplits
        for checkpoint in _checkpoints(trajectory):
            stakes = trajectory[checkpoint]
            colluders = stakes[:strategy.config.colluders]
            honest = stakes[strategy.config.colluders:]
            extrapolated_rows.append([
                label, escape_rate, checkpoint,
                float(colluders.sum()), float(colluders.min()),
                float(honest.sum()) if honest.size else 0.0,
            ])

    # -- section 4: campaign throughput -------------------------------------
    cores = os.cpu_count() or 1
    gated = cores >= GATE_WORKERS
    base = timing[1]
    throughput_rows = [
        [num_workers, r["scenarios"], r["wall_s"], r["sps"],
         r["sps"] / base["sps"],
         "yes" if (r["campaign_fp"] == base["campaign_fp"]
                   and r["ledger_fp"] == base["ledger_fp"]) else "NO"]
        for num_workers, r in timing.items()
    ]

    verdict_rows = [[family, verdict or "undecided", consumed,
                     decided_at if decided_at is not None else "-"]
                    for family, verdict, consumed, decided_at
                    in main.sprt_rows]

    notes = (
        f"Mode: {'deep (CAMPAIGN_DEEP=1, 10x cycles)' if DEEP else 'CI-fast'}"
        f" | main sweep {MAIN_CYCLES} cycles, {main.events_run} protocol"
        f" events, {len(main.violations)} invariant violations |"
        f" challenger opened at 500.0 (below the 1000.0 EV floor: the"
        f" weak-challenger regime where cheap cheating is EV-positive)."
        f"\n\nCollusion: {len(collusion_records)} observed probe cycles,"
        f" dispute rate {dispute_rate:.2f} adjudications/cycle,"
        f" {observed_escapes} observed escapes; extrapolated"
        f" {EXTRAPOLATE_CYCLES} cycles ({resplits['undefended']} Sybil"
        f" re-splits undefended, {resplits['defended']} defended)."
        f"\n\nThroughput gate: >= {GATE_SPEEDUP}x at {GATE_WORKERS}"
        " workers vs 1, "
        + ("ENFORCED on this host."
           if gated else
           f"SKIPPED on this host ({cores} core(s) < {GATE_WORKERS}: a"
           " single core cannot exceed 1x by physics).")
        + " Wall clock includes worker spawn and the canonical-bytes"
          " framing on every scenario round trip."
    )

    emit_report(
        "adaptive_campaign",
        "Adaptive adversary campaign: detection boundaries, stake games, "
        "worker scaling",
        [
            ("Detection boundary per annealed fault kind",
             ["kind", "initial bracket", "lo (escapes)", "hi (catches)",
              "estimate", "width", "rounds", "caught", "escaped",
              "inversions"],
             boundary_rows),
            ("Campaign economics series (weak-challenger opening)",
             ["cycle", "mode", "kind", "magnitude", "fault rate",
              "EV cheat", "EV honest", "challenger regime",
              "proposer stake", "challenger stake", "subsidy",
              "caught", "escaped", "violations"],
             economics_rows),
            ("Colluding committee stakes, observed cycles (seats 0-1 "
             "colluding)",
             ["adjudication step"] + [
                 f"seat {i}" for i in range(strategy.config.committee_size)],
             observed_rows),
            ("Colluding committee stakes, extrapolated horizons",
             ["horizon", "escape rate", "cycle", "colluder pool",
              "min colluder stake", "honest pool"],
             extrapolated_rows),
            ("SPRT verdict per invariant family",
             ["family", "verdict", "scenarios consumed", "decided at"],
             verdict_rows),
            ("Campaign throughput vs worker processes",
             ["workers", "scenarios", "wall (s)", "scenarios/s",
              "speedup vs 1 worker", "byte-identical"],
             throughput_rows),
        ],
        notes=notes,
    )

    # Zero invariant violations across the whole adaptive sweep.
    assert main.ok, main.violations
    for r in timing.values():
        assert not r["violations"], r["violations"]
    # Every invariant family's sequential test accepted (nothing undecided
    # on the main sweep: the cycle budget exceeds the Wald bound).
    assert all(verdict == "accept_clean"
               for verdict in main.verdicts.values()), main.verdicts
    # Each annealer actually probed and tightened its bracket.
    for kind, estimate in main.boundaries.items():
        lo0, hi0, _ = ANNEALED_KINDS[kind]
        assert estimate.rounds > 0
        assert estimate.width < (hi0 - lo0), (kind, estimate)
    # The weak-challenger opening regime was really exercised.
    assert any(record.challenger_weak for record in main.records)
    # The collusion stake game saw real protocol cycles.
    assert collusion_records, "no collusion probes ran"
    # Determinism pin: every worker count produced byte-identical verdict
    # fingerprints and final stake ledgers.
    for r in timing.values():
        assert r["campaign_fp"] == base["campaign_fp"]
        assert r["ledger_fp"] == base["ledger_fp"]
    if gated:
        assert timing[GATE_WORKERS]["sps"] >= GATE_SPEEDUP * base["sps"], \
            timing
