"""One cluster shard: a full TAOService behind a worker lock.

A shard is not a reduced replica — it is an ordinary
:class:`~repro.protocol.service.TAOService` (its own
:class:`~repro.protocol.coordinator.Coordinator`, queue, tenants, result
caches) whose chain is a :class:`~repro.protocol.chain.ShardChainView` over
the cluster's shared settlement chain.  The cluster's worker pool drains
shards concurrently; ``lock`` serializes a shard's own processing (one
worker per shard at a time), and ``busy_s`` accumulates the worker's
measured processing time — the per-shard critical-path clock the scaling
benchmark reports.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.protocol.chain import ShardChainView
from repro.protocol.service import TAOService


@dataclass
class Shard:
    """A shard's service, chain view and worker bookkeeping."""

    shard_id: str
    service: TAOService
    chain_view: ShardChainView
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Administratively drained: routing skips it, tenants migrated away.
    drained: bool = False
    #: Cumulative worker busy time (thread CPU seconds, summed over the
    #: service's drain stages — a pipelined drain spreads them over stage
    #: workers) across every process() drain of this shard.  Shards drain
    #: concurrently, so the fleet's critical path is ``max`` over shards —
    #: the service time a one-core-per-shard-worker deployment would
    #: observe, measured independently of how many cores this host has.
    busy_s: float = 0.0
    #: Requests this shard brought to a terminal status.
    processed: int = 0

    @property
    def model_names(self):
        return self.service.model_names

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (f"Shard({self.shard_id!r}, models={self.service.model_names}, "
                f"drained={self.drained}, processed={self.processed})")
