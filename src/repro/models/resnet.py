"""MiniResNet: the ResNet-152 analogue.

A residual CNN classifier built from the same operator family as the paper's
ResNet-152 workload (conv2d + inference-mode batch norm + ReLU + residual
adds + max/average pooling + a linear classifier head), scaled to 32x32
inputs so that tracing, calibration and dispute games run in seconds on a
CPU.  The default configuration produces a graph of a few hundred operators;
``ResNetConfig.deep()`` roughly doubles the depth for experiments that need a
longer canonical order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.graph import functional as F
from repro.graph.module import Module, Parameter
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class ResNetConfig:
    """Architecture hyperparameters of MiniResNet."""

    in_channels: int = 3
    image_size: int = 32
    stem_channels: int = 16
    stage_blocks: Tuple[int, ...] = (2, 2, 2)
    stage_channels: Tuple[int, ...] = (16, 32, 64)
    num_classes: int = 10
    seed: int = 0

    @classmethod
    def small(cls) -> "ResNetConfig":
        return cls()

    @classmethod
    def deep(cls) -> "ResNetConfig":
        """A deeper variant (more blocks) for long-canonical-order experiments."""
        return cls(stage_blocks=(3, 4, 3), stage_channels=(16, 32, 64))

    def __post_init__(self) -> None:
        if len(self.stage_blocks) != len(self.stage_channels):
            raise ValueError("stage_blocks and stage_channels must have equal length")


def _kaiming(rng: np.random.Generator, shape: Sequence[int]) -> np.ndarray:
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else int(shape[0])
    scale = np.sqrt(2.0 / max(fan_in, 1))
    return (rng.standard_normal(shape) * scale).astype(np.float32)


class ConvBnRelu(Module):
    """conv2d -> batch_norm (inference) -> optional ReLU."""

    def __init__(self, rng: np.random.Generator, in_ch: int, out_ch: int,
                 kernel: int = 3, stride: int = 1, relu: bool = True) -> None:
        super().__init__()
        self.relu = relu
        self.stride = stride
        self.padding = kernel // 2
        self.weight = Parameter(_kaiming(rng, (out_ch, in_ch, kernel, kernel)))
        self.bn_weight = Parameter(np.ones(out_ch))
        self.bn_bias = Parameter(np.zeros(out_ch))
        # Inference-mode running statistics: mildly non-trivial values so the
        # normalization actually rescales activations.
        self.bn_mean = Parameter(rng.standard_normal(out_ch) * 0.01)
        self.bn_var = Parameter(np.abs(rng.standard_normal(out_ch)) * 0.1 + 1.0)

    def forward(self, x):
        x = F.conv2d(x, self.weight, stride=(self.stride, self.stride),
                     padding=(self.padding, self.padding))
        x = F.batch_norm(x, self.bn_weight, self.bn_bias, self.bn_mean, self.bn_var)
        if self.relu:
            x = F.relu(x)
        return x


class BasicBlock(Module):
    """Two 3x3 conv-bn units with a residual connection."""

    def __init__(self, rng: np.random.Generator, in_ch: int, out_ch: int, stride: int = 1) -> None:
        super().__init__()
        self.conv1 = ConvBnRelu(rng, in_ch, out_ch, kernel=3, stride=stride, relu=True)
        self.conv2 = ConvBnRelu(rng, out_ch, out_ch, kernel=3, stride=1, relu=False)
        self.has_projection = stride != 1 or in_ch != out_ch
        if self.has_projection:
            self.projection = ConvBnRelu(rng, in_ch, out_ch, kernel=1, stride=stride, relu=False)

    def forward(self, x):
        identity = self.projection(x) if self.has_projection else x
        out = self.conv1(x)
        out = self.conv2(out)
        out = F.add(out, identity)
        return F.relu(out)


class MiniResNet(Module):
    """Residual CNN classifier (the ResNet-152 stand-in)."""

    def __init__(self, config: ResNetConfig = ResNetConfig()) -> None:
        super().__init__()
        self.config = config
        rng = seeded_rng(config.seed)
        self.stem = ConvBnRelu(rng, config.in_channels, config.stem_channels,
                               kernel=3, stride=1, relu=True)
        in_ch = config.stem_channels
        self.stages: List[List[BasicBlock]] = []
        for stage_idx, (blocks, out_ch) in enumerate(
                zip(config.stage_blocks, config.stage_channels)):
            stage: List[BasicBlock] = []
            for block_idx in range(blocks):
                stride = 2 if (block_idx == 0 and stage_idx > 0) else 1
                block = BasicBlock(rng, in_ch, out_ch, stride=stride)
                self.add_module(f"stage{stage_idx}_block{block_idx}", block)
                stage.append(block)
                in_ch = out_ch
            self.stages.append(stage)
        self.head_weight = Parameter(_kaiming(rng, (config.num_classes, in_ch)))
        self.head_bias = Parameter(np.zeros(config.num_classes))

    def forward(self, images):
        x = self.stem(images)
        x = F.max_pool2d(x, kernel_size=(2, 2), stride=(2, 2))
        for stage in self.stages:
            for block in stage:
                x = block(x)
        x = F.adaptive_avg_pool2d(x, output_size=(1, 1))
        x = F.flatten(x, start_dim=1)
        logits = F.linear(x, self.head_weight, self.head_bias)
        return logits

    def example_inputs(self, batch_size: int = 2, seed: int = 123) -> dict:
        rng = seeded_rng(seed)
        images = rng.standard_normal(
            (batch_size, self.config.in_channels, self.config.image_size, self.config.image_size)
        ).astype(np.float32)
        return {"images": images}
