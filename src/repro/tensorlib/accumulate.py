"""FP32 accumulation orderings.

IEEE-754 addition is not associative: ``(a + b) + c`` and ``a + (b + c)``
round differently.  Real GPU kernels exploit this freedom — warp-level tree
reductions, split-K matmuls, atomics — which is exactly why two accelerators
(or two runs) disagree in the low-order bits.  This module makes that freedom
explicit: a reduction is computed by splitting the reduced axis into chunks,
summing each chunk, and then combining the chunk partials according to an
:class:`AccumulationStrategy`.  Different strategies and chunk sizes produce
*genuinely different* FP32 results, which is the raw material for the paper's
empirical calibration (Sec. 3.2) and dispute game (Sec. 5).

All arithmetic here is performed in ``float32`` unless a strategy explicitly
requests a wider accumulator (the ``FP64`` strategy is used only as the
high-precision reference for error measurement, never as a "device").
"""

from __future__ import annotations

from enum import Enum
from typing import List

import numpy as np


class AccumulationStrategy(str, Enum):
    """How chunk partial sums are combined into the final reduction value."""

    #: Left-to-right sequential accumulation of chunk partials.
    SEQUENTIAL = "sequential"
    #: Right-to-left accumulation (reverse order).
    REVERSED = "reversed"
    #: Balanced binary-tree (pairwise) combination.
    PAIRWISE = "pairwise"
    #: Kahan compensated summation over the chunk partials.
    KAHAN = "kahan"
    #: Sequential accumulation with partial sums rounded to bfloat16 precision
    #: after every combine — models reduced-precision accumulate fast paths
    #: (TF32-style tensor-core modes) that must be onboarded as their own
    #: configuration class before they can serve under a commitment.
    REDUCED_PRECISION = "reduced_precision"
    #: Accumulate in float64 and round once at the end (reference only).
    FP64 = "fp64"


def split_chunks(length: int, chunk: int) -> List[slice]:
    """Return the list of slices partitioning ``range(length)`` into chunks."""
    if chunk <= 0:
        raise ValueError(f"chunk size must be positive, got {chunk}")
    return [slice(start, min(start + chunk, length)) for start in range(0, length, chunk)]


def accumulate_partials(partials: np.ndarray, strategy: AccumulationStrategy) -> np.ndarray:
    """Combine ``partials`` along axis 0 according to ``strategy``.

    ``partials`` has shape ``(n_chunks, ...)``; the result drops axis 0.  Each
    strategy performs the combination in float32 (except ``FP64``), so the
    choice of strategy changes the rounding of the final value.
    """
    if partials.ndim == 0:
        raise ValueError("partials must have at least one dimension")
    n = partials.shape[0]
    if n == 0:
        raise ValueError("cannot accumulate zero partials")
    if strategy is AccumulationStrategy.FP64:
        return partials.astype(np.float64).sum(axis=0).astype(np.float32)

    parts = partials.astype(np.float32, copy=False)
    if strategy is AccumulationStrategy.SEQUENTIAL:
        acc = parts[0].copy()
        for i in range(1, n):
            acc = (acc + parts[i]).astype(np.float32)
        return acc
    if strategy is AccumulationStrategy.REVERSED:
        acc = parts[n - 1].copy()
        for i in range(n - 2, -1, -1):
            acc = (acc + parts[i]).astype(np.float32)
        return acc
    if strategy is AccumulationStrategy.PAIRWISE:
        level = [parts[i] for i in range(n)]
        while len(level) > 1:
            next_level = []
            for i in range(0, len(level) - 1, 2):
                next_level.append((level[i] + level[i + 1]).astype(np.float32))
            if len(level) % 2 == 1:
                next_level.append(level[-1])
            level = next_level
        return level[0]
    if strategy is AccumulationStrategy.KAHAN:
        acc = parts[0].astype(np.float32).copy()
        comp = np.zeros_like(acc)
        for i in range(1, n):
            y = (parts[i] - comp).astype(np.float32)
            t = (acc + y).astype(np.float32)
            comp = ((t - acc).astype(np.float32) - y).astype(np.float32)
            acc = t
        return acc
    if strategy is AccumulationStrategy.REDUCED_PRECISION:
        acc = _round_to_bfloat16(parts[0])
        for i in range(1, n):
            acc = _round_to_bfloat16((acc + parts[i]).astype(np.float32))
        return acc
    raise ValueError(f"unknown accumulation strategy: {strategy!r}")


def _round_to_bfloat16(values: np.ndarray) -> np.ndarray:
    """Round float32 values to bfloat16 precision (truncate the low 16 mantissa bits)."""
    as_int = np.asarray(values, dtype=np.float32).view(np.uint32)
    # Round-to-nearest on the dropped half-word, then clear it.
    rounded = ((as_int + 0x8000) & np.uint32(0xFFFF0000)).astype(np.uint32)
    return rounded.view(np.float32).copy()


def chunked_sum(
    values: np.ndarray,
    axis: int,
    chunk: int,
    strategy: AccumulationStrategy,
) -> np.ndarray:
    """Sum ``values`` along ``axis`` with device-specific chunking and ordering.

    Each chunk is summed with NumPy's native float32 reduction (standing in
    for the within-tile reduction a GPU thread block performs); the chunk
    partials are then combined via :func:`accumulate_partials`, which is where
    the cross-device divergence originates.
    """
    values = np.asarray(values)
    axis = axis % values.ndim
    length = values.shape[axis]
    if length == 0:
        shape = list(values.shape)
        del shape[axis]
        return np.zeros(shape, dtype=np.float32)
    slices = split_chunks(length, chunk)
    moved = np.moveaxis(values, axis, 0)
    if strategy is AccumulationStrategy.FP64:
        return moved.astype(np.float64).sum(axis=0).astype(np.float32)
    partials = np.stack(
        [moved[s].astype(np.float32).sum(axis=0, dtype=np.float32) for s in slices],
        axis=0,
    )
    return accumulate_partials(partials, strategy)
