"""Operator registry: forward kernels, VJPs and FLOP estimators per operator.

Every primitive tensor operator that can appear in a traced graph is
described by an :class:`~repro.ops.registry.OpSpec` and registered globally.
The convention throughout the registry is:

* **positional arguments are tensors** (NumPy ``float32`` arrays, or integer
  arrays for index-like inputs), and
* **keyword arguments are static attributes** (axis, stride, eps, ...), which
  become part of the operator's committed signature.

The forward kernels take the executing :class:`~repro.tensorlib.device.DeviceProfile`
so reductions inherit the device's accumulation order; the VJPs are used by
the adversarial attack machinery (paper Sec. 4) to backpropagate the logit
margin to intermediate activations; the FLOP estimators feed the Table 3 cost
accounting.

Importing this package registers the full operator set (the paper's
Appendix A.3 operator list).
"""

from repro.ops.registry import OpSpec, get_op, has_op, list_ops, register_op

# Importing the submodules populates the registry as a side effect.
from repro.ops import (  # noqa: F401  (imported for registration side effects)
    elementwise,
    activation,
    reduction,
    linalg,
    conv,
    norm,
    structural,
)

__all__ = ["OpSpec", "get_op", "has_op", "list_ops", "register_op"]
