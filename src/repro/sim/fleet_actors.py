"""Simulator actor families rebuilt from wire specs inside fleet workers.

When a scenario sets ``process_fleet=True`` the runner cannot hand role
objects to the service — fault wrappers hold interpreter-override closures
that no codec moves.  Instead each event ships a small spec map and the
fleet worker (pointed at this module through the fleet's ``actor_module``
hello field) rebuilds the exact actor the in-process runner would have
built: same names, same funding, same devices, same derived seeds — so the
fleet run lands on the same verdicts and the same ledger.

The override closures themselves are reconstructed here with
:func:`repro.sim.faults.make_fault_overrides` against the worker session's
*registered* graph and threshold table.  That is only the same computation
the parent runner performs when the registered table equals the workload
table — which is why the runner rejects ``process_fleet`` scenarios with
``threshold_scale != 1.0``.

``stale_trace`` decoys are memoized per (model, decoy seed) at module level:
one worker process plays every event of its tenant, so the memo mirrors the
runner's ``honest_results`` cache exactly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.fleet import actors as default_actors
from repro.protocol.roles import HonestProposer
from repro.sim.faults import (
    ColludingCommitteeMember,
    SimChallenger,
    SimProposer,
    StaleTraceProposer,
    make_fault_overrides,
)
from repro.tensorlib.device import DEVICE_FLEET

#: Per-process memo of decoy traces for stale_trace events, keyed by
#: (model name, decoy seed) — the worker-side twin of the runner's
#: ``honest_results`` map.
_DECOY_CACHE: Dict[Tuple[str, int], Any] = {}


def build_proposer(service: Any, model_name: str, spec: Dict[str, Any]):
    """Rebuild one simulator proposer from its wire spec."""
    kind = spec["type"]
    session = service.model(model_name).session
    chain = session.coordinator.chain
    if kind == "sim_fault":
        overrides = make_fault_overrides(
            spec["kind"], session.graph_module, session.thresholds,
            spec["victim"], spec["magnitude"], int(spec["seed"]),
        )
        chain.fund_once(spec["name"], session.initial_balance)
        return SimProposer(spec["name"], DEVICE_FLEET[0], overrides,
                           hash_cache=service.hash_cache,
                           partition_delay_s=float(spec["partition_delay_s"]))
    if kind == "stale_trace":
        key = (model_name, int(spec["decoy_key"]))
        source = _DECOY_CACHE.get(key)
        if source is None:
            scout = HonestProposer(f"{spec['name']}-scout", DEVICE_FLEET[0],
                                   hash_cache=service.hash_cache)
            source = scout.execute(session.graph_module,
                                   session.model_commitment,
                                   spec["decoy_inputs"])
            _DECOY_CACHE[key] = source
        chain.fund_once(spec["name"], session.initial_balance)
        return StaleTraceProposer(spec["name"], DEVICE_FLEET[0], source,
                                  hash_cache=service.hash_cache)
    # honest / adversarial specs are the fleet's own vocabulary.
    return default_actors.build_proposer(service, model_name, spec)


def build_challenger(service: Any, model_name: str, spec: Dict[str, Any]):
    """Rebuild one simulator challenger override from its wire spec."""
    if spec["type"] != "sim_challenger":
        return default_actors.build_challenger(service, model_name, spec)
    session = service.model(model_name).session
    session.coordinator.chain.fund_once(spec["name"], session.initial_balance)
    return SimChallenger(spec["name"], session.devices[-1], session.thresholds,
                         hash_cache=service.hash_cache,
                         selection_delay_s=float(spec["selection_delay_s"]),
                         committee_envelope=session.committee_envelope)


def build_committee_factory(majority: int) -> Callable:
    """The runner's bought-majority committee, rebuilt from its one knob."""

    def factory(i, device, _majority=int(majority)):
        if i < _majority:
            return ColludingCommitteeMember(f"colluder-{i}", device)
        from repro.protocol.roles import CommitteeMember
        return CommitteeMember(f"committee-{i}", device)

    return factory
