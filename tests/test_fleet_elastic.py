"""Elastic fleet membership and the hung-worker deadline path.

Satellite pins for the elastic subsystem at the process-fleet layer:

* :class:`TransportTimeout` — a peer that is alive but silent past the
  configured deadline raises a *subclass* of :class:`TransportClosed`, so
  every existing failover site treats a wedged worker exactly like a dead
  one (kill, ring-drain, re-home) and no settlement is lost.
* ``add_worker`` / ``undrain_worker`` — the scale-up verbs restored to
  parity with :class:`TAOCluster`, including ring-consistent re-migration
  and conservation across a full add -> drain -> undrain round trip.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import time

import pytest

from repro.fleet import ProcessFleet
from repro.fleet.fleet import FleetError
from repro.fleet.transport import (
    MessageChannel,
    TransportClosed,
    TransportTimeout,
    channel_pair,
)
from repro.graph import trace_module


@pytest.fixture()
def tenant_graphs(mlp_module, mlp_input_factory):
    # Six tenants: enough digests that a second ring node always claims
    # at least one arc (four happens to leave shard-1 empty-handed).
    return [trace_module(mlp_module, mlp_input_factory(0), name=f"tenant_{i}")
            for i in range(6)]


def _register_all(fleet, graphs, thresholds):
    for graph in graphs:
        fleet.register_model(graph, threshold_table=thresholds)


def _conserved(fleet) -> bool:
    return abs(sum(fleet.chain.balances.values()) - fleet.chain.minted) < 1e-9


class TestTransportTimeout:
    def test_silent_peer_raises_timeout_subclass(self):
        parent, child_sock = channel_pair(deadline_s=0.3)
        try:
            # Nobody ever answers on the child side.
            with pytest.raises(TransportTimeout) as excinfo:
                parent.recv()
            assert isinstance(excinfo.value, TransportClosed)
            assert "0.3" in str(excinfo.value)
        finally:
            parent.close()
            child_sock.close()

    def test_deadline_must_be_positive(self):
        left, right = socket.socketpair()
        try:
            with pytest.raises(ValueError):
                MessageChannel(left, deadline_s=0.0)
        finally:
            left.close()
            right.close()

    def test_worker_side_channel_has_no_deadline(self):
        parent, child_sock = channel_pair(deadline_s=1.0)
        try:
            assert parent.deadline_s == 1.0
            assert child_sock.gettimeout() is None
        finally:
            parent.close()
            child_sock.close()

    def test_responsive_peer_is_unaffected(self):
        parent, child_sock = channel_pair(deadline_s=2.0)
        child = MessageChannel(child_sock)

        def _echo_once():
            child.send(child.recv())

        import threading
        thread = threading.Thread(target=_echo_once, daemon=True)
        thread.start()
        try:
            parent.send({"ping": 1})
            assert parent.recv() == {"ping": 1}
        finally:
            thread.join(timeout=5.0)
            parent.close()
            child.close()


class TestScaleUpParity:
    def test_add_worker_rebalances_on_the_ring(self, tenant_graphs,
                                               mlp_thresholds):
        fleet = ProcessFleet(num_workers=1)
        try:
            _register_all(fleet, tenant_graphs, mlp_thresholds)
            new_id = fleet.add_worker()
            assert new_id == "shard-1"
            assert fleet.active_worker_count == 2
            moved = 0
            for name in fleet.model_names:
                record = fleet._models[name]
                assert fleet.ring.node_for(record.key) == record.shard_id
                moved += record.shard_id == new_id
            assert moved >= 1, "the ring must hand the new worker tenants"
        finally:
            fleet.close()

    def test_add_worker_rejects_duplicate_and_closed(self, tenant_graphs,
                                                     mlp_thresholds):
        fleet = ProcessFleet(num_workers=1)
        try:
            with pytest.raises(FleetError):
                fleet.add_worker("shard-0")
        finally:
            fleet.close()
        with pytest.raises(FleetError):
            fleet.add_worker()

    def test_undrain_worker_restores_service(self, tenant_graphs,
                                             mlp_thresholds,
                                             mlp_input_factory):
        fleet = ProcessFleet(num_workers=1)
        try:
            _register_all(fleet, tenant_graphs, mlp_thresholds)
            new_id = fleet.add_worker()
            for index, graph in enumerate(tenant_graphs):
                fleet.submit(graph.name, mlp_input_factory(200 + index))
            # Drain sends the new worker's tenants *back* to their former
            # host — the re-registration leg must be idempotent on the
            # worker's coordinator (same commitment digest).
            fleet.drain_worker(new_id)
            assert fleet.active_worker_count == 1
            fleet.undrain_worker(new_id)
            assert fleet.active_worker_count == 2
            for name in fleet.model_names:
                record = fleet._models[name]
                assert fleet.ring.node_for(record.key) == record.shard_id
            results = fleet.process()
            assert len(results) == len(tenant_graphs)
            assert _conserved(fleet)
        finally:
            fleet.close()

    def test_undrain_worker_error_cases(self, tenant_graphs, mlp_thresholds):
        fleet = ProcessFleet(num_workers=2)
        try:
            with pytest.raises(FleetError):
                fleet.undrain_worker("shard-0")  # not drained
            with pytest.raises(FleetError):
                fleet.undrain_worker("shard-9")  # unknown
        finally:
            fleet.close()


class TestHungWorkerFailover:
    def test_wedged_worker_is_killed_and_failed_over(self, tenant_graphs,
                                                     mlp_thresholds,
                                                     mlp_input_factory):
        if multiprocessing.get_start_method() not in ("fork", "forkserver"):
            pytest.skip("SIGSTOP pin relies on POSIX process control")
        fleet = ProcessFleet(num_workers=2, worker_timeout_s=2.0)
        try:
            _register_all(fleet, tenant_graphs, mlp_thresholds)
            victim_tenant = next(
                name for name in fleet.model_names
                if fleet.location(name) == "shard-1")
            proc = fleet.workers["shard-1"].process
            os.kill(proc.pid, signal.SIGSTOP)
            # The submit hits the 2 s deadline, and the fleet treats the
            # wedged worker like a dead one: kill, ring-drain, re-home,
            # then the submit is retried on the new home.
            request_id = fleet.submit(victim_tenant, mlp_input_factory(7))
            assert not fleet.workers["shard-1"].alive
            assert fleet.ring.is_drained("shard-1")
            assert fleet.failovers >= 1
            assert fleet.location(victim_tenant) == "shard-0"
            results = fleet.process()
            assert [r.request_id for r in results] == [request_id]
            assert results[0].status is not None
            time.sleep(0.2)
            assert not proc.is_alive(), "wedged worker must be killed"
            assert _conserved(fleet)
        finally:
            fleet.close()
