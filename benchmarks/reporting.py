"""Shared reporting helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Besides the
pytest-benchmark timing entry, each benchmark emits its rows/series through
:func:`emit_table`, which prints the table and writes it as Markdown under
``benchmarks/results/`` so the numbers survive the pytest capture and can be
referenced from EXPERIMENTS.md.
"""

from __future__ import annotations

import multiprocessing
import os
import platform
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def host_provenance() -> str:
    """One-line host stamp persisted under every results table.

    Wall-clock numbers (the fleet throughput benchmark in particular) only
    mean something relative to the machine that produced them, so every
    table records the core count, the interpreter version and the
    multiprocessing start method the run used.
    """
    return (f"Host: {os.cpu_count()} cores | "
            f"Python {platform.python_version()} | "
            f"mp start method: {multiprocessing.get_start_method()}")


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    lines: List[str] = []
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_format_cell(cell) for cell in row) + " |")
    return "\n".join(lines)


def emit_report(experiment_id: str, title: str,
                sections: Sequence[tuple], notes: str = "") -> str:
    """Print and persist a multi-table report to ``results/<experiment_id>.md``.

    ``sections`` is a sequence of ``(subtitle, headers, rows)`` triples —
    the multi-table sibling of :func:`emit_table` for benchmarks whose story
    needs more than one table (e.g. a scale-up timeline plus a latency
    quantile breakdown).
    """
    stamp = host_provenance()
    blocks = []
    for subtitle, headers, rows in sections:
        blocks.append((subtitle, format_table(headers, [list(r) for r in rows])))
    text = f"== {experiment_id}: {title} ==\n"
    for subtitle, table in blocks:
        text += f"\n-- {subtitle} --\n{table}\n"
    if notes:
        text += f"\n{notes}\n"
    text += f"\n{stamp}\n"
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment_id}.md")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# {experiment_id}: {title}\n")
        for subtitle, table in blocks:
            handle.write(f"\n## {subtitle}\n\n{table}\n")
        if notes:
            handle.write(f"\n{notes}\n")
        handle.write(f"\n_{stamp}_\n")
    return path


def emit_table(experiment_id: str, title: str, headers: Sequence[str],
               rows: Iterable[Sequence[object]], notes: str = "") -> str:
    """Print a table and persist it to ``benchmarks/results/<experiment_id>.md``."""
    rows = [list(r) for r in rows]
    table = format_table(headers, rows)
    stamp = host_provenance()
    banner = f"== {experiment_id}: {title} =="
    text = f"{banner}\n{table}\n"
    if notes:
        text += f"\n{notes}\n"
    text += f"\n{stamp}\n"
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment_id}.md")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# {experiment_id}: {title}\n\n{table}\n")
        if notes:
            handle.write(f"\n{notes}\n")
        handle.write(f"\n_{stamp}_\n")
    return path
