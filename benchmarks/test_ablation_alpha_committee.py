"""Ablations of two design choices DESIGN.md calls out.

1. **Safety factor alpha** (paper fixes alpha = 3).  Sweeping alpha trades
   false positives against adversarial headroom: too small and genuine
   cross-device nondeterminism triggers disputes against honest proposers;
   too large and the admissible perturbation budget (the attacker's feasible
   set) grows linearly.  The ablation measures, per alpha, the honest
   exceedance rate on held-out inputs and the failed-attack margin progress.

2. **Committee size / honest majority** (paper assumes an honest-majority
   committee at the leaf).  The ablation adjudicates honest and cheating leaf
   claims under committees with a varying number of colluding (always-accept)
   members, confirming the decision is correct exactly while honest members
   hold the majority.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.attacks.evaluation import run_attack_campaign
from repro.attacks.pgd import AttackConfig
from repro.calibration.thresholds import ThresholdTable
from repro.graph.interpreter import Interpreter
from repro.graph.node import Node
from repro.protocol.adjudication import committee_vote
from repro.protocol.roles import CommitteeMember, CommitteeVoteRecord
from repro.tensorlib.device import DEVICE_FLEET

from benchmarks.reporting import emit_table

ALPHAS = (1.0, 1.5, 2.0, 3.0, 5.0)
HELD_OUT_INPUTS = 4


class _ColludingMember(CommitteeMember):
    """A committee member that always votes for the proposer."""

    def vote(self, graph_module, operator_name, operand_values, proposer_output,
             thresholds, committee_envelope=None):
        return CommitteeVoteRecord(self.name, True, None)


def _honest_exceedance_rate(bench_model, thresholds: ThresholdTable) -> float:
    """Fraction of held-out honest (proposer, challenger) operator comparisons flagged."""
    flagged = 0
    total = 0
    for i in range(HELD_OUT_INPUTS):
        inputs = bench_model.inputs(seed=60_000 + i)
        proposer = Interpreter(DEVICE_FLEET[0]).run(bench_model.graph, inputs, record=True)
        challenger = Interpreter(DEVICE_FLEET[3]).run(bench_model.graph, inputs, record=True)
        for name in thresholds.operator_names():
            total += 1
            report = thresholds.check(name, proposer.values[name], challenger.values[name])
            if report.exceeded:
                flagged += 1
    return flagged / max(total, 1)


def test_ablation_alpha(benchmark, bench_bert):
    def run():
        rows = []
        dataset = bench_bert.dataset(2, seed=71_000)
        for alpha in ALPHAS:
            thresholds = ThresholdTable.from_calibration(bench_bert.calibration, alpha=alpha)
            honest_rate = _honest_exceedance_rate(bench_bert, thresholds)
            campaign = run_attack_campaign(
                bench_bert.graph, dataset, mode="empirical", thresholds=thresholds,
                attack_config=AttackConfig(num_steps=8), seed=33,
            )
            failed = campaign.failed_normalized_changes
            rows.append({
                "alpha": alpha,
                "honest_exceedance_rate": honest_rate,
                "asr": campaign.overall_asr,
                "mean_failed_progress": float(np.mean(failed)) if failed else 0.0,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    emit_table(
        "ablation_alpha",
        "Safety factor alpha: honest exceedances vs adversarial headroom (MiniBERT)",
        ["alpha", "honest per-operator exceedance rate", "ASR", "mean failed-attack progress"],
        [[r["alpha"], r["honest_exceedance_rate"], r["asr"], r["mean_failed_progress"]]
         for r in rows],
        notes=("The paper fixes alpha = 3: large enough that honest cross-device "
               "nondeterminism (almost) never exceeds the thresholds, small enough that the "
               "admissible perturbation budget stays far below anything decision-flipping.  "
               "The small residual per-operator exceedance rate at alpha >= 2 comes from "
               "operators whose calibrated error was exactly zero on the 12 calibration inputs "
               "(threshold ~0) but nonzero on a held-out input — a calibration-coverage effect "
               "that shrinks with the paper's 50-sample calibration and does not affect the "
               "pipeline-level false positive rate (Table 2: 0%), which checks the committed "
               "output operators."),
    )

    by_alpha = {r["alpha"]: r for r in rows}
    # At alpha = 1 genuine FP nondeterminism is flagged often; at the paper's
    # alpha = 3 the per-operator exceedance rate collapses to ~zero.
    assert by_alpha[1.0]["honest_exceedance_rate"] > 0.05
    assert by_alpha[3.0]["honest_exceedance_rate"] < 0.02
    # Honest exceedances can only decrease as alpha grows.
    rates = [r["honest_exceedance_rate"] for r in rows]
    assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))
    # Adversarial headroom grows with alpha, but ASR stays 0 throughout.
    progresses = [r["mean_failed_progress"] for r in rows]
    assert progresses[0] <= progresses[-1] + 1e-9
    assert all(r["asr"] == 0.0 for r in rows)


def test_ablation_committee_honest_majority(benchmark, bench_bert):
    graph = bench_bert.graph
    thresholds = bench_bert.thresholds
    inputs = bench_bert.inputs(seed=72_000)
    trace = Interpreter(DEVICE_FLEET[0]).run(graph, inputs, record=True)
    node = next(n for n in graph.graph.operators if n.target == "linear")
    operands = []
    for arg in node.args:
        if isinstance(arg, Node):
            if arg.op == "get_param":
                operands.append(np.asarray(graph.parameters[arg.target]))
            else:
                operands.append(trace.values[arg.name])
        else:
            operands.append(arg)
    honest_output = trace.values[node.name]
    cheating_output = honest_output + 0.01

    def run():
        rows = []
        committee_size = 5
        for colluders in range(0, committee_size + 1):
            members = [
                _ColludingMember(f"colluder-{i}", DEVICE_FLEET[i % 4]) if i < colluders
                else CommitteeMember(f"honest-{i}", DEVICE_FLEET[i % 4])
                for i in range(committee_size)
            ]
            accepts_honest = not committee_vote(graph, node.name, operands, honest_output,
                                                members, thresholds).proposer_cheated
            rejects_cheat = committee_vote(graph, node.name, operands, cheating_output,
                                           members, thresholds).proposer_cheated
            rows.append({"colluders": colluders, "accepts_honest": accepts_honest,
                         "rejects_cheat": rejects_cheat})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    emit_table(
        "ablation_committee",
        "Committee adjudication vs number of colluding members (size 5)",
        ["colluding members", "accepts honest claim", "rejects cheating claim"],
        [[r["colluders"], r["accepts_honest"], r["rejects_cheat"]] for r in rows],
        notes=("The leaf committee is correct exactly while honest members hold the majority "
               "(the paper's honest-majority assumption); with >= 3 of 5 colluders a cheating "
               "claim survives the vote."),
    )

    for r in rows:
        assert r["accepts_honest"], "honest claims are accepted regardless of colluders voting yes"
        if r["colluders"] <= 2:
            assert r["rejects_cheat"], f"honest majority must convict ({r['colluders']} colluders)"
        else:
            assert not r["rejects_cheat"], "a colluding majority can clear a cheating proposer"
