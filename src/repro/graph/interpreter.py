"""Graph interpreter: executes a traced GraphModule on a simulated device.

The interpreter is used in three places that the paper distinguishes:

* the **proposer** runs the full graph on its device and records the
  intermediate trace it later commits to;
* the **challenger** re-executes the full graph (Phase 2 entry) and,
  during the dispute game, re-executes extracted subgraphs from their
  committed live-in tensors;
* the **committee** re-executes a single operator at the leaf.

All three paths go through :meth:`Interpreter.run`, so there is exactly one
execution semantics in the system.  :meth:`Interpreter.run` dispatches over a
precompiled, cached :class:`~repro.engine.plan.ExecutionPlan` via
:class:`~repro.engine.engine.ExecutionEngine`; the original node-by-node
reference loop is retained as :meth:`Interpreter.run_reference` and the two
are pinned bit-identical by ``tests/test_engine_parity.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import GraphModule
from repro.graph.node import Node
from repro.ops.registry import get_op
from repro.utils.timing import now
from repro.tensorlib.device import DeviceProfile
from repro.tensorlib.flops import FlopCounter


@dataclass
class ExecutionTrace:
    """The result of executing a GraphModule on one device.

    ``values`` maps node names to their computed tensors when the run was
    recorded (the proposer's committed trace); it maps only output names
    otherwise.  ``flops`` carries per-operator FLOP counts for the cost
    accounting of Table 3.
    """

    device_name: str
    outputs: Tuple[np.ndarray, ...]
    output_names: Tuple[str, ...]
    values: Dict[str, np.ndarray] = field(default_factory=dict)
    flops: FlopCounter = field(default_factory=FlopCounter)
    wall_time_s: float = 0.0

    @property
    def output(self) -> np.ndarray:
        """Convenience accessor for single-output graphs."""
        if len(self.outputs) != 1:
            raise ValueError(f"graph has {len(self.outputs)} outputs; use .outputs")
        return self.outputs[0]

    def value(self, node_name: str) -> np.ndarray:
        try:
            return self.values[node_name]
        except KeyError:
            raise KeyError(
                f"no recorded value for node {node_name!r}; was the run recorded?"
            ) from None

    def operator_values(self, graph_module: GraphModule) -> Dict[str, np.ndarray]:
        """Recorded values restricted to operator (call_op) nodes."""
        return {
            node.name: self.values[node.name]
            for node in graph_module.graph.operators
            if node.name in self.values
        }


class Interpreter:
    """Executes GraphModules on a :class:`DeviceProfile` via the engine layer."""

    def __init__(self, device: DeviceProfile) -> None:
        self.device = device
        # Deferred import: the engine builds ExecutionTrace objects, so it
        # imports this module; resolving it lazily breaks the cycle.
        from repro.engine.engine import ExecutionEngine
        self.engine = ExecutionEngine(device)

    def run(
        self,
        graph_module: GraphModule,
        inputs: Dict[str, np.ndarray],
        record: bool = False,
        count_flops: bool = False,
        overrides: Optional[Dict[str, np.ndarray]] = None,
        delta_overrides: Optional[Dict[str, np.ndarray]] = None,
    ) -> ExecutionTrace:
        """Execute ``graph_module`` on ``inputs``.

        Dispatches over the cached execution plan; semantics are identical
        to :meth:`run_reference` (enforced by the engine parity tests).

        Parameters
        ----------
        inputs:
            Mapping from placeholder name to tensor.  Every placeholder must
            be provided.
        record:
            When True the returned trace holds every intermediate tensor
            (the proposer's committed trace / calibration recording).
        count_flops:
            When True per-operator FLOPs are accumulated.
        overrides:
            Optional mapping ``node name -> tensor`` applied *after* the
            node's value is computed.  This is the hook the adversarial
            proposer uses to inject perturbations into intermediate tensors
            (paper Sec. 4.2) and the dispute-game tests use to plant faults
            at chosen operators.
        delta_overrides:
            Optional mapping ``node name -> additive perturbation``; the
            delta is added to whatever value the node computed *during this
            run* (so the effects of upstream perturbations compound through
            the graph).  This is the forward used by the PGD attack, which
            optimizes the deltas jointly across operators.
        """
        return self.engine.run(
            graph_module, inputs, record=record, count_flops=count_flops,
            overrides=overrides, delta_overrides=delta_overrides,
        )

    def run_reference(
        self,
        graph_module: GraphModule,
        inputs: Dict[str, np.ndarray],
        record: bool = False,
        count_flops: bool = False,
        overrides: Optional[Dict[str, np.ndarray]] = None,
        delta_overrides: Optional[Dict[str, np.ndarray]] = None,
    ) -> ExecutionTrace:
        """The original node-by-node execution loop (reference semantics).

        Kept as the specification the plan-based engine must match bit for
        bit; the parity tests execute every zoo model through both paths and
        compare outputs, traces and commitment hashes.
        """
        graph = graph_module.graph
        missing = [n for n in graph_module.input_names if n not in inputs]
        if missing:
            raise ValueError(f"missing graph inputs: {missing}")

        env: Dict[str, np.ndarray] = {}
        flops = FlopCounter()
        overrides = overrides or {}
        delta_overrides = delta_overrides or {}
        start = now()

        for node in graph.nodes:
            if node.op == "placeholder":
                value = np.asarray(inputs[node.name])
            elif node.op == "get_param":
                value = np.asarray(graph_module.parameters[node.target])
            elif node.op == "constant":
                value = np.asarray(graph.constants[node.target])
            elif node.op == "call_op":
                spec = get_op(node.target)
                args = [self._resolve(arg, env) for arg in node.args]
                value = spec.forward(self.device, *args, **node.kwargs)
                if count_flops:
                    flops.add(node.target, spec.estimate_flops(value, *args, **node.kwargs))
            elif node.op == "output":
                continue
            else:  # pragma: no cover - Node validates op kinds
                raise ValueError(f"unknown node op {node.op!r}")

            if node.name in overrides:
                override = np.asarray(overrides[node.name])
                if override.shape != np.shape(value):
                    raise ValueError(
                        f"override for {node.name!r} has shape {override.shape}, "
                        f"expected {np.shape(value)}"
                    )
                value = override.astype(np.float32)
            if node.name in delta_overrides:
                delta = np.asarray(delta_overrides[node.name], dtype=np.float32)
                if delta.shape != np.shape(value):
                    raise ValueError(
                        f"delta override for {node.name!r} has shape {delta.shape}, "
                        f"expected {np.shape(value)}"
                    )
                value = (np.asarray(value, dtype=np.float32) + delta).astype(np.float32)
            env[node.name] = value

        output_node = graph.output_node
        output_names = tuple(arg.name for arg in output_node.args if isinstance(arg, Node))
        outputs = tuple(env[name] for name in output_names)
        elapsed = now() - start

        values: Dict[str, np.ndarray]
        if record:
            values = env
        else:
            values = {name: env[name] for name in output_names}
        return ExecutionTrace(
            device_name=self.device.name,
            outputs=outputs,
            output_names=output_names,
            values=values,
            flops=flops,
            wall_time_s=elapsed,
        )

    def run_single_operator(
        self,
        graph_module: GraphModule,
        operator_name: str,
        operand_values: Sequence[np.ndarray],
    ) -> np.ndarray:
        """Re-execute one operator of ``graph_module`` on given operand tensors.

        Used by the committee at the dispute leaf: the operator's type and
        attributes come from the committed graph, the operand tensors from
        the agreed-upon inputs.
        """
        node = graph_module.graph.node(operator_name)
        if not node.is_operator:
            raise ValueError(f"{operator_name!r} is not an operator node")
        spec = get_op(node.target)
        return spec.forward(self.device, *operand_values, **node.kwargs)

    @staticmethod
    def _resolve(arg: Any, env: Dict[str, np.ndarray]) -> Any:
        if isinstance(arg, Node):
            return env[arg.name]
        return arg
