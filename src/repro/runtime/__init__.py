"""Deployable runtime facade (paper Sec. 6 "Implementation").

:class:`TracedRuntime` is the library's convenience layer: it instruments a
model (traces it to an operator graph), executes it on any simulated device
with optional trace recording, FLOP counting and bound co-execution, and
re-executes extracted subgraphs — the operations the paper's PyTorch runtime
performs.  :mod:`repro.runtime.determinism` models the software-determinism
configuration and its latency overhead; :mod:`repro.runtime.verifier`
provides standalone challenger-side verification helpers usable without the
full protocol stack.
"""

from repro.runtime.traced_runtime import TracedRuntime
from repro.runtime.determinism import (
    DeterminismReport,
    deterministic_profile,
    measure_determinism_overhead,
)
from repro.runtime.verifier import VerificationReport, verify_execution, verify_model_commitment

__all__ = [
    "TracedRuntime",
    "DeterminismReport",
    "deterministic_profile",
    "measure_determinism_overhead",
    "VerificationReport",
    "verify_execution",
    "verify_model_commitment",
]
