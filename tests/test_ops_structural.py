"""Forward and VJP tests for structural / data-movement operators."""

import numpy as np
import pytest

from repro.ops.registry import get_op, list_ops
from repro.tensorlib.device import REFERENCE_DEVICE

from tests.helpers import finite_difference_vjp_check


def _run(name, *tensors, **attrs):
    return get_op(name).forward(REFERENCE_DEVICE, *tensors, **attrs)


def test_reshape_flatten(rng):
    x = rng.standard_normal((2, 3, 4)).astype(np.float32)
    assert _run("reshape", x, shape=(6, 4)).shape == (6, 4)
    assert _run("flatten", x, start_dim=1).shape == (2, 12)
    assert np.allclose(_run("reshape", x, shape=(-1,)), x.ravel())


def test_transpose_permute_expand(rng):
    x = rng.standard_normal((2, 3, 4)).astype(np.float32)
    assert np.allclose(_run("transpose", x, axis0=0, axis1=2), np.swapaxes(x, 0, 2))
    assert np.allclose(_run("permute", x, dims=(2, 0, 1)), np.transpose(x, (2, 0, 1)))
    small = rng.standard_normal((1, 3, 1)).astype(np.float32)
    assert _run("expand", small, shape=(5, 3, 2)).shape == (5, 3, 2)


def test_concat_and_slice(rng):
    a = rng.standard_normal((2, 3)).astype(np.float32)
    b = rng.standard_normal((2, 5)).astype(np.float32)
    cat = _run("concat", a, b, axis=1)
    assert cat.shape == (2, 8)
    assert np.allclose(_run("slice", cat, axis=1, start=0, stop=3), a)
    assert np.allclose(_run("slice", cat, axis=1, start=3, stop=8), b)
    assert np.allclose(_run("slice", cat, axis=1, start=0, stop=None, step=2), cat[:, ::2])


def test_index_select_and_embedding(rng):
    table = rng.standard_normal((10, 4)).astype(np.float32)
    idx = np.array([1, 3, 3, 7], dtype=np.int64)
    assert np.allclose(_run("index_select", table, idx, axis=0), table[idx])
    tokens = np.array([[0, 2], [9, 5]], dtype=np.int64)
    emb = _run("embedding", tokens, table)
    assert emb.shape == (2, 2, 4)
    assert np.allclose(emb, table[tokens])


def test_masked_fill_dropout_pad_identity(rng):
    x = rng.standard_normal((3, 3)).astype(np.float32)
    mask = np.eye(3, dtype=bool)
    filled = _run("masked_fill", x, mask, value=-9.0)
    assert np.allclose(np.diag(filled), -9.0)
    assert np.allclose(filled[~mask], x[~mask])

    assert np.allclose(_run("dropout", x, p=0.5), x)  # eval mode: identity
    padded = _run("pad", x, pad_width=((1, 1), (0, 2)), value=0.5)
    assert padded.shape == (5, 5)
    assert np.allclose(padded[0], 0.5)
    assert np.allclose(_run("identity", x), x)


def test_structural_ops_marked_as_non_rounding():
    for name in ("reshape", "flatten", "transpose", "permute", "concat", "slice",
                 "embedding", "masked_fill", "dropout", "pad", "identity"):
        assert get_op(name).introduces_rounding is False
        assert get_op(name).estimate_flops(np.zeros(4)) == 0.0


def test_registry_category_listing():
    structural = list_ops(category="structural")
    assert "reshape" in structural and "embedding" in structural
    assert "matmul" not in structural


@pytest.mark.parametrize("name,tensors_builder,attrs", [
    ("reshape", lambda rng: [rng.standard_normal((2, 6))], {"shape": (3, 4)}),
    ("flatten", lambda rng: [rng.standard_normal((2, 3, 2))], {"start_dim": 1}),
    ("transpose", lambda rng: [rng.standard_normal((3, 4))], {"axis0": 0, "axis1": 1}),
    ("permute", lambda rng: [rng.standard_normal((2, 3, 4))], {"dims": (1, 2, 0)}),
    ("expand", lambda rng: [rng.standard_normal((1, 4))], {"shape": (3, 4)}),
    ("slice", lambda rng: [rng.standard_normal((4, 6))],
     {"axis": 1, "start": 1, "stop": 5, "step": 2}),
    ("pad", lambda rng: [rng.standard_normal((3, 3))],
     {"pad_width": ((1, 0), (0, 1)), "value": 0.0}),
    ("dropout", lambda rng: [rng.standard_normal((3, 3))], {"p": 0.1}),
    ("identity", lambda rng: [rng.standard_normal((3, 3))], {}),
])
def test_structural_vjps(name, tensors_builder, attrs, rng):
    finite_difference_vjp_check(name, tensors_builder(rng), attrs, seed=31)


def test_concat_vjp_splits_gradient(rng):
    a = rng.standard_normal((2, 3))
    b = rng.standard_normal((2, 2))
    spec = get_op("concat")
    out = spec.forward(REFERENCE_DEVICE, a, b, axis=1)
    grad = rng.standard_normal(out.shape)
    grads = spec.vjp(REFERENCE_DEVICE, grad, out, a, b, axis=1)
    assert np.allclose(grads[0], grad[:, :3])
    assert np.allclose(grads[1], grad[:, 3:])


def test_embedding_vjp_scatters_to_rows(rng):
    table = rng.standard_normal((6, 3))
    tokens = np.array([[1, 1], [4, 0]], dtype=np.int64)
    spec = get_op("embedding")
    out = spec.forward(REFERENCE_DEVICE, tokens, table)
    grad = np.ones_like(out, dtype=np.float64)
    grads = spec.vjp(REFERENCE_DEVICE, grad, out, tokens, table)
    assert grads[0] is None
    grad_table = grads[1]
    assert np.allclose(grad_table[1], 2.0)   # token 1 appears twice
    assert np.allclose(grad_table[4], 1.0)
    assert np.allclose(grad_table[2], 0.0)


def test_masked_fill_vjp_blocks_masked_positions(rng):
    x = rng.standard_normal((3, 3))
    mask = np.zeros((3, 3), dtype=bool)
    mask[0, 0] = True
    spec = get_op("masked_fill")
    out = spec.forward(REFERENCE_DEVICE, x, mask, value=0.0)
    grads = spec.vjp(REFERENCE_DEVICE, np.ones_like(out, dtype=np.float64), out, x, mask, value=0.0)
    assert grads[0][0, 0] == 0.0
    assert grads[0][1, 1] == 1.0
    assert grads[1] is None
