"""Unit tests for FLOP accounting."""

import numpy as np

from repro.tensorlib.flops import (
    FlopCounter,
    conv2d_flops,
    elementwise_flops,
    matmul_flops,
    normalization_flops,
    reduction_flops,
    softmax_flops,
)


def test_flop_counter_accumulates_and_merges():
    counter = FlopCounter()
    counter.add("matmul", 100.0)
    counter.add("matmul", 50.0)
    counter.add("relu", 10.0)
    assert counter.per_op["matmul"] == 150.0
    assert counter.total == 160.0

    other = FlopCounter()
    other.add("relu", 5.0)
    counter.merge(other)
    assert counter.per_op["relu"] == 15.0
    assert counter.as_giga() == counter.total / 1e9


def test_matmul_flops_2d():
    assert matmul_flops((4, 8), (8, 3)) == 2 * 4 * 3 * 8


def test_matmul_flops_batched():
    assert matmul_flops((2, 5, 4, 8), (2, 5, 8, 3)) == 2 * 10 * 4 * 3 * 8


def test_conv2d_flops():
    flops = conv2d_flops((1, 3, 8, 8), (4, 3, 3, 3), (8, 8))
    assert flops == 2 * 1 * 4 * 8 * 8 * 3 * 3 * 3


def test_elementwise_and_reduction_flops():
    assert elementwise_flops((2, 3), 2.0) == 12.0
    assert reduction_flops((4, 5)) == 20.0
    assert normalization_flops((2, 8)) == 5 * 16
    assert softmax_flops((2, 8)) == 5 * 16
