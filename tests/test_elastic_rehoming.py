"""Re-homing audit: undrain racing a prior failover must leave routing sane.

The bug class under test (satellite of the elastic PR): a tenant is drained
off its home, fails over *again* while the home is out (second drain at the
cluster tier, worker death at the fleet tier), and the original home is then
undrained.  The undrain rebalance must route every tenant back to its ring
owner — and that owner must actually *host* the tenant's ModelEntry, with no
stale copy left on any shard it passed through.  A fresh submit per tenant
then proves the routing table operationally, and exact conservation proves
none of the migrations minted or destroyed value.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.cluster import TAOCluster
from repro.fleet import ProcessFleet
from repro.graph import trace_module
from repro.protocol.service import TERMINAL_TASK_STATUSES


NUM_TENANTS = 6


@pytest.fixture(scope="module")
def rehoming_graphs(mlp_module, mlp_input_factory):
    return [trace_module(mlp_module, mlp_input_factory(0), name=f"tenant_{i}")
            for i in range(NUM_TENANTS)]


def _assert_routing_consistent(front_end, hosted_names_by_shard):
    """Every tenant routed to its ring owner, hosted there and only there."""
    for name in front_end.model_names:
        record = front_end._models[name]
        assert front_end.ring.node_for(record.key) == record.shard_id, \
            f"{name} routed off its ring owner"
    for shard_id, hosted in hosted_names_by_shard.items():
        routed = {name for name in front_end.model_names
                  if front_end._models[name].shard_id == shard_id}
        assert routed == hosted, \
            f"{shard_id}: routing table and hosted entries disagree"


class TestClusterRehoming:
    def test_drain_failover_undrain_submit(self, rehoming_graphs,
                                           mlp_thresholds, mlp_input_factory):
        cluster = TAOCluster(num_shards=3, n_way=2)
        try:
            for graph in rehoming_graphs:
                cluster.register_model(graph, threshold_table=mlp_thresholds)
            for index, graph in enumerate(rehoming_graphs):
                cluster.submit(graph.name, mlp_input_factory(40 + index))

            probe = rehoming_graphs[0].name
            first_home = cluster.location(probe)
            cluster.drain_shard(first_home)
            second_home = cluster.location(probe)
            assert second_home != first_home

            # Second failover while the first home is still out: drain the
            # shard the probe landed on, so its tenants (the probe included)
            # carry *two* stacked re-homes when the undrain arrives.
            cluster.drain_shard(second_home)
            assert cluster.location(probe) not in (first_home, second_home)
            assert cluster.failovers >= 2

            cluster.undrain_shard(first_home)
            cluster.undrain_shard(second_home)

            # Ring placement restored exactly, and the routed shard is the
            # one actually hosting each ModelEntry — no stale copies on the
            # shards a tenant passed through.
            hosted = {shard_id: set(shard.service.model_names)
                      for shard_id, shard in cluster.shards.items()}
            _assert_routing_consistent(cluster, hosted)
            for graph in rehoming_graphs:
                entry = cluster.model(graph.name)  # resolves on routed shard
                assert entry.name == graph.name

            # Operational proof: fresh traffic to every tenant completes.
            follow_ups = [cluster.submit(graph.name, mlp_input_factory(60 + i))
                          for i, graph in enumerate(rehoming_graphs)]
            cluster.process()
            for request_id in follow_ups:
                assert (cluster.request(request_id).status
                        in TERMINAL_TASK_STATUSES)
            assert cluster.pending_count == 0
            assert sum(cluster.chain.balances.values()) == cluster.chain.minted
        finally:
            cluster.close()


class TestFleetRehoming:
    def test_drain_worker_death_undrain_submit(self, rehoming_graphs,
                                               mlp_thresholds,
                                               mlp_input_factory):
        fleet = ProcessFleet(num_workers=3, n_way=2)
        try:
            for graph in rehoming_graphs:
                fleet.register_model(graph, threshold_table=mlp_thresholds)
            request_ids = [fleet.submit(graph.name, mlp_input_factory(70 + i))
                           for i, graph in enumerate(rehoming_graphs)]

            probe = rehoming_graphs[0].name
            first_home = fleet.location(probe)
            fleet.drain_worker(first_home)
            second_home = fleet.location(probe)
            assert second_home != first_home

            # The worker the probe failed over to dies for real; the next
            # drain discovers the EOF and re-homes its tenants again (the
            # drained first home is excluded from the successor search).
            handle = fleet.workers[second_home]
            os.kill(handle.process.pid, signal.SIGKILL)
            handle.process.join(timeout=5.0)
            results = fleet.process()
            assert len(results) == len(request_ids)
            assert not fleet.workers[second_home].alive
            assert fleet.location(probe) not in (first_home, second_home)
            assert fleet.failovers >= 2

            fleet.undrain_worker(first_home)

            # Undrain re-migration: every tenant back on its ring owner,
            # which by construction excludes the dead worker.
            for name in fleet.model_names:
                record = fleet._models[name]
                assert fleet.ring.node_for(record.key) == record.shard_id
                assert record.shard_id != second_home
                assert fleet.workers[record.shard_id].alive

            # Operational proof on the process tier: the routed worker must
            # host each registration, or these submits would fail there.
            follow_ups = [fleet.submit(graph.name, mlp_input_factory(90 + i))
                          for i, graph in enumerate(rehoming_graphs)]
            results = fleet.process()
            assert {r.request_id for r in results} == set(follow_ups)
            for request_id in follow_ups:
                assert (fleet.request(request_id).status
                        in TERMINAL_TASK_STATUSES)
            assert sum(fleet.chain.balances.values()) == fleet.chain.minted
        finally:
            fleet.close()
