"""Operator-granular dataflow graph: the reproduction's PyTorch-FX analogue.

The paper serializes a PyTorch model into "an acyclic dataflow graph
G = (V, E) with a canonical topological order, where each node denotes a
tensor operator" (Sec. 2.2) and later extracts, commits to, and re-executes
contiguous subgraphs during disputes (Sec. 5.2).  This subpackage provides
that machinery:

* :class:`~repro.graph.node.Node` / :class:`~repro.graph.graph.Graph` — the
  graph IR with a canonical topological order;
* :class:`~repro.graph.module.Module` / ``Parameter`` — a tiny ``nn.Module``
  analogue used by the model zoo;
* :class:`~repro.graph.tracer.Tracer` — concrete tracing: running a module's
  ``forward`` on proxy values records one node per primitive operator;
* :class:`~repro.graph.interpreter.Interpreter` — executes a graph (or an
  extracted subgraph) on a simulated device, optionally recording the full
  intermediate trace and FLOP counts;
* :mod:`~repro.graph.subgraph` — live-in/live-out cut sets and contiguous
  slice extraction used by the dispute game.
"""

from repro.graph.node import Node
from repro.graph.graph import Graph, GraphModule
from repro.graph.module import Module, Parameter
from repro.graph.tracer import Tracer, trace_module
from repro.graph.interpreter import ExecutionTrace, Interpreter
from repro.graph.subgraph import SubgraphSlice, extract_subgraph, live_in, live_out

__all__ = [
    "Node",
    "Graph",
    "GraphModule",
    "Module",
    "Parameter",
    "Tracer",
    "trace_module",
    "ExecutionTrace",
    "Interpreter",
    "SubgraphSlice",
    "extract_subgraph",
    "live_in",
    "live_out",
]
