"""Standalone challenger-side verification helpers.

These functions implement the verification primitives outside the full
protocol stack, so an integrator (or a test) can check a single execution or
a model commitment without instantiating a coordinator:

* :func:`verify_execution` — re-execute a request locally and compare every
  recorded operator output (or just the final outputs) against the committed
  thresholds;
* :func:`verify_model_commitment` — recompute the weight/graph/threshold
  Merkle roots from local artifacts and compare them with a published
  commitment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.calibration.thresholds import ExceedanceReport, ThresholdTable
from repro.graph.graph import GraphModule
from repro.graph.interpreter import Interpreter
from repro.merkle.commitments import ModelCommitment, commit_graph, commit_thresholds, commit_weights
from repro.tensorlib.device import DeviceProfile


@dataclass
class VerificationReport:
    """Result of locally verifying one execution."""

    device: str
    checked_operators: int
    exceedances: List[ExceedanceReport] = field(default_factory=list)

    @property
    def accepted(self) -> bool:
        return not self.exceedances

    @property
    def worst_ratio(self) -> float:
        if not self.exceedances:
            return 0.0
        return max(report.max_ratio for report in self.exceedances)


def verify_execution(
    graph_module: GraphModule,
    thresholds: ThresholdTable,
    inputs: Mapping[str, np.ndarray],
    claimed_values: Mapping[str, np.ndarray],
    device: DeviceProfile,
    operators: Optional[List[str]] = None,
) -> VerificationReport:
    """Re-execute locally and compare claimed operator outputs against thresholds.

    ``claimed_values`` maps operator node names to the proposer's claimed
    tensors; when ``operators`` is omitted, every claimed operator with a
    calibrated threshold is checked.
    """
    trace = Interpreter(device).run(graph_module, dict(inputs), record=True)
    to_check = operators if operators is not None else [
        name for name in claimed_values if thresholds.has_operator(name)
    ]
    exceedances: List[ExceedanceReport] = []
    checked = 0
    for name in to_check:
        if name not in claimed_values or not thresholds.has_operator(name):
            continue
        checked += 1
        report = thresholds.check(name, claimed_values[name], trace.values[name])
        if report.exceeded:
            exceedances.append(report)
    return VerificationReport(device=device.name, checked_operators=checked,
                              exceedances=exceedances)


def verify_model_commitment(
    graph_module: GraphModule,
    thresholds: ThresholdTable,
    commitment: ModelCommitment,
) -> Tuple[bool, Dict[str, bool]]:
    """Recompute the three Merkle roots locally and compare with ``commitment``."""
    weight_tree, _ = commit_weights(graph_module.parameters)
    graph_tree, _ = commit_graph(graph_module)
    threshold_tree, _ = commit_thresholds(thresholds)
    checks = {
        "weight_root": weight_tree.root == commitment.weight_root,
        "graph_root": graph_tree.root == commitment.graph_root,
        "threshold_root": threshold_tree.root == commitment.threshold_root,
    }
    return all(checks.values()), checks
