"""Unit and property-based tests for FP32 accumulation orderings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensorlib.accumulate import (
    AccumulationStrategy,
    accumulate_partials,
    chunked_sum,
    split_chunks,
)


def test_split_chunks_covers_range_exactly():
    slices = split_chunks(10, 3)
    covered = []
    for s in slices:
        covered.extend(range(s.start, s.stop))
    assert covered == list(range(10))


def test_split_chunks_rejects_nonpositive_chunk():
    with pytest.raises(ValueError):
        split_chunks(10, 0)


FULL_PRECISION_STRATEGIES = [s for s in AccumulationStrategy
                             if s is not AccumulationStrategy.REDUCED_PRECISION]


@pytest.mark.parametrize("strategy", FULL_PRECISION_STRATEGIES)
def test_accumulate_partials_close_to_fp64(strategy, rng):
    partials = rng.standard_normal((9, 16)).astype(np.float32)
    exact = partials.astype(np.float64).sum(axis=0)
    result = accumulate_partials(partials, strategy)
    assert result.dtype == np.float32
    assert np.allclose(result, exact, rtol=1e-5, atol=1e-5)


def test_accumulate_partials_single_chunk_is_identity(rng):
    partials = rng.standard_normal((1, 8)).astype(np.float32)
    for strategy in FULL_PRECISION_STRATEGIES:
        assert np.allclose(accumulate_partials(partials, strategy), partials[0], atol=1e-7)


def test_reduced_precision_accumulation_is_coarser_but_close(rng):
    """The TF32-style accumulate path is much less precise than any FP32 ordering,
    yet still approximately correct — the behaviour that forces onboarding."""
    partials = rng.standard_normal((32, 64)).astype(np.float32)
    exact = partials.astype(np.float64).sum(axis=0)
    reduced = accumulate_partials(partials, AccumulationStrategy.REDUCED_PRECISION)
    sequential = accumulate_partials(partials, AccumulationStrategy.SEQUENTIAL)
    scale = np.abs(partials).sum(axis=0) + 1.0
    err_reduced = np.abs(reduced - exact) / scale
    err_sequential = np.abs(sequential - exact) / scale
    assert np.allclose(reduced, exact, rtol=5e-2, atol=5e-2)
    assert err_reduced.max() > 10 * err_sequential.max()


def test_accumulate_partials_rejects_empty():
    with pytest.raises(ValueError):
        accumulate_partials(np.zeros((0, 4), dtype=np.float32), AccumulationStrategy.SEQUENTIAL)


def test_orderings_actually_differ_in_low_bits(rng):
    # Large cancellation-heavy sums make re-association visible in FP32.
    values = (rng.standard_normal(4096) * 1e3).astype(np.float32)
    seq = chunked_sum(values, axis=0, chunk=32, strategy=AccumulationStrategy.SEQUENTIAL)
    rev = chunked_sum(values, axis=0, chunk=32, strategy=AccumulationStrategy.REVERSED)
    pair = chunked_sum(values, axis=0, chunk=64, strategy=AccumulationStrategy.PAIRWISE)
    results = {np.float32(seq).tobytes(), np.float32(rev).tobytes(), np.float32(pair).tobytes()}
    assert len(results) >= 2, "different accumulation orders should round differently"


def test_chunked_sum_matches_numpy_reasonably(rng):
    values = rng.standard_normal((64, 7)).astype(np.float32)
    for strategy in (AccumulationStrategy.SEQUENTIAL, AccumulationStrategy.PAIRWISE,
                     AccumulationStrategy.KAHAN):
        result = chunked_sum(values, axis=0, chunk=8, strategy=strategy)
        assert np.allclose(result, values.astype(np.float64).sum(axis=0), rtol=1e-5, atol=1e-4)


def test_chunked_sum_empty_axis_returns_zeros():
    values = np.zeros((0, 5), dtype=np.float32)
    out = chunked_sum(values, axis=0, chunk=4, strategy=AccumulationStrategy.SEQUENTIAL)
    assert out.shape == (5,)
    assert (out == 0).all()


def test_chunked_sum_negative_axis(rng):
    values = rng.standard_normal((3, 17)).astype(np.float32)
    out = chunked_sum(values, axis=-1, chunk=4, strategy=AccumulationStrategy.SEQUENTIAL)
    assert out.shape == (3,)
    assert np.allclose(out, values.sum(axis=1), atol=1e-4)


def test_kahan_is_at_least_as_accurate_as_sequential(rng):
    values = (rng.standard_normal(8192) * 1e4).astype(np.float32)
    exact = values.astype(np.float64).sum()
    seq = float(chunked_sum(values, axis=0, chunk=1, strategy=AccumulationStrategy.SEQUENTIAL))
    kahan = float(chunked_sum(values, axis=0, chunk=1, strategy=AccumulationStrategy.KAHAN))
    assert abs(kahan - exact) <= abs(seq - exact) + 1e-6


@settings(deadline=None, max_examples=40)
@given(
    n=st.integers(1, 300),
    chunk=st.integers(1, 64),
    strategy=st.sampled_from([AccumulationStrategy.SEQUENTIAL, AccumulationStrategy.REVERSED,
                              AccumulationStrategy.PAIRWISE, AccumulationStrategy.KAHAN]),
    seed=st.integers(0, 2**16),
)
def test_chunked_sum_always_close_to_exact(n, chunk, strategy, seed):
    values = np.random.default_rng(seed).standard_normal(n).astype(np.float32)
    exact = values.astype(np.float64).sum()
    approx = float(chunked_sum(values, axis=0, chunk=chunk, strategy=strategy))
    scale = float(np.abs(values).sum()) + 1.0
    assert abs(approx - exact) <= 1e-5 * scale
