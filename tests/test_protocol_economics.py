"""Unit tests for the incentive / economics model (Sec. 5.5)."""

import pytest

from repro.protocol.economics import (
    EconomicParameters,
    analyze_incentives,
    challenger_payoff,
    committee_member_payoff,
    detection_probability,
    feasible_slash_region,
    proposer_payoff_cheap_cheat,
    proposer_payoff_honest,
    proposer_payoff_targeted_cheat,
    slash_region_sweep,
)


def test_detection_probability_formula():
    assert detection_probability(0.2, 0.3, 0.0) == pytest.approx(0.5)
    assert detection_probability(0.2, 0.3, 0.1) == pytest.approx(0.45)
    assert detection_probability(0.0, 0.0, 0.0) == 0.0


def test_detection_probability_validation():
    with pytest.raises(ValueError):
        detection_probability(-0.1, 0.3, 0.0)
    with pytest.raises(ValueError):
        detection_probability(0.7, 0.6, 0.0)
    with pytest.raises(ValueError):
        detection_probability(0.2, 0.3, 1.0)


def test_parameter_validation():
    with pytest.raises(ValueError):
        EconomicParameters(challenger_reward_share=0.0)
    with pytest.raises(ValueError):
        EconomicParameters(challenger_reward_share=0.8, committee_reward_share=0.5)
    with pytest.raises(ValueError):
        EconomicParameters(committee_size=0)


def test_proposer_payoffs_follow_equations():
    params = EconomicParameters(false_positive_rate=0.01)
    slash = 500.0
    assert proposer_payoff_honest(params, slash) == pytest.approx(
        params.task_reward - params.honest_cost - 0.01 * slash)
    assert proposer_payoff_cheap_cheat(params, slash) == pytest.approx(
        params.task_reward - params.cheap_cheat_cost - params.detection * slash)
    assert proposer_payoff_targeted_cheat(params) == pytest.approx(
        params.task_reward - params.targeted_cheat_cost)


def test_challenger_and_committee_payoffs():
    params = EconomicParameters()
    slash = 400.0
    assert challenger_payoff(params, slash, proposer_guilty=True) == pytest.approx(
        (1 - params.false_negative_rate) * params.challenger_reward_share * slash
        - params.challenge_cost)
    assert challenger_payoff(params, slash, proposer_guilty=False) < 0
    assert committee_member_payoff(params, slash, ruled_guilty=True) == pytest.approx(
        params.committee_reward_share * slash / params.committee_size
        - params.committee_member_cost)
    assert committee_member_payoff(params, slash, ruled_guilty=False) == pytest.approx(
        params.committee_fee - params.committee_member_cost)


def test_feasible_region_structure():
    params = EconomicParameters()
    region = feasible_slash_region(params)
    assert region.lower_bound == max(region.l1_deter_cheap_cheat,
                                     region.l2_profitable_challenge,
                                     region.l3_committee_participation)
    assert region.upper_bound == params.proposer_deposit
    assert region.feasible
    assert region.contains(region.upper_bound)
    assert not region.contains(region.lower_bound)


def test_region_becomes_infeasible_with_tiny_deposit():
    params = EconomicParameters(proposer_deposit=10.0)
    region = feasible_slash_region(params)
    assert not region.feasible


def test_region_infeasible_when_detection_below_false_positive():
    params = EconomicParameters(audit_probability=0.0, challenge_probability=0.01,
                                false_negative_rate=0.5, false_positive_rate=0.2)
    region = feasible_slash_region(params)
    assert region.l1_deter_cheap_cheat == float("inf")
    assert not region.feasible


def test_default_analysis_is_incentive_compatible():
    analysis = analyze_incentives(EconomicParameters())
    assert analysis.incentive_compatible
    assert analysis.honest_payoff > analysis.cheap_cheat_payoff
    assert analysis.targeted_cheat_payoff <= 0
    assert analysis.challenger_payoff_guilty > 0
    assert analysis.challenger_payoff_clean <= 0
    assert analysis.committee_payoff_guilty > 0 and analysis.committee_payoff_clean > 0
    assert analysis.feasibility.contains(analysis.slash)


def test_too_small_slash_fails_deterrence():
    params = EconomicParameters()
    analysis = analyze_incentives(params, slash=1.0)
    assert not analysis.honesty_beats_cheap_cheating
    assert not analysis.incentive_compatible


def test_slash_region_sweep_marks_feasible_values():
    params = EconomicParameters()
    region = feasible_slash_region(params)
    candidates = [1.0, region.lower_bound * 1.1, params.proposer_deposit,
                  params.proposer_deposit * 2]
    results = dict(slash_region_sweep(params, candidates))
    assert results[1.0] is False
    assert results[params.proposer_deposit] is True
    assert results[params.proposer_deposit * 2] is False  # exceeds the deposit
