"""Concurrency regressions for the shared state behind cluster workers.

Three pieces of process-wide state are shared by concurrent shard workers
and must be thread-safe:

* :class:`~repro.merkle.cache.HashCache` — the seed version mutated an
  identity-keyed ``OrderedDict`` (``move_to_end`` / ``popitem``) without a
  lock.  CPython's GIL happens to make each individual method call atomic,
  but the compound lookup→promote→evict sequences were never safe by
  contract (and are not on free-threaded builds); the hammer pins the
  locked implementation's exactness and LRU bound under real contention.
* :class:`~repro.protocol.chain.SimulatedChain` — balances/minted/log are
  settled by every shard; appends and transfers must stay exact under
  interleaving.
* :class:`~repro.protocol.chain.ShardChainView` — per-shard clocks over the
  shared ledger: one shard advancing (far) past its challenge windows must
  not move a sibling's clock one block.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.merkle.cache import HashCache, streaming_tensor_hash
from repro.protocol.chain import ShardChainView, SimulatedChain

NUM_THREADS = 8
ROUNDS = 60


def _run_threads(worker) -> None:
    """Run ``worker(thread_index)`` on NUM_THREADS threads, re-raising errors."""
    with ThreadPoolExecutor(max_workers=NUM_THREADS) as pool:
        futures = [pool.submit(worker, index) for index in range(NUM_THREADS)]
        for future in futures:
            future.result()  # propagate the first worker exception


# ----------------------------------------------------------------------
# HashCache
# ----------------------------------------------------------------------

def test_hash_cache_concurrent_hammer_is_exact_and_bounded():
    """Hot shared arrays + per-thread churn under a small LRU: no corruption.

    The tiny ``max_tensors`` forces continuous eviction, which is exactly
    where the unlocked OrderedDict used to break (concurrent ``move_to_end``
    of an entry another thread just ``popitem``-ed).
    """
    cache = HashCache(max_tensors=16)
    shared = [np.random.default_rng(index).standard_normal((24, 24)).astype(np.float32)
              for index in range(6)]
    expected = [streaming_tensor_hash(array) for array in shared]
    barrier = threading.Barrier(NUM_THREADS)

    def worker(thread_index: int) -> None:
        rng = np.random.default_rng(1000 + thread_index)
        barrier.wait()  # maximize interleaving
        for round_index in range(ROUNDS):
            for array, digest in zip(shared, expected):
                assert cache.hash_tensor(array) == digest
            churn = rng.standard_normal((8, 8)).astype(np.float32)
            assert cache.hash_tensor(churn) == streaming_tensor_hash(churn)

    _run_threads(worker)
    stats = cache.stats()
    assert stats["tensor_entries"] <= 16
    # Every lookup either hit or missed; the counters saw all of them.
    total = NUM_THREADS * ROUNDS * (len(shared) + 1)
    assert stats["tensor_hits"] + stats["tensor_misses"] == total


def test_hash_cache_concurrent_model_commitment_memo():
    """The model-commitment memo is race-free and returns one object."""
    cache = HashCache()
    graph_sentinel = object()
    table_sentinel = object()
    commitment = ("commitment",)
    barrier = threading.Barrier(NUM_THREADS)

    def worker(thread_index: int) -> None:
        barrier.wait()
        for _ in range(ROUNDS):
            found = cache.model_commitment(graph_sentinel, table_sentinel,
                                           {"alpha": 3.0})
            assert found is None or found is commitment
            cache.store_model_commitment(graph_sentinel, table_sentinel,
                                         {"alpha": 3.0}, commitment)
            assert cache.model_commitment(
                graph_sentinel, table_sentinel, {"alpha": 3.0}) is commitment

    _run_threads(worker)


# ----------------------------------------------------------------------
# SimulatedChain under concurrent settlement
# ----------------------------------------------------------------------

def test_shared_chain_concurrent_settlement_is_exact():
    """Funds, transfers and appends from many threads: exact conservation."""
    chain = SimulatedChain()
    chain.fund("hub", 0.0)
    barrier = threading.Barrier(NUM_THREADS)

    def worker(thread_index: int) -> None:
        account = f"acct-{thread_index}"
        view = ShardChainView(chain, f"shard-{thread_index}")
        barrier.wait()
        for round_index in range(ROUNDS):
            view.fund(account, 4.0)
            view.transfer(account, "hub", 1.5)
            view.submit(account, "submit_result", payload_bytes=round_index)

    _run_threads(worker)

    # Conservation is exact (all amounts are binary fractions).
    assert sum(chain.balances.values()) == chain.minted
    assert chain.minted == NUM_THREADS * ROUNDS * 4.0
    assert chain.balance("hub") == NUM_THREADS * ROUNDS * 1.5
    # The log saw every append exactly once, with unique contiguous indices.
    assert len(chain.transactions) == NUM_THREADS * ROUNDS
    assert sorted(tx.index for tx in chain.transactions) == \
        list(range(NUM_THREADS * ROUNDS))
    # Per-shard gas attribution partitions the whole log.
    by_shard = chain.gas_by_shard()
    assert set(by_shard) == {f"shard-{i}" for i in range(NUM_THREADS)}
    assert sum(by_shard.values()) == chain.total_gas()


# ----------------------------------------------------------------------
# ShardChainView clock isolation
# ----------------------------------------------------------------------

def test_shard_views_share_ledger_but_not_time():
    chain = SimulatedChain()
    view_a = ShardChainView(chain, "shard-a")
    view_b = ShardChainView(chain, "shard-b")

    view_a.fund("alice", 100.0)
    view_b.transfer("alice", "bob", 25.0)
    # One ledger: both views (and the parent) agree on balances and minted.
    for ledger in (chain, view_a, view_b):
        assert ledger.balance("alice") == 75.0
        assert ledger.balance("bob") == 25.0
        assert ledger.minted == 100.0

    # Independent clocks: a finalization sweep on A leaves B at genesis.
    view_a.advance_time(3600.0 + 1.0)
    assert view_a.timestamp >= 3600.0
    assert view_b.timestamp == 0.0
    assert view_b.block_number == 0
    assert chain.timestamp == 0.0

    # Appends land in the shared log, stamped with shard id and local clock.
    view_b.submit("bob", "submit_result")
    view_a.submit("alice", "finalize")
    assert [tx.shard for tx in chain.transactions] == ["shard-b", "shard-a"]
    assert chain.transactions[0].timestamp == 0.0          # B's genesis clock
    assert chain.transactions[1].timestamp == view_a.timestamp - \
        view_a.block_interval_s                            # A's advanced clock
    # Each view advanced only its own block height.
    assert view_a.block_number == int(3601.0 // chain.block_interval_s) + 1
    assert view_b.block_number == 1
    assert chain.block_number == 0

    # Time validation matches the parent chain's rules.
    with pytest.raises(ValueError):
        view_a.advance_time(-1.0)
    with pytest.raises(ValueError):
        view_a.advance_blocks(-1)
