"""Quickstart: commit a model, serve requests, catch a cheating proposer.

This walks through all four protocol phases on the MiniBERT workload:

1. Phase 0 — calibrate empirical error percentile thresholds across the
   simulated device fleet and commit the model (weights, graph, thresholds).
2. Phase 1 — an honest proposer serves a request; the challenger re-executes,
   finds the result within tolerance, and the result finalizes after the
   challenge window.
3. Phases 2-3 — an adversarial proposer injects a perturbation into an
   intermediate linear output; the challenger's thresholds flag the result,
   the dispute game localizes the exact operator, and the proposer is slashed.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DEVICE_FLEET, TAOSession, get_model_spec


def main() -> None:
    # ------------------------------------------------------------------
    # Phase 0: trace, calibrate, commit.
    # ------------------------------------------------------------------
    spec = get_model_spec("bert_mini")
    module = spec.build_module()
    graph = spec.trace(module, batch_size=2)
    print(f"Traced {spec.paper_analogue} analogue: {graph.num_operators} operators, "
          f"{len(graph.parameters)} parameter tensors")

    calibration_inputs = spec.dataset(module, num_samples=10, seed=7)
    session = TAOSession(graph, calibration_inputs=calibration_inputs, n_way=4)
    commitment = session.setup()
    print(f"Committed model: r_w={commitment.weight_root.hex()[:16]}..., "
          f"r_g={commitment.graph_root.hex()[:16]}..., "
          f"r_e={commitment.threshold_root.hex()[:16]}...")

    # ------------------------------------------------------------------
    # Phase 1: an honest request finalizes optimistically.
    # ------------------------------------------------------------------
    request = spec.sample_inputs(module, 2, seed=101)
    honest = session.make_honest_proposer("honest-gpu-provider", DEVICE_FLEET[1])
    report = session.run_request(request, honest)
    print(f"\nHonest request:   status={report.final_status}, "
          f"challenged={report.challenged}, "
          f"forward={report.result.forward_flops / 1e6:.1f} MFLOPs")

    # ------------------------------------------------------------------
    # Phases 2-3: a cheating proposer is localized and slashed.
    # ------------------------------------------------------------------
    # The cheat: add a small constant bias to one attention-output linear.
    victim_operator = next(
        node.name for node in graph.graph.operators if node.target == "linear"
    )
    cheater = session.make_adversarial_proposer(
        "cheating-provider", {victim_operator: np.float32(0.05)}, DEVICE_FLEET[1]
    )
    report = session.run_request(spec.sample_inputs(module, 2, seed=202), cheater)
    outcome = report.dispute
    print(f"\nCheating request: status={report.final_status}, challenged={report.challenged}")
    if outcome is not None:
        stats = outcome.statistics
        print(f"  dispute localized to operator : {outcome.localized_operator} "
              f"(injected at {victim_operator})")
        print(f"  dispute rounds                : {stats.rounds}")
        print(f"  leaf adjudication path        : {outcome.adjudication.path}")
        print(f"  challenger compute (DCR)      : "
              f"{stats.cost_ratio(report.result.forward_flops):.2f}x one forward pass")
        print(f"  coordinator gas               : {stats.gas_used / 1e3:.1f} kgas")
        print(f"  Merkle proof checks           : {stats.merkle_checks}")


if __name__ == "__main__":
    main()
