"""Projected-gradient attack with Adam updates (paper Sec. 4.4).

The adversary jointly optimizes additive perturbations ``{delta_v}`` at a set
of intermediate operators to flip the model's decision (maximize the logit
margin ``z_target - z_original``), projecting after every step onto the
feasible set induced by either the theoretical IEEE-754 envelopes or the
empirical percentile thresholds (optionally scaled by the sensitivity factor
``alpha`` of Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.autodiff import margin_gradients
from repro.attacks.projections import project_empirical, project_theoretical
from repro.bounds.coexec import BoundInterpreter
from repro.bounds.fp_model import BoundMode
from repro.calibration.thresholds import ThresholdTable
from repro.graph.graph import GraphModule
from repro.graph.interpreter import Interpreter
from repro.ops.registry import get_op
from repro.tensorlib.device import DeviceProfile, REFERENCE_DEVICE


@dataclass(frozen=True)
class AttackConfig:
    """Hyperparameters of the PGD/Adam attack."""

    num_steps: int = 50
    adam_beta1: float = 0.9
    adam_beta2: float = 0.999
    adam_epsilon: float = 1e-8
    #: Per-operator step size as a fraction of the median of its error bound.
    step_size_fraction: float = 0.25
    #: Early stopping: margin change below this fraction of |m0| over the last
    #: ``early_stop_window`` steps (and margin progress stalled near zero).
    early_stop_tolerance: float = 1e-3
    early_stop_window: int = 10
    #: Multiplicative scale applied to the feasible set (Table 2's alpha).
    bound_scale: float = 1.0


@dataclass
class AttackResult:
    """Outcome of one attack attempt on one (input, target-class) pair."""

    success: bool
    original_class: int
    target_class: int
    initial_margin: float          # m0 = z_orig - z_target before the attack (> 0)
    final_margin: float            # m' = z_orig - z_target after the attack
    margin_change: float           # delta m = m0 - m'
    normalized_margin_change: float  # delta = delta m / m0
    steps_used: int
    mode: str
    margin_history: List[float] = field(default_factory=list)
    deltas: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return not self.success


class PGDAttack:
    """Bound-aware PGD attack over per-operator perturbations."""

    def __init__(
        self,
        graph_module: GraphModule,
        mode: str,
        thresholds: Optional[ThresholdTable] = None,
        bound_mode: BoundMode = BoundMode.PROBABILISTIC,
        config: AttackConfig = AttackConfig(),
        device: DeviceProfile = REFERENCE_DEVICE,
        perturbation_nodes: Optional[Sequence[str]] = None,
    ) -> None:
        if mode not in ("theoretical", "empirical"):
            raise ValueError("attack mode must be 'theoretical' or 'empirical'")
        if mode == "empirical" and thresholds is None:
            raise ValueError("empirical attacks require a calibrated ThresholdTable")
        self.graph_module = graph_module
        self.mode = mode
        self.thresholds = thresholds
        self.bound_mode = bound_mode
        self.config = config
        self.device = device
        self.interpreter = Interpreter(device)
        self.logits_node = self._resolve_logits_node()
        self.perturbation_nodes = list(
            perturbation_nodes if perturbation_nodes is not None
            else self._default_perturbation_nodes()
        )
        if not self.perturbation_nodes:
            raise ValueError("no perturbation sites available for the attack")

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------

    def _resolve_logits_node(self) -> str:
        output_names = [
            arg.name for arg in self.graph_module.graph.output_node.args
        ]
        if len(output_names) != 1:
            raise ValueError("the attack expects a single-logits-output graph")
        return output_names[0]

    def _default_perturbation_nodes(self) -> List[str]:
        names: List[str] = []
        for node in self.graph_module.graph.operators:
            spec = get_op(node.target)
            if not spec.introduces_rounding:
                continue
            if node.dtype is not None and not node.dtype.startswith("float"):
                continue
            if node.name == self.logits_node:
                # Perturbing the committed output directly is checked by the
                # challenger's Phase-1 comparison; the interesting surface is
                # the interior of the graph.
                continue
            names.append(node.name)
        return names

    # ------------------------------------------------------------------
    # Feasible-set machinery
    # ------------------------------------------------------------------

    def _theoretical_taus(self, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        bound_interp = BoundInterpreter(device=self.device, mode=self.bound_mode)
        execution = bound_interp.run(self.graph_module, dict(inputs),
                                     only_operators=set(self.perturbation_nodes))
        return {
            name: self.config.bound_scale * np.asarray(execution.bounds[name], dtype=np.float64)
            for name in self.perturbation_nodes
        }

    def _empirical_caps(self) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        caps: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        table = self.thresholds
        for name in self.perturbation_nodes:
            if not table.has_operator(name):
                continue
            ranks, cap_values = table.cap_curve(name)
            caps[name] = (ranks, self.config.bound_scale * cap_values)
        return caps

    def _project(self, name: str, delta: np.ndarray,
                 taus: Optional[Dict[str, np.ndarray]],
                 caps: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]]) -> np.ndarray:
        if self.mode == "theoretical":
            return project_theoretical(delta, taus[name])
        ranks, cap_values = caps[name]
        return project_empirical(delta, ranks, cap_values)

    def _step_sizes(self, taus: Optional[Dict[str, np.ndarray]],
                    caps: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]]) -> Dict[str, float]:
        sizes: Dict[str, float] = {}
        fraction = self.config.step_size_fraction
        if self.mode == "theoretical":
            for name, tau in taus.items():
                median = float(np.median(np.abs(tau)))
                sizes[name] = fraction * max(median, 1e-12)
        else:
            for name, (ranks, cap_values) in caps.items():
                median = float(np.median(cap_values))
                sizes[name] = fraction * max(median, 1e-12)
        return sizes

    # ------------------------------------------------------------------
    # Attack loop
    # ------------------------------------------------------------------

    def attack(
        self,
        inputs: Mapping[str, np.ndarray],
        target_class: int,
        batch_index: int = 0,
        original_class: Optional[int] = None,
    ) -> AttackResult:
        """Run the PGD attack for one input row and one target class."""
        config = self.config
        honest = self.interpreter.run(self.graph_module, dict(inputs), record=True)
        logits = np.asarray(honest.values[self.logits_node], dtype=np.float64)
        if original_class is None:
            original_class = int(np.argmax(logits[batch_index]))
        if int(target_class) == int(original_class):
            raise ValueError("target class must differ from the original prediction")
        initial_margin = float(logits[batch_index, original_class]
                               - logits[batch_index, target_class])

        taus = self._theoretical_taus(inputs) if self.mode == "theoretical" else None
        caps = self._empirical_caps() if self.mode == "empirical" else None
        active_nodes = list(taus) if taus is not None else list(caps)
        if not active_nodes:
            raise ValueError("no perturbation sites have calibrated admissible sets")
        step_sizes = self._step_sizes(taus, caps)

        deltas: Dict[str, np.ndarray] = {
            name: np.zeros(np.shape(honest.values[name]), dtype=np.float64)
            for name in active_nodes
        }
        adam_m = {name: np.zeros_like(deltas[name]) for name in active_nodes}
        adam_v = {name: np.zeros_like(deltas[name]) for name in active_nodes}

        margin_history: List[float] = []
        success = False
        final_margin = initial_margin
        steps_used = 0

        for step in range(1, config.num_steps + 1):
            steps_used = step
            overrides = {name: deltas[name].astype(np.float32) for name in active_nodes}
            trace = self.interpreter.run(self.graph_module, dict(inputs), record=True,
                                         delta_overrides=overrides)
            logits_t = np.asarray(trace.values[self.logits_node], dtype=np.float64)
            margin = float(logits_t[batch_index, original_class]
                           - logits_t[batch_index, target_class])
            margin_history.append(margin)
            final_margin = margin
            if margin < 0.0:
                success = True
                break

            grads = margin_gradients(
                self.graph_module, trace.values, self.logits_node,
                original_class=original_class, target_class=target_class,
                perturbation_nodes=active_nodes, batch_index=batch_index,
                device=self.device,
            )
            for name in active_nodes:
                grad = grads.get(name)
                if grad is None:
                    continue
                adam_m[name] = config.adam_beta1 * adam_m[name] + (1 - config.adam_beta1) * grad
                adam_v[name] = config.adam_beta2 * adam_v[name] + (1 - config.adam_beta2) * grad ** 2
                m_hat = adam_m[name] / (1 - config.adam_beta1 ** step)
                v_hat = adam_v[name] / (1 - config.adam_beta2 ** step)
                update = step_sizes[name] * m_hat / (np.sqrt(v_hat) + config.adam_epsilon)
                tentative = deltas[name] + update
                deltas[name] = self._project(name, tentative, taus, caps)

            if self._should_stop_early(margin_history, initial_margin):
                break

        margin_change = initial_margin - final_margin
        normalized = margin_change / initial_margin if initial_margin > 0 else 0.0
        return AttackResult(
            success=success,
            original_class=int(original_class),
            target_class=int(target_class),
            initial_margin=initial_margin,
            final_margin=final_margin,
            margin_change=margin_change,
            normalized_margin_change=normalized,
            steps_used=steps_used,
            mode=self.mode,
            margin_history=margin_history,
            deltas=deltas,
        )

    def _should_stop_early(self, margin_history: List[float], initial_margin: float) -> bool:
        window = self.config.early_stop_window
        if len(margin_history) < window + 1:
            return False
        tolerance = self.config.early_stop_tolerance * max(abs(initial_margin), 1e-12)
        recent = margin_history[-(window + 1):]
        changes = [abs(recent[i + 1] - recent[i]) for i in range(window)]
        return max(changes) < tolerance
