"""Sharded serving: consistent-hash routing, shard workers, failover.

``repro.cluster`` scales the single-process
:class:`~repro.protocol.service.TAOService` horizontally while keeping the
protocol's observable behaviour bit-identical:

* :mod:`repro.cluster.ring` — deterministic consistent-hash ring (virtual
  nodes, drain support, next-node failover rule, minimal-migration resize);
* :mod:`repro.cluster.shard` — one shard: a full ``TAOService`` over a
  per-shard chain view, behind a worker lock;
* :mod:`repro.cluster.cluster` — :class:`TAOCluster`: tenant routing by
  model commitment digest, concurrent shard draining, failover with
  re-dispatch and scoped result-cache invalidation, fleet-wide settlement.
"""

from repro.cluster.cluster import (
    ClusterError,
    ClusterModel,
    ClusterRequest,
    ClusterStats,
    TAOCluster,
)
from repro.cluster.ring import ConsistentHashRing, RingError, key_position
from repro.cluster.shard import Shard

__all__ = [
    "ClusterError",
    "ClusterModel",
    "ClusterRequest",
    "ClusterStats",
    "ConsistentHashRing",
    "RingError",
    "Shard",
    "TAOCluster",
    "key_position",
]
