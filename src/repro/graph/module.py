"""Minimal ``nn.Module`` analogue.

The model zoo (:mod:`repro.models`) defines networks as trees of
:class:`Module` objects whose ``forward`` methods call the functional API in
:mod:`repro.graph.functional`.  Assigning a :class:`Parameter` or a
:class:`Module` to an attribute registers it automatically, and
``named_parameters`` yields qualified names (``"block1.conv.weight"``) that
become the leaves of the weight Merkle tree.

Buffers (e.g. batch-norm running statistics, rotary-embedding caches) are
registered the same way as parameters: the paper commits the entire
``state_dict``, so anything the forward pass reads from model state must be
covered by the weight commitment.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np


class Parameter(np.ndarray):
    """A named tensor owned by a module (weight, bias, or persistent buffer)."""

    def __new__(cls, data, dtype=np.float32) -> "Parameter":
        arr = np.asarray(data, dtype=dtype)
        return arr.view(cls)


class Module:
    """Base class for model components.

    Subclasses implement ``forward(*inputs)`` in terms of the functional API;
    they never execute kernels directly, so the same definition serves both
    tracing and (re-)execution on any simulated device.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, value: np.ndarray, dtype=np.float32) -> Parameter:
        param = value if isinstance(value, Parameter) else Parameter(value, dtype=dtype)
        setattr(self, name, param)
        return param

    def add_module(self, name: str, module: "Module") -> "Module":
        setattr(self, name, module)
        return module

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs in deterministic order."""
        for name in sorted(self._parameters):
            qualified = f"{prefix}{name}" if not prefix else f"{prefix}.{name}"
            yield qualified, self._parameters[name]
        for name in sorted(self._modules):
            child_prefix = name if not prefix else f"{prefix}.{name}"
            yield from self._modules[name].named_parameters(child_prefix)

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name in sorted(self._modules):
            child_prefix = name if not prefix else f"{prefix}.{name}"
            yield from self._modules[name].named_modules(child_prefix)

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: np.asarray(param) for name, param in self.named_parameters()}

    def num_parameters(self) -> int:
        return int(sum(np.asarray(p).size for _, p in self.named_parameters()))

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------

    def forward(self, *inputs):  # pragma: no cover - abstract
        raise NotImplementedError(f"{type(self).__name__} must implement forward()")

    def __call__(self, *inputs):
        return self.forward(*inputs)
