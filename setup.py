"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so the package can be installed in editable mode in fully offline
environments where the ``wheel`` package (required by PEP 660 editable
installs with older setuptools) is unavailable: ``python setup.py develop``
falls back to the legacy egg-link mechanism which needs no wheel build.
"""

from setuptools import setup

setup()
