"""SLO accounting layered on :class:`~repro.protocol.service.ServiceStats`.

The service tiers already count work (`requests_completed`, busy time,
status tallies); what they do not carry is *latency distribution* state an
operator can hold an SLO against.  :class:`SLOTracker` adds exactly that,
in fixed memory, via :class:`~repro.elastic.digest.LatencyDigest`:

* per-phase latency digests — ``total`` (submit to completion), ``queue``
  (submit to drain start) and ``service`` (drain start to completion), each
  reporting p50/p99/p999;
* a ``queue_age`` digest fed from the front end's live queue (how stale is
  the backlog *right now*, sampled per tick);
* admission-backpressure counters: requests rejected at the door when the
  queue bound is hit, and ticks that ended with a non-empty backlog.

Trackers merge associatively (digest merge plus counter sums), so per-worker
or per-run trackers fold into fleet-wide tables without ordering effects.
:meth:`quantile_rows` emits rows shaped for ``benchmarks/reporting.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.elastic.digest import LatencyDigest
from repro.protocol.service import ServiceStats

#: The latency phases every tracker carries, in reporting order.
PHASES: Tuple[str, ...] = ("total", "queue", "service")


@dataclass(frozen=True)
class SLOConfig:
    """The objective: end-to-end p99 bound, optional queue-age bound."""

    p99_latency_s: float
    queue_age_slo_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.p99_latency_s <= 0:
            raise ValueError("p99_latency_s must be positive")
        if self.queue_age_slo_s is not None and self.queue_age_slo_s <= 0:
            raise ValueError("queue_age_slo_s must be positive")


class SLOTracker:
    """Fixed-memory per-phase latency and backpressure accounting."""

    def __init__(self, config: Optional[SLOConfig] = None) -> None:
        self.config = config
        self.phases: Dict[str, LatencyDigest] = {
            phase: LatencyDigest() for phase in PHASES}
        self.queue_age = LatencyDigest()
        self.admission_rejections = 0
        self.backpressure_ticks = 0

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def observe(self, total_s: float, queue_s: Optional[float] = None,
                service_s: Optional[float] = None) -> None:
        """Record one completed request's phase latencies."""
        self.phases["total"].add(total_s)
        if queue_s is not None:
            self.phases["queue"].add(queue_s)
        if service_s is not None:
            self.phases["service"].add(service_s)

    def observe_queue_ages(self, ages_s: Iterable[float]) -> None:
        """Sample the live backlog; a non-empty sample is a backpressure tick."""
        sampled = False
        for age in ages_s:
            self.queue_age.add(max(0.0, float(age)))
            sampled = True
        if sampled:
            self.backpressure_ticks += 1

    def admission_rejected(self, count: int = 1) -> None:
        self.admission_rejections += int(count)

    def ingest_stats(self, stats: ServiceStats) -> None:
        """Fold a service tier's raw completion latencies into ``total``.

        This is the bridge from the existing accounting: any tier that
        already fills ``ServiceStats.latencies_s`` gets digest quantiles
        for free, without the tier itself learning about digests.
        """
        self.phases["total"].add_many(max(0.0, float(value))
                                      for value in stats.latencies_s)

    @classmethod
    def from_stats(cls, stats: ServiceStats,
                   config: Optional[SLOConfig] = None) -> "SLOTracker":
        tracker = cls(config)
        tracker.ingest_stats(stats)
        return tracker

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def p99_burn(self) -> float:
        """Observed total p99 over the objective (>1 means the SLO is burning)."""
        if self.config is None or self.phases["total"].count == 0:
            return 0.0
        return self.phases["total"].p99 / self.config.p99_latency_s

    def queue_age_burn(self, oldest_age_s: float) -> float:
        """Live oldest-queue-age over the objective (0 when unconfigured)."""
        if self.config is None or self.config.queue_age_slo_s is None:
            return 0.0
        return oldest_age_s / self.config.queue_age_slo_s

    # ------------------------------------------------------------------
    # Merge / reporting
    # ------------------------------------------------------------------

    def merge(self, other: "SLOTracker") -> "SLOTracker":
        for phase in PHASES:
            self.phases[phase].merge(other.phases[phase])
        self.queue_age.merge(other.queue_age)
        self.admission_rejections += other.admission_rejections
        self.backpressure_ticks += other.backpressure_ticks
        return self

    def quantile_rows(self) -> List[Sequence[object]]:
        """Per-phase rows (phase, count, p50, p99, p999, max) for reporting."""
        rows: List[Sequence[object]] = []
        for phase in PHASES:
            digest = self.phases[phase]
            summary = digest.summary()
            rows.append([phase, int(summary["count"]), summary["p50"],
                         summary["p99"], summary["p999"], summary["max"]])
        return rows

    def as_dict(self) -> Dict[str, object]:
        return {
            "phases": {phase: self.phases[phase].summary() for phase in PHASES},
            "queue_age": self.queue_age.summary(),
            "admission_rejections": self.admission_rejections,
            "backpressure_ticks": self.backpressure_ticks,
            "p99_burn": self.p99_burn(),
        }
