"""Unit tests for the graph interpreter."""

import numpy as np
import pytest

from repro.graph.interpreter import Interpreter
from repro.tensorlib.device import DEVICE_FLEET, REFERENCE_DEVICE


def test_missing_input_raises(mlp_graph):
    with pytest.raises(ValueError):
        Interpreter(DEVICE_FLEET[0]).run(mlp_graph, {})


def test_recorded_trace_contains_every_node(mlp_graph, mlp_inputs):
    trace = Interpreter(DEVICE_FLEET[0]).run(mlp_graph, mlp_inputs, record=True)
    node_names = {n.name for n in mlp_graph.graph.nodes if n.op != "output"}
    assert node_names.issubset(set(trace.values))


def test_unrecorded_trace_contains_only_outputs(mlp_graph, mlp_inputs):
    trace = Interpreter(DEVICE_FLEET[0]).run(mlp_graph, mlp_inputs, record=False)
    assert set(trace.values) == set(trace.output_names)


def test_output_accessors(mlp_graph, mlp_inputs):
    trace = Interpreter(DEVICE_FLEET[0]).run(mlp_graph, mlp_inputs)
    assert trace.output.shape == (4, 6)
    assert trace.outputs[0] is trace.output
    with pytest.raises(KeyError):
        trace.value("not-a-node")


def test_same_device_is_bitwise_deterministic(mlp_graph, mlp_inputs):
    interp = Interpreter(DEVICE_FLEET[1])
    a = interp.run(mlp_graph, mlp_inputs)
    b = interp.run(mlp_graph, mlp_inputs)
    assert np.array_equal(a.output, b.output)


def test_different_devices_diverge_within_tolerance(mlp_graph, mlp_inputs):
    outputs = [Interpreter(d).run(mlp_graph, mlp_inputs).output for d in DEVICE_FLEET]
    # Always numerically close ...
    for out in outputs[1:]:
        assert np.allclose(out, outputs[0], atol=1e-4)
    # ... but at least two devices differ in the low-order bits somewhere in
    # the graph (checked on the pre-softmax linear which has larger magnitude).
    traces = [Interpreter(d).run(mlp_graph, mlp_inputs, record=True) for d in DEVICE_FLEET]
    linear_outputs = {t.values["linear_1"].tobytes() for t in traces}
    assert len(linear_outputs) >= 2


def test_flop_counting(mlp_graph, mlp_inputs):
    trace = Interpreter(DEVICE_FLEET[0]).run(mlp_graph, mlp_inputs, count_flops=True)
    assert trace.flops.total > 0
    assert "linear" in trace.flops.per_op
    without = Interpreter(DEVICE_FLEET[0]).run(mlp_graph, mlp_inputs, count_flops=False)
    assert without.flops.total == 0


def test_overrides_replace_node_value(mlp_graph, mlp_inputs):
    interp = Interpreter(DEVICE_FLEET[0])
    honest = interp.run(mlp_graph, mlp_inputs, record=True)
    tampered_value = honest.values["gelu"] + 0.5
    tampered = interp.run(mlp_graph, mlp_inputs, record=True,
                          overrides={"gelu": tampered_value})
    assert np.allclose(tampered.values["gelu"], tampered_value)
    assert not np.allclose(tampered.output, honest.output)


def test_override_shape_mismatch_raises(mlp_graph, mlp_inputs):
    with pytest.raises(ValueError):
        Interpreter(DEVICE_FLEET[0]).run(mlp_graph, mlp_inputs,
                                         overrides={"gelu": np.zeros((1, 1), dtype=np.float32)})


def test_delta_overrides_are_additive(mlp_graph, mlp_inputs):
    interp = Interpreter(DEVICE_FLEET[0])
    honest = interp.run(mlp_graph, mlp_inputs, record=True)
    delta = np.full_like(honest.values["gelu"], 0.25)
    perturbed = interp.run(mlp_graph, mlp_inputs, record=True,
                           delta_overrides={"gelu": delta})
    assert np.allclose(perturbed.values["gelu"], honest.values["gelu"] + 0.25, atol=1e-5)


def test_delta_override_shape_mismatch_raises(mlp_graph, mlp_inputs):
    with pytest.raises(ValueError):
        Interpreter(DEVICE_FLEET[0]).run(
            mlp_graph, mlp_inputs, delta_overrides={"gelu": np.zeros(3, dtype=np.float32)}
        )


def test_run_single_operator_matches_recorded_value(mlp_graph, mlp_inputs):
    interp = Interpreter(DEVICE_FLEET[2])
    trace = interp.run(mlp_graph, mlp_inputs, record=True)
    node = next(n for n in mlp_graph.graph.operators if n.target == "gelu")
    operand = trace.values[node.args[0].name]
    recomputed = interp.run_single_operator(mlp_graph, node.name, [operand])
    assert np.array_equal(recomputed, trace.values[node.name])


def test_run_single_operator_rejects_non_operator(mlp_graph, mlp_inputs):
    placeholder = mlp_graph.graph.placeholders[0]
    with pytest.raises(ValueError):
        Interpreter(REFERENCE_DEVICE).run_single_operator(mlp_graph, placeholder.name, [])
