"""Wire payload builders for everything the fleet ships between processes.

The canonical codec (:mod:`repro.utils.serialization`) moves arrays, scalars,
bytes, lists and string-keyed maps — and it *normalizes* (tuples become
lists, 0-d numpy scalars collapse to Python scalars).  The protocol objects
that cross the fleet boundary care about exactly the structure the codec
normalizes away, so this module defines the explicit, tagged payload shapes:

* **Graphs** — nodes in topological order with type-tagged arguments:
  ``{"__node__": name}`` marks a node reference (the same marker the graph's
  own ``signature_payload`` uses) and ``{"__tuple__": [...]}`` preserves
  tuple-vs-list structure for the interpreter.  Round-tripping a traced
  module through :func:`graph_to_payload`/:func:`graph_from_payload` yields
  a graph with an identical signature, identical parameters and therefore a
  byte-identical model commitment.
* **Perturbations** — adversarial deltas keep their numpy dtype via a
  ``{"__scalar__": {"dtype", "value"}}`` tag (a bare ``np.float32`` would
  come back as a Python float and change the perturbed trace bits).
* **Statistics** — :class:`~repro.protocol.service.ServiceStats` as a flat
  map, lossless in both directions so fleet-wide aggregation sums the same
  numbers the in-process service would.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.graph.graph import Graph, GraphModule
from repro.graph.node import Node
from repro.protocol.service import ServiceStats

_NODE_TAG = "__node__"
_TUPLE_TAG = "__tuple__"
_SCALAR_TAG = "__scalar__"


# ----------------------------------------------------------------------
# Graph modules
# ----------------------------------------------------------------------

def _encode_arg(value: Any) -> Any:
    if isinstance(value, Node):
        return {_NODE_TAG: value.name}
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode_arg(item) for item in value]}
    if isinstance(value, list):
        return [_encode_arg(item) for item in value]
    if isinstance(value, dict):
        if _NODE_TAG in value or _TUPLE_TAG in value:
            raise ValueError("argument dict collides with wire tags")
        return {str(key): _encode_arg(item) for key, item in value.items()}
    return value


def _decode_arg(value: Any, by_name: Dict[str, Node]) -> Any:
    if isinstance(value, dict):
        if set(value) == {_NODE_TAG}:
            return by_name[value[_NODE_TAG]]
        if set(value) == {_TUPLE_TAG}:
            return tuple(_decode_arg(item, by_name) for item in value[_TUPLE_TAG])
        return {key: _decode_arg(item, by_name) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_arg(item, by_name) for item in value]
    return value


def graph_to_payload(graph_module: GraphModule) -> Dict[str, Any]:
    """A codec-shippable description of one traced module."""
    graph = graph_module.graph
    nodes = []
    for node in graph.nodes:
        nodes.append({
            "name": node.name,
            "op": node.op,
            "target": node.target,
            "args": _encode_arg(tuple(node.args)),
            "kwargs": {key: _encode_arg(value)
                       for key, value in node.kwargs.items()},
            "shape": None if node.shape is None else [int(d) for d in node.shape],
            "dtype": node.dtype,
        })
    return {
        "name": graph_module.name,
        "input_names": list(graph_module.input_names),
        "metadata": dict(graph_module.metadata),
        "parameters": {name: np.asarray(value)
                       for name, value in graph_module.parameters.items()},
        "constants": {name: np.asarray(value)
                      for name, value in graph.constants.items()},
        "nodes": nodes,
    }


def graph_from_payload(payload: Dict[str, Any]) -> GraphModule:
    """Rebuild the traced module; commitment-identical to the original."""
    graph = Graph()
    by_name: Dict[str, Node] = {}
    for spec in payload["nodes"]:
        args = _decode_arg(spec["args"], by_name)
        kwargs = {key: _decode_arg(value, by_name)
                  for key, value in spec["kwargs"].items()}
        shape = spec["shape"]
        node = Node(
            name=spec["name"],
            op=spec["op"],
            target=spec["target"],
            args=tuple(args),
            kwargs=kwargs,
            shape=None if shape is None else tuple(int(d) for d in shape),
            dtype=spec["dtype"],
        )
        graph.add_node(node)
        by_name[node.name] = node
    for name, value in payload["constants"].items():
        graph.add_constant(name, value)
    return GraphModule(
        graph=graph,
        parameters=dict(payload["parameters"]),
        input_names=list(payload["input_names"]),
        name=payload["name"],
        metadata=dict(payload["metadata"]),
    )


# ----------------------------------------------------------------------
# Perturbation values (adversarial-proposer deltas)
# ----------------------------------------------------------------------

def encode_perturbation(value: Any) -> Any:
    """Ship an additive delta keeping its exact numpy dtype.

    Callables cannot cross a process boundary; fault kinds that need one are
    rebuilt worker-side from their (kind, victim, magnitude, seed) spec
    instead of travelling as values.
    """
    if callable(value):
        raise TypeError(
            "callable perturbations cannot cross the fleet boundary; ship the "
            "fault spec and rebuild the override in the worker")
    array = np.asarray(value)
    if array.ndim == 0:
        return {_SCALAR_TAG: {"dtype": str(array.dtype), "value": array.item()}}
    return array


def decode_perturbation(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {_SCALAR_TAG}:
        spec = value[_SCALAR_TAG]
        return np.dtype(spec["dtype"]).type(spec["value"])
    return value


# ----------------------------------------------------------------------
# Service statistics
# ----------------------------------------------------------------------

def stats_to_payload(stats: ServiceStats) -> Dict[str, Any]:
    return {
        "requests_submitted": int(stats.requests_submitted),
        "requests_completed": int(stats.requests_completed),
        "cache_hits": int(stats.cache_hits),
        "batched_requests": int(stats.batched_requests),
        "disputes_opened": int(stats.disputes_opened),
        "dispute_rounds": int(stats.dispute_rounds),
        "processing_time_s": float(stats.processing_time_s),
        "busy_cpu_s": float(stats.busy_cpu_s),
        "pipeline_critical_s": float(stats.pipeline_critical_s),
        "pipelined_drains": int(stats.pipelined_drains),
        "stage_busy_s": {stage: float(seconds)
                         for stage, seconds in stats.stage_busy_s.items()},
        "latencies_s": [float(value) for value in stats.latencies_s],
        "status_counts": {status: int(count)
                          for status, count in stats.status_counts.items()},
    }


def stats_from_payload(payload: Dict[str, Any]) -> ServiceStats:
    return ServiceStats(
        requests_submitted=int(payload["requests_submitted"]),
        requests_completed=int(payload["requests_completed"]),
        cache_hits=int(payload["cache_hits"]),
        batched_requests=int(payload["batched_requests"]),
        disputes_opened=int(payload["disputes_opened"]),
        dispute_rounds=int(payload["dispute_rounds"]),
        processing_time_s=float(payload["processing_time_s"]),
        busy_cpu_s=float(payload["busy_cpu_s"]),
        pipeline_critical_s=float(payload["pipeline_critical_s"]),
        pipelined_drains=int(payload["pipelined_drains"]),
        stage_busy_s=dict(payload["stage_busy_s"]),
        latencies_s=list(payload["latencies_s"]),
        status_counts=dict(payload["status_counts"]),
    )
