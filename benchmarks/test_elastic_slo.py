"""Elastic serving headline: step-load spike, autoscale 1 -> 4, stay exact.

The elastic subsystem's contract, measured end to end on real worker
processes: an open-loop step-load spike (seeded, regenerable from the seed
alone) drives a :class:`~repro.fleet.fleet.ProcessFleet` that starts at one
worker behind an :class:`~repro.elastic.autoscaler.Autoscaler`.  The spike
must force the fleet to 4 workers from live signals only, and after
convergence the elastic fleet must hold the p99 latency SLO — defined
relative to what a *static* 4-worker fleet achieves on the identical
arrival schedule, so the gate measures elasticity overhead rather than host
speed.

The transparency half of the contract is enforced unconditionally: the
autoscaled run must be **verdict-byte-identical and ledger-exact** against
the static fleet — same per-request fingerprints in admission order, equal
balances on every account, equal minted totals.  Scaling events may never
change what the protocol decides, only when it gets decided.

The p99 gate is only enforced on hosts with >= 4 cores (fewer cores cannot
realize 4-way parallelism by physics); the report is emitted either way.
"""

from __future__ import annotations

import os
from typing import List, Tuple

from repro.elastic import (
    Autoscaler,
    AutoscalerConfig,
    FleetTarget,
    LatencyDigest,
    OpenLoopDriver,
    OpenLoopGenerator,
    RateSchedule,
    SLOConfig,
    SLOTracker,
)
from repro.fleet import ProcessFleet

from benchmarks.reporting import emit_report
from benchmarks.test_cluster_scaling import _payload, _workload

NUM_TENANTS = 6
SEED = 20260808
MAX_WORKERS = 4
PER_WORKER_CAPACITY = 6
#: Post-convergence p99 must stay within this factor of the static fleet's
#: p99 on the same arrivals (floored so micro-latency hosts don't divide by
#: noise).  Relative, so the gate survives slow CI hardware.
GATE_P99_FACTOR = 3.0
GATE_P99_FLOOR_S = 0.5


def _arrivals():
    schedule = RateSchedule.step(base_rate=4.0, peak_rate=24.0,
                                 spike_at_s=3.0, spike_duration_s=4.0,
                                 duration_s=10.0)
    generator = OpenLoopGenerator(
        schedule, tuple(f"mlp_head_{i}" for i in range(NUM_TENANTS)),
        seed=SEED, zipf_exponent=0.6, payload_pool=3,
        force_challenge_every=19)
    return generator.generate()


def _fingerprint(request) -> Tuple:
    """Client-observable verdict bytes (mirrors the equivalence-test pin)."""
    report = request.report
    if report is None:
        return (request.status, request.error is not None)
    dispute = report.dispute
    return (
        request.status,
        report.final_status,
        report.finalized_optimistically,
        bytes(report.result.commitment.value),
        tuple(bool(r.exceeded) for r in report.verification_reports),
        None if dispute is None else (
            dispute.proposer_cheated,
            dispute.localized_operator,
            dispute.resolved_by_timeout,
            dispute.statistics.rounds,
            dispute.statistics.gas_used,
        ),
    )


def _drive(fleet: ProcessFleet, graphs, thresholds, arrivals, autoscaler=None):
    for graph in graphs:
        fleet.register_model(graph, threshold_table=thresholds)
    driver = OpenLoopDriver(fleet, arrivals, _payload,
                            per_worker_capacity=PER_WORKER_CAPACITY,
                            autoscaler=autoscaler,
                            slo_tracker=SLOTracker(
                                SLOConfig(p99_latency_s=60.0)))
    return driver.run()


def _latencies_from_tick(fleet, report, first_tick: int) -> LatencyDigest:
    digest = LatencyDigest()
    for tick in report.ticks:
        if tick.index < first_tick:
            continue
        for request_id in tick.admitted_ids:
            latency = fleet.request(request_id).latency_s
            if latency is not None:
                digest.add(max(0.0, latency))
    return digest


def test_elastic_slo(benchmark):
    graphs, thresholds = _workload()
    graphs = graphs[:NUM_TENANTS]
    arrivals = _arrivals()

    def run():
        elastic = ProcessFleet(num_workers=1, n_way=2)
        try:
            config = AutoscalerConfig(
                min_workers=1, max_workers=MAX_WORKERS,
                queue_high_per_worker=4.0, queue_low_per_worker=0.5,
                cooldown_ticks=0, scale_down_patience=50)
            autoscaler = Autoscaler(FleetTarget(elastic, config), config)
            elastic_report = _drive(elastic, graphs, thresholds, arrivals,
                                    autoscaler=autoscaler)
            elastic_ledger = (dict(elastic.chain.balances),
                              elastic.chain.minted)
            elastic_prints = [_fingerprint(r) for r in elastic_report.requests]
            conv_tick = elastic_report.first_tick_at_workers(MAX_WORKERS)
            elastic_post = _latencies_from_tick(
                elastic, elastic_report, conv_tick if conv_tick is not None
                else len(elastic_report.ticks))
        finally:
            elastic.close()

        static = ProcessFleet(num_workers=MAX_WORKERS, n_way=2)
        try:
            static_report = _drive(static, graphs, thresholds, arrivals)
            static_ledger = (dict(static.chain.balances), static.chain.minted)
            static_prints = [_fingerprint(r) for r in static_report.requests]
            static_post = _latencies_from_tick(
                static, static_report, conv_tick if conv_tick is not None
                else len(static_report.ticks))
        finally:
            static.close()
        return (elastic_report, elastic_prints, elastic_ledger, elastic_post,
                static_report, static_prints, static_ledger, static_post,
                conv_tick)

    (elastic_report, elastic_prints, elastic_ledger, elastic_post,
     static_report, static_prints, static_ledger, static_post,
     conv_tick) = benchmark.pedantic(run, rounds=1, iterations=1)

    cores = os.cpu_count() or 1
    gated = cores >= MAX_WORKERS
    timeline = elastic_report.workers_timeline()
    matches = sum(a == b for a, b in zip(elastic_prints, static_prints))

    elastic_summary = elastic_post.summary()
    static_summary = static_post.summary()
    slo_p99_s = max(GATE_P99_FLOOR_S,
                    GATE_P99_FACTOR * float(static_summary["p99"]))

    timeline_rows: List[List[object]] = [
        [tick.index, tick.arrivals, tick.completed, tick.queue_depth,
         tick.workers, tick.action, tick.reason or "-"]
        for tick in elastic_report.ticks]
    quantile_rows: List[List[object]] = []
    for label, report in (("elastic 1->4", elastic_report),
                          (f"static {MAX_WORKERS}", static_report)):
        for row in report.slo.quantile_rows():
            quantile_rows.append([label] + list(row))
    post_rows = [
        ["elastic 1->4", int(elastic_summary["count"]),
         elastic_summary["p50"], elastic_summary["p99"],
         elastic_summary["p999"]],
        [f"static {MAX_WORKERS}", int(static_summary["count"]),
         static_summary["p50"], static_summary["p99"],
         static_summary["p999"]],
    ]
    emit_report(
        "elastic_slo",
        "Autoscaled ProcessFleet under a step-load spike vs a static "
        f"{MAX_WORKERS}-worker fleet ({NUM_TENANTS} tenants, "
        f"{len(arrivals)} open-loop arrivals, seed {SEED})",
        [
            ("Scale-up timeline (elastic fleet)",
             ["tick", "arrivals", "completed", "queue depth", "workers",
              "action", "reason"],
             timeline_rows),
            ("Latency quantiles, full run (seconds)",
             ["deployment", "phase", "count", "p50", "p99", "p999", "max"],
             quantile_rows),
            (f"Post-convergence latency (ticks >= {conv_tick})",
             ["deployment", "count", "p50", "p99", "p999"],
             post_rows),
        ],
        notes=(
            f"Exactness differential: {matches}/{len(arrivals)} verdict "
            "fingerprints byte-identical in admission order; ledger equal: "
            f"{elastic_ledger == static_ledger}.  p99 gate: elastic "
            f"post-convergence p99 <= {GATE_P99_FACTOR}x static p99 "
            f"(= {slo_p99_s:.4f}s), "
            + ("ENFORCED on this host."
               if gated else
               f"SKIPPED on this host ({cores} core(s) < {MAX_WORKERS}: "
               "4-way parallelism cannot be realized by physics).")),
    )

    # -- Transparency gates: unconditional, host-independent. --------------
    assert len(elastic_report.requests) == len(arrivals)
    assert len(static_report.requests) == len(arrivals)
    assert matches == len(arrivals), \
        f"only {matches}/{len(arrivals)} verdicts identical"
    assert elastic_ledger[0] == static_ledger[0]
    assert elastic_ledger[1] == static_ledger[1]
    assert sum(elastic_ledger[0].values()) == elastic_ledger[1]

    # -- Scale-up shape: the spike must force 1 -> 4 from live signals. ----
    assert timeline[0] == 1
    assert conv_tick is not None, f"never reached {MAX_WORKERS} workers"
    assert max(timeline) == MAX_WORKERS
    assert any(d.action == "up" for d in elastic_report.decisions)

    # -- SLO gate: post-convergence p99, relative to the static fleet. -----
    assert elastic_summary["count"] > 0 and static_summary["count"] > 0
    if gated:
        assert float(elastic_summary["p99"]) <= slo_p99_s, (
            f"post-convergence p99 {elastic_summary['p99']:.4f}s exceeds "
            f"SLO {slo_p99_s:.4f}s")
