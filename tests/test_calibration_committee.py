"""Committee-leaf acceptance-envelope calibration unit tests."""

import numpy as np
import pytest

from repro.calibration import (
    PERCENTILE_GRID,
    CommitteeEnvelopeConfig,
    CommitteeEnvelopeProfile,
    calibrate_committee_envelope,
)
from repro.calibration.committee import leaf_elementwise_errors, leaf_operands
from repro.graph.interpreter import Interpreter
from repro.tensorlib import DEVICE_FLEET


@pytest.fixture(scope="module")
def envelope(mlp_graph, mlp_input_factory):
    return calibrate_committee_envelope(
        mlp_graph, [mlp_input_factory(1000 + i) for i in range(8)],
        CommitteeEnvelopeConfig(devices=DEVICE_FLEET),
    )


def test_envelope_covers_every_operator(mlp_graph, envelope):
    operator_names = {node.name for node in mlp_graph.graph.operators}
    assert set(envelope.operator_names()) == operator_names
    assert envelope.num_samples == 8
    assert envelope.num_pairs == len(DEVICE_FLEET) * (len(DEVICE_FLEET) - 1)
    for name in envelope.operator_names():
        assert envelope.abs_thresholds[name].shape == (len(PERCENTILE_GRID),)
        # Percentile curves are nondecreasing; max/percentile aggregation
        # preserves that.
        assert np.all(np.diff(envelope.abs_thresholds[name]) >= 0)
        assert name in envelope.stability


def test_envelope_accepts_honest_single_op_reexecution(mlp_graph, mlp_input_factory,
                                                       envelope):
    """Fresh-input honest leaf states stay inside the calibrated envelope."""
    for seed in (7, 8, 9):
        inputs = mlp_input_factory(5000 + seed)
        for proposer_device in DEVICE_FLEET:
            trace = Interpreter(proposer_device).run(mlp_graph, inputs, record=True)
            for node in mlp_graph.graph.operators:
                operands = leaf_operands(mlp_graph, node, trace.values)
                for member_device in DEVICE_FLEET:
                    reference = Interpreter(member_device).run_single_operator(
                        mlp_graph, node.name, operands)
                    report = envelope.check(node.name, trace.values[node.name],
                                            reference)
                    assert not report.exceeded, (
                        f"honest leaf flagged: {node.name} proposer="
                        f"{proposer_device.name} member={member_device.name} "
                        f"ratio={report.max_ratio}"
                    )


def test_envelope_flags_tampered_leaf_claims(mlp_graph, mlp_inputs, envelope):
    """Low-bit tampers far outside honest spread exceed the envelope."""
    trace = Interpreter(DEVICE_FLEET[0]).run(mlp_graph, mlp_inputs, record=True)
    for op_name in ("linear", "linear_1", "gelu"):
        node = mlp_graph.graph.node(op_name)
        operands = leaf_operands(mlp_graph, node, trace.values)
        reference = Interpreter(DEVICE_FLEET[1]).run_single_operator(
            mlp_graph, op_name, operands)
        honest = trace.values[op_name]
        tampered = honest + 0.01 * np.maximum(np.abs(honest), 0.1).astype(np.float32)
        report = envelope.check(op_name, tampered, reference)
        assert report.exceeded, op_name


def test_deterministic_operator_envelope_is_exact_zero(envelope):
    """Bit-deterministic kernels calibrate a zero envelope: any deviation is
    fraud, and honest re-execution has exactly zero error (no floor blow-up)."""
    assert float(envelope.abs_thresholds["relu"].max()) == 0.0
    value = np.linspace(-1.0, 1.0, 32, dtype=np.float32)
    clean = envelope.check("relu", value, value)
    assert not clean.exceeded and clean.max_ratio == 0.0
    tampered = envelope.check("relu", value + np.float32(1e-6), value)
    assert tampered.exceeded


def test_leaf_statistic_floors_near_zero_denominators():
    proposed = np.array([1.0, 1e-9, -2.0], dtype=np.float32)
    reference = np.array([1.0 + 1e-6, 2e-9, -2.0], dtype=np.float32)
    abs_err, rel_err = leaf_elementwise_errors(proposed, reference,
                                               rel_scale_floor=1e-3)
    # The near-zero element is measured against 1e-3 * max|proposed| = 2e-3,
    # not against its own vanishing magnitude.
    assert rel_err[1] == pytest.approx(abs_err[1] / 2e-3)
    # Elements of consequential size keep the plain relative error.
    assert rel_err[0] == pytest.approx(abs_err[0] / 1.0, rel=1e-6)


def test_floor_merges_elementwise_maximum(envelope, mlp_thresholds):
    floored = envelope.floor(mlp_thresholds)
    assert isinstance(floored, CommitteeEnvelopeProfile)
    for name in mlp_thresholds.operator_names():
        expected = np.maximum(mlp_thresholds.abs_thresholds[name],
                              envelope.abs_thresholds[name])
        np.testing.assert_array_equal(floored.abs_thresholds[name], expected)
        expected_rel = np.maximum(mlp_thresholds.rel_thresholds[name],
                                  envelope.rel_thresholds[name])
        np.testing.assert_array_equal(floored.rel_thresholds[name], expected_rel)
    # The floored checker inherits the leaf statistic's provenance.
    assert floored.rel_scale_floor == envelope.rel_scale_floor


def test_floor_rejects_grid_mismatch(envelope, mlp_thresholds):
    import dataclasses
    other = dataclasses.replace(mlp_thresholds, grid=(0.0, 50.0, 100.0))
    with pytest.raises(ValueError, match="grid"):
        envelope.floor(other)


def test_serialization_round_trip(envelope):
    payload = envelope.to_dict()
    restored = CommitteeEnvelopeProfile.from_dict(payload)
    assert restored.model_name == envelope.model_name
    assert restored.envelope_percentile == envelope.envelope_percentile
    assert restored.rel_scale_floor == envelope.rel_scale_floor
    assert restored.operator_names() == envelope.operator_names()
    for name in envelope.operator_names():
        np.testing.assert_allclose(restored.abs_thresholds[name],
                                   envelope.abs_thresholds[name])
        np.testing.assert_allclose(restored.rel_thresholds[name],
                                   envelope.rel_thresholds[name])


def test_leaf_payloads_pin_decision_rule_provenance(envelope):
    payloads = envelope.leaf_payloads()
    assert set(payloads) == set(envelope.operator_names())
    sample = payloads["linear"]
    assert b"envelope_percentile" in sample
    assert b"rel_scale_floor" in sample
    assert b"safety_factor" in sample


def test_config_validation():
    with pytest.raises(ValueError, match="two devices"):
        CommitteeEnvelopeConfig(devices=(DEVICE_FLEET[0],))
    with pytest.raises(ValueError, match="envelope_percentile"):
        CommitteeEnvelopeConfig(envelope_percentile=0.0)
    with pytest.raises(ValueError, match="safety_factor"):
        CommitteeEnvelopeConfig(safety_factor=0.0)
    with pytest.raises(ValueError, match="rel_scale_floor"):
        CommitteeEnvelopeConfig(rel_scale_floor=1.0)


def test_lower_envelope_percentile_is_tighter(mlp_graph, mlp_input_factory):
    dataset = [mlp_input_factory(1000 + i) for i in range(8)]
    loose = calibrate_committee_envelope(
        mlp_graph, dataset, CommitteeEnvelopeConfig(envelope_percentile=100.0))
    tight = calibrate_committee_envelope(
        mlp_graph, dataset, CommitteeEnvelopeConfig(envelope_percentile=50.0))
    assert all(
        np.all(tight.abs_thresholds[name] <= loose.abs_thresholds[name])
        for name in loose.operator_names()
    )
    # And at least one operator is strictly tighter somewhere.
    assert any(
        np.any(tight.abs_thresholds[name] < loose.abs_thresholds[name])
        for name in loose.operator_names()
    )
