"""MiniBERT: the BERT-large analogue.

An encoder-only transformer classifier: token + position embeddings, a stack
of post-norm encoder layers (multi-head self-attention, LayerNorm, GELU
feed-forward), a pooled [CLS]-style head and a classification layer.  The
operator mix — linear, bmm, softmax, layer_norm, gelu, add, reshape/permute —
matches the paper's BERT-large workload, which is what matters for
per-operator error calibration and attack evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.graph import functional as F
from repro.graph.module import Module, Parameter
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class BertConfig:
    """Architecture hyperparameters of MiniBERT."""

    vocab_size: int = 1000
    max_seq_len: int = 32
    d_model: int = 64
    num_heads: int = 4
    num_layers: int = 3
    d_ff: int = 128
    num_classes: int = 8
    seed: int = 1

    @property
    def head_dim(self) -> int:
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        return self.d_model // self.num_heads

    @classmethod
    def small(cls) -> "BertConfig":
        return cls()

    @classmethod
    def large(cls) -> "BertConfig":
        """A deeper/wider variant for long-graph experiments."""
        return cls(d_model=96, num_heads=6, num_layers=6, d_ff=192)


def _linear_init(rng: np.random.Generator, out_dim: int, in_dim: int) -> np.ndarray:
    scale = 1.0 / np.sqrt(in_dim)
    return (rng.standard_normal((out_dim, in_dim)) * scale).astype(np.float32)


class MultiHeadSelfAttention(Module):
    """Standard scaled-dot-product multi-head attention."""

    def __init__(self, rng: np.random.Generator, config: BertConfig) -> None:
        super().__init__()
        d = config.d_model
        self.num_heads = config.num_heads
        self.head_dim = config.head_dim
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.wq = Parameter(_linear_init(rng, d, d))
        self.bq = Parameter(np.zeros(d))
        self.wk = Parameter(_linear_init(rng, d, d))
        self.bk = Parameter(np.zeros(d))
        self.wv = Parameter(_linear_init(rng, d, d))
        self.bv = Parameter(np.zeros(d))
        self.wo = Parameter(_linear_init(rng, d, d))
        self.bo = Parameter(np.zeros(d))

    def _split_heads(self, x, batch: int, seq: int):
        x = F.reshape(x, shape=(batch, seq, self.num_heads, self.head_dim))
        return F.permute(x, dims=(0, 2, 1, 3))

    def forward(self, hidden):
        batch, seq, d_model = hidden.shape
        q = self._split_heads(F.linear(hidden, self.wq, self.bq), batch, seq)
        k = self._split_heads(F.linear(hidden, self.wk, self.bk), batch, seq)
        v = self._split_heads(F.linear(hidden, self.wv, self.bv), batch, seq)

        k_t = F.transpose(k, axis0=2, axis1=3)
        scores = F.mul(F.bmm(q, k_t), self.scale)
        attention = F.softmax(scores, axis=-1)
        context = F.bmm(attention, v)
        context = F.permute(context, dims=(0, 2, 1, 3))
        context = F.reshape(context, shape=(batch, seq, d_model))
        return F.linear(context, self.wo, self.bo)


class EncoderLayer(Module):
    """Post-norm transformer encoder layer (attention + GELU feed-forward)."""

    def __init__(self, rng: np.random.Generator, config: BertConfig) -> None:
        super().__init__()
        d = config.d_model
        self.attention = MultiHeadSelfAttention(rng, config)
        self.ln1_weight = Parameter(np.ones(d))
        self.ln1_bias = Parameter(np.zeros(d))
        self.w_ff1 = Parameter(_linear_init(rng, config.d_ff, d))
        self.b_ff1 = Parameter(np.zeros(config.d_ff))
        self.w_ff2 = Parameter(_linear_init(rng, d, config.d_ff))
        self.b_ff2 = Parameter(np.zeros(d))
        self.ln2_weight = Parameter(np.ones(d))
        self.ln2_bias = Parameter(np.zeros(d))

    def forward(self, hidden):
        attn_out = self.attention(hidden)
        hidden = F.layer_norm(F.add(hidden, attn_out), self.ln1_weight, self.ln1_bias)
        ff = F.gelu(F.linear(hidden, self.w_ff1, self.b_ff1))
        ff = F.linear(ff, self.w_ff2, self.b_ff2)
        return F.layer_norm(F.add(hidden, ff), self.ln2_weight, self.ln2_bias)


class MiniBERT(Module):
    """Encoder-only transformer classifier (the BERT-large stand-in)."""

    def __init__(self, config: BertConfig = BertConfig()) -> None:
        super().__init__()
        self.config = config
        rng = seeded_rng(config.seed)
        self.token_embedding = Parameter(
            (rng.standard_normal((config.vocab_size, config.d_model)) * 0.02).astype(np.float32)
        )
        self.position_embedding = Parameter(
            (rng.standard_normal((config.max_seq_len, config.d_model)) * 0.02).astype(np.float32)
        )
        self.layers: List[EncoderLayer] = []
        for i in range(config.num_layers):
            layer = EncoderLayer(rng, config)
            self.add_module(f"layer{i}", layer)
            self.layers.append(layer)
        self.pool_weight = Parameter(_linear_init(rng, config.d_model, config.d_model))
        self.pool_bias = Parameter(np.zeros(config.d_model))
        self.cls_weight = Parameter(_linear_init(rng, config.num_classes, config.d_model))
        self.cls_bias = Parameter(np.zeros(config.num_classes))

    def forward(self, token_ids):
        hidden = F.embedding(token_ids, self.token_embedding)
        seq_len = token_ids.shape[1]
        positions = F.embedding(np.arange(seq_len, dtype=np.int64), self.position_embedding)
        hidden = F.add(hidden, positions)
        for layer in self.layers:
            hidden = layer(hidden)
        # [CLS]-style pooling: the first token's hidden state.
        cls = F.slice(hidden, axis=1, start=0, stop=1)
        cls = F.reshape(cls, shape=(token_ids.shape[0], self.config.d_model))
        pooled = F.tanh(F.linear(cls, self.pool_weight, self.pool_bias))
        logits = F.linear(pooled, self.cls_weight, self.cls_bias)
        return logits

    def example_inputs(self, batch_size: int = 2, seed: int = 123) -> dict:
        rng = seeded_rng(seed)
        tokens = rng.integers(0, self.config.vocab_size,
                              size=(batch_size, self.config.max_seq_len), dtype=np.int64)
        return {"token_ids": tokens}
