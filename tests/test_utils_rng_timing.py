"""Unit tests for seeded RNG derivation and the Stopwatch."""

import time

from repro.utils.rng import derive_seed, seeded_rng
from repro.utils.timing import Stopwatch


def test_seeded_rng_reproducible():
    a = seeded_rng(7).standard_normal(5)
    b = seeded_rng(7).standard_normal(5)
    assert (a == b).all()


def test_derive_seed_depends_on_labels():
    base = 99
    assert derive_seed(base, "calibration", 0) != derive_seed(base, "calibration", 1)
    assert derive_seed(base, "calibration", 0) != derive_seed(base, "attack", 0)
    assert derive_seed(base, "calibration", 0) == derive_seed(base, "calibration", 0)


def test_derive_seed_depends_on_base():
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_stopwatch_accumulates_and_merges():
    sw = Stopwatch()
    with sw.measure("step"):
        time.sleep(0.01)
    with sw.measure("step"):
        time.sleep(0.01)
    assert sw.count("step") == 2
    assert sw.total("step") >= 0.02
    assert sw.mean("step") > 0.0

    other = Stopwatch()
    other.add("step", 1.0)
    other.add("other", 2.0)
    sw.merge(other)
    assert sw.count("step") == 3
    assert sw.total("other") == 2.0


def test_stopwatch_unknown_label_is_zero():
    sw = Stopwatch()
    assert sw.total("missing") == 0.0
    assert sw.mean("missing") == 0.0
    assert sw.count("missing") == 0


def test_no_direct_perf_counter_outside_timing():
    """Every latency read goes through ``repro.utils.timing``.

    The consolidated clock is what makes latency accounting virtualizable:
    the pipeline's per-stage wait/busy attribution (and any future
    simulated-time harness) assumes exactly one clock source.  A direct
    ``time.perf_counter`` call anywhere else in ``src/repro`` reintroduces
    an unvirtualizable clock, so this guard greps the whole package.
    """
    import pathlib

    import repro

    package_root = pathlib.Path(repro.__file__).parent
    offenders = []
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root).as_posix()
        if relative == "utils/timing.py":
            continue
        if "perf_counter" in path.read_text(encoding="utf-8"):
            offenders.append(relative)
    assert not offenders, (
        "direct time.perf_counter use outside repro/utils/timing.py in: "
        f"{offenders}; import `now` from repro.utils.timing instead"
    )


def test_thread_now_measures_thread_cpu():
    from repro.utils.timing import now, thread_now

    start_cpu, start_wall = thread_now(), now()
    time.sleep(0.02)  # sleeping costs wall time but (almost) no thread CPU
    cpu, wall = thread_now() - start_cpu, now() - start_wall
    assert wall >= 0.02
    assert cpu < wall
