"""Coordinator state machine (the paper's smart-contract layer).

The coordinator records commitments, manages challenge windows and per-round
dispute timeouts, escrows bonds, and enforces payments/slashing when disputes
resolve.  Every state transition is a metered transaction on the simulated
chain, which is how the reproduction accounts on-chain cost (Table 3's kgas
column).

Only commitments, hashes, indices and verdicts go on chain; tensors are
exchanged off-chain between proposer and challenger (bound to the chain by
their hashes inside the subgraph records).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.merkle.commitments import ExecutionCommitment, ModelCommitment
from repro.protocol.chain import SimulatedChain


class CoordinatorError(RuntimeError):
    """Raised when a protocol message violates the coordinator's state machine."""


class TaskStatus(str, Enum):
    PENDING = "pending"                  # submitted, challenge window open
    FINALIZED = "finalized"              # window elapsed or dispute won by proposer
    DISPUTED = "disputed"                # a dispute game is in progress
    PROPOSER_SLASHED = "proposer_slashed"  # dispute lost by the proposer
    CHALLENGER_SLASHED = "challenger_slashed"  # dispute lost by the challenger


class DisputePhase(str, Enum):
    AWAIT_PARTITION = "await_partition"
    AWAIT_SELECTION = "await_selection"
    AWAIT_ADJUDICATION = "await_adjudication"
    RESOLVED = "resolved"


#: Spec-state names (``repro.spec.machine``) for the open dispute phases,
#: used by the write-ahead journal entries.
_PHASE_SPEC_STATE = {
    DisputePhase.AWAIT_PARTITION: "dispute_partition",
    DisputePhase.AWAIT_SELECTION: "dispute_selection",
    DisputePhase.AWAIT_ADJUDICATION: "dispute_adjudication",
}


@dataclass
class TaskRecord:
    """One execution request tracked by the coordinator."""

    task_id: int
    model_name: str
    user: str
    proposer: str
    commitment: ExecutionCommitment
    fee: float
    proposer_bond: float
    submitted_at: float
    challenge_window_s: float
    status: TaskStatus = TaskStatus.PENDING
    dispute_id: Optional[int] = None

    @property
    def challenge_deadline(self) -> float:
        return self.submitted_at + self.challenge_window_s


@dataclass
class PartitionEntry:
    """On-chain content of one child in a partition message."""

    slice_start: int
    slice_end: int
    h_in: bytes
    h_out: bytes


@dataclass
class DisputeRecord:
    """State of one dispute game."""

    dispute_id: int
    task_id: int
    challenger: str
    challenger_bond: float
    current_start: int
    current_end: int
    round_index: int = 0
    phase: DisputePhase = DisputePhase.AWAIT_PARTITION
    partitions: List[List[PartitionEntry]] = field(default_factory=list)
    selections: List[int] = field(default_factory=list)
    last_action_at: float = 0.0
    winner: Optional[str] = None
    adjudication_path: Optional[str] = None
    adjudication_details: Dict[str, object] = field(default_factory=dict)
    gas_start_index: int = 0

    @property
    def current_size(self) -> int:
        return self.current_end - self.current_start

    @property
    def at_leaf(self) -> bool:
        return self.current_size == 1


class Coordinator:
    """The authenticated coordination service (contract analogue)."""

    def __init__(
        self,
        chain: Optional[SimulatedChain] = None,
        challenge_window_s: float = 3600.0,
        round_timeout_s: float = 600.0,
        proposer_bond: float = 100.0,
        challenger_bond: float = 50.0,
        challenger_reward_share: float = 0.5,
    ) -> None:
        self.chain = chain or SimulatedChain()
        self.challenge_window_s = float(challenge_window_s)
        self.round_timeout_s = float(round_timeout_s)
        self.default_proposer_bond = float(proposer_bond)
        self.default_challenger_bond = float(challenger_bond)
        self.challenger_reward_share = float(challenger_reward_share)

        self.models: Dict[str, ModelCommitment] = {}
        self.tasks: Dict[int, TaskRecord] = {}
        self.disputes: Dict[int, DisputeRecord] = {}
        self._escrow_account = "coordinator-escrow"
        self._burn_account = "coordinator-burn"
        #: Optional write-ahead journal sink.  When set, every state
        #: transition emits a ``(state, event)`` record — matching the
        #: executable spec in ``repro.spec.machine`` — *before* the first
        #: chain mutation of that transition, so a journal replayed after a
        #: crash always covers at least as much protocol progress as the
        #: chain recorded.  Shard workers point this at their RPC channel.
        self.journal: Optional[Callable[[Dict[str, object]], None]] = None

    def _journal_entry(self, **entry: object) -> None:
        if self.journal is not None:
            self.journal(dict(entry))

    # ------------------------------------------------------------------
    # Phase 0: model registration
    # ------------------------------------------------------------------

    def register_model(self, commitment: ModelCommitment, owner: str) -> None:
        if commitment.model_name in self.models:
            raise CoordinatorError(f"model {commitment.model_name!r} already registered")
        self._journal_entry(event="register", model=commitment.model_name)
        self.models[commitment.model_name] = commitment.public_view()
        self.chain.submit(
            owner, "register_model",
            payload_bytes=32 * 3 + 64,
            storage_writes=3,
            details={"model": commitment.model_name,
                     "num_operators": commitment.num_operators},
        )

    def model(self, model_name: str) -> ModelCommitment:
        try:
            return self.models[model_name]
        except KeyError:
            raise CoordinatorError(f"model {model_name!r} is not registered") from None

    # ------------------------------------------------------------------
    # Phase 1: optimistic execution
    # ------------------------------------------------------------------

    def submit_result(
        self,
        model_name: str,
        user: str,
        proposer: str,
        commitment: ExecutionCommitment,
        fee: float,
        proposer_bond: Optional[float] = None,
    ) -> TaskRecord:
        self.model(model_name)
        bond = self.default_proposer_bond if proposer_bond is None else float(proposer_bond)
        self._journal_entry(event="submit", task=len(self.tasks),
                            state="queued", next="pending")
        self.chain.transfer(user, self._escrow_account, float(fee))
        self.chain.transfer(proposer, self._escrow_account, bond)
        task = TaskRecord(
            task_id=len(self.tasks),
            model_name=model_name,
            user=user,
            proposer=proposer,
            commitment=commitment,
            fee=float(fee),
            proposer_bond=bond,
            submitted_at=self.chain.timestamp,
            challenge_window_s=self.challenge_window_s,
        )
        self.tasks[task.task_id] = task
        self.chain.submit(
            proposer, "submit_result",
            payload_bytes=commitment.size_bytes(),
            storage_writes=2,
            details={"task_id": task.task_id, "model": model_name},
        )
        return task

    def task(self, task_id: int) -> TaskRecord:
        try:
            return self.tasks[task_id]
        except KeyError:
            raise CoordinatorError(f"unknown task {task_id}") from None

    def try_finalize(self, task_id: int, caller: str) -> bool:
        """Finalize an unchallenged task after its window; pays the proposer."""
        task = self.task(task_id)
        if task.status is not TaskStatus.PENDING:
            return task.status is TaskStatus.FINALIZED
        if self.chain.timestamp < task.challenge_deadline:
            return False
        self._journal_entry(event="finalize", task=task_id,
                            state="pending", next="finalized")
        task.status = TaskStatus.FINALIZED
        self.chain.transfer(self._escrow_account, task.proposer, task.fee + task.proposer_bond)
        self.chain.submit(caller, "finalize", payload_bytes=8,
                          details={"task_id": task_id})
        return True

    # ------------------------------------------------------------------
    # Phase 2: dispute lifecycle
    # ------------------------------------------------------------------

    def open_dispute(self, task_id: int, challenger: str,
                     challenger_bond: Optional[float] = None) -> DisputeRecord:
        task = self.task(task_id)
        if task.status is not TaskStatus.PENDING:
            raise CoordinatorError(
                f"task {task_id} cannot be disputed in status {task.status.value}"
            )
        if self.chain.timestamp >= task.challenge_deadline:
            raise CoordinatorError(f"challenge window for task {task_id} has closed")
        bond = self.default_challenger_bond if challenger_bond is None else float(challenger_bond)
        num_operators = self.model(task.model_name).num_operators
        self._journal_entry(
            event="challenge", task=task_id, state="pending",
            next="dispute_adjudication" if num_operators <= 1
            else "dispute_partition")
        self.chain.transfer(challenger, self._escrow_account, bond)
        dispute = DisputeRecord(
            dispute_id=len(self.disputes),
            task_id=task_id,
            challenger=challenger,
            challenger_bond=bond,
            current_start=0,
            current_end=num_operators,
            last_action_at=self.chain.timestamp,
            gas_start_index=len(self.chain.transactions),
        )
        if dispute.at_leaf:
            # Degenerate single-operator graph: go straight to adjudication.
            dispute.phase = DisputePhase.AWAIT_ADJUDICATION
        self.disputes[dispute.dispute_id] = dispute
        task.status = TaskStatus.DISPUTED
        task.dispute_id = dispute.dispute_id
        self.chain.submit(
            challenger, "open_dispute", payload_bytes=16, storage_writes=2,
            details={"task_id": task_id, "dispute_id": dispute.dispute_id},
        )
        return dispute

    def dispute(self, dispute_id: int) -> DisputeRecord:
        try:
            return self.disputes[dispute_id]
        except KeyError:
            raise CoordinatorError(f"unknown dispute {dispute_id}") from None

    def post_partition(self, dispute_id: int, proposer: str,
                       entries: List[PartitionEntry],
                       payload_bytes: int) -> None:
        dispute = self.dispute(dispute_id)
        task = self.task(dispute.task_id)
        if proposer != task.proposer:
            raise CoordinatorError("only the task's proposer may post partitions")
        if dispute.phase is not DisputePhase.AWAIT_PARTITION:
            raise CoordinatorError(f"dispute {dispute_id} is not awaiting a partition")
        if dispute.at_leaf:
            raise CoordinatorError("dispute already localized to a single operator")
        if not entries:
            raise CoordinatorError("partition must contain at least one child")
        if entries[0].slice_start != dispute.current_start or \
                entries[-1].slice_end != dispute.current_end:
            raise CoordinatorError("partition does not cover the disputed slice")
        for prev, nxt in zip(entries, entries[1:]):
            if prev.slice_end != nxt.slice_start:
                raise CoordinatorError("partition children must be contiguous and disjoint")
        self._journal_entry(event="partition", task=dispute.task_id,
                            state="dispute_partition", next="dispute_selection")
        dispute.partitions.append(list(entries))
        dispute.phase = DisputePhase.AWAIT_SELECTION
        dispute.last_action_at = self.chain.timestamp
        self.chain.submit(
            proposer, "post_partition",
            payload_bytes=payload_bytes,
            storage_writes=1,
            details={"dispute_id": dispute_id, "round": dispute.round_index,
                     "num_children": len(entries)},
        )

    def post_selection(self, dispute_id: int, challenger: str, child_index: int) -> None:
        dispute = self.dispute(dispute_id)
        if challenger != dispute.challenger:
            raise CoordinatorError("only the dispute's challenger may post selections")
        if dispute.phase is not DisputePhase.AWAIT_SELECTION:
            raise CoordinatorError(f"dispute {dispute_id} is not awaiting a selection")
        children = dispute.partitions[-1]
        if not 0 <= child_index < len(children):
            raise CoordinatorError(f"selected child {child_index} out of range")
        chosen = children[child_index]
        self._journal_entry(
            event="select", task=dispute.task_id, state="dispute_selection",
            next="dispute_adjudication"
            if chosen.slice_end - chosen.slice_start <= 1
            else "dispute_partition")
        dispute.selections.append(int(child_index))
        dispute.current_start = chosen.slice_start
        dispute.current_end = chosen.slice_end
        dispute.round_index += 1
        dispute.last_action_at = self.chain.timestamp
        dispute.phase = (
            DisputePhase.AWAIT_ADJUDICATION if dispute.at_leaf else DisputePhase.AWAIT_PARTITION
        )
        self.chain.submit(
            challenger, "post_selection", payload_bytes=8,
            details={"dispute_id": dispute_id, "child": child_index,
                     "slice": [chosen.slice_start, chosen.slice_end]},
        )

    def enforce_timeout(self, dispute_id: int, caller: str) -> Optional[str]:
        """Resolve a dispute by timeout; returns the losing party name if any."""
        dispute = self.dispute(dispute_id)
        if dispute.phase is DisputePhase.RESOLVED:
            return None
        if self.chain.timestamp - dispute.last_action_at < self.round_timeout_s:
            return None
        task = self.task(dispute.task_id)
        if dispute.phase is DisputePhase.AWAIT_PARTITION:
            loser = task.proposer
            self._journal_entry(event="timeout", task=dispute.task_id,
                                state="dispute_partition",
                                next="proposer_slashed")
            self._resolve(dispute, task, proposer_cheated=True, path="timeout")
        else:
            loser = dispute.challenger
            self._journal_entry(event="timeout", task=dispute.task_id,
                                state=_PHASE_SPEC_STATE[dispute.phase],
                                next="challenger_slashed")
            self._resolve(dispute, task, proposer_cheated=False, path="timeout")
        self.chain.submit(caller, "slash", payload_bytes=8,
                          details={"dispute_id": dispute_id, "timeout_loser": loser})
        return loser

    def post_input_binding_fraud(self, dispute_id: int, challenger: str) -> None:
        """Resolve a dispute by an input-binding fraud proof.

        The execution commitment binds ``H(x)`` on chain; a proposer whose
        committed trace does not extend the committed input (a stale or
        substituted trace replayed against a fresh request) is provably
        fraudulent by a pure hash-equality check — no localization game is
        needed.  The challenger posts the mismatching placeholder hash pair
        and the coordinator slashes the proposer immediately.
        """
        dispute = self.dispute(dispute_id)
        if dispute.phase is DisputePhase.RESOLVED:
            raise CoordinatorError(f"dispute {dispute_id} is already resolved")
        if challenger != dispute.challenger:
            raise CoordinatorError(
                "only the dispute's challenger may post an input-binding proof"
            )
        task = self.task(dispute.task_id)
        self._journal_entry(event="input_fraud", task=task.task_id,
                            state=_PHASE_SPEC_STATE[dispute.phase],
                            next="proposer_slashed")
        self.chain.submit(
            challenger, "prove_input_binding", payload_bytes=32 * 2 + 8,
            merkle_checks=1,
            details={"dispute_id": dispute_id, "task_id": task.task_id},
        )
        self._resolve(dispute, task, proposer_cheated=True, path="input_binding")

    # ------------------------------------------------------------------
    # Phase 3: adjudication and settlement
    # ------------------------------------------------------------------

    def post_adjudication(self, dispute_id: int, caller: str, proposer_cheated: bool,
                          path: str, details: Optional[Dict[str, object]] = None) -> None:
        dispute = self.dispute(dispute_id)
        if dispute.phase is not DisputePhase.AWAIT_ADJUDICATION:
            raise CoordinatorError(f"dispute {dispute_id} is not awaiting adjudication")
        task = self.task(dispute.task_id)
        self._journal_entry(
            event="adjudicate", task=task.task_id,
            state="dispute_adjudication",
            next="proposer_slashed" if proposer_cheated
            else "challenger_slashed")
        dispute.adjudication_path = path
        dispute.adjudication_details = dict(details or {})
        self.chain.submit(
            caller, "post_adjudication", payload_bytes=64,
            details={"dispute_id": dispute_id, "path": path,
                     "proposer_cheated": proposer_cheated},
        )
        self._resolve(dispute, task, proposer_cheated=proposer_cheated, path=path)

    def _resolve(self, dispute: DisputeRecord, task: TaskRecord,
                 proposer_cheated: bool, path: str) -> None:
        dispute.phase = DisputePhase.RESOLVED
        dispute.adjudication_path = dispute.adjudication_path or path
        if proposer_cheated:
            dispute.winner = dispute.challenger
            task.status = TaskStatus.PROPOSER_SLASHED
            reward = self.challenger_reward_share * task.proposer_bond
            self.chain.transfer(self._escrow_account, dispute.challenger,
                                reward + dispute.challenger_bond)
            self.chain.transfer(self._escrow_account, self._burn_account,
                                task.proposer_bond - reward)
            self.chain.transfer(self._escrow_account, task.user, task.fee)
        else:
            dispute.winner = task.proposer
            task.status = TaskStatus.CHALLENGER_SLASHED
            self.chain.transfer(self._escrow_account, task.proposer,
                                task.fee + task.proposer_bond + dispute.challenger_bond)
        self.chain.submit(
            "coordinator", "slash", payload_bytes=32,
            details={"dispute_id": dispute.dispute_id, "winner": dispute.winner},
        )

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------

    def _dispute_transactions(self, dispute_id: int):
        """Transactions belonging to ``dispute_id`` since the dispute opened.

        Every dispute action records its ``dispute_id`` in the transaction
        details, so per-dispute accounting stays exact even when a service
        multiplexes several dispute games over the same chain (for a single
        sequential dispute this matches counting everything since
        ``gas_start_index``, which is how the seed accounted it).  Dispute ids
        are only unique per coordinator, and a cluster settles many
        coordinators on one shared log, so the filter additionally matches the
        shard tag this coordinator's chain (view) stamps on its transactions.
        """
        dispute = self.dispute(dispute_id)
        own_shard = getattr(self.chain, "shard_id", None)
        return [
            tx for tx in self.chain.transactions[dispute.gas_start_index:]
            if tx.details.get("dispute_id") == dispute_id and tx.shard == own_shard
        ]

    def dispute_gas(self, dispute_id: int) -> int:
        return int(sum(tx.gas_used for tx in self._dispute_transactions(dispute_id)))

    def dispute_gas_by_action(self, dispute_id: int) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for tx in self._dispute_transactions(dispute_id):
            out[tx.action] = out.get(tx.action, 0) + tx.gas_used
        return out
